//! Workspace-local stand-in for the `bytes` crate.
//!
//! Provides the subset `antruss-graph::io_binary` and the
//! `antruss-store` WAL rely on: an immutable, cheaply sliceable
//! [`Bytes`] buffer, a growable [`BytesMut`] builder, and the
//! [`Buf`]/[`BufMut`] cursor traits (little-endian fixed-width
//! accessors).

#![warn(missing_docs)]

use std::ops::Range;
use std::sync::Arc;

/// An immutable, reference-counted byte buffer with O(1) slicing.
#[derive(Debug, Clone)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// A buffer borrowing a `'static` slice (copied once; the real
    /// crate's zero-copy static variant is irrelevant at these sizes).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes)
    }

    /// Length in bytes of the active window.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the active window is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// A zero-copy sub-window. Panics if the range is out of bounds.
    pub fn slice(&self, range: Range<usize>) -> Bytes {
        assert!(
            range.start <= range.end && range.end <= self.len(),
            "slice {range:?} out of bounds for Bytes of length {}",
            self.len()
        );
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + range.start,
            end: self.start + range.end,
        }
    }

    /// Copies the active window into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_ref().to_vec()
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self.as_ref() == other.as_ref()
    }
}

impl Eq for Bytes {}

impl std::ops::Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        self.as_ref()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

/// A growable byte buffer for building [`Bytes`] values.
#[derive(Debug, Clone, Default)]
pub struct BytesMut {
    buf: Vec<u8>,
}

impl BytesMut {
    /// An empty buffer.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty buffer with `cap` bytes pre-allocated.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Current length in bytes.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Converts the accumulated bytes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.buf)
    }
}

/// Read cursor over a byte source; every accessor advances the cursor.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;

    /// Copies `dst.len()` bytes out and advances. Panics on underflow.
    fn copy_to_slice(&mut self, dst: &mut [u8]);

    /// Whether any bytes are left.
    fn has_remaining(&self) -> bool {
        self.remaining() > 0
    }

    /// Reads one byte and advances. Panics on underflow.
    fn get_u8(&mut self) -> u8 {
        let mut raw = [0u8; 1];
        self.copy_to_slice(&mut raw);
        raw[0]
    }

    /// Reads a little-endian `u16` and advances. Panics on underflow.
    fn get_u16_le(&mut self) -> u16 {
        let mut raw = [0u8; 2];
        self.copy_to_slice(&mut raw);
        u16::from_le_bytes(raw)
    }

    /// Reads a little-endian `u32` and advances. Panics on underflow.
    fn get_u32_le(&mut self) -> u32 {
        let mut raw = [0u8; 4];
        self.copy_to_slice(&mut raw);
        u32::from_le_bytes(raw)
    }

    /// Reads a little-endian `u64` and advances. Panics on underflow.
    fn get_u64_le(&mut self) -> u64 {
        let mut raw = [0u8; 8];
        self.copy_to_slice(&mut raw);
        u64::from_le_bytes(raw)
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn copy_to_slice(&mut self, dst: &mut [u8]) {
        assert!(
            dst.len() <= self.remaining(),
            "copy_to_slice underflow: want {}, have {}",
            dst.len(),
            self.remaining()
        );
        dst.copy_from_slice(&self.data[self.start..self.start + dst.len()]);
        self.start += dst.len();
    }
}

impl Bytes {
    /// Splits off the next `len` bytes as an owned window and advances
    /// (the real crate's `Buf::copy_to_bytes`, O(1) here via slicing).
    pub fn copy_to_bytes(&mut self, len: usize) -> Bytes {
        let out = self.slice(0..len);
        self.start += len;
        out
    }
}

/// Write cursor appending to a byte sink.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a `u16` in little-endian order.
    fn put_u16_le(&mut self, v: u16) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u32` in little-endian order.
    fn put_u32_le(&mut self, v: u32) {
        self.put_slice(&v.to_le_bytes());
    }

    /// Appends a `u64` in little-endian order.
    fn put_u64_le(&mut self, v: u64) {
        self.put_slice(&v.to_le_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.buf.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_u32s() {
        let mut b = BytesMut::with_capacity(16);
        b.put_slice(b"HDR!");
        b.put_u32_le(0xDEAD_BEEF);
        b.put_u32_le(42);
        let mut bytes = b.freeze();
        assert_eq!(bytes.len(), 12);
        let mut hdr = [0u8; 4];
        bytes.copy_to_slice(&mut hdr);
        assert_eq!(&hdr, b"HDR!");
        assert_eq!(bytes.get_u32_le(), 0xDEAD_BEEF);
        assert_eq!(bytes.get_u32_le(), 42);
        assert_eq!(bytes.remaining(), 0);
    }

    #[test]
    fn slicing_is_zero_copy_and_windowed() {
        let bytes = Bytes::from((0u8..32).collect::<Vec<_>>());
        let mid = bytes.slice(8..16);
        assert_eq!(mid.len(), 8);
        assert_eq!(mid.as_ref(), &(8u8..16).collect::<Vec<_>>()[..]);
        let nested = mid.slice(2..4);
        assert_eq!(nested.to_vec(), vec![10, 11]);
        // original window is untouched
        assert_eq!(bytes.len(), 32);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn reading_past_the_end_panics() {
        let mut bytes = Bytes::from(vec![1u8, 2]);
        bytes.get_u32_le();
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_slice_panics() {
        Bytes::from(vec![0u8; 4]).slice(2..9);
    }
}
