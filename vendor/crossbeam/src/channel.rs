//! Multi-producer multi-consumer channels with the `crossbeam-channel`
//! calling convention (`bounded`/`unbounded`, cloneable `Sender` and
//! `Receiver`, disconnect on last-handle drop).
//!
//! Implemented over `Mutex<VecDeque>` + two `Condvar`s (one for
//! not-empty, one for not-full), which is all the service worker pool
//! needs; the lock-free internals of the real crate are out of scope.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

/// Error of [`Sender::send`]: every receiver is gone; the value comes
/// back to the caller.
#[derive(Debug, PartialEq, Eq)]
pub struct SendError<T>(pub T);

impl<T> std::fmt::Display for SendError<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sending on a disconnected channel")
    }
}

/// Error of [`Receiver::recv`]: the channel is empty and every sender is
/// gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl std::fmt::Display for RecvError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "receiving on an empty, disconnected channel")
    }
}

impl std::error::Error for RecvError {}

/// Error of [`Receiver::try_recv`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TryRecvError {
    /// Nothing queued right now, but senders remain.
    Empty,
    /// Nothing queued and every sender is gone.
    Disconnected,
}

struct Shared<T> {
    queue: Mutex<VecDeque<T>>,
    /// `None` = unbounded.
    capacity: Option<usize>,
    not_empty: Condvar,
    not_full: Condvar,
    senders: AtomicUsize,
    receivers: AtomicUsize,
}

impl<T> Shared<T> {
    fn disconnected_for_send(&self) -> bool {
        self.receivers.load(Ordering::SeqCst) == 0
    }

    fn disconnected_for_recv(&self) -> bool {
        self.senders.load(Ordering::SeqCst) == 0
    }
}

/// The sending half; clone freely across producer threads.
pub struct Sender<T> {
    shared: Arc<Shared<T>>,
}

/// The receiving half; clone freely across consumer threads (each queued
/// value is delivered to exactly one receiver).
pub struct Receiver<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Sender<T> {
        self.shared.senders.fetch_add(1, Ordering::SeqCst);
        Sender {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Clone for Receiver<T> {
    fn clone(&self) -> Receiver<T> {
        self.shared.receivers.fetch_add(1, Ordering::SeqCst);
        Receiver {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        if self.shared.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
            // last sender gone: wake blocked receivers so they observe
            // the disconnect instead of sleeping forever. The lock is
            // required for correctness, not just politeness: it orders
            // this notification after any receiver's check-then-wait,
            // closing the lost-wakeup window between its disconnect
            // check and its entry into `wait`.
            let _queue = self.shared.queue.lock().unwrap();
            self.shared.not_empty.notify_all();
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        if self.shared.receivers.fetch_sub(1, Ordering::SeqCst) == 1 {
            // lock for the same lost-wakeup reason as Sender::drop
            let _queue = self.shared.queue.lock().unwrap();
            self.shared.not_full.notify_all();
        }
    }
}

impl<T> Sender<T> {
    /// Blocks until the value is queued (or returns it in `Err` when all
    /// receivers are gone).
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if self.shared.disconnected_for_send() {
                return Err(SendError(value));
            }
            match self.shared.capacity {
                Some(cap) if queue.len() >= cap => {
                    queue = self.shared.not_full.wait(queue).unwrap();
                }
                _ => break,
            }
        }
        queue.push_back(value);
        drop(queue);
        self.shared.not_empty.notify_one();
        Ok(())
    }
}

impl<T> Receiver<T> {
    /// Blocks until a value arrives or every sender is gone.
    pub fn recv(&self) -> Result<T, RecvError> {
        let mut queue = self.shared.queue.lock().unwrap();
        loop {
            if let Some(v) = queue.pop_front() {
                drop(queue);
                self.shared.not_full.notify_one();
                return Ok(v);
            }
            if self.shared.disconnected_for_recv() {
                return Err(RecvError);
            }
            queue = self.shared.not_empty.wait(queue).unwrap();
        }
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Result<T, TryRecvError> {
        let mut queue = self.shared.queue.lock().unwrap();
        if let Some(v) = queue.pop_front() {
            drop(queue);
            self.shared.not_full.notify_one();
            return Ok(v);
        }
        if self.shared.disconnected_for_recv() {
            Err(TryRecvError::Disconnected)
        } else {
            Err(TryRecvError::Empty)
        }
    }

    /// Queued values right now (racy by nature; for metrics only).
    pub fn len(&self) -> usize {
        self.shared.queue.lock().unwrap().len()
    }

    /// Whether the queue is empty right now (racy by nature).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

fn channel<T>(capacity: Option<usize>) -> (Sender<T>, Receiver<T>) {
    let shared = Arc::new(Shared {
        queue: Mutex::new(VecDeque::new()),
        capacity,
        not_empty: Condvar::new(),
        not_full: Condvar::new(),
        senders: AtomicUsize::new(1),
        receivers: AtomicUsize::new(1),
    });
    (
        Sender {
            shared: Arc::clone(&shared),
        },
        Receiver { shared },
    )
}

/// A channel holding at most `cap` queued values; `send` blocks when
/// full. `cap = 0` is rounded up to 1 (the shim has no rendezvous mode).
pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
    channel(Some(cap.max(1)))
}

/// A channel with no capacity limit; `send` never blocks.
pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
    channel(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn values_cross_threads_in_order() {
        let (tx, rx) = unbounded();
        let producer = thread::spawn(move || {
            for i in 0..100 {
                tx.send(i).unwrap();
            }
        });
        let got: Vec<i32> = (0..100).map(|_| rx.recv().unwrap()).collect();
        producer.join().unwrap();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn mpmc_delivers_each_value_once() {
        let (tx, rx) = bounded(4);
        let mut consumers = Vec::new();
        for _ in 0..3 {
            let rx = rx.clone();
            consumers.push(thread::spawn(move || {
                let mut got = Vec::new();
                while let Ok(v) = rx.recv() {
                    got.push(v);
                }
                got
            }));
        }
        drop(rx);
        for i in 0..300 {
            tx.send(i).unwrap();
        }
        drop(tx);
        let mut all: Vec<i32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        all.sort_unstable();
        assert_eq!(all, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn recv_errors_after_last_sender_drops() {
        let (tx, rx) = unbounded::<u8>();
        tx.send(9).unwrap();
        drop(tx);
        assert_eq!(rx.recv(), Ok(9));
        assert_eq!(rx.recv(), Err(RecvError));
        assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
    }

    #[test]
    fn send_errors_after_last_receiver_drops() {
        let (tx, rx) = bounded::<u8>(1);
        drop(rx);
        assert_eq!(tx.send(1), Err(SendError(1)));
    }

    #[test]
    fn bounded_send_blocks_until_capacity_frees() {
        let (tx, rx) = bounded(1);
        tx.send(1).unwrap();
        let t = thread::spawn(move || {
            tx.send(2).unwrap(); // blocks until the consumer pops
            tx.send(3).unwrap();
        });
        assert_eq!(rx.recv(), Ok(1));
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
        t.join().unwrap();
    }

    #[test]
    fn try_recv_reports_empty() {
        let (tx, rx) = unbounded::<u8>();
        assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
        tx.send(5).unwrap();
        assert_eq!(rx.try_recv(), Ok(5));
        assert!(rx.is_empty());
    }
}
