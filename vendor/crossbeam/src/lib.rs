//! Workspace-local stand-in for the `crossbeam` crate.
//!
//! Two APIs are provided — the two the workspace uses:
//!
//! * [`scope`] for `antruss-core::parallel`. Since Rust 1.63 the standard
//!   library ships scoped threads, so this is a thin adapter giving
//!   `std::thread::scope` crossbeam's calling convention (`scope(|s| …)`
//!   returning a `Result`, spawn closures receiving the scope handle,
//!   `join` per handle);
//! * [`channel`] for the `antruss-service` worker pool: MPMC
//!   bounded/unbounded channels with cloneable `Sender`/`Receiver` and
//!   disconnect-on-drop semantics, built on `Mutex<VecDeque>` + condvars.

#![warn(missing_docs)]

pub mod channel;

use std::any::Any;
use std::thread;

/// Error payload of a panicked scope (crossbeam returns the panic value).
pub type PanicPayload = Box<dyn Any + Send + 'static>;

/// A scope handle; lets spawned closures spawn further siblings.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

/// Handle to one spawned thread within a [`Scope`].
pub struct ScopedJoinHandle<'scope, T> {
    inner: thread::ScopedJoinHandle<'scope, T>,
}

impl<T> ScopedJoinHandle<'_, T> {
    /// Waits for the thread to finish, yielding its result or its panic
    /// payload.
    pub fn join(self) -> Result<T, PanicPayload> {
        self.inner.join()
    }
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a thread scoped to `'env` borrows; the closure receives the
    /// scope handle (crossbeam's signature) so it can spawn siblings.
    pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let inner = self.inner;
        ScopedJoinHandle {
            inner: inner.spawn(move || f(&Scope { inner })),
        }
    }
}

/// Creates a scope in which threads may borrow non-`'static` data.
///
/// All spawned threads are joined before `scope` returns. Unlike
/// crossbeam, an unjoined panicking child propagates through
/// `std::thread::scope` and aborts the calling thread's unwind instead of
/// being collected in the `Err` — callers here always `join` explicitly,
/// so the distinction never surfaces.
pub fn scope<'env, F, R>(f: F) -> Result<R, PanicPayload>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    Ok(thread::scope(|s| f(&Scope { inner: s })))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn scoped_threads_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let total = AtomicUsize::new(0);
        scope(|s| {
            let mut handles = Vec::new();
            for chunk in data.chunks(2) {
                let total = &total;
                handles.push(s.spawn(move |_| {
                    let sum: u64 = chunk.iter().sum();
                    total.fetch_add(sum as usize, Ordering::Relaxed);
                    sum
                }));
            }
            let joined: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(joined, 10);
        })
        .unwrap();
        assert_eq!(total.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn nested_spawn_through_scope_handle() {
        let result = scope(|s| {
            let h = s.spawn(|s2| {
                let inner = s2.spawn(|_| 21);
                inner.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(result, 42);
    }

    #[test]
    fn panic_surfaces_through_join() {
        scope(|s| {
            let h = s.spawn(|_| panic!("boom"));
            assert!(h.join().is_err());
        })
        .unwrap();
    }
}
