//! Workspace-local stand-in for the `rand` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the exact API subset the workspace uses — `Rng::{gen,
//! gen_range, gen_bool}`, `SeedableRng::seed_from_u64`, `rngs::SmallRng`,
//! and `seq::SliceRandom::{shuffle, choose}`.
//!
//! The implementation is **stream-compatible with `rand 0.8`'s 64-bit
//! `SmallRng`**: the same PCG32-based `seed_from_u64` expansion, the same
//! xoshiro256++ core, and the same widening-multiply rejection sampling
//! for integer ranges, so seeded call sites observe the very value
//! sequences the test-suite's statistical thresholds were tuned against.

#![warn(missing_docs)]

pub mod rngs;
pub mod seq;

use std::ops::{Range, RangeInclusive};

/// Low-level uniform word source.
pub trait RngCore {
    /// The next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 uniformly distributed bits.
    fn next_u32(&mut self) -> u32;
}

/// Seedable construction (the only constructor the workspace uses).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed, expanding it with the same
    /// PCG32 stream `rand_core 0.6` uses.
    fn seed_from_u64(seed: u64) -> Self;
}

/// High-level sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// A uniform sample of `T` over its natural domain
    /// (`[0, 1)` for floats, the full range for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// A uniform sample from `range` (half-open or inclusive).
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// `true` with probability `p` (must be within `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        if p >= 1.0 {
            return true;
        }
        // rand 0.8's Bernoulli: compare 64 random bits against p·2^64
        let p_int = (p * (2.0 * (1u64 << 63) as f64)) as u64;
        self.next_u64() < p_int
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Types with a natural "standard" distribution for [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 effective bits, matching rand 0.8's `Standard` for f64
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() as i32) < 0
    }
}

/// Types uniformly sampleable over a range.
pub trait SampleUniform: Sized {
    /// A uniform sample from `[low, high]`. Panics when `low > high`.
    fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// rand 0.8's `uniform_int_impl!` sampling: widening multiply with zone
/// rejection. `$large` is the word drawn from the generator (`u32` for
/// types up to 32 bits, `u64` above), `$wide` its double width.
macro_rules! impl_uniform_int {
    ($($t:ty => $unsigned:ty, $large:ty, $wide:ty, $draw:ident);+ $(;)?) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "empty range in gen_range");
                let range = (high as $unsigned).wrapping_sub(low as $unsigned).wrapping_add(1)
                    as $large;
                if range == 0 {
                    // span covers the whole domain
                    return rng.$draw() as $t;
                }
                let zone = if (<$unsigned>::MAX as u64) <= u16::MAX as u64 {
                    // small domains: reject precisely
                    let ints_to_reject = (<$large>::MAX - range + 1) % range;
                    <$large>::MAX - ints_to_reject
                } else {
                    // wide domains: cheaper power-of-two zone
                    (range << range.leading_zeros()).wrapping_sub(1)
                };
                loop {
                    let v: $large = rng.$draw() as $large;
                    let product = (v as $wide) * (range as $wide);
                    let hi = (product >> <$large>::BITS) as $large;
                    let lo = product as $large;
                    if lo <= zone {
                        return ((low as $unsigned).wrapping_add(hi as $unsigned)) as $t;
                    }
                }
            }
        }
    )+};
}

impl_uniform_int! {
    u8 => u8, u32, u64, next_u32;
    u16 => u16, u32, u64, next_u32;
    u32 => u32, u32, u64, next_u32;
    u64 => u64, u64, u128, next_u64;
    usize => usize, u64, u128, next_u64;
    i8 => u8, u32, u64, next_u32;
    i16 => u16, u32, u64, next_u32;
    i32 => u32, u32, u64, next_u32;
    i64 => u64, u64, u128, next_u64;
    isize => usize, u64, u128, next_u64;
}

impl SampleUniform for f64 {
    fn sample_inclusive<R: RngCore>(rng: &mut R, low: Self, high: Self) -> Self {
        // rand 0.8's UniformFloat::sample_single: a mantissa draw in
        // [1, 2) scaled into [low, high) — the inclusive/exclusive
        // distinction is immaterial at f64 resolution.
        assert!(low < high, "empty range in gen_range");
        let scale = high - low;
        loop {
            let value1_2 = f64::from_bits((rng.next_u64() >> 12) | (1023u64 << 52));
            let value0_scale = value1_2 * scale - scale;
            let res = value0_scale + low;
            if res < high {
                return res;
            }
        }
    }
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one sample from the range.
    fn sample_single<R: RngCore>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),+) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                <$t>::sample_inclusive(rng, self.start, self.end - 1)
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore>(self, rng: &mut R) -> $t {
                let (low, high) = self.into_inner();
                <$t>::sample_inclusive(rng, low, high)
            }
        }
    )+};
}

impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore>(self, rng: &mut R) -> f64 {
        f64::sample_inclusive(rng, self.start, self.end)
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::*;

    #[test]
    fn deterministic_streams() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: u32 = rng.gen_range(5..17);
            assert!((5..17).contains(&x));
            let y: usize = rng.gen_range(0..1);
            assert_eq!(y, 0);
            let f: f64 = rng.gen_range(f64::EPSILON..1.0);
            assert!((f64::EPSILON..1.0).contains(&f));
            let z: i32 = rng.gen_range(-4..=4);
            assert!((-4..=4).contains(&z));
        }
    }

    #[test]
    fn gen_range_covers_small_domains() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..6)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn gen_bool_extremes_and_balance() {
        let mut rng = SmallRng::seed_from_u64(11);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&hits), "p=0.5 hit {hits}/10000");
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
