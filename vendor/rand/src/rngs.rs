//! Concrete generators.

use crate::{RngCore, SeedableRng};

/// A small, fast, deterministic generator — xoshiro256++, exactly as
/// `rand 0.8` implements `SmallRng` on 64-bit targets, including the
/// PCG32-based `seed_from_u64` expansion, so seeded streams match
/// upstream bit for bit.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // rand_core 0.6's default seed_from_u64: a PCG32 sequence fills
        // the 32-byte xoshiro seed in 4-byte little-endian chunks.
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut state = seed;
        let mut pcg32 = || {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            xorshifted.rotate_right(rot)
        };
        let mut s = [0u64; 4];
        for word in &mut s {
            let lo = pcg32() as u64;
            let hi = pcg32() as u64;
            *word = lo | (hi << 32);
        }
        SmallRng { s }
    }
}

impl RngCore for SmallRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    #[inline]
    fn next_u32(&mut self) -> u32 {
        // the upper bits, as rand 0.8's internal xoshiro256++ does
        (self.next_u64() >> 32) as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stream_is_stable_across_instances() {
        // Seeding + core must be pure functions of the seed; downstream
        // graph generators rely on streams never changing across releases.
        let mut rng = SmallRng::seed_from_u64(0);
        let got: Vec<u64> = (0..4).map(|_| rng.next_u64()).collect();
        let mut again = SmallRng::seed_from_u64(0);
        assert_eq!(got, (0..4).map(|_| again.next_u64()).collect::<Vec<_>>());
        assert_ne!(got[0], got[1]);
        let mut other = SmallRng::seed_from_u64(1);
        assert_ne!(got[0], other.next_u64());
    }
}
