//! Sequence-related sampling (`SliceRandom`).

use crate::{Rng, RngCore};

/// Uniform index below `ubound`, using rand 0.8's `gen_index` trick:
/// 32-bit sampling whenever the bound fits (one fewer wide multiply, and
/// the exact draw pattern upstream `shuffle`/`choose` produce).
fn gen_index<R: RngCore>(rng: &mut R, ubound: usize) -> usize {
    if ubound <= u32::MAX as usize {
        rng.gen_range(0..ubound as u32) as usize
    } else {
        rng.gen_range(0..ubound)
    }
}

/// Random operations on slices.
pub trait SliceRandom {
    /// Element type.
    type Item;

    /// Shuffles the slice in place (Fisher–Yates), deterministically for a
    /// fixed generator state.
    fn shuffle<R: RngCore>(&mut self, rng: &mut R);

    /// A uniformly random element, or `None` if the slice is empty.
    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            self.swap(i, gen_index(rng, i + 1));
        }
    }

    fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[gen_index(rng, self.len())])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle should move something");
    }

    #[test]
    fn choose_handles_empty_and_full() {
        let mut rng = SmallRng::seed_from_u64(1);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        let v = [7u8];
        assert_eq!(v.choose(&mut rng), Some(&7));
    }
}
