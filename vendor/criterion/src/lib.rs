//! Workspace-local stand-in for the `criterion` crate.
//!
//! Offers the API subset the `antruss-bench` benchmark targets use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`Bencher::iter`]/[`Bencher::iter_batched`], [`BenchmarkId`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros — with plain
//! wall-clock measurement (median of `sample_size` samples) printed to
//! stdout. No statistical analysis, plots, or baselines.
//!
//! The generated `main` runs benchmarks only when `--bench` is among the
//! process arguments (cargo passes it for `cargo bench`); under
//! `cargo test`, bench binaries exit immediately so the test suite stays
//! fast.

#![warn(missing_docs)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (accepted, not acted on — the shim
/// always runs setup once per measured iteration).
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: upstream batches many per allocation.
    SmallInput,
    /// Large inputs: upstream batches few.
    LargeInput,
    /// One setup per iteration.
    PerIteration,
}

/// Identifier of one parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` identifier.
    pub fn new<S: AsRef<str>, P: Display>(function_name: S, parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: format!("{}/{}", function_name.as_ref(), parameter),
        }
    }

    /// Identifier from a parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// The benchmark driver.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark (builder style).
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Criterion
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        run_one(id.as_ref(), self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: AsRef<str>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.as_ref().to_string(),
        }
    }
}

/// A named group of benchmarks (prefixes every id with the group name).
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<S, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        S: AsRef<str>,
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.as_ref());
        run_one(&full, self.criterion.sample_size, &mut f);
        self
    }

    /// Runs one benchmark parameterized over `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_one(&full, self.criterion.sample_size, &mut |b: &mut Bencher| {
            f(b, input)
        });
        self
    }

    /// Ends the group (upstream flushes reports here; the shim prints
    /// eagerly, so this is a no-op kept for API compatibility).
    pub fn finish(self) {}
}

fn run_one(id: &str, sample_size: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut samples = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        samples.push(bencher.elapsed);
    }
    samples.sort_unstable();
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!("bench {id:<50} median {median:>12?}  (min {lo:?}, max {hi:?}, n={sample_size})");
}

/// Measures a single sample of one benchmark routine.
pub struct Bencher {
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` once; the group runner aggregates the samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.elapsed = start.elapsed();
        drop(out);
    }

    /// Times `routine` on a fresh `setup()` input, excluding setup time.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        self.elapsed = start.elapsed();
        drop(out);
    }
}

/// Declares a benchmark group entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench binary's `main`, running groups only under
/// `--bench`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !::std::env::args().any(|a| a == "--bench") {
                println!("benchmarks skipped (run via `cargo bench` to execute)");
                return;
            }
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_routine_sample_size_times() {
        let mut count = 0u32;
        let mut c = Criterion::default().sample_size(7);
        c.bench_function("unit/counter", |b| b.iter(|| count += 1));
        assert_eq!(count, 7);
    }

    #[test]
    fn groups_and_batched_iteration() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("unit");
        let mut total = 0usize;
        group.bench_function("batched", |b| {
            b.iter_batched(
                || vec![1usize; 8],
                |v| total += v.len(),
                BatchSize::SmallInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("param", 5), &5usize, |b, &k| {
            b.iter(|| total += k)
        });
        group.finish();
        assert_eq!(total, 3 * 8 + 3 * 5);
    }
}
