//! Test-runner configuration and the deterministic case RNG.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Configuration accepted by `#![proptest_config(…)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of accepted cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` accepted cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    /// 64 cases — smaller than upstream's 256 to keep the full suite
    /// fast; individual properties override via `with_cases`.
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 64 }
    }
}

/// Deterministic per-test random source (seeded from the test name), so a
/// failing case reproduces on every run.
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// An RNG whose stream is a pure function of `test_name`.
    pub fn for_test(test_name: &str) -> TestRng {
        let mut seed = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for b in test_name.bytes() {
            seed ^= b as u64;
            seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// The next 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_seeding_is_deterministic_and_distinct() {
        let take = |name: &str| {
            let mut rng = TestRng::for_test(name);
            (0..4).map(|_| rng.next_u64()).collect::<Vec<_>>()
        };
        assert_eq!(take("alpha"), take("alpha"));
        assert_ne!(take("alpha"), take("beta"));
    }
}
