//! Collection strategies (`vec`).

use std::ops::Range;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Strategy producing `Vec`s of values from an element strategy, with a
/// length drawn uniformly from a half-open range.
pub struct VecStrategy<S> {
    element: S,
    len: Range<usize>,
}

/// A `Vec` strategy: `vec(0u8..30, 1..100)` generates vectors of 1–99
/// samples of `0..30`.
pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
    assert!(len.start < len.end, "empty length range in collection::vec");
    VecStrategy { element, len }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.len.clone().generate(rng);
        (0..n).map(|_| self.element.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lengths_and_elements_respect_ranges() {
        let mut rng = TestRng::for_test("collection_unit");
        let strat = vec((0u8..5, 0u8..5), 2..7);
        let mut seen_lens = std::collections::HashSet::new();
        for _ in 0..200 {
            let v = strat.generate(&mut rng);
            assert!((2..7).contains(&v.len()));
            seen_lens.insert(v.len());
            for &(a, b) in &v {
                assert!(a < 5 && b < 5);
            }
        }
        assert!(seen_lens.len() > 2, "length should vary across cases");
    }
}
