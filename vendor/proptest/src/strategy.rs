//! Value-generation strategies.

use std::ops::Range;

use crate::test_runner::TestRng;

/// A recipe for generating random values of one type.
///
/// Unlike upstream proptest there is no shrinking: `generate` draws one
/// value and failing cases report it verbatim.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_range_strategy {
    ($($t:ty),+) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = ((rng.next_u64() as u128 * span) >> 64) as i128;
                (self.start as i128 + offset) as $t
            }
        }
    )+};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
        )
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::for_test("strategy_unit");
        for _ in 0..500 {
            let x = (3u8..9).generate(&mut rng);
            assert!((3..9).contains(&x));
            let (a, b) = (0u16..4, 10usize..12).generate(&mut rng);
            assert!(a < 4 && (10..12).contains(&b));
        }
    }
}
