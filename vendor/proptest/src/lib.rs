//! Workspace-local stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset of proptest the workspace's property suites use:
//!
//! * the [`proptest!`] macro (with optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   multiple `fn name(arg in strategy, …) { … }` items);
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`];
//! * integer-range, tuple and `prop::collection::vec` strategies.
//!
//! Cases are generated from a deterministic per-test RNG (seeded from the
//! test's name), so failures reproduce across runs. There is **no
//! shrinking**: a failing case reports the exact inputs that failed
//! instead of a minimized counterexample.

#![warn(missing_docs)]

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Alias module so `prop::collection::vec(…)` resolves as in upstream
/// proptest's prelude.
pub mod prop {
    pub use crate::collection;
}

/// Outcome signal of one generated test case (used by the macros).
#[derive(Debug)]
pub enum TestCaseError {
    /// The case was rejected by `prop_assume!`; try another input.
    Reject,
    /// An assertion failed; the message describes it.
    Fail(String),
}

/// Everything a property-test module needs, glob-importable.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::TestCaseError;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests.
///
/// Accepts the upstream surface the workspace uses: an optional
/// `#![proptest_config(expr)]` inner attribute, then any number of
/// `#[test] fn name(binding in strategy, …) { body }` items. Each expands
/// to a plain `#[test]` that evaluates the strategies `cases` times.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items!(($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Implementation detail of [`proptest!`]: expands one `fn` item at a
/// time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        #[allow(unreachable_code)]
        fn $name() {
            let __config: $crate::test_runner::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            let mut __accepted: u32 = 0;
            let mut __attempts: u32 = 0;
            let __max_attempts = __config.cases.saturating_mul(16).max(64);
            while __accepted < __config.cases {
                __attempts += 1;
                assert!(
                    __attempts <= __max_attempts,
                    "prop_assume! rejected too many inputs ({} attempts for {} cases)",
                    __attempts,
                    __config.cases
                );
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)+
                let __shown = format!(concat!($("\n  ", stringify!($arg), " = {:?}",)+), $(&$arg),+);
                let __outcome: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $body
                    ::std::result::Result::Ok(())
                })();
                match __outcome {
                    Ok(()) => __accepted += 1,
                    Err($crate::TestCaseError::Reject) => continue,
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed on case {}: {}\ninputs:{}",
                            stringify!($name),
                            __accepted + 1,
                            msg,
                            __shown
                        );
                    }
                }
            }
        }
        $crate::__proptest_items!(($cfg) $($rest)*);
    };
}

/// Asserts a condition inside a [`proptest!`] body; on failure the case's
/// inputs are reported.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(
                format!("assertion failed: {} — {}", stringify!($cond), format!($($fmt)+)),
            ));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), l, r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} == {} — {}\n  left: {:?}\n right: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l, r
            )));
        }
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left), stringify!($right), l
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::Fail(format!(
                "assertion failed: {} != {} — {}\n  both: {:?}",
                stringify!($left), stringify!($right), format!($($fmt)+), l
            )));
        }
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn vec_strategy_respects_bounds(v in prop::collection::vec(0u8..10, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5, "len {}", v.len());
            for &x in &v {
                prop_assert!(x < 10);
            }
        }

        #[test]
        fn tuple_strategy_and_assume(pair in (0u16..50, 0u16..50)) {
            prop_assume!(pair.0 != pair.1);
            prop_assert_ne!(pair.0, pair.1);
            prop_assert_eq!(pair.0 as u32 + pair.1 as u32, (pair.0 + pair.1) as u32);
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0usize..100) {
            prop_assert!(x < 100);
        }
    }

    #[test]
    #[should_panic(expected = "property always_fails failed")]
    fn failures_panic_with_inputs() {
        proptest! {
            fn always_fails(x in 0u8..4) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        always_fails();
    }
}
