//! # antruss — Enhance Stability of Network by Edge Anchor (ICDE 2025)
//!
//! Umbrella crate re-exporting the whole workspace:
//!
//! * [`graph`] — CSR graph engine, generators, sampling, I/O;
//! * [`truss`] — truss decomposition with peel layers, k-hulls, anchored
//!   decomposition, truss components;
//! * [`kcore`] — core decomposition with onion layers, anchored cores and
//!   the vertex-anchoring comparators (OLAK, anchored coreness) from the
//!   paper's related work;
//! * [`atr`] — the paper's contribution: the Anchor Trussness Reinforcement
//!   problem, `GetFollowers`, the truss-component tree, follower reuse, the
//!   `GAS` algorithm and all evaluated baselines, unified behind the
//!   [`atr::engine`] `Solver` API;
//! * [`datasets`] — deterministic synthetic analogues of the paper's eight
//!   SNAP datasets;
//! * [`service`] — the resident anchoring service (`antruss serve`): a
//!   graph catalog and an outcome cache behind a hand-rolled HTTP/1.1
//!   server, plus the client used by `loadgen` and the e2e tests;
//! * [`cluster`] — the sharded serving tier (`antruss cluster`): a
//!   consistent-hash router placing graphs on N backend `serve`
//!   processes — spawned, or external via `--backend-addrs`, or joining
//!   at runtime through `antruss serve --join` — with dynamic
//!   membership (heartbeats, miss-threshold eviction, ring resize with
//!   re-warm from surviving replicas), replica failover, concurrent
//!   scatter-gather lifecycle fan-out, paged cache-dump replay, and a
//!   deterministic manual-clock test harness
//!   ([`cluster::testkit`](antruss_cluster::testkit));
//! * [`store`] — durability beneath the serving tier (`antruss serve
//!   --data-dir`): a checksummed write-ahead log of catalog operations,
//!   per-graph binary snapshots with compaction, and torn-tail tolerant
//!   crash recovery, so a restarted backend rebuilds its catalog from
//!   local disk instead of pulling graphs over the network;
//! * [`edge`] — the read-replica edge tier (`antruss edge`): a warm
//!   outcome cache in front of any serving node, router or other edge,
//!   kept coherent by subscribing to the upstream's WAL-backed
//!   `/events` feed (selective per-graph invalidation, no TTLs), with
//!   offline serving of cached reads when the upstream is unreachable
//!   and a mirrored event log so edges daisy-chain.
//!
//! ## Quickstart
//!
//! Every algorithm the paper evaluates — GAS and its seven baselines — is
//! dispatched by name through one registry and returns one unified
//! [`Outcome`](atr::engine::Outcome):
//!
//! ```
//! use antruss::graph::gen::{social_network, SocialParams};
//! use antruss::atr::engine::{registry, RunConfig};
//!
//! let g = social_network(&SocialParams {
//!     n: 300,
//!     target_edges: 1_200,
//!     attach: 4,
//!     closure: 0.5,
//!     planted: vec![8],
//!     onions: vec![],
//!     seed: 7,
//! });
//! let cfg = RunConfig::new(3).threads(2);
//! let gas = registry().get("gas").expect("registered");
//! let outcome = gas.run(&g, &cfg).expect("runs");
//! println!(
//!     "anchored {:?} for a total trussness gain of {}",
//!     outcome.anchors, outcome.total_gain
//! );
//! // swap in any baseline by name: "base+", "lazy", "rand:sup", "akt", …
//! let lazy = registry().get("lazy").expect("registered").run(&g, &cfg).expect("runs");
//! assert!(outcome.total_gain >= lazy.total_gain * 7 / 10);
//! ```

#![warn(missing_docs)]

pub use antruss_cluster as cluster;
pub use antruss_core as atr;
pub use antruss_datasets as datasets;
pub use antruss_edge as edge;
pub use antruss_graph as graph;
pub use antruss_kcore as kcore;
pub use antruss_obs as obs;
pub use antruss_service as service;
pub use antruss_store as store;
pub use antruss_truss as truss;
