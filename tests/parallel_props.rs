//! Property tests: the parallel candidate scan is equivalent to the serial
//! one, and `Gas` with threads produces byte-identical outcomes.

use antruss::atr::parallel::{best_candidate, scan_follower_counts};
use antruss::atr::{AtrState, Gas, GasConfig, ReusePolicy};
use antruss::graph::{CsrGraph, EdgeId, GraphBuilder};
use proptest::prelude::*;

fn graph_from_pairs(pairs: &[(u8, u8)]) -> CsrGraph {
    let mut b = GraphBuilder::new();
    for &(u, v) in pairs {
        b.add_edge(u as u64, v as u64);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_scan_equals_serial(
        pairs in prop::collection::vec((0u8..30, 0u8..30), 10..220),
        threads in 2usize..6,
    ) {
        let g = graph_from_pairs(&pairs);
        prop_assume!(g.num_edges() > 0);
        let st = AtrState::new(&g);
        let candidates: Vec<EdgeId> = g.edges().collect();
        let serial = scan_follower_counts(&st, &candidates, 1);
        let par = scan_follower_counts(&st, &candidates, threads);
        prop_assert_eq!(serial, par);
        prop_assert_eq!(
            best_candidate(&st, &candidates, 1),
            best_candidate(&st, &candidates, threads)
        );
    }

    #[test]
    fn gas_with_threads_matches_serial(
        pairs in prop::collection::vec((0u8..24, 0u8..24), 20..160),
        b in 1usize..4,
    ) {
        let g = graph_from_pairs(&pairs);
        prop_assume!(g.num_edges() >= 3);
        for reuse in [ReusePolicy::PaperExact, ReusePolicy::Off] {
            let serial = Gas::new(&g, GasConfig { reuse, threads: 1 }).run(b);
            let par = Gas::new(&g, GasConfig { reuse, threads: 4 }).run(b);
            prop_assert_eq!(&serial.anchors, &par.anchors, "reuse {:?}", reuse);
            prop_assert_eq!(serial.total_gain, par.total_gain);
            prop_assert_eq!(serial.claimed_gain, par.claimed_gain);
            let sf: Vec<usize> = serial.rounds.iter().map(|r| r.followers.len()).collect();
            let pf: Vec<usize> = par.rounds.iter().map(|r| r.followers.len()).collect();
            prop_assert_eq!(sf, pf);
        }
    }
}

#[test]
fn threaded_gas_on_a_social_graph() {
    use antruss::graph::gen::{social_network, SocialParams};
    let g = social_network(&SocialParams {
        n: 200,
        target_edges: 900,
        attach: 4,
        closure: 0.6,
        planted: vec![7],
        onions: vec![],
        seed: 31,
    });
    let serial = Gas::new(
        &g,
        GasConfig {
            reuse: ReusePolicy::PaperExact,
            threads: 1,
        },
    )
    .run(5);
    let par = Gas::new(
        &g,
        GasConfig {
            reuse: ReusePolicy::PaperExact,
            threads: 8,
        },
    )
    .run(5);
    assert_eq!(serial.anchors, par.anchors);
    assert_eq!(serial.total_gain, par.total_gain);
}
