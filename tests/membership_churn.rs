//! End-to-end churn over real threads and sockets: external backends
//! join a member-less router through the `antruss serve --join` code
//! path ([`HeartbeatClient`]), serve routed traffic, and when one is
//! killed mid-traffic the cluster keeps answering every request — then
//! evicts the corpse within the heartbeat miss threshold and re-places
//! its graphs, with byte-identical outcomes throughout.

use std::time::{Duration, Instant};

use antruss::cluster::{Router, RouterConfig};
use antruss::service::{Client, HeartbeatClient, Server, ServerConfig};

fn backend_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        cache_capacity: 64,
        ..ServerConfig::default()
    }
}

fn poll_until(deadline: Duration, mut check: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if check() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

fn ring_member_count(router_addr: std::net::SocketAddr) -> usize {
    let Ok(resp) = Client::new(router_addr).get("/ring") else {
        return usize::MAX;
    };
    let body = resp.body_string();
    antruss::atr::json::parse(&body)
        .ok()
        .and_then(|v| v.get("members").map(|m| m.as_array().unwrap().len()))
        .unwrap_or(usize::MAX)
}

#[test]
fn joined_backends_serve_traffic_and_survive_a_mid_traffic_kill() {
    // a router with NO backends: everything joins dynamically
    let router = Router::start(RouterConfig {
        replication: 2,
        health_interval_ms: 100,
        heartbeat_ms: 150,
        miss_threshold: 3,
        ..RouterConfig::default()
    })
    .expect("bind router");
    let mut client = Client::new(router.addr());

    // backend A joins exactly the way `antruss serve --join` does:
    // a standalone Server plus a HeartbeatClient advertising it
    let server_a = Server::start(backend_config()).expect("bind backend a");
    let hb_a =
        HeartbeatClient::start(router.addr(), server_a.addr(), None).expect("a joins the router");
    assert!(
        poll_until(Duration::from_secs(10), || ring_member_count(router.addr())
            == 1),
        "backend a never appeared in /ring"
    );

    // register a graph and cache an outcome on A
    let mut edges = String::new();
    for u in 0..5u32 {
        for v in (u + 1)..5 {
            edges.push_str(&format!("{u} {v}\n"));
        }
    }
    assert_eq!(
        client
            .post("/graphs?name=k5", "text/plain", edges.as_bytes())
            .unwrap()
            .status,
        201
    );
    let body = br#"{"graph":"k5","solver":"gas","b":1}"#;
    let first = client.post("/solve", "application/json", body).unwrap();
    assert_eq!(first.status, 200, "{}", first.body_string());
    let reference = first.body.clone();

    // backend B joins; the join warms it synchronously, so it holds
    // both the graph and A's cached outcome the moment /ring lists it
    let server_b = Server::start(backend_config()).expect("bind backend b");
    let hb_b =
        HeartbeatClient::start(router.addr(), server_b.addr(), None).expect("b joins the router");
    assert!(
        poll_until(Duration::from_secs(10), || ring_member_count(router.addr())
            == 2),
        "backend b never appeared in /ring"
    );
    let b_graphs = Client::new(server_b.addr())
        .get("/graphs")
        .unwrap()
        .body_string();
    assert!(
        b_graphs.contains("\"k5\""),
        "join did not warm b: {b_graphs}"
    );

    // traffic: 30 solves, killing A after the 10th — a process crash,
    // so the server dies AND its heartbeats stop, with no leave
    let mut server_a = Some(server_a);
    let mut hb_a = Some(hb_a);
    let mut failed = 0usize;
    for i in 0..30 {
        if i == 10 {
            // dropping the heartbeat client stops its thread WITHOUT a
            // leave — together with the server shutdown this is a crash
            drop(hb_a.take());
            server_a.take().unwrap().shutdown();
        }
        let resp = client.post("/solve", "application/json", body).unwrap();
        if resp.status != 200 {
            failed += 1;
            continue;
        }
        assert_eq!(
            resp.body, reference,
            "request {i} diverged from the cached outcome"
        );
    }
    assert_eq!(failed, 0, "zero failed requests through the kill");

    // the corpse is evicted within the miss threshold (450 ms deadline
    // + health cadence; generous CI budget)
    assert!(
        poll_until(Duration::from_secs(15), || ring_member_count(router.addr())
            == 1),
        "dead backend was never evicted"
    );
    assert_eq!(
        router
            .state()
            .evictions
            .load(std::sync::atomic::Ordering::Relaxed),
        1
    );

    // after eviction + re-placement the outcome is byte-identical and
    // served as a cache hit by the survivor
    let after = client.post("/solve", "application/json", body).unwrap();
    assert_eq!(after.status, 200, "{}", after.body_string());
    assert_eq!(
        after.body, reference,
        "post-eviction outcome must be byte-identical"
    );
    assert_eq!(after.header("x-antruss-cache"), Some("hit"));

    // B leaves gracefully; the ring empties and further solves are 503
    assert!(hb_b.leave(), "graceful leave must be acknowledged");
    assert!(
        poll_until(Duration::from_secs(5), || ring_member_count(router.addr())
            == 0),
        "graceful leave never emptied the ring"
    );
    let resp = client.post("/solve", "application/json", body).unwrap();
    assert_eq!(resp.status, 503, "{}", resp.body_string());

    router.shutdown();
    server_b.shutdown();
}

/// An evicted-but-alive backend (heartbeats paused, server fine) is
/// re-admitted automatically: its heartbeat client sees the 404 and
/// re-joins, and the router re-warms it on the way in.
#[test]
fn paused_heartbeats_cause_eviction_then_automatic_rejoin() {
    let router = Router::start(RouterConfig {
        replication: 2,
        health_interval_ms: 100,
        heartbeat_ms: 100,
        miss_threshold: 2,
        ..RouterConfig::default()
    })
    .expect("bind router");

    let server = Server::start(backend_config()).expect("bind backend");
    let hb = HeartbeatClient::start(router.addr(), server.addr(), None).expect("join");
    assert!(
        poll_until(Duration::from_secs(10), || ring_member_count(router.addr())
            == 1),
        "backend never appeared"
    );

    hb.pause(); // partition: the server is fine, the beats stop
    assert!(
        poll_until(Duration::from_secs(15), || ring_member_count(router.addr())
            == 0),
        "silent backend was never evicted"
    );

    hb.resume(); // the next beat 404s and the client re-joins by itself
    assert!(
        poll_until(Duration::from_secs(15), || {
            ring_member_count(router.addr()) == 1 && hb.rejoins() >= 1
        }),
        "paused backend never re-joined after resume"
    );

    router.shutdown();
    drop(hb);
    server.shutdown();
}
