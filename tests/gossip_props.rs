//! Gossip convergence properties: the member-op stream is a CRDT. Two
//! routers that see the **same set** of [`MemberOp`]s — in any
//! interleaving, with any duplication — must end with identical member
//! tables, and therefore identical [`HashRing`] placement for every
//! key. This is the invariant the whole replicated control plane rests
//! on: last-writer-wins application per address is commutative and
//! idempotent, so gossip order between routers can never matter.

use std::net::SocketAddr;
use std::sync::Arc;

use antruss::cluster::{
    HashRing, ManualClock, MemberOp, MemberOpKind, Membership, MembershipConfig,
};
use proptest::prelude::*;

fn table() -> Membership {
    Membership::new(
        MembershipConfig::default(),
        Arc::new(ManualClock::new(0)) as _,
    )
}

fn addr(idx: u8) -> SocketAddr {
    format!("10.7.0.{}:9000", idx + 1).parse().unwrap()
}

/// Maps one generated `(seq, kind, (addr, ring_id))` tuple to an op.
/// Conflicting ops (same seq, same address, different kinds or ring
/// ids) are *expected* — `supersedes` breaks every tie
/// deterministically.
fn op_of((seq, kind, (a, rid)): (u64, u8, (u8, u32))) -> MemberOp {
    MemberOp {
        seq,
        kind: match kind {
            0 => MemberOpKind::Join,
            1 => MemberOpKind::Leave,
            _ => MemberOpKind::Evict,
        },
        addr: addr(a),
        ring_id: 0x8000_0000 | rid,
    }
}

/// The observable outcome of one table: every member as
/// `(addr, ring_id)`, sorted — what placement is a pure function of.
fn snapshot(m: &Membership) -> Vec<(SocketAddr, u32)> {
    let mut s: Vec<(SocketAddr, u32)> = m.members().iter().map(|x| (x.addr, x.ring_id)).collect();
    s.sort();
    s
}

/// Placement of a handful of keys over a table's snapshot, via the same
/// `HashRing::with_ids` the router builds its view from.
fn placements(snap: &[(SocketAddr, u32)], r: usize) -> Vec<Vec<SocketAddr>> {
    let ids: Vec<u32> = snap.iter().map(|(_, id)| *id).collect();
    let ring = HashRing::with_ids(&ids, 32);
    (0..12)
        .map(|k| {
            ring.replicas(&format!("graph-{k}"), r)
                .into_iter()
                .map(|p| snap[p].0)
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Apply the same op set to two tables — one forward, one reversed,
    /// then with independent arbitrary re-deliveries: identical tables,
    /// identical placement.
    #[test]
    fn interleaved_duplicated_op_streams_converge(
        raw in prop::collection::vec((1u64..16, 0u8..3, (0u8..5, 0u32..6)), 1..30),
        order_a in prop::collection::vec(0usize..1024, 1..60),
        order_b in prop::collection::vec(0usize..1024, 1..60),
    ) {
        let ops: Vec<MemberOp> = raw.into_iter().map(op_of).collect();
        let (a, b) = (table(), table());
        // every op at least once, in opposite orders…
        for op in &ops {
            a.apply_op(*op);
        }
        for op in ops.iter().rev() {
            b.apply_op(*op);
        }
        // …then arbitrary re-delivery (gossip re-sends full tables, so
        // duplication is the common case, not the corner case)
        for i in &order_a {
            a.apply_op(ops[i % ops.len()]);
        }
        for i in &order_b {
            b.apply_op(ops[i % ops.len()]);
        }
        let (snap_a, snap_b) = (snapshot(&a), snapshot(&b));
        prop_assert_eq!(&snap_a, &snap_b, "member tables diverged");
        prop_assert_eq!(
            placements(&snap_a, 2),
            placements(&snap_b, 2),
            "identical tables must place identically"
        );
    }

    /// Re-applying a table's own full op stream to itself is a no-op
    /// (idempotence), and replaying it into a fresh table reproduces
    /// the exact member table (the restart-recovery property).
    #[test]
    fn op_streams_are_idempotent_and_replayable(
        raw in prop::collection::vec((1u64..16, 0u8..3, (0u8..5, 0u32..6)), 1..30),
    ) {
        let a = table();
        for op in raw.into_iter().map(op_of) {
            a.apply_op(op);
        }
        let before = snapshot(&a);
        for op in a.ops() {
            a.apply_op(op);
        }
        prop_assert_eq!(&snapshot(&a), &before, "self-replay must not move the table");

        let fresh = table();
        fresh.recover(&a.ops());
        prop_assert_eq!(&snapshot(&fresh), &before, "recovery from the op log diverged");
    }

    /// Wire round-trip: every op survives encode→decode and
    /// JSON-render→parse byte-for-byte, so what gossip and the member
    /// log carry is exactly what was minted.
    #[test]
    fn ops_round_trip_through_both_wire_formats(
        raw in (1u64..1_000_000, 0u8..3, (0u8..5, 0u32..64)),
    ) {
        let op = op_of(raw);
        prop_assert_eq!(MemberOp::decode(op.encode()), Some(op));
        let rendered = op.render_json(None);
        let parsed = antruss::atr::json::parse(&rendered).unwrap();
        prop_assert_eq!(MemberOp::parse_json(&parsed), Some((op, None)));
    }
}
