//! Property-based differential tests: the upward-route follower search
//! (Algorithm 3) must agree with the naive anchored re-decomposition on
//! arbitrary graphs, with and without pre-existing anchors.

use antruss::atr::followers::{naive_followers, FollowerSearch};
use antruss::atr::AtrState;
use antruss::graph::{CsrGraph, EdgeId, GraphBuilder};
use proptest::prelude::*;

/// Builds a graph from an arbitrary list of vertex pairs (duplicates and
/// self loops tolerated by the builder).
fn graph_from_pairs(pairs: &[(u8, u8)]) -> CsrGraph {
    let mut b = GraphBuilder::new();
    for &(u, v) in pairs {
        b.add_edge(u as u64, v as u64);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn followers_match_oracle(pairs in prop::collection::vec((0u8..24, 0u8..24), 1..140)) {
        let g = graph_from_pairs(&pairs);
        prop_assume!(g.num_edges() > 0);
        let st = AtrState::new(&g);
        let mut fs = FollowerSearch::new(g.num_edges());
        for x in g.edges() {
            let mut got = fs.followers(&st, x).followers;
            got.sort();
            let want = naive_followers(&st, x);
            prop_assert_eq!(got, want, "candidate {:?}", g.endpoints(x));
        }
    }

    #[test]
    fn followers_match_oracle_with_anchors(
        pairs in prop::collection::vec((0u8..20, 0u8..20), 10..120),
        a1 in 0usize..1000,
        a2 in 0usize..1000,
    ) {
        let g = graph_from_pairs(&pairs);
        prop_assume!(g.num_edges() >= 3);
        let m = g.num_edges();
        let mut st = AtrState::new(&g);
        let e1 = EdgeId((a1 % m) as u32);
        st.anchor_full_refresh(e1);
        let e2 = EdgeId((a2 % m) as u32);
        if e2 != e1 {
            st.anchor_full_refresh(e2);
        }
        let mut fs = FollowerSearch::new(m);
        for x in g.edges() {
            if st.is_anchor(x) {
                continue;
            }
            let mut got = fs.followers(&st, x).followers;
            got.sort();
            let want = naive_followers(&st, x);
            prop_assert_eq!(got, want, "candidate {:?}", g.endpoints(x));
        }
    }

    #[test]
    fn followers_never_include_anchor_or_lower_trussness(
        pairs in prop::collection::vec((0u8..22, 0u8..22), 1..120)
    ) {
        let g = graph_from_pairs(&pairs);
        prop_assume!(g.num_edges() > 0);
        let st = AtrState::new(&g);
        let mut fs = FollowerSearch::new(g.num_edges());
        for x in g.edges() {
            let out = fs.followers(&st, x);
            for &f in &out.followers {
                prop_assert_ne!(f, x, "an anchor cannot follow itself");
                // Lemma 2: followers satisfy t(f) > t(x), or same trussness
                // with a later (or equal, same-layer) deletion time.
                prop_assert!(
                    st.t(f) > st.t(x) || (st.t(f) == st.t(x) && st.l(f) > st.l(x)),
                    "follower {:?} precedes its anchor {:?}",
                    g.endpoints(f),
                    g.endpoints(x)
                );
            }
            // route examined at least as many candidates as it confirmed
            prop_assert!(out.route_size >= out.followers.len());
        }
    }
}
