//! Membership properties: any join/leave/evict sequence keeps every
//! graph placed on exactly `min(R, live)` distinct **live** members —
//! first as a socket-free property over the membership table + ring,
//! then as a deterministic end-to-end residency check through the
//! [`antruss::cluster::testkit`] harness (real backends, manual clock,
//! scripted faults).

use std::collections::HashSet;
use std::net::SocketAddr;
use std::sync::Arc;

use antruss::cluster::testkit::{TestCluster, TestClusterConfig};
use antruss::cluster::{Clock, ManualClock, MembershipEvent, RouterConfig, RouterState};
use antruss::service::Client;
use proptest::prelude::*;

const R: usize = 3;

fn state_on(clock: &Arc<ManualClock>) -> RouterState {
    RouterState::with_clock(
        RouterConfig {
            replication: R,
            heartbeat_ms: 100,
            miss_threshold: 3,
            health_interval_ms: 0,
            ..RouterConfig::default()
        },
        Arc::clone(clock) as Arc<dyn Clock>,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Drive the membership table through an arbitrary op sequence
    /// (join / graceful leave / heartbeat-starved eviction) and check
    /// after every step: every graph key is placed on exactly
    /// `min(R, live)` distinct positions, all of which map to live
    /// members.
    #[test]
    fn placement_always_lands_on_r_distinct_live_members(
        ops in prop::collection::vec(0u8..4, 1..40),
        salt in 0u64..u64::MAX,
    ) {
        let clock = Arc::new(ManualClock::new(0));
        let st = state_on(&clock);
        let mut next_port: u16 = 20_000;
        for (i, &op) in ops.iter().enumerate() {
            let members = st.membership.members();
            match op {
                // bias toward joining so the table actually grows
                0 | 1 => {
                    let addr: SocketAddr =
                        format!("10.9.0.1:{next_port}").parse().unwrap();
                    next_port += 1;
                    st.membership.join(addr);
                }
                2 if !members.is_empty() => {
                    let pick = members[(salt as usize + i) % members.len()].addr;
                    st.membership.leave(pick);
                }
                3 if !members.is_empty() => {
                    // starve one member: everyone else beats, time jumps
                    // past the 300 ms deadline, the tick evicts
                    let pick = members[(salt as usize + i) % members.len()].addr;
                    clock.advance(301);
                    for m in &members {
                        if m.addr != pick {
                            st.membership.heartbeat(m.addr);
                        }
                    }
                    st.membership.evict_overdue();
                }
                _ => continue,
            }
            st.rebuild_view();

            let live: Vec<SocketAddr> =
                st.membership.members().iter().map(|m| m.addr).collect();
            let view = st.view();
            prop_assert_eq!(view.backends.len(), live.len());
            for g in 0..24 {
                let graph = format!("graph-{salt:x}-{g}");
                let placed = view.placement(&graph, R);
                prop_assert_eq!(
                    placed.len(),
                    R.min(live.len()),
                    "graph {} placed on {:?} of {} live member(s)",
                    graph, &placed, live.len()
                );
                let distinct: HashSet<usize> = placed.iter().copied().collect();
                prop_assert_eq!(distinct.len(), placed.len(), "replicas must be distinct");
                for &p in &placed {
                    prop_assert!(p < live.len(), "placement points at a dead position");
                    prop_assert_eq!(view.backends[p].addr, live[p]);
                }
            }
        }
    }
}

/// The residency payloads the deterministic checks register.
fn k_clique_edges(k: u32) -> String {
    let mut edges = String::new();
    for u in 0..k {
        for v in (u + 1)..k {
            edges.push_str(&format!("{u} {v}\n"));
        }
    }
    edges
}

/// Which of the cluster's backends actually hold `graph` resident.
fn holders(tc: &TestCluster, backend_idxs: &[usize], graph: &str) -> Vec<usize> {
    backend_idxs
        .iter()
        .copied()
        .filter(|&i| {
            tc.backend_client(i)
                .get("/graphs")
                .is_ok_and(|r| r.body_string().contains(&format!("\"{graph}\"")))
        })
        .collect()
}

/// The backend addresses the router's ring places `graph` on.
fn placed_addrs(tc: &TestCluster, graph: &str) -> Vec<String> {
    let resp = Client::new(tc.router_addr())
        .get(&format!("/ring?graph={graph}"))
        .unwrap();
    assert_eq!(resp.status, 200);
    let body = resp.body_string();
    let parsed = antruss::atr::json::parse(&body).unwrap();
    parsed
        .get("replicas")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|r| r.get("addr").unwrap().as_str().unwrap().to_string())
        .collect()
}

/// Asserts the core invariant over real backends: every graph is
/// resident on every backend its placement names, and the placement
/// names exactly `min(R, live)` backends.
fn assert_residency(tc: &TestCluster, live_idxs: &[usize], graphs: &[&str], r: usize) {
    let live = tc.live_member_addrs().len();
    for graph in graphs {
        let placed = placed_addrs(tc, graph);
        assert_eq!(
            placed.len(),
            r.min(live),
            "{graph}: placed on {placed:?} with {live} live member(s)"
        );
        for addr in &placed {
            let idx = live_idxs
                .iter()
                .copied()
                .find(|&i| tc.backend_addr(i).to_string() == *addr)
                .unwrap_or_else(|| panic!("{graph} placed on non-live {addr}"));
            let holds = holders(tc, &[idx], graph);
            assert_eq!(
                holds,
                vec![idx],
                "{graph}: replica {addr} does not hold the graph"
            );
        }
    }
}

/// A scripted join → leave → evict → re-join sequence over real
/// backends, fully deterministic (manual clock, explicit ticks): after
/// every membership change each registered graph is resident on exactly
/// its `min(R, live)` placement replicas.
#[test]
fn scripted_churn_keeps_graphs_on_their_replicas() {
    let mut tc = TestCluster::start(TestClusterConfig {
        replication: 2,
        ..TestClusterConfig::default()
    })
    .expect("start harness");
    let graphs = ["alpha", "beta", "gamma", "delta"];

    // three members join; graphs registered through the router
    let a = tc.join().unwrap();
    let b = tc.join().unwrap();
    let c = tc.join().unwrap();
    let mut client = tc.client();
    for g in &graphs {
        let resp = client
            .post(
                &format!("/graphs?name={g}"),
                "text/plain",
                k_clique_edges(5).as_bytes(),
            )
            .unwrap();
        assert_eq!(resp.status, 201, "{}", resp.body_string());
    }
    assert_residency(&tc, &[a, b, c], &graphs, 2);

    // graceful leave of b: its graphs re-place onto the survivors
    // before the DELETE even returns
    assert_eq!(tc.leave(b).unwrap().status, 200);
    assert_residency(&tc, &[a, c], &graphs, 2);

    // a fourth member joins and is warmed with its share on arrival
    let d = tc.join().unwrap();
    assert_residency(&tc, &[a, c, d], &graphs, 2);

    // c crashes (dead socket, silent heartbeats): after the deadline
    // one tick evicts it and re-places its graphs
    tc.kill(c);
    for _ in 0..3 {
        tc.advance(100);
        tc.heartbeat(a);
        tc.heartbeat(d);
        tc.tick();
    }
    assert_eq!(
        tc.live_member_addrs().len(),
        3,
        "at the deadline c is still a member"
    );
    tc.advance(1);
    tc.heartbeat(a);
    tc.heartbeat(d);
    tc.tick();
    assert_eq!(tc.live_member_addrs().len(), 2, "past it, c is evicted");
    assert_residency(&tc, &[a, d], &graphs, 2);

    // the event log replays the whole story in order
    let events = tc.events();
    let kinds: Vec<&str> = events
        .iter()
        .map(|e| match e {
            MembershipEvent::Joined { .. } => "join",
            MembershipEvent::Left { .. } => "leave",
            MembershipEvent::Evicted { .. } => "evict",
        })
        .collect();
    assert_eq!(
        kinds,
        vec!["join", "join", "join", "leave", "join", "evict"],
        "{events:?}"
    );
    tc.shutdown();
}

/// Replica counts follow the live membership: with fewer members than
/// R every graph lands on all of them, and joins grow the replica sets
/// back without losing residency.
#[test]
fn replica_sets_track_membership_below_r() {
    let mut tc = TestCluster::start(TestClusterConfig {
        replication: 3,
        ..TestClusterConfig::default()
    })
    .expect("start harness");
    let a = tc.join().unwrap();
    let mut client = tc.client();
    let resp = client
        .post(
            "/graphs?name=solo",
            "text/plain",
            k_clique_edges(4).as_bytes(),
        )
        .unwrap();
    assert_eq!(resp.status, 201);
    assert_residency(&tc, &[a], &["solo"], 3); // min(3, 1) = 1 replica

    let b = tc.join().unwrap();
    assert_residency(&tc, &[a, b], &["solo"], 3); // 2 replicas

    let c = tc.join().unwrap();
    assert_residency(&tc, &[a, b, c], &["solo"], 3); // 3 replicas
    tc.shutdown();
}
