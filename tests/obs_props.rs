//! Property tests for the observability histograms: the invariants the
//! Prometheus renderer and the cross-thread phase attribution lean on.
//!
//! A log2 histogram trades resolution for a lock-free hot path, so the
//! one quantitative promise it makes — every quantile estimate is
//! within a factor of two of the exact order statistic — is pinned
//! here, along with bucket monotonicity (what `_bucket{le=...}` series
//! require) and merge-equals-concatenation (what per-thread histogram
//! folding requires).

use antruss::obs::hist::{bucket_lower, bucket_of, bucket_upper, BUCKETS};
use antruss::obs::Histogram;
use proptest::prelude::*;

/// Exact `q`-quantile of a sample by sorting, with the same
/// ceil-rank convention the histogram uses.
fn exact_quantile(values: &[u64], q: f64) -> u64 {
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every observation lands in the bucket whose `[lower, upper]`
    /// range contains it, and cumulative counts are monotone with the
    /// last one equal to the total — the exposition-format contract of
    /// the `_bucket{le=...}` series.
    #[test]
    fn buckets_contain_and_cumulate(values in prop::collection::vec(0u64..u64::MAX, 1..300)) {
        let h = Histogram::new();
        for &ns in &values {
            let b = bucket_of(ns);
            prop_assert!(b < BUCKETS);
            prop_assert!(bucket_lower(b) <= ns && ns <= bucket_upper(b),
                "ns {ns} outside bucket {b} [{}, {}]", bucket_lower(b), bucket_upper(b));
            h.observe_ns(ns);
        }
        let cum = h.snapshot().cumulative();
        prop_assert!(!cum.is_empty());
        for w in cum.windows(2) {
            prop_assert!(w[0].0 < w[1].0, "le bounds must increase");
            prop_assert!(w[0].1 <= w[1].1, "cumulative counts must be monotone");
        }
        prop_assert_eq!(cum.last().unwrap().1, values.len() as u64);
    }

    /// Merging histogram B into A is indistinguishable from one
    /// histogram that observed both streams — the property that lets
    /// per-thread histograms fold into one exported family.
    #[test]
    fn merge_equals_concatenated_observations(
        a_vals in prop::collection::vec(0u64..1_000_000_000u64, 0..200),
        b_vals in prop::collection::vec(0u64..1_000_000_000u64, 0..200),
    ) {
        let a = Histogram::new();
        let b = Histogram::new();
        let concat = Histogram::new();
        for &ns in &a_vals {
            a.observe_ns(ns);
            concat.observe_ns(ns);
        }
        for &ns in &b_vals {
            b.observe_ns(ns);
            concat.observe_ns(ns);
        }
        a.merge_from(&b);
        prop_assert_eq!(a.snapshot(), concat.snapshot());
    }

    /// Every reported quantile is within a factor of two of the exact
    /// order statistic (log2 buckets: the estimate lands in the same
    /// bucket as the true value).
    #[test]
    fn quantiles_within_factor_two(
        values in prop::collection::vec(1u64..100_000_000_000u64, 1..300),
    ) {
        let h = Histogram::new();
        for &ns in &values {
            h.observe_ns(ns);
        }
        let snap = h.snapshot();
        for q in [0.5, 0.95, 0.99, 0.999] {
            let est = snap.quantile_ns(q);
            let exact = exact_quantile(&values, q) as f64;
            prop_assert!(est <= 2.0 * exact && 2.0 * est >= exact,
                "q{q}: estimate {est} vs exact {exact} outside factor-2");
        }
    }
}

/// A snapshot's count is derived from the buckets, so it can never
/// disagree with them — even under concurrent recording.
#[test]
fn concurrent_observers_never_lose_counts() {
    use std::sync::Arc;
    let h = Arc::new(Histogram::new());
    let threads = 8;
    let per_thread = 5000u64;
    std::thread::scope(|scope| {
        for t in 0..threads {
            let h = Arc::clone(&h);
            scope.spawn(move || {
                for i in 0..per_thread {
                    h.observe_ns(t * 1_000_003 + i * 17);
                }
            });
        }
    });
    assert_eq!(h.snapshot().count(), threads * per_thread);
}
