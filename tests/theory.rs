//! Executable checks of the paper's formal statements (Section II-B):
//! Lemma 1 (gain of a single anchor is at most +1 per edge), Lemma 2
//! (followers satisfy the deletion-order condition), and Theorem 2
//! (the gain function is **not** submodular).

use antruss::atr::gain_of_anchor_set;
use antruss::graph::{EdgeId, EdgeSet, GraphBuilder};
use antruss::truss::{decompose, decompose_with, DecomposeOptions, ANCHOR_TRUSSNESS};

/// K4 core with a 3-hull ring around it — the Fig. 1(a)-style gadget where
/// single anchors are weak but pairs lift the whole ring.
fn gadget() -> antruss::graph::CsrGraph {
    let mut b = GraphBuilder::dense();
    for &(u, v) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
        b.add_edge(u, v);
    }
    b.add_edge(3, 4);
    b.add_edge(2, 4);
    b.add_edge(4, 5);
    b.add_edge(3, 5);
    b.build()
}

#[test]
fn lemma1_single_anchor_gain_at_most_one_per_edge() {
    let g = gadget();
    let base = decompose(&g);
    for x in g.edges() {
        let mut anchors = EdgeSet::new(g.num_edges());
        anchors.insert(x);
        let after = decompose_with(
            &g,
            DecomposeOptions {
                subset: None,
                anchors: Some(&anchors),
            },
        );
        for e in g.edges() {
            if e == x {
                continue;
            }
            assert!(
                after.t(e) <= base.t(e) + 1,
                "anchoring {x:?} raised {e:?} by more than 1"
            );
            assert!(after.t(e) >= base.t(e), "anchoring may never hurt");
        }
    }
}

/// The Fig. 1(a)-style witness of Theorem 2: a chain of five spokes
/// `(c, w_0) … (c, w_4)` (trussness 3) whose consecutive triangles are
/// closed by K4-reinforced rungs `(w_i, w_{i+1})` (trussness 4). Anchoring
/// either end spoke alone gains nothing; anchoring both lifts the three
/// interior spokes to trussness 4 — gain 3, exactly the paper's numbers.
fn chain_gadget() -> (antruss::graph::CsrGraph, EdgeId, EdgeId) {
    let mut b = GraphBuilder::dense();
    let center = 100u64;
    for i in 0..5u64 {
        b.add_edge(center, i); // spokes
    }
    for i in 0..4u64 {
        b.add_edge(i, i + 1); // rungs
                              // K4 reinforcement of each rung with two private vertices
        let (x, y) = (10 + 2 * i, 11 + 2 * i);
        b.add_edge(i, x);
        b.add_edge(i, y);
        b.add_edge(i + 1, x);
        b.add_edge(i + 1, y);
        b.add_edge(x, y);
    }
    let g = b.build();
    // the center is the unique degree-5 vertex adjacent to w_0..w_4
    let spoke = |w: u32| {
        let c = antruss::graph::VertexId(100);
        g.edge_between(c, antruss::graph::VertexId(w))
            .expect("spoke edge")
    };
    let e0 = spoke(0);
    let e4 = spoke(4);
    (g, e0, e4)
}

#[test]
fn theorem2_gain_is_not_submodular() {
    // Submodularity would force TG(A) + TG(B) ≥ TG(A∪B) + TG(A∩B).
    // The chain gadget gives TG({a1}) = TG({a2}) = 0 but TG({a1, a2}) = 3.
    let (g, a1, a2) = chain_gadget();
    let base = decompose(&g).trussness;
    let m = g.num_edges();
    let single = |x: EdgeId| gain_of_anchor_set(&g, &base, &EdgeSet::from_iter(m, [x]));
    assert_eq!(single(a1), 0, "end spoke alone gains nothing");
    assert_eq!(single(a2), 0, "end spoke alone gains nothing");
    let joint = gain_of_anchor_set(&g, &base, &EdgeSet::from_iter(m, [a1, a2]));
    assert_eq!(joint, 3, "the pair lifts the three interior spokes");
}

#[test]
fn chain_gadget_structure_is_as_designed() {
    let (g, a1, a2) = chain_gadget();
    let info = decompose(&g);
    assert_eq!(info.t(a1), 3);
    assert_eq!(info.t(a2), 3);
    // rungs and K4 edges at trussness 4
    let four_count = g.edges().filter(|&e| info.t(e) == 4).count();
    assert_eq!(
        four_count,
        4 * 6,
        "4 rungs x (rung + 4 side edges + private pair edge)"
    );
}

#[test]
fn anchored_edges_belong_to_every_truss() {
    // The computational abstraction of Section II: anchored edges have
    // infinite support, hence belong to T_k for every k.
    let g = gadget();
    let mut anchors = EdgeSet::new(g.num_edges());
    anchors.insert(EdgeId(0));
    let info = decompose_with(
        &g,
        DecomposeOptions {
            subset: None,
            anchors: Some(&anchors),
        },
    );
    assert_eq!(info.t(EdgeId(0)), ANCHOR_TRUSSNESS);
    for k in [2, 10, 1000] {
        let tk = antruss::truss::k_truss_edge_set(&info, k);
        assert!(tk.contains(EdgeId(0)), "anchor missing from T_{k}");
    }
}

#[test]
fn gain_definition_excludes_anchors_themselves() {
    // Definition 4 sums over E \ A only.
    let g = gadget();
    let base = decompose(&g).trussness;
    // Anchor every edge: no edge remains to gain anything.
    let all = EdgeSet::full(g.num_edges());
    assert_eq!(gain_of_anchor_set(&g, &base, &all), 0);
}

#[test]
fn example1_vertex_anchor_equals_edge_anchors() {
    // Example 1: anchoring vertex v8 (here: the fringe vertex 4) "has the
    // same effect as directly anchoring" its two incident fringe edges —
    // the anchored 4-truss of the vertex model equals T_4 under the edge
    // model with both fringe edges anchored.
    use antruss::atr::baselines::akt::anchored_k_truss;
    let mut b = GraphBuilder::dense();
    for &(u, v) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
        b.add_edge(u, v); // K4 core
    }
    b.add_edge(2, 4);
    b.add_edge(3, 4); // fringe triangle via core edge (2,3)
    let g = b.build();
    let info = decompose(&g);

    // vertex anchoring (AKT semantics)
    let mut anchored_v = vec![false; g.num_vertices()];
    anchored_v[4] = true;
    let vertex_truss = anchored_k_truss(&g, &info.trussness, 4, &anchored_v);

    // edge anchoring (ATR semantics) of both fringe edges
    let e24 = g
        .edge_between(antruss::graph::VertexId(2), antruss::graph::VertexId(4))
        .unwrap();
    let e34 = g
        .edge_between(antruss::graph::VertexId(3), antruss::graph::VertexId(4))
        .unwrap();
    let anchors = EdgeSet::from_iter(g.num_edges(), [e24, e34]);
    let edge_info = decompose_with(
        &g,
        DecomposeOptions {
            subset: None,
            anchors: Some(&anchors),
        },
    );
    let edge_truss = antruss::truss::k_truss_edge_set(&edge_info, 4);

    assert_eq!(vertex_truss.len(), edge_truss.len());
    for e in vertex_truss.iter() {
        assert!(edge_truss.contains(e), "{e:?} in vertex truss only");
    }
}

#[test]
fn np_hardness_reduction_building_block() {
    // The NP-hardness proof builds (t+3)-cliques whose edges have
    // trussness exactly t+3, then attaches low-trussness edges to them.
    // Verify the building block's key property: attaching a triangle to a
    // clique edge leaves the clique's trussness unchanged while the
    // attached edges get trussness 3.
    let mut b = GraphBuilder::dense();
    for u in 0..6u64 {
        for v in (u + 1)..6 {
            b.add_edge(u, v); // 6-clique: trussness 6
        }
    }
    b.add_edge(0, 6);
    b.add_edge(1, 6); // triangle with clique edge (0, 1)
    let g = b.build();
    let info = decompose(&g);
    let clique_edge = g
        .edge_between(antruss::graph::VertexId(0), antruss::graph::VertexId(1))
        .unwrap();
    assert_eq!(info.t(clique_edge), 6);
    let attached = g
        .edge_between(antruss::graph::VertexId(0), antruss::graph::VertexId(6))
        .unwrap();
    assert_eq!(info.t(attached), 3);
}
