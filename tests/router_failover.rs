//! Chaos tests for the replicated control plane: two routers gossiping
//! one member table, driven deterministically off the testkit's manual
//! clock. The headline scenario kills the primary router mid-churn and
//! proves the survivor loses **zero requests** and serves
//! **byte-identical placement**; the regression pins the
//! eviction-vs-heartbeat gossip race (a member evicted by a partitioned
//! router while it kept heartbeating the other must not flap), and the
//! durable variant restarts a router and recovers its member table from
//! the member-op log instead of waiting out re-joins.

use antruss::cluster::testkit::{TestCluster, TestClusterConfig};
use antruss::service::Client;
use std::sync::atomic::Ordering;

/// A small dense edge list every test graph can share.
fn edges() -> Vec<u8> {
    let mut out = String::new();
    for u in 0..6u32 {
        for v in (u + 1)..6 {
            out.push_str(&format!("{u} {v}\n"));
        }
    }
    out.into_bytes()
}

fn solve_body(graph: &str) -> Vec<u8> {
    format!("{{\"graph\":\"{graph}\",\"solver\":\"gas\",\"b\":1}}").into_bytes()
}

/// `GET /ring?graph=` from one router — the placement, as bytes, so
/// "identical placement" is a literal byte comparison.
fn ring_of(client: &mut Client, graph: &str) -> Vec<u8> {
    let resp = client.get(&format!("/ring?graph={graph}")).unwrap();
    assert_eq!(resp.status, 200);
    resp.body
}

#[test]
fn killing_the_primary_router_mid_churn_loses_no_requests_or_placement() {
    let mut tc = TestCluster::start(TestClusterConfig {
        routers: 2,
        replication: 2,
        ..TestClusterConfig::default()
    })
    .unwrap();

    // churn on both doors: one backend joins via each router, then one
    // gossip sweep converges the tables
    let a = tc.join_via(0).unwrap();
    let b = tc.join_via(1).unwrap();
    tc.tick_all();
    // each router admitted one member locally and absorbed the other, so
    // insertion order differs — the *set* (and the placement below) is
    // what must agree
    let mut on0 = tc.live_member_addrs_at(0);
    let mut on1 = tc.live_member_addrs_at(1);
    on0.sort();
    on1.sort();
    assert_eq!(on0, on1);
    assert_eq!(on0.len(), 2);

    // four graphs registered through the primary, with reference
    // outcomes and the primary's placement captured per graph
    let graphs = ["g0", "g1", "g2", "g3"];
    let mut primary = tc.client_at(0);
    let mut references = Vec::new();
    let mut primary_rings = Vec::new();
    for g in &graphs {
        let resp = primary
            .post(&format!("/graphs?name={g}"), "text/plain", &edges())
            .unwrap();
        assert_eq!(resp.status, 201, "{}", resp.body_string());
        let solved = primary
            .post("/solve", "application/json", &solve_body(g))
            .unwrap();
        assert_eq!(solved.status, 200, "{}", solved.body_string());
        references.push(solved.body);
        primary_rings.push(ring_of(&mut primary, g));
    }

    // 30 requests against the survivor, killing the primary after the
    // 10th — every request must succeed, byte-identical to the
    // reference the primary served
    let mut survivor = tc.client_at(1);
    let mut failed = 0usize;
    for i in 0..30 {
        if i == 10 {
            tc.kill_router(0);
        }
        // heartbeats fail over to the surviving door too
        tc.heartbeat_via(1, a);
        tc.heartbeat_via(1, b);
        let g = i % graphs.len();
        let resp = survivor
            .post("/solve", "application/json", &solve_body(graphs[g]))
            .unwrap();
        if resp.status != 200 {
            failed += 1;
            continue;
        }
        assert_eq!(
            resp.body, references[g],
            "request {i} diverged from the primary's outcome"
        );
    }
    assert_eq!(failed, 0, "zero failed requests through the router kill");

    // the survivor's placement is byte-identical to what the dead
    // primary served for every graph
    for (g, expected) in graphs.iter().zip(&primary_rings) {
        assert_eq!(
            &ring_of(&mut survivor, g),
            expected,
            "placement for {g} diverged on the survivor"
        );
    }

    // the survivor keeps trying the dead peer (and counts the failures)
    // rather than silently forgetting it
    tc.tick_router(1);
    assert!(
        tc.router_at(1)
            .state()
            .gossip_failures
            .load(Ordering::Relaxed)
            >= 1,
        "gossip to the dead primary must be counted as failures"
    );

    // churn keeps working through the survivor alone
    let c = tc.join_via(1).unwrap();
    tc.tick_router(1);
    assert_eq!(tc.live_member_addrs_at(1).len(), 3);
    assert!(tc.live_member_addrs_at(1).contains(&tc.backend_addr(c)));
    tc.shutdown();
}

/// The eviction/gossip race: router 0, partitioned away from the
/// heartbeats, evicts a member that kept beating router 1. When the
/// partition heals, router 1 **vetoes** the eviction (the member is
/// fresh there) and re-asserts it with a higher-sequence refresh op —
/// so the member comes back on router 0 with the *same ring id* (no
/// placement flap), and the eviction never applies on router 1 at all.
#[test]
fn fresh_member_vetoes_a_stale_eviction_without_flapping() {
    let mut tc = TestCluster::start(TestClusterConfig {
        routers: 2,
        replication: 2,
        heartbeat_ms: 100,
        miss_threshold: 3,
        ..TestClusterConfig::default()
    })
    .unwrap();
    let a = tc.join_via(0).unwrap();
    tc.tick_all();
    fn ring_ids(tc: &TestCluster, idx: usize) -> Vec<u32> {
        tc.router_at(idx)
            .state()
            .membership
            .members()
            .iter()
            .map(|m| m.ring_id)
            .collect()
    }
    let original_ids = ring_ids(&tc, 0);
    assert_eq!(original_ids, ring_ids(&tc, 1));

    // partition the control plane; the member's heartbeats land on
    // router 1 only, so past the 300 ms deadline router 0 evicts it
    tc.partition_router(1);
    tc.advance(301);
    tc.heartbeat_via(1, a);
    tc.tick_router(0);
    assert_eq!(tc.live_member_addrs_at(0), vec![], "router 0 evicted");
    assert_eq!(
        tc.live_member_addrs_at(1),
        vec![tc.backend_addr(a)],
        "router 1 still holds the beating member"
    );

    // heal: router 0 gossips its eviction; router 1 refuses to apply it
    // (the member is fresh there) and answers with a refresh op that
    // re-admits the member on router 0 under its original ring id
    tc.heal_router(1);
    tc.tick_router(0);
    assert_eq!(tc.live_member_addrs_at(0), vec![tc.backend_addr(a)]);
    assert_eq!(tc.live_member_addrs_at(1), vec![tc.backend_addr(a)]);
    assert_eq!(
        ring_ids(&tc, 0),
        original_ids,
        "no placement flap on router 0"
    );
    assert_eq!(
        ring_ids(&tc, 1),
        original_ids,
        "no placement flap on router 1"
    );
    assert!(
        tc.router_at(1)
            .state()
            .gossip_vetoes
            .load(Ordering::Relaxed)
            >= 1,
        "the eviction must be vetoed, not applied-then-undone"
    );
    // the eviction never touched router 1's transition log
    assert!(
        !tc.events_at(1)
            .iter()
            .any(|e| matches!(e, antruss::cluster::MembershipEvent::Evicted { .. })),
        "router 1 must never apply the stale eviction: {:?}",
        tc.events_at(1)
    );

    // the table is stable from here: further sweeps change nothing
    tc.heartbeat_via(0, a);
    tc.tick_all();
    tc.tick_all();
    assert_eq!(ring_ids(&tc, 0), original_ids);
    assert_eq!(ring_ids(&tc, 1), original_ids);
    assert_eq!(
        tc.router_at(0).state().evictions.load(Ordering::Relaxed),
        1,
        "exactly the one partition-era eviction"
    );
    tc.shutdown();
}

/// A restarted durable router recovers its dynamic members from the
/// member-op log — full member table, same ring ids, zero re-joins.
#[test]
fn restarted_durable_router_recovers_members_from_its_op_log() {
    let base = std::env::temp_dir().join(format!(
        "antruss-router-failover-durable-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&base);
    let mut tc = TestCluster::start(TestClusterConfig {
        routers: 1,
        router_data_dir: Some(base.display().to_string()),
        ..TestClusterConfig::default()
    })
    .unwrap();
    let a = tc.join().unwrap();
    let b = tc.join().unwrap();
    let before: Vec<_> = tc
        .router_at(0)
        .state()
        .membership
        .members()
        .iter()
        .map(|m| (m.addr, m.ring_id))
        .collect();
    let epoch_before = tc.router_at(0).state().events.epoch();
    assert_eq!(before.len(), 2);

    tc.kill_router(0);
    tc.restart_router(0).unwrap();

    let state = tc.router_at(0).state();
    let after: Vec<_> = state
        .membership
        .members()
        .iter()
        .map(|m| (m.addr, m.ring_id))
        .collect();
    assert_eq!(after, before, "members and ring ids recovered from disk");
    assert!(
        state.members_recovered.load(Ordering::Relaxed) >= 2,
        "recovery must be counted"
    );
    assert_eq!(
        state.joins.load(Ordering::Relaxed),
        0,
        "recovery takes zero re-join round-trips"
    );
    assert_eq!(
        state.events.epoch(),
        epoch_before,
        "the event epoch survives the restart, so member cursors stay valid"
    );

    // recovered members are first-class: they heartbeat without
    // re-joining, and a graceful leave still works
    tc.heartbeat(a);
    tc.heartbeat(b);
    tc.tick();
    assert_eq!(tc.live_member_addrs().len(), 2);
    assert_eq!(state.joins.load(Ordering::Relaxed), 0);
    tc.shutdown();
    std::fs::remove_dir_all(&base).unwrap();
}
