//! End-to-end tests of the sharded serving tier: 3 backends behind the
//! consistent-hash router, over real sockets.
//!
//! Covers the acceptance criteria: response parity with a single-process
//! `serve`, failover that loses no registered graph, mutation batches
//! that purge cached outcomes on every replica (observed via `/metrics`)
//! with post-mutation solves matching a fresh solver run on the mutated
//! graph, and warm-up of a backend that re-joins after dying.

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

use antruss::atr::engine::{registry, RunConfig};
use antruss::atr::json::{self, Value};
use antruss::cluster::{Cluster, ClusterConfig, Router, RouterConfig};
use antruss::graph::GraphBuilder;
use antruss::service::{Client, Server, ServerConfig};

fn backend_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        cache_capacity: 64,
        max_body_bytes: 1024 * 1024,
        ..ServerConfig::default()
    }
}

fn start_backends(n: usize) -> Vec<Server> {
    (0..n)
        .map(|i| {
            Server::start(ServerConfig {
                shard: Some(i as u32),
                ..backend_config()
            })
            .expect("bind backend")
        })
        .collect()
}

fn start_router(backends: &[SocketAddr], replication: usize, health_ms: u64) -> Router {
    Router::start(RouterConfig {
        backends: backends.to_vec(),
        replication,
        health_interval_ms: health_ms,
        ..RouterConfig::default()
    })
    .expect("bind router")
}

/// Strips every `elapsed_secs` member (the only wall-clock-dependent
/// field) so outcomes from different processes compare equal.
fn strip_elapsed(v: &Value) -> Value {
    match v {
        Value::Arr(items) => Value::Arr(items.iter().map(strip_elapsed).collect()),
        Value::Obj(members) => Value::Obj(
            members
                .iter()
                .filter(|(k, _)| k.as_str() != "elapsed_secs")
                .map(|(k, v)| (k.clone(), strip_elapsed(v)))
                .collect::<BTreeMap<_, _>>(),
        ),
        other => other.clone(),
    }
}

fn outcomes_equal(a: &str, b: &str) -> bool {
    strip_elapsed(&json::parse(a).unwrap()) == strip_elapsed(&json::parse(b).unwrap())
}

fn metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("{name} missing in:\n{text}"))
        .parse()
        .unwrap()
}

/// The replica shard ids the router placed `graph` on.
fn placement(router_addr: SocketAddr, graph: &str) -> Vec<usize> {
    let resp = Client::new(router_addr)
        .get(&format!("/ring?graph={graph}"))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_string());
    json::parse(&resp.body_string())
        .unwrap()
        .get("replicas")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|r| r.get("shard").unwrap().as_u64().unwrap() as usize)
        .collect()
}

fn poll_until(deadline: Duration, mut check: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if check() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

/// A 3-backend R=2 cluster (via the supervisor) answers `/solve`
/// byte-equivalently to a single-process `serve` — identical outcomes
/// modulo wall-clock, and byte-identical replays on cache hits.
#[test]
fn cluster_answers_match_single_process_serve() {
    let single = Server::start(backend_config()).expect("bind single serve");
    let cluster = Cluster::start(ClusterConfig {
        backends: 3,
        replication: 2,
        health_interval_ms: 0,
        backend: backend_config(),
        ..ClusterConfig::default()
    })
    .expect("start cluster");

    let mut via_single = Client::new(single.addr());
    let mut via_cluster = Client::new(cluster.router_addr());
    for body in [
        r#"{"graph":"college:0.05","solver":"gas","b":2}"#,
        r#"{"graph":"college:0.05","solver":"lazy","b":2}"#,
        r#"{"graph":"facebook:0.02","solver":"rand:sup","b":2,"seed":7,"trials":5}"#,
    ] {
        let a = via_single
            .post("/solve", "application/json", body.as_bytes())
            .unwrap();
        let b = via_cluster
            .post("/solve", "application/json", body.as_bytes())
            .unwrap();
        assert_eq!(a.status, 200, "{}", a.body_string());
        assert_eq!(b.status, 200, "{}", b.body_string());
        assert!(
            b.header("x-antruss-shard").is_some(),
            "router must attribute the answering shard"
        );
        assert!(
            outcomes_equal(&a.body_string(), &b.body_string()),
            "cluster diverges from single serve on {body}:\n{}\nvs\n{}",
            a.body_string(),
            b.body_string()
        );
        // a repeat through the router is a byte-identical cache hit
        let b2 = via_cluster
            .post("/solve", "application/json", body.as_bytes())
            .unwrap();
        assert_eq!(b2.header("x-antruss-cache"), Some("hit"));
        assert_eq!(b.body, b2.body, "hit must replay the exact bytes");
    }
    single.shutdown();
    cluster.shutdown();
}

/// With R=2, killing one backend loses no registered graph: the router
/// fails over to the surviving replica and answers identically.
#[test]
fn killing_one_backend_loses_no_registered_graph() {
    let mut backends: Vec<Option<Server>> = start_backends(3).into_iter().map(Some).collect();
    let addrs: Vec<SocketAddr> = backends
        .iter()
        .map(|b| b.as_ref().unwrap().addr())
        .collect();
    let router = start_router(&addrs, 2, 0);
    let mut client = Client::new(router.addr());

    // a 5-clique registered through the router lands on both replicas
    let mut edges = String::new();
    for u in 0..5u32 {
        for v in (u + 1)..5 {
            edges.push_str(&format!("{u} {v}\n"));
        }
    }
    let resp = client
        .post("/graphs?name=k5", "text/plain", edges.as_bytes())
        .unwrap();
    assert_eq!(resp.status, 201, "{}", resp.body_string());
    let replicas = placement(router.addr(), "k5");
    assert_eq!(replicas.len(), 2);
    for &shard in &replicas {
        let listing = Client::new(addrs[shard]).get("/graphs").unwrap();
        assert!(
            listing.body_string().contains("\"k5\""),
            "replica {shard} must hold k5: {}",
            listing.body_string()
        );
    }

    let body = br#"{"graph":"k5","solver":"gas","b":1}"#;
    let before = client.post("/solve", "application/json", body).unwrap();
    assert_eq!(before.status, 200, "{}", before.body_string());
    let answered_by: usize = before.header("x-antruss-shard").unwrap().parse().unwrap();
    assert_eq!(answered_by, replicas[0], "primary answers first");

    // kill the primary; the router must fail over to the other replica
    backends[replicas[0]].take().unwrap().shutdown();
    let after = client.post("/solve", "application/json", body).unwrap();
    assert_eq!(after.status, 200, "{}", after.body_string());
    let failover_shard: usize = after.header("x-antruss-shard").unwrap().parse().unwrap();
    assert_eq!(failover_shard, replicas[1], "the surviving replica answers");
    assert!(
        outcomes_equal(&before.body_string(), &after.body_string()),
        "failover answer diverges"
    );
    // and the graph is still listed cluster-wide
    let listing = client.get("/graphs").unwrap();
    assert!(listing.body_string().contains("\"k5\""));

    let report = router.shutdown();
    assert!(report.contains("failover"), "{report}");
    for b in backends.into_iter().flatten() {
        b.shutdown();
    }
}

/// A mutation batch through the router purges the graph's cached
/// outcomes on *every* replica (observed via each backend's `/metrics`)
/// and subsequent solves match a fresh solver run on the mutated graph.
#[test]
fn mutation_purges_every_replica_and_matches_fresh_solver_run() {
    let backends = start_backends(3);
    let addrs: Vec<SocketAddr> = backends.iter().map(Server::addr).collect();
    let router = start_router(&addrs, 2, 0);
    let mut client = Client::new(router.addr());

    // two 4-cliques, vertices 0-3 and 4-7
    let mut edges = String::new();
    for base in [0u32, 4] {
        for u in base..base + 4 {
            for v in (u + 1)..base + 4 {
                edges.push_str(&format!("{u} {v}\n"));
            }
        }
    }
    assert_eq!(
        client
            .post("/graphs?name=twin", "text/plain", edges.as_bytes())
            .unwrap()
            .status,
        201
    );
    let replicas = placement(router.addr(), "twin");

    // cache an outcome on the primary
    let body = br#"{"graph":"twin","solver":"gas","b":1}"#;
    assert_eq!(
        client
            .post("/solve", "application/json", body)
            .unwrap()
            .status,
        200
    );

    // mutate through the router: bridge the cliques, drop one edge
    let batch = br#"{"insert":[[0,4],[0,5],[1,4],[1,5],[2,4]],"delete":[[2,3]]}"#;
    let resp = client
        .post("/graphs/twin/mutate", "application/json", batch)
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_string());
    let replica_detail = resp.header("x-antruss-replicas").unwrap().to_string();

    // every replica applied the mutation and purged its cache entries
    for &shard in &replicas {
        let metrics = Client::new(addrs[shard])
            .get("/metrics")
            .unwrap()
            .body_string();
        assert_eq!(
            metric(&metrics, "antruss_mutations_total"),
            1,
            "replica {shard} must have applied the batch ({replica_detail}): {metrics}"
        );
        let graphs = Client::new(addrs[shard])
            .get("/graphs")
            .unwrap()
            .body_string();
        assert!(graphs.contains("\"mutated\""), "replica {shard}: {graphs}");
    }
    let primary_metrics = Client::new(addrs[replicas[0]])
        .get("/metrics")
        .unwrap()
        .body_string();
    assert!(
        metric(&primary_metrics, "antruss_cache_purged_entries_total") >= 1,
        "the cached outcome on the primary must be purged: {primary_metrics}"
    );

    // a fresh solve now reflects the mutated graph: compare against a
    // direct engine run on an independently-built copy of it
    let after = client.post("/solve", "application/json", body).unwrap();
    assert_eq!(after.status, 200, "{}", after.body_string());
    assert_eq!(
        after.header("x-antruss-cache"),
        Some("miss"),
        "post-mutation solve must not replay a stale outcome"
    );

    let mut b = GraphBuilder::dense();
    for v in 0..8u64 {
        b.ensure_vertex(v);
    }
    for base in [0u64, 4] {
        for u in base..base + 4 {
            for v in (u + 1)..base + 4 {
                if (u, v) != (2, 3) {
                    b.add_edge(u, v);
                }
            }
        }
    }
    for (u, v) in [(0u64, 4u64), (0, 5), (1, 4), (1, 5), (2, 4)] {
        b.add_edge(u, v);
    }
    let expected_graph = b.build();
    let cfg = RunConfig::new(1)
        .trials(20)
        .seed(1)
        .exact_cap(100_000)
        .time_budget(Duration::from_secs(60));
    let direct = registry()
        .get("gas")
        .unwrap()
        .run(&expected_graph, &cfg)
        .unwrap();
    assert!(
        outcomes_equal(&after.body_string(), &direct.to_json()),
        "post-mutation solve diverges from a fresh run on the mutated graph:\n{}\nvs\n{}",
        after.body_string(),
        direct.to_json()
    );

    router.shutdown();
    for b in backends {
        b.shutdown();
    }
}

/// A backend that dies and re-joins on the same address is warmed by the
/// health thread: stale cache purged, registered graphs re-registered
/// from a peer, and the peer's cache entries replayed — so a subsequent
/// failover serves the warmed bytes as a cache *hit*.
#[test]
fn rejoining_backend_is_warmed_from_a_peer() {
    let mut backends: Vec<Option<Server>> = start_backends(2).into_iter().map(Some).collect();
    let addrs: Vec<SocketAddr> = backends
        .iter()
        .map(|b| b.as_ref().unwrap().addr())
        .collect();
    // R=2 over 2 backends: every graph lives on both
    let router = start_router(&addrs, 2, 100);
    let mut client = Client::new(router.addr());

    let mut edges = String::new();
    for u in 0..5u32 {
        for v in (u + 1)..5 {
            edges.push_str(&format!("{u} {v}\n"));
        }
    }
    assert_eq!(
        client
            .post("/graphs?name=k5", "text/plain", edges.as_bytes())
            .unwrap()
            .status,
        201
    );
    let body = br#"{"graph":"k5","solver":"gas","b":1}"#;
    let first = client.post("/solve", "application/json", body).unwrap();
    assert_eq!(first.status, 200, "{}", first.body_string());
    let replicas = placement(router.addr(), "k5");
    let (primary, secondary) = (replicas[0], replicas[1]);

    // kill the secondary and wait for the health thread to notice
    backends[secondary].take().unwrap().shutdown();
    assert!(
        poll_until(Duration::from_secs(15), || {
            let h = Client::new(router.addr()).get("/healthz").unwrap();
            h.body_string().contains("\"healthy\":false")
        }),
        "router never noticed the dead backend"
    );

    // resurrect it on the same address; the health thread must warm it
    backends[secondary] = Some(
        Server::start(ServerConfig {
            addr: addrs[secondary].to_string(),
            shard: Some(secondary as u32),
            ..backend_config()
        })
        .expect("rebind the dead backend's address"),
    );
    assert!(
        poll_until(Duration::from_secs(15), || {
            let h = Client::new(router.addr()).get("/healthz").unwrap();
            !h.body_string().contains("\"healthy\":false")
        }),
        "router never re-admitted the recovered backend"
    );

    // the recovered backend holds the graph again and the warmed entry
    let graphs = Client::new(addrs[secondary])
        .get("/graphs")
        .unwrap()
        .body_string();
    assert!(graphs.contains("\"k5\""), "graph not restored: {graphs}");
    let metrics = Client::new(addrs[secondary])
        .get("/metrics")
        .unwrap()
        .body_string();
    assert!(
        metric(&metrics, "antruss_cache_warmed_entries_total") >= 1,
        "cache not warmed: {metrics}"
    );

    // kill the primary: the warmed replica answers from cache with the
    // primary's exact bytes
    backends[primary].take().unwrap().shutdown();
    let served = client.post("/solve", "application/json", body).unwrap();
    assert_eq!(served.status, 200, "{}", served.body_string());
    assert_eq!(
        served.header("x-antruss-shard").unwrap(),
        secondary.to_string(),
        "the recovered replica must answer"
    );
    assert_eq!(served.header("x-antruss-cache"), Some("hit"));
    assert_eq!(served.body, first.body, "warmed hit must replay the bytes");

    router.shutdown();
    for b in backends.into_iter().flatten() {
        b.shutdown();
    }
}
