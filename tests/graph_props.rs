//! Property-based invariants of the graph substrate: builder canonical-
//! ization, CSR adjacency structure, text and binary I/O round trips.

use antruss::graph::{io, io_binary, CsrGraph, GraphBuilder};
use proptest::prelude::*;

fn graph_from_pairs(pairs: &[(u8, u8)]) -> CsrGraph {
    let mut b = GraphBuilder::new();
    for &(u, v) in pairs {
        b.add_edge(u as u64, v as u64);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn builder_canonicalizes(pairs in prop::collection::vec((0u8..40, 0u8..40), 0..200)) {
        let g = graph_from_pairs(&pairs);
        // no self loops, endpoints ordered, edges unique
        let mut seen = std::collections::HashSet::new();
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            prop_assert!(u < v, "canonical order violated");
            prop_assert!(seen.insert((u, v)), "duplicate edge {u:?}-{v:?}");
        }
        // adjacency is symmetric and sorted
        for v in g.vertices() {
            let nbrs = g.neighbors(v);
            for w in nbrs.windows(2) {
                prop_assert!(w[0] < w[1], "unsorted adjacency");
            }
            for &w in nbrs {
                prop_assert!(g.neighbors(w).contains(&v), "asymmetric adjacency");
            }
        }
    }

    #[test]
    fn degree_sum_is_twice_edges(pairs in prop::collection::vec((0u8..30, 0u8..30), 0..150)) {
        let g = graph_from_pairs(&pairs);
        let deg_sum: usize = g.vertices().map(|v| g.degree(v)).sum();
        prop_assert_eq!(deg_sum, 2 * g.num_edges());
    }

    #[test]
    fn edge_lookup_agrees_with_endpoints(pairs in prop::collection::vec((0u8..25, 0u8..25), 1..120)) {
        let g = graph_from_pairs(&pairs);
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            prop_assert_eq!(g.edge_between(u, v), Some(e));
            prop_assert_eq!(g.edge_between(v, u), Some(e));
        }
    }

    #[test]
    fn text_io_roundtrip(pairs in prop::collection::vec((0u8..30, 0u8..30), 0..150)) {
        let g = graph_from_pairs(&pairs);
        let mut buf = Vec::new();
        io::write_edge_list(&g, &mut buf).unwrap();
        let h = io::read_edge_list(&buf[..]).unwrap();
        prop_assert_eq!(h.num_edges(), g.num_edges());
        // text round trip may relabel; compare degree multisets
        let mut dg: Vec<usize> = g.vertices().map(|v| g.degree(v)).filter(|&d| d > 0).collect();
        let mut dh: Vec<usize> = h.vertices().map(|v| h.degree(v)).filter(|&d| d > 0).collect();
        dg.sort_unstable();
        dh.sort_unstable();
        prop_assert_eq!(dg, dh);
    }

    #[test]
    fn binary_io_roundtrip_is_exact(pairs in prop::collection::vec((0u8..30, 0u8..30), 0..150)) {
        let g = graph_from_pairs(&pairs);
        let h = io_binary::from_bytes(io_binary::to_bytes(&g)).unwrap();
        prop_assert_eq!(h.num_vertices(), g.num_vertices());
        prop_assert_eq!(h.num_edges(), g.num_edges());
        for e in g.edges() {
            prop_assert_eq!(g.endpoints(e), h.endpoints(e));
        }
    }

    #[test]
    fn triangle_support_is_symmetric_count(pairs in prop::collection::vec((0u8..20, 0u8..20), 1..100)) {
        use antruss::graph::triangles;
        let g = graph_from_pairs(&pairs);
        // 3 * (#triangles) == sum of supports
        let sup = triangles::support(&g, None);
        let total: u64 = sup.iter().map(|&s| s as u64).sum();
        prop_assert_eq!(total % 3, 0, "support sum must be divisible by 3");
        prop_assert_eq!(total / 3, triangles::triangle_count(&g));
    }
}
