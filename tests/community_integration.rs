//! Integration of the ATR machinery with the community-search and
//! maintenance substrates: the "applications" story of the paper's intro,
//! executable.

use antruss::atr::{Gas, GasConfig};
use antruss::graph::gen::{social_network, SocialParams};
use antruss::graph::EdgeSet;
use antruss::truss::{
    decompose, decompose_with, k_truss_communities, DecomposeOptions, DynamicTruss,
};

fn demo_graph(seed: u64) -> antruss::graph::CsrGraph {
    social_network(&SocialParams {
        n: 400,
        target_edges: 1_800,
        attach: 4,
        closure: 0.55,
        planted: vec![8],
        onions: vec![antruss::graph::gen::OnionSpec {
            core: 7,
            shells: 2,
            shell_size: 20,
        }],
        seed,
    })
}

#[test]
fn anchoring_never_shrinks_community_mass() {
    let g = demo_graph(3);
    let before = decompose(&g);
    let out = Gas::new(&g, GasConfig::default()).run(5);
    let anchors = EdgeSet::from_iter(g.num_edges(), out.anchors.iter().copied());
    let after = decompose_with(
        &g,
        DecomposeOptions {
            subset: None,
            anchors: Some(&anchors),
        },
    );
    for k in 3..=before.k_max {
        let mass_before: usize = k_truss_communities(&g, &before, k)
            .iter()
            .map(|c| c.size())
            .sum();
        let mass_after: usize = k_truss_communities(&g, &after, k)
            .iter()
            .map(|c| c.size())
            .sum();
        assert!(
            mass_after >= mass_before,
            "k={k}: community mass shrank {mass_before} -> {mass_after}"
        );
    }
}

#[test]
fn positive_gain_grows_some_community_level() {
    let g = demo_graph(9);
    let before = decompose(&g);
    let out = Gas::new(&g, GasConfig::default()).run(5);
    if out.total_gain == 0 {
        return; // nothing to check on this seed
    }
    let anchors = EdgeSet::from_iter(g.num_edges(), out.anchors.iter().copied());
    let after = decompose_with(
        &g,
        DecomposeOptions {
            subset: None,
            anchors: Some(&anchors),
        },
    );
    let grew = (3..=before.k_max).any(|k| {
        let b: usize = k_truss_communities(&g, &before, k)
            .iter()
            .map(|c| c.size())
            .sum();
        let a: usize = k_truss_communities(&g, &after, k)
            .iter()
            .map(|c| c.size())
            .sum();
        a > b
    });
    assert!(
        grew,
        "positive gain must enlarge at least one community level"
    );
}

#[test]
fn maintenance_then_atr_is_consistent() {
    // Evolve the graph (drop a few edges), then run ATR on the survivor
    // graph via the alive subset; the result must match running ATR on a
    // freshly built graph with the same edges.
    let g = demo_graph(17);
    let mut dt = DynamicTruss::new(&g);
    for e in [3u32, 77, 200, 411] {
        dt.remove_edge(antruss::graph::EdgeId(e % g.num_edges() as u32));
    }
    // rebuild survivor graph from alive edges
    let mut builder = antruss::graph::GraphBuilder::new();
    for e in dt.alive().iter() {
        let (u, v) = g.endpoints(e);
        builder.add_edge(u.0 as u64, v.0 as u64);
    }
    let survivor = builder.build();
    let out = Gas::new(&survivor, GasConfig::default()).run(3);
    // consistency: re-evaluating the selected anchors reproduces the gain
    let base = decompose(&survivor).trussness;
    let set = EdgeSet::from_iter(survivor.num_edges(), out.anchors.iter().copied());
    assert_eq!(
        out.total_gain,
        antruss::atr::gain_of_anchor_set(&survivor, &base, &set)
    );
}
