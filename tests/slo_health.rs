//! End-to-end SLO health on real sockets: injected solve latency
//! flips a backend's `/healthz` from `ok` to a burning state, the
//! router's federated `/cluster/overview` reports the same verdict
//! after its next supervision pass, and one clean fast window of
//! traffic clears everything back to `ok`.
//!
//! Determinism: the testkit runs every tier with
//! `metrics_interval_ms = 0` (no sampler threads), so history samples
//! are recorded by hand at synthetic timestamps — the SLO windows see
//! exactly the trajectory the test scripted, wall-clock speed aside.

use antruss::atr::json;
use antruss::cluster::testkit::{TestCluster, TestClusterConfig};
use antruss::obs::slo::parse_slos;
use antruss::service::{Client, ServerConfig};

/// Registers a small graph directly at the backend and returns a
/// client for it.
fn register_graph(mut c: Client) -> Client {
    let mut list = String::new();
    for u in 0..8u32 {
        for v in (u + 1)..8 {
            list.push_str(&format!("{u} {v}\n"));
        }
    }
    let resp = c
        .post("/graphs?name=slo-g", "text/plain", list.as_bytes())
        .expect("register");
    assert_eq!(resp.status, 201, "register: {}", resp.body_string());
    c
}

/// Drives `n` cache-missing solves (fresh seeds per call) so the
/// injected delay lands in the solve phase every time.
fn drive(c: &mut Client, seed0: u64, n: u64) {
    for seed in seed0..seed0 + n {
        let body = format!("{{\"graph\":\"slo-g\",\"b\":1,\"seed\":{seed}}}");
        let resp = c
            .post("/solve", "application/json", body.as_bytes())
            .expect("solve");
        assert_eq!(resp.status, 200, "solve: {}", resp.body_string());
    }
}

/// The `status` string of a tier's `/healthz`, plus the optional
/// `burning` objective name.
fn health_of(addr: std::net::SocketAddr) -> (String, Option<String>) {
    let resp = Client::new(addr).get("/healthz").expect("healthz");
    let doc = json::parse(&resp.body_string()).expect("healthz is JSON");
    (
        doc.get("status")
            .and_then(|v| v.as_str())
            .expect("status field")
            .to_string(),
        doc.get("burning")
            .and_then(|v| v.as_str())
            .map(str::to_string),
    )
}

/// The backend's `status` as the router's `/cluster/overview` reports
/// it.
fn overview_status(router: std::net::SocketAddr, backend: &str) -> String {
    let resp = Client::new(router)
        .get("/cluster/overview")
        .expect("overview");
    assert_eq!(resp.status, 200);
    let body = resp.body_string();
    let doc = json::parse(&body).expect("overview is JSON");
    let members = doc
        .get("members")
        .and_then(|v| v.as_array())
        .expect("members array");
    members
        .iter()
        .find(|m| m.get("addr").and_then(|v| v.as_str()) == Some(backend))
        .unwrap_or_else(|| panic!("member {backend} missing from {body}"))
        .get("status")
        .and_then(|v| v.as_str())
        .expect("member status")
        .to_string()
}

#[test]
fn injected_latency_degrades_healthz_and_overview_then_recovers() {
    let mut tc = TestCluster::start(TestClusterConfig {
        replication: 1,
        backend: ServerConfig {
            // a 20 ms p99 objective: the injected 80 ms delay burns it
            // hard, honest sub-millisecond solves never come close
            slos: parse_slos("p99_ms=20").expect("slos"),
            ..TestClusterConfig::default().backend
        },
        ..TestClusterConfig::default()
    })
    .expect("cluster");
    let b = tc.join().expect("join backend");
    let backend_addr = tc.backend_addr(b).to_string();
    let record = |ts: f64| {
        tc.backend_server(b)
            .expect("backend alive")
            .state()
            .record_history(ts);
    };

    // phase 1 — honest traffic: two samples of fast solves read ok
    let mut c = register_graph(tc.backend_client(b));
    drive(&mut c, 0, 4);
    record(100.0);
    drive(&mut c, 100, 4);
    record(160.0);
    let (status, burning) = health_of(tc.backend_addr(b));
    assert_eq!(status, "ok", "clean traffic must read ok");
    assert_eq!(burning, None);
    tc.tick();
    assert_eq!(overview_status(tc.router_addr(), &backend_addr), "ok");

    // phase 2 — the solve phase goes slow (a regression rollout)
    let resp = c
        .post("/debug/delay?ms=80", "application/json", b"")
        .expect("inject delay");
    assert_eq!(resp.status, 200, "{}", resp.body_string());
    drive(&mut c, 200, 4);
    record(220.0);
    let (status, burning) = health_of(tc.backend_addr(b));
    assert!(
        status == "degraded" || status == "critical",
        "slow solves must burn the latency objective, got {status:?}"
    );
    assert_eq!(burning.as_deref(), Some("p99_ms"));
    // the router's next supervision pass federates the verdict
    tc.tick();
    let federated = overview_status(tc.router_addr(), &backend_addr);
    assert_eq!(
        federated, status,
        "overview must carry the member's own verdict"
    );

    // phase 3 — rollback: the delay is gone, and after one clean fast
    // window (300 s of synthetic time) the fast-window-necessary rule
    // clears the health even though slow windows still remember the
    // incident
    let resp = c
        .post("/debug/delay?ms=0", "application/json", b"")
        .expect("clear delay");
    assert_eq!(resp.status, 200);
    drive(&mut c, 300, 4);
    record(470.0);
    drive(&mut c, 400, 4);
    record(530.0);
    let (status, burning) = health_of(tc.backend_addr(b));
    assert_eq!(status, "ok", "a clean fast window must clear the burn");
    assert_eq!(burning, None);
    tc.tick();
    assert_eq!(overview_status(tc.router_addr(), &backend_addr), "ok");

    tc.shutdown();
}
