//! Property tests for the durable store: WAL records round-trip for
//! arbitrary operation sequences, recovery reproduces the in-memory
//! catalog exactly, and fault injection (truncated tails, flipped bits
//! — corrupting the file directly) is detected and cleanly dropped
//! instead of corrupting the recovered state.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use antruss::service::Catalog;
use antruss::store::wal::{self, CatalogOp, WAL_MAGIC};
use antruss::store::{FsyncPolicy, Store};
use proptest::prelude::*;

/// A unique scratch directory per proptest case (cases run many times
/// per process; pid alone is not enough).
fn scratch(tag: &str) -> std::path::PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let dir = std::env::temp_dir().join(format!(
        "antruss-store-props-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// One modeled catalog operation over a tiny name pool. Register
/// payloads are arbitrary bytes at the WAL layer (framing does not
/// interpret them); the recovery test builds real graphs instead.
#[derive(Debug, Clone)]
enum SimOp {
    Register(u8, Vec<u8>),
    Mutate(u8, Vec<(u8, u8)>, Vec<(u8, u8)>),
    Delete(u8),
}

fn sim_name(id: u8) -> String {
    format!("g{}", id % 3)
}

impl SimOp {
    fn to_wal(&self) -> CatalogOp {
        match self {
            SimOp::Register(id, payload) => CatalogOp::Register {
                name: sim_name(*id),
                graph: bytes::Bytes::from(payload.clone()),
            },
            SimOp::Mutate(id, ins, del) => CatalogOp::Mutate {
                name: sim_name(*id),
                inserts: ins.iter().map(|&(u, v)| (u as u64, v as u64)).collect(),
                deletes: del.iter().map(|&(u, v)| (u as u64, v as u64)).collect(),
            },
            SimOp::Delete(id) => CatalogOp::Delete {
                name: sim_name(*id),
            },
        }
    }
}

/// Decodes one generated `(tag, name, (a, b))` seed into an operation —
/// the vendored proptest generates ranges/tuples/vectors only, so op
/// variety comes from deterministic decoding (the same pattern the
/// JSON property tests use). The arithmetic below fans two seed bytes
/// into varied payload lengths, edge pairs (self loops included — the
/// catalog must ignore them) and batch sizes.
fn decode_op(tag: u8, name: u8, a: u8, b: u8) -> SimOp {
    match tag % 3 {
        0 => {
            let payload = (0..(a as usize % 48))
                .map(|i| a.wrapping_mul(31).wrapping_add(b.wrapping_mul(i as u8)))
                .collect();
            SimOp::Register(name, payload)
        }
        1 => {
            let mix = |i: u8| {
                (
                    a.wrapping_add(i.wrapping_mul(7)) % 10,
                    b.wrapping_add(i.wrapping_mul(3)) % 10,
                )
            };
            let inserts = (0..a % 5).map(mix).collect();
            let deletes = (0..b % 4).map(|i| mix(i.wrapping_add(a))).collect();
            SimOp::Mutate(name, inserts, deletes)
        }
        _ => SimOp::Delete(name),
    }
}

/// One seed tuple per op: `(tag, name, (a, b))`.
type OpSeed = (u8, u8, (u8, u8));

fn decode_ops(seeds: &[OpSeed]) -> Vec<SimOp> {
    seeds
        .iter()
        .map(|&(t, n, (a, b))| decode_op(t, n, a, b))
        .collect()
}

/// Frames `ops` exactly as the store's append path does.
fn wal_image(ops: &[CatalogOp]) -> Vec<u8> {
    let mut out = WAL_MAGIC.to_vec();
    for op in ops {
        out.extend_from_slice(&wal::encode_record(op));
    }
    out
}

/// A comparable projection of a catalog: name, shape, content checksum.
fn observed(c: &Catalog) -> Vec<(String, usize, usize, u64)> {
    c.entries()
        .into_iter()
        .map(|e| (e.name, e.vertices, e.edges, e.checksum))
        .collect()
}

/// Replays everything a store recovered into a fresh catalog — the
/// exact startup sequence of `ServiceState::open`.
fn recover_catalog(dir: &std::path::Path) -> Catalog {
    let (store, recovered) = Store::open(dir, FsyncPolicy::Always).expect("open store");
    let c = Catalog::new();
    for (name, graph) in recovered.graphs {
        c.install_recovered(&name, Arc::new(graph));
    }
    for op in &recovered.ops {
        c.apply_recovered(op);
    }
    c.attach_store(Arc::new(store));
    c
}

/// Drives `ops` through a live durable catalog. Invalid operations
/// (duplicate register, mutate/delete of a missing name) are refused by
/// the catalog and — crucially — never logged, so they must not affect
/// recovery either.
fn drive(c: &Catalog, ops: &[SimOp]) {
    for op in ops {
        match op {
            SimOp::Register(id, _) => {
                // a tiny real edge list derived from the name id: the
                // catalog needs parseable uploads, and distinct shapes
                // per id make checksum mismatches detectable
                let edges = format!("0 1\n1 2\n2 {}\n", 3 + (id % 4));
                let _ = c.register(&sim_name(*id), edges.as_bytes());
            }
            SimOp::Mutate(id, ins, del) => {
                let ins: Vec<(u64, u64)> = ins.iter().map(|&(u, v)| (u as u64, v as u64)).collect();
                let del: Vec<(u64, u64)> = del.iter().map(|&(u, v)| (u as u64, v as u64)).collect();
                let _ = c.mutate(&sim_name(*id), &ins, &del);
            }
            SimOp::Delete(id) => {
                let _ = c.remove(&sim_name(*id));
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any operation sequence survives framing + replay byte-exactly.
    #[test]
    fn wal_records_round_trip(
        seeds in prop::collection::vec((0u8..6, 0u8..6, (0u8..255, 0u8..255)), 1..24),
    ) {
        let wal_ops: Vec<CatalogOp> = decode_ops(&seeds).iter().map(SimOp::to_wal).collect();
        let replayed = wal::replay(&wal_image(&wal_ops));
        prop_assert_eq!(replayed.ops, wal_ops);
        prop_assert_eq!(replayed.dropped_bytes, 0);
    }

    /// Recovery (snapshots + WAL tail through the catalog's replay
    /// path) reproduces the live catalog exactly — including after
    /// forced mid-sequence compactions.
    #[test]
    fn recovery_equals_in_memory_state(
        seeds in prop::collection::vec((0u8..6, 0u8..6, (0u8..255, 0u8..255)), 1..16),
        compact_every in 2u64..6,
    ) {
        let dir = scratch("recovery");
        let live = {
            let c = recover_catalog(&dir);
            // force frequent compactions so snapshots + tails interleave
            c.store().unwrap().set_compaction_thresholds(compact_every, u64::MAX);
            drive(&c, &decode_ops(&seeds));
            observed(&c)
        };
        let recovered = recover_catalog(&dir);
        prop_assert_eq!(observed(&recovered), live);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// A truncated tail (the file cut at an arbitrary byte) loses only
    /// unacknowledgeable suffix records: replay yields an exact prefix.
    #[test]
    fn truncated_tail_is_detected_and_dropped(
        seeds in prop::collection::vec((0u8..6, 0u8..6, (0u8..255, 0u8..255)), 1..12),
        cut_back in 1usize..200,
    ) {
        let wal_ops: Vec<CatalogOp> = decode_ops(&seeds).iter().map(SimOp::to_wal).collect();
        let img = wal_image(&wal_ops);
        let cut = img.len().saturating_sub(cut_back).max(WAL_MAGIC.len());
        let replayed = wal::replay(&img[..cut]);
        prop_assert!(replayed.ops.len() <= wal_ops.len());
        let prefix = &wal_ops[..replayed.ops.len()];
        prop_assert_eq!(&replayed.ops[..], prefix, "must be an exact prefix");
        prop_assert_eq!(replayed.good_len as usize + replayed.dropped_bytes as usize, cut);
        // everything the cut left whole is recovered
        let whole = wal_image(prefix);
        prop_assert!(whole.len() <= cut, "replay stopped before the cut reached a record");
    }

    /// A flipped bit anywhere in the record region is caught by the
    /// checksum: replay still yields an exact prefix of the original
    /// sequence (never garbage, never a panic).
    #[test]
    fn bit_flip_is_detected_and_dropped(
        seeds in prop::collection::vec((0u8..6, 0u8..6, (0u8..255, 0u8..255)), 1..12),
        pos_seed in 0u64..u64::MAX / 2,
        bit in 0u8..8,
    ) {
        let wal_ops: Vec<CatalogOp> = decode_ops(&seeds).iter().map(SimOp::to_wal).collect();
        let mut img = wal_image(&wal_ops);
        let span = img.len() - WAL_MAGIC.len();
        let pos = WAL_MAGIC.len() + (pos_seed as usize % span);
        img[pos] ^= 1 << bit;
        let replayed = wal::replay(&img);
        prop_assert!(replayed.ops.len() <= wal_ops.len());
        let prefix = &wal_ops[..replayed.ops.len()];
        prop_assert_eq!(&replayed.ops[..], prefix, "must be an exact prefix");
    }
}

/// End to end through real files: corrupt the WAL on disk (both fault
/// modes), then recover through the full store + catalog path and
/// assert the surviving prefix state plus continued writability.
#[test]
fn corrupted_wal_file_recovers_the_prefix_and_stays_writable() {
    let dir = scratch("corrupt-e2e");
    {
        let c = recover_catalog(&dir);
        c.register("g0", b"0 1\n1 2\n2 0\n").unwrap();
        c.register("g1", b"0 1\n1 2\n2 3\n").unwrap();
        c.register("g2", b"0 3\n").unwrap();
    }
    // flip one byte inside the *last* record's payload
    let wal_path = dir.join("wal.log");
    let mut img = std::fs::read(&wal_path).unwrap();
    let pos = img.len() - 4;
    img[pos] ^= 0x10;
    std::fs::write(&wal_path, &img).unwrap();

    let c = recover_catalog(&dir);
    let names: Vec<String> = c.entries().into_iter().map(|e| e.name).collect();
    assert_eq!(names, ["g0", "g1"], "the corrupted third record is gone");
    let stats = c.store().unwrap().stats();
    assert!(stats.dropped_bytes > 0, "the drop is observable: {stats:?}");
    // the truncated log accepts appends again and they recover cleanly
    c.register("g9", b"0 1\n").unwrap();
    drop(c);
    let c = recover_catalog(&dir);
    let names: Vec<String> = c.entries().into_iter().map(|e| e.name).collect();
    assert_eq!(names, ["g0", "g1", "g9"]);
    std::fs::remove_dir_all(&dir).unwrap();
}
