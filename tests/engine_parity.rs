//! Parity suite for the unified solver engine: every registry solver
//! must produce exactly the anchors/gain of its legacy direct call, and
//! unified `Outcome`s must be deterministic across thread counts.

use antruss::atr::baselines::akt::akt_greedy;
use antruss::atr::baselines::base::base_greedy;
use antruss::atr::baselines::base_plus::base_plus;
use antruss::atr::baselines::edge_deletion::edge_deletion_anchors;
use antruss::atr::baselines::exact::exact;
use antruss::atr::baselines::lazy::lazy_greedy;
use antruss::atr::baselines::random::{random_baseline, Pool};
use antruss::atr::engine::{registry, Anchor, Extras, Outcome, RunConfig};
use antruss::atr::{Gas, GasConfig, ReusePolicy};
use antruss::datasets::{generate, DatasetId};
use antruss::graph::gen::{gnm, planted_cliques, social_network, SocialParams};
use antruss::graph::{CsrGraph, EdgeId, VertexId};
use antruss::truss::decompose;

fn seed_graphs() -> Vec<(String, CsrGraph)> {
    vec![
        ("gnm-30-110".to_string(), gnm(30, 110, 7)),
        (
            "social-150".to_string(),
            social_network(&SocialParams {
                n: 150,
                target_edges: 600,
                attach: 4,
                closure: 0.6,
                planted: vec![6],
                onions: vec![],
                seed: 3,
            }),
        ),
        (
            "college@0.05".to_string(),
            generate(DatasetId::College, 0.05),
        ),
    ]
}

fn edges_of(out: &Outcome) -> Vec<EdgeId> {
    out.anchors
        .iter()
        .map(|a| a.edge().expect("edge anchor"))
        .collect()
}

fn run(name: &str, g: &CsrGraph, cfg: &RunConfig) -> Outcome {
    registry()
        .get(name)
        .unwrap_or_else(|| panic!("{name} not registered"))
        .run(g, cfg)
        .unwrap_or_else(|e| panic!("{name}: {e}"))
}

#[test]
fn gas_parity_with_direct_call() {
    for (tag, g) in seed_graphs() {
        let legacy = Gas::new(&g, GasConfig::default()).run(4);
        let engine = run("gas", &g, &RunConfig::new(4));
        assert_eq!(edges_of(&engine), legacy.anchors, "{tag}");
        assert_eq!(engine.total_gain, legacy.total_gain, "{tag}");
        assert_eq!(engine.claimed_gain, legacy.claimed_gain, "{tag}");
        assert_eq!(engine.rounds.len(), legacy.rounds.len(), "{tag}");
        for (er, lr) in engine.rounds.iter().zip(&legacy.rounds) {
            assert_eq!(er.chosen, Anchor::Edge(lr.chosen), "{tag}");
            assert_eq!(er.gain as usize, lr.followers.len(), "{tag}");
            assert_eq!(er.recomputed, lr.recomputed, "{tag}");
        }
    }
}

#[test]
fn base_and_base_plus_parity() {
    for (tag, g) in seed_graphs() {
        let legacy_base = base_greedy(&g, 3, None);
        let engine_base = run("base", &g, &RunConfig::new(3));
        assert_eq!(edges_of(&engine_base), legacy_base.anchors, "{tag}");
        assert_eq!(engine_base.total_gain, legacy_base.total_gain, "{tag}");
        assert!(
            matches!(engine_base.extras, Extras::Base { timed_out: false }),
            "{tag}"
        );

        let legacy_plus = base_plus(&g, 3);
        let engine_plus = run("base+", &g, &RunConfig::new(3));
        assert_eq!(edges_of(&engine_plus), legacy_plus.anchors, "{tag}");
        assert_eq!(engine_plus.total_gain, legacy_plus.total_gain, "{tag}");
        // base+ must pin reuse off even when the config says otherwise
        let engine_plus2 = run(
            "base+",
            &g,
            &RunConfig::new(3).reuse(ReusePolicy::PaperExact),
        );
        assert_eq!(edges_of(&engine_plus2), legacy_plus.anchors, "{tag}");
        assert!(
            matches!(
                engine_plus2.extras,
                Extras::Gas {
                    reuse: ReusePolicy::Off
                }
            ),
            "{tag}"
        );
    }
}

#[test]
fn exact_parity_on_small_graph() {
    let g = gnm(10, 20, 4);
    let legacy = exact(&g, 2, None).expect("b <= m");
    let engine = run("exact", &g, &RunConfig::new(2));
    assert_eq!(edges_of(&engine), legacy.anchors);
    assert_eq!(engine.total_gain, legacy.gain);
    match engine.extras {
        Extras::Exact { evaluated } => assert_eq!(evaluated, legacy.evaluated),
        ref other => panic!("wrong extras {other:?}"),
    }
    // capped enumeration flows through too
    let capped = run("exact", &g, &RunConfig::new(2).exact_cap(10));
    match capped.extras {
        Extras::Exact { evaluated } => assert_eq!(evaluated, 10),
        ref other => panic!("wrong extras {other:?}"),
    }
}

#[test]
fn randomized_family_parity() {
    let pools = [
        ("rand", Pool::All),
        ("rand:sup", Pool::TopSupport(0.2)),
        ("rand:tur", Pool::TopRouteSize(0.2)),
    ];
    for (tag, g) in seed_graphs() {
        for (name, pool) in pools {
            let legacy = random_baseline(&g, pool, 3, 7, 42);
            let engine = run(name, &g, &RunConfig::new(3).trials(7).seed(42));
            assert_eq!(edges_of(&engine), legacy.anchors, "{tag}/{name}");
            assert_eq!(engine.total_gain, legacy.gain, "{tag}/{name}");
        }
    }
}

#[test]
fn akt_parity_with_direct_call() {
    let (_, g) = &seed_graphs()[1];
    let info = decompose(g);
    for k in 3..=info.k_max {
        let legacy = akt_greedy(g, &info.trussness, k, 3, 16);
        let engine = run("akt", g, &RunConfig::new(3).k(k).candidate_cap(16));
        let vertices: Vec<VertexId> = engine
            .anchors
            .iter()
            .map(|a| a.vertex().expect("vertex anchor"))
            .collect();
        assert_eq!(vertices, legacy.anchors, "k={k}");
        assert_eq!(engine.total_gain, legacy.gain, "k={k}");
        match engine.extras {
            Extras::Akt {
                k: ek,
                ref gain_curve,
            } => {
                assert_eq!(ek, k);
                assert_eq!(gain_curve, &legacy.gain_curve, "k={k}");
            }
            ref other => panic!("wrong extras {other:?}"),
        }
    }
    // default k is the graph's k_max
    let engine = run("akt", g, &RunConfig::new(2).candidate_cap(16));
    match engine.extras {
        Extras::Akt { k, .. } => assert_eq!(k, info.k_max),
        ref other => panic!("wrong extras {other:?}"),
    }
}

#[test]
fn edge_deletion_and_lazy_parity() {
    for (tag, g) in seed_graphs() {
        let legacy_del = edge_deletion_anchors(&g, 3, 12);
        let engine_del = run("edge-del", &g, &RunConfig::new(3).candidate_cap(12));
        assert_eq!(edges_of(&engine_del), legacy_del.anchors, "{tag}");
        assert_eq!(engine_del.total_gain, legacy_del.gain, "{tag}");

        let legacy_lazy = lazy_greedy(&g, 4);
        let engine_lazy = run("lazy", &g, &RunConfig::new(4));
        assert_eq!(edges_of(&engine_lazy), legacy_lazy.anchors, "{tag}");
        assert_eq!(engine_lazy.total_gain, legacy_lazy.total_gain, "{tag}");
        match engine_lazy.extras {
            Extras::Lazy {
                ref evaluations_per_round,
            } => assert_eq!(
                evaluations_per_round, &legacy_lazy.evaluations_per_round,
                "{tag}"
            ),
            ref other => panic!("wrong extras {other:?}"),
        }
    }
}

#[test]
fn outcomes_deterministic_across_thread_counts() {
    for (tag, g) in seed_graphs() {
        for name in registry().names() {
            if name == "exact" && g.num_edges() > 150 {
                continue; // keep the suite fast; exact ignores threads anyway
            }
            let cfg = RunConfig::new(3)
                .trials(5)
                .candidate_cap(12)
                .exact_cap(2_000);
            let serial = registry()
                .get(name)
                .unwrap()
                .run(&g, &cfg.clone().threads(1));
            let threaded = registry().get(name).unwrap().run(&g, &cfg.threads(4));
            let (serial, threaded) = (serial.unwrap(), threaded.unwrap());
            assert_eq!(serial.anchors, threaded.anchors, "{tag}/{name}");
            assert_eq!(serial.total_gain, threaded.total_gain, "{tag}/{name}");
            assert_eq!(serial.claimed_gain, threaded.claimed_gain, "{tag}/{name}");
            assert_eq!(
                serial.rounds.iter().map(|r| r.gain).collect::<Vec<_>>(),
                threaded.rounds.iter().map(|r| r.gain).collect::<Vec<_>>(),
                "{tag}/{name}"
            );
        }
    }
}

#[test]
fn claimed_gain_never_undercounts_on_planted_cliques() {
    // The regression surface of the GasOutcome::claimed_gain vs
    // total_gain discrepancy: claimed sums per-round follower counts, and
    // an early follower can later be *anchored*, leaving claimed >= total
    // (Definition 4 excludes anchors).
    for seed in 0..6u64 {
        let g = social_network(&SocialParams {
            n: 80,
            target_edges: 340,
            attach: 3,
            closure: 0.7,
            planted: vec![6, 5, 4],
            onions: vec![],
            seed,
        });
        for b in [2usize, 5, 8] {
            let out = run("gas", &g, &RunConfig::new(b));
            assert!(
                out.claimed_gain >= out.total_gain,
                "seed {seed} b={b}: claimed {} < total {}",
                out.claimed_gain,
                out.total_gain
            );
        }
    }
    // pure clique chains: anchoring inside a clique elevates its fringe
    let g = planted_cliques(&[5, 4, 4]);
    let out = run("gas", &g, &RunConfig::new(4));
    assert!(out.claimed_gain >= out.total_gain);
    // a pinned graph where the discrepancy is *strict* (claimed 17 vs
    // total 14 at the time of writing): later rounds anchor edges that
    // earlier rounds counted as followers, so per-round claims overcount
    let g = gnm(30, 110, 2);
    let out = run("gas", &g, &RunConfig::new(6));
    assert!(
        out.claimed_gain > out.total_gain,
        "expected the strictly-greater regression case (claimed {} vs total {})",
        out.claimed_gain,
        out.total_gain
    );
    // the cause is visible in the outcome itself: some anchored edge was
    // an earlier round's follower
    let anchored: Vec<EdgeId> = edges_of(&out);
    let was_follower = Gas::new(&g, GasConfig::default())
        .run(6)
        .rounds
        .iter()
        .flat_map(|r| r.followers.clone())
        .any(|f| anchored.contains(&f));
    assert!(
        was_follower,
        "discrepancy must come from re-anchored followers"
    );
}

#[test]
fn claimed_gain_invariant_holds_for_every_solver() {
    let g = gnm(24, 85, 9);
    let cfg = RunConfig::new(3)
        .trials(5)
        .candidate_cap(10)
        .exact_cap(1_000);
    for solver in registry().iter() {
        let out = solver
            .run(&g, &cfg)
            .unwrap_or_else(|e| panic!("{}: {e}", solver.name()));
        assert!(
            out.claimed_gain >= out.total_gain,
            "{}: claimed {} < total {}",
            solver.name(),
            out.claimed_gain,
            out.total_gain
        );
    }
}
