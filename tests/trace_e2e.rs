//! End-to-end distributed tracing over real sockets: one trace id spans
//! edge → router → backend, each tier contributes a hop with its own
//! span, the parent chain points back to the originator, and the
//! originating tier's `/debug/traces` ring captures the assembled
//! timeline.

use std::net::SocketAddr;
use std::time::Duration;

use antruss::cluster::{Router, RouterConfig};
use antruss::edge::{Edge, EdgeConfig};
use antruss::obs::trace::{parse_hops, TraceContext, HOPS_HEADER, TRACE_HEADER};
use antruss::obs::Hop;
use antruss::service::{Client, Server, ServerConfig};

fn edge_list() -> Vec<u8> {
    let mut body = String::new();
    for u in 0..5u32 {
        for v in (u + 1)..5 {
            body.push_str(&format!("{u} {v}\n"));
        }
    }
    body.into_bytes()
}

fn start_chain() -> (Server, Router, Edge) {
    let backend = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        cache_capacity: 64,
        ..ServerConfig::default()
    })
    .expect("backend");
    let router = Router::start(RouterConfig {
        backends: vec![backend.addr()],
        ..RouterConfig::default()
    })
    .expect("router");
    let edge = Edge::start(EdgeConfig {
        upstream: router.addr().to_string(),
        threads: 4,
        cache_capacity: 64,
        poll_wait_ms: 200,
        retry_ms: 20,
        ..EdgeConfig::default()
    })
    .expect("edge");
    (backend, router, edge)
}

fn hop_of<'a>(hops: &'a [Hop], tier: &str) -> &'a Hop {
    hops.iter()
        .find(|h| h.tier == tier)
        .unwrap_or_else(|| panic!("no {tier} hop in {hops:?}"))
}

fn solve_traced(addr: SocketAddr, extra: &[(String, String)]) -> (String, Vec<Hop>) {
    let resp = Client::new(addr)
        .post_with_headers(
            "/solve",
            "application/json",
            br#"{"graph":"traced","solver":"gas","b":1}"#,
            extra,
        )
        .expect("solve");
    assert_eq!(resp.status, 200, "solve: {}", resp.body_string());
    let trace = resp
        .header(TRACE_HEADER)
        .expect("response must carry the trace id")
        .to_string();
    let hops = parse_hops(resp.header(HOPS_HEADER).expect("response must carry hops"));
    (trace, hops)
}

/// A cache-miss solve through the full chain: one trace id, three hops
/// (server, router, edge) with distinct spans, a parent chain rooted at
/// the originating edge, nested wall times, and per-phase attribution
/// reaching back from the backend's solve loop.
#[test]
fn one_trace_spans_edge_router_backend() {
    let (backend, router, edge) = start_chain();
    let resp = Client::new(router.addr())
        .post("/graphs?name=traced", "text/plain", &edge_list())
        .expect("register");
    assert_eq!(resp.status, 201, "register: {}", resp.body_string());

    let (trace, hops) = solve_traced(edge.addr(), &[]);
    assert_eq!(trace.len(), 16, "trace id is 16 hex chars: {trace}");
    assert_eq!(
        hops.len(),
        3,
        "every tier contributes exactly one hop: {hops:?}"
    );
    // hops accumulate downstream-first
    assert_eq!(hops[0].tier, "server");
    assert_eq!(hops[1].tier, "router");
    assert_eq!(hops[2].tier, "edge");

    let (server, routr, edg) = (
        hop_of(&hops, "server"),
        hop_of(&hops, "router"),
        hop_of(&hops, "edge"),
    );
    // distinct spans, parent chain rooted at the originator
    assert_ne!(server.span, routr.span);
    assert_ne!(routr.span, edg.span);
    assert_eq!(edg.parent, 0, "the edge originated this trace");
    assert_eq!(routr.parent, edg.span);
    assert_eq!(server.parent, routr.span);
    // wall times nest: each tier's total includes everything below it
    assert!(
        server.us <= routr.us && routr.us <= edg.us,
        "hop times must nest: server {} <= router {} <= edge {}",
        server.us,
        routr.us,
        edg.us
    );
    // a cache miss reaches the backend's solver; the forwarding tiers
    // attribute their time to the forward phase
    assert!(
        server.phases.iter().any(|(n, _)| n == "solve"),
        "backend hop phases: {:?}",
        server.phases
    );
    assert!(
        routr.phases.iter().any(|(n, _)| n == "forward"),
        "router hop phases: {:?}",
        routr.phases
    );
    assert!(
        edg.phases.iter().any(|(n, _)| n == "forward"),
        "edge hop phases: {:?}",
        edg.phases
    );

    // the originating edge's slow-trace ring holds the assembled trace
    let resp = Client::new(edge.addr())
        .get("/debug/traces")
        .expect("debug traces");
    assert_eq!(resp.status, 200);
    let body = resp.body_string();
    assert!(
        body.contains(&trace),
        "edge /debug/traces must contain trace {trace}: {body}"
    );
    for tier in ["server", "router", "edge"] {
        assert!(body.contains(tier), "assembled trace names {tier}: {body}");
    }

    drop(edge);
    router.shutdown();
    backend.shutdown();
}

/// A caller that brings its own trace context stays the originator: the
/// tiers adopt its trace id, parent their hops under the caller's span,
/// and none of them file the trace in their own slow ring.
#[test]
fn client_supplied_trace_is_adopted_not_recorded() {
    let (backend, router, edge) = start_chain();
    let resp = Client::new(router.addr())
        .post("/graphs?name=traced", "text/plain", &edge_list())
        .expect("register");
    assert_eq!(resp.status, 201);

    let ctx = TraceContext::originate();
    let (trace, hops) = solve_traced(edge.addr(), &ctx.headers());
    assert_eq!(trace, format!("{:016x}", ctx.trace), "trace id adopted");
    assert_eq!(
        hop_of(&hops, "edge").parent,
        ctx.span,
        "the edge hop parents under the caller's span"
    );

    // no tier originated, so no tier recorded it
    std::thread::sleep(Duration::from_millis(50));
    for addr in [edge.addr(), router.addr(), backend.addr()] {
        let body = Client::new(addr)
            .get("/debug/traces")
            .expect("debug traces")
            .body_string();
        assert!(
            !body.contains(&trace),
            "{addr} recorded a trace it did not originate: {body}"
        );
    }

    drop(edge);
    router.shutdown();
    backend.shutdown();
}
