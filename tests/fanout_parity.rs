//! Concurrency regressions for the cluster tier: the scatter-gather
//! fan-out must be observably equivalent to the old sequential path
//! (same per-replica purge counters, same post-mutate solve results,
//! partial failures reported per replica), and the paged `/cache/dump`
//! replay must reproduce the buffered replay byte-for-byte.

use std::net::SocketAddr;

use antruss::atr::json::{self, Value};
use antruss::cluster::{Router, RouterConfig};
use antruss::service::{handle, Client, Server, ServerConfig, ServiceState};

fn backend_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        cache_capacity: 64,
        ..ServerConfig::default()
    }
}

fn start_backends(n: usize) -> Vec<Server> {
    (0..n)
        .map(|i| {
            Server::start(ServerConfig {
                shard: Some(i as u32),
                ..backend_config()
            })
            .expect("bind backend")
        })
        .collect()
}

fn metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("{name} missing in:\n{text}"))
        .parse()
        .unwrap()
}

fn clique_edges(k: u32) -> String {
    let mut edges = String::new();
    for u in 0..k {
        for v in (u + 1)..k {
            edges.push_str(&format!("{u} {v}\n"));
        }
    }
    edges
}

/// The ring-id placement of `graph` as the router reports it.
fn placement(router_addr: SocketAddr, graph: &str) -> Vec<usize> {
    let resp = Client::new(router_addr)
        .get(&format!("/ring?graph={graph}"))
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_string());
    json::parse(&resp.body_string())
        .unwrap()
        .get("replicas")
        .unwrap()
        .as_array()
        .unwrap()
        .iter()
        .map(|r| r.get("shard").unwrap().as_u64().unwrap() as usize)
        .collect()
}

/// Two identical 3-backend topologies run the same workload — one
/// through the router's concurrent scatter-gather, one by hand in the
/// old sequential replica order — and must end in the same state: same
/// per-replica mutation/purge counters, same post-mutate solve bytes.
#[test]
fn concurrent_fan_out_is_equivalent_to_the_sequential_path() {
    let concurrent = start_backends(3);
    let sequential = start_backends(3);
    let router = Router::start(RouterConfig {
        backends: concurrent.iter().map(Server::addr).collect(),
        replication: 2,
        health_interval_ms: 0,
        ..RouterConfig::default()
    })
    .expect("bind router");
    let mut via_router = Client::new(router.addr());

    // identical registration; the sequential side applies each step
    // replica-by-replica in placement order (the pre-scatter semantics)
    let edges = clique_edges(6);
    let resp = via_router
        .post("/graphs?name=par", "text/plain", edges.as_bytes())
        .unwrap();
    assert_eq!(resp.status, 201, "{}", resp.body_string());
    // static membership: ring ids == backend indices, and both
    // topologies share one placement (same N, R, vnodes)
    let replicas = placement(router.addr(), "par");
    for &shard in &replicas {
        let resp = Client::new(sequential[shard].addr())
            .post("/graphs?name=par", "text/plain", edges.as_bytes())
            .unwrap();
        assert_eq!(resp.status, 201);
    }

    // seed a cached outcome on every replica of both sides
    let solve = br#"{"graph":"par","solver":"gas","b":1}"#;
    assert_eq!(
        via_router
            .post("/solve", "application/json", solve)
            .unwrap()
            .status,
        200
    );
    // the router caches only on the answering primary; mirror that, then
    // also cache on the secondary of BOTH sides so purge counters have
    // identical work to do everywhere
    for backends in [&concurrent, &sequential] {
        for &shard in &replicas {
            assert_eq!(
                Client::new(backends[shard].addr())
                    .post("/solve", "application/json", solve)
                    .unwrap()
                    .status,
                200
            );
        }
    }

    // mutate: concurrently via the router, sequentially by hand
    let batch = br#"{"insert":[[0,6],[1,6],[2,6]],"delete":[[4,5]]}"#;
    let resp = via_router
        .post("/graphs/par/mutate", "application/json", batch)
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_string());
    let concurrent_mutate = resp.body_string();
    let replica_header = resp.header("x-antruss-replicas").unwrap().to_string();
    assert_eq!(
        replica_header.split(',').count(),
        replicas.len(),
        "every replica must be reported: {replica_header}"
    );
    let mut sequential_mutate = String::new();
    for &shard in &replicas {
        let resp = Client::new(sequential[shard].addr())
            .post("/graphs/par/mutate", "application/json", batch)
            .unwrap();
        assert_eq!(resp.status, 200);
        if sequential_mutate.is_empty() {
            sequential_mutate = resp.body_string();
        }
    }
    assert_eq!(
        json::parse(&concurrent_mutate).unwrap(),
        json::parse(&sequential_mutate).unwrap(),
        "mutate reports diverge"
    );

    // purge: concurrently via the router (fan-out to all), sequentially
    // by hand — then compare every backend's counters
    assert_eq!(
        via_router
            .post("/cache/purge", "application/json", b"")
            .unwrap()
            .status,
        200
    );
    for b in &sequential {
        assert_eq!(
            Client::new(b.addr())
                .post("/cache/purge", "application/json", b"")
                .unwrap()
                .status,
            200
        );
    }
    for (i, (c, s)) in concurrent.iter().zip(&sequential).enumerate() {
        let cm = Client::new(c.addr()).get("/metrics").unwrap().body_string();
        let sm = Client::new(s.addr()).get("/metrics").unwrap().body_string();
        for series in [
            "antruss_mutations_total",
            "antruss_cache_purged_entries_total",
            "antruss_catalog_graphs",
        ] {
            assert_eq!(
                metric(&cm, series),
                metric(&sm, series),
                "backend {i} diverges on {series}\nconcurrent:\n{cm}\nsequential:\n{sm}"
            );
        }
    }

    // post-mutate solves agree byte-for-byte with the sequential
    // primary's fresh run
    let after_router = via_router
        .post("/solve", "application/json", solve)
        .unwrap();
    assert_eq!(after_router.status, 200);
    let after_sequential = Client::new(sequential[replicas[0]].addr())
        .post("/solve", "application/json", solve)
        .unwrap();
    // strip every wall-clock field (top level and per round) before
    // comparing
    fn strip_elapsed(v: &Value) -> Value {
        match v {
            Value::Arr(items) => Value::Arr(items.iter().map(strip_elapsed).collect()),
            Value::Obj(members) => Value::Obj(
                members
                    .iter()
                    .filter(|(k, _)| k.as_str() != "elapsed_secs")
                    .map(|(k, v)| (k.clone(), strip_elapsed(v)))
                    .collect(),
            ),
            other => other.clone(),
        }
    }
    let strip = |s: &str| strip_elapsed(&json::parse(s).unwrap());
    assert_eq!(
        strip(&after_router.body_string()),
        strip(&after_sequential.body_string()),
        "post-mutate solve diverges"
    );

    router.shutdown();
    for b in concurrent.into_iter().chain(sequential) {
        b.shutdown();
    }
}

/// Partial failure: with one replica dead, the fan-out still applies
/// the operation on every live replica and reports the dead one as
/// status 0 instead of aborting at the first error.
#[test]
fn fan_out_attempts_every_replica_under_partial_failure() {
    let backends: Vec<Option<Server>> = start_backends(3).into_iter().map(Some).collect();
    let addrs: Vec<SocketAddr> = backends
        .iter()
        .map(|b| b.as_ref().unwrap().addr())
        .collect();
    let router = Router::start(RouterConfig {
        backends: addrs.clone(),
        replication: 2,
        health_interval_ms: 0,
        ..RouterConfig::default()
    })
    .expect("bind router");
    let mut client = Client::new(router.addr());

    let edges = clique_edges(5);
    assert_eq!(
        client
            .post("/graphs?name=part", "text/plain", edges.as_bytes())
            .unwrap()
            .status,
        201
    );
    let replicas = placement(router.addr(), "part");

    // kill the SECOND replica: the old sequential path would have hit
    // it after the first, the property is that the op still lands on
    // replica 0 and the dead one is reported, not skipped silently
    let mut backends = backends;
    backends[replicas[1]].take().unwrap().shutdown();

    let resp = client
        .post(
            "/graphs/part/mutate",
            "application/json",
            br#"{"insert":[[0,5]]}"#,
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_string());
    let header = resp.header("x-antruss-replicas").unwrap();
    let statuses: Vec<(usize, u16)> = header
        .split(',')
        .map(|p| {
            let (shard, status) = p.split_once(':').unwrap();
            (shard.parse().unwrap(), status.parse().unwrap())
        })
        .collect();
    assert_eq!(statuses.len(), 2, "{header}");
    assert_eq!(statuses[0], (replicas[0], 200), "{header}");
    assert_eq!(
        statuses[1],
        (replicas[1], 0),
        "dead replica must be attempted and reported: {header}"
    );
    // the surviving replica really applied it
    let metrics = Client::new(addrs[replicas[0]])
        .get("/metrics")
        .unwrap()
        .body_string();
    assert_eq!(metric(&metrics, "antruss_mutations_total"), 1);

    router.shutdown();
    for b in backends.into_iter().flatten() {
        b.shutdown();
    }
}

/// Streamed (paged) `/cache/dump` replay into a fresh backend produces
/// byte-for-byte the same cache as the buffered whole-dump replay.
#[test]
fn streamed_dump_replay_matches_buffered_replay_byte_for_byte() {
    let source = ServiceState::new(backend_config());
    let get = |path: &str| antruss::service::http::Request {
        method: "GET".to_string(),
        path: path.split('?').next().unwrap().to_string(),
        query: path
            .split_once('?')
            .map(|(_, q)| {
                q.split('&')
                    .map(|kv| {
                        let (k, v) = kv.split_once('=').unwrap();
                        (k.to_string(), v.to_string())
                    })
                    .collect()
            })
            .unwrap_or_default(),
        headers: Vec::new(),
        body: Vec::new(),
    };
    let post = |path: &str, body: &[u8]| antruss::service::http::Request {
        method: "POST".to_string(),
        path: path.split('?').next().unwrap().to_string(),
        query: path
            .split_once('?')
            .map(|(_, q)| {
                q.split('&')
                    .map(|kv| {
                        let (k, v) = kv.split_once('=').unwrap();
                        (k.to_string(), v.to_string())
                    })
                    .collect()
            })
            .unwrap_or_default(),
        headers: Vec::new(),
        body: body.to_vec(),
    };

    // populate: 3 graphs x 2 seeds = 6 cached outcomes
    for name in ["a", "b", "c"] {
        let resp = handle(
            &source,
            &post(&format!("/graphs?name={name}"), clique_edges(5).as_bytes()),
        );
        assert_eq!(resp.status, 201);
        for seed in [1, 2] {
            let body = format!("{{\"graph\":\"{name}\",\"b\":1,\"seed\":{seed}}}");
            assert_eq!(
                handle(&source, &post("/solve", body.as_bytes())).status,
                200
            );
        }
    }

    // buffered replay: one whole-dump GET, one whole-dump load
    let buffered_dump = handle(&source, &get("/cache/dump"));
    assert_eq!(buffered_dump.status, 200);
    let buffered_target = ServiceState::new(backend_config());
    let resp = handle(&buffered_target, &post("/cache/load", &buffered_dump.body));
    assert_eq!(resp.status, 200);

    // streamed replay: pages of 2 entries, loaded page by page
    let streamed_target = ServiceState::new(backend_config());
    let mut offset = 0usize;
    let mut pages = 0usize;
    loop {
        let resp = handle(
            &source,
            &get(&format!("/cache/dump?offset={offset}&limit=2")),
        );
        assert_eq!(resp.status, 200);
        let parsed = json::parse(std::str::from_utf8(&resp.body).unwrap()).unwrap();
        let total = parsed.get("total").unwrap().as_u64().unwrap() as usize;
        let entries = parsed.get("entries").unwrap().as_array().unwrap();
        if entries.is_empty() {
            break;
        }
        let payload = format!(
            "[{}]",
            entries
                .iter()
                .map(Value::to_json)
                .collect::<Vec<_>>()
                .join(",")
        );
        let resp = handle(&streamed_target, &post("/cache/load", payload.as_bytes()));
        assert_eq!(resp.status, 200);
        offset += entries.len();
        pages += 1;
        if offset >= total {
            break;
        }
    }
    assert!(pages >= 3, "6 entries at limit=2 must take >= 3 pages");

    // the two targets dump byte-for-byte identical caches
    let buffered_bytes = handle(&buffered_target, &get("/cache/dump")).body;
    let streamed_bytes = handle(&streamed_target, &get("/cache/dump")).body;
    assert_eq!(
        buffered_bytes, streamed_bytes,
        "streamed replay diverges from buffered replay"
    );
    assert!(!buffered_bytes.is_empty());
}
