//! Smoke tests for the experiment harness: every table/figure generator
//! must run end-to-end on quick configurations and emit its key markers.

use antruss_bench::exp::{self, ExpConfig};
use antruss_datasets::DatasetId;

fn quick(datasets: &[DatasetId], budget: usize) -> ExpConfig {
    let mut cfg = ExpConfig::quick();
    cfg.datasets = datasets.to_vec();
    cfg.budget = budget;
    cfg
}

#[test]
fn exp1_table3_smoke() {
    let report = exp::exp1(&quick(&[DatasetId::College], 3));
    assert!(report.contains("Table III"));
    assert!(report.contains("College"));
    assert!(report.contains("t(GAS)"));
}

#[test]
fn exp2_fig5_smoke() {
    let report = exp::exp2(&quick(&[DatasetId::Facebook], 2));
    assert!(report.contains("Fig. 5"));
    assert!(report.contains("Exact"));
}

#[test]
fn exp3_fig6_smoke() {
    let report = exp::exp3(&quick(&[DatasetId::Brightkite], 4));
    assert!(report.contains("Fig. 6"));
    assert!(report.contains("Rand"));
    assert!(report.contains("Tur"));
}

#[test]
fn exp4_fig7_smoke() {
    let report = exp::exp4(&quick(&[DatasetId::Gowalla], 3));
    assert!(report.contains("Fig. 7"));
    assert!(report.contains("Edge-deletion"));
}

#[test]
fn exp5_fig8_smoke() {
    let report = exp::exp5(&quick(&[DatasetId::College], 4));
    assert!(report.contains("Fig. 8"));
    assert!(report.contains("speedup"));
}

#[test]
fn exp6_fig9_smoke() {
    let report = exp::exp6(&quick(&[DatasetId::Patents], 2), false);
    assert!(report.contains("Fig. 9"));
    assert!(report.contains("vertices"));
    assert!(report.contains("edges"));
}

#[test]
fn exp7_table4_smoke() {
    let report = exp::exp7(&quick(&[DatasetId::College, DatasetId::Youtube], 2));
    assert!(report.contains("Table IV"));
    assert!(report.contains("Avg size"));
}

#[test]
fn exp8_fig10_smoke() {
    let report = exp::exp8(&quick(&[DatasetId::Facebook], 4));
    assert!(report.contains("Fig. 10"));
    assert!(report.contains("FR"));
}

#[test]
fn exp9_table5_smoke() {
    let report = exp::exp9(&quick(&[DatasetId::Gowalla], 3));
    assert!(report.contains("Table V"));
    assert!(report.contains("Fig. 11(a)"));
    assert!(report.contains("Fig. 11(b)"));
}

#[test]
fn exp10_cross_model_smoke() {
    let report = exp::exp10(&quick(&[DatasetId::College], 2));
    assert!(report.contains("cross-model"));
    assert!(report.contains("GAS (edge)"));
    assert!(report.contains("Coreness (vertex)"));
    assert!(report.contains("Resil(induced)"));
}

#[test]
fn exp11_parallel_smoke() {
    let report = exp::exp11(&quick(&[DatasetId::College], 2));
    assert!(report.contains("parallel candidate scan"));
    assert!(report.contains("speedup(4)"));
}
