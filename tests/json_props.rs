//! Property tests for `antruss_core::json`: the escaping shared by
//! `Outcome::to_json` and the service round-trips arbitrary strings —
//! quotes, backslashes and control characters `\u{0}`–`\u{1f}` included —
//! and parsing never panics on arbitrary bytes.

use antruss::atr::json::{self, quoted, Value};
use proptest::prelude::*;

/// Decodes a generated `Vec<u32>` into a string exercising the escaping
/// edge cases: the low code points (controls, quote, backslash) are
/// heavily over-represented relative to uniform `char` sampling.
fn decode_string(raw: &[u32]) -> String {
    raw.iter()
        .map(|&v| {
            let v = v % 0x250;
            match v {
                // 0x00–0x1f: the control characters that must escape
                0x20 => '"',
                0x21 => '\\',
                0x22 => '/',
                v => char::from_u32(v).unwrap_or('\u{fffd}'),
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn escaped_strings_round_trip(raw in prop::collection::vec(0u32..0x250, 0..64)) {
        let original = decode_string(&raw);
        let literal = quoted(&original);
        let parsed = json::parse(&literal);
        prop_assert!(parsed.is_ok(), "quoted {original:?} unparseable: {literal}");
        prop_assert_eq!(parsed.unwrap(), Value::Str(original));
    }

    #[test]
    fn escaping_embeds_safely_in_objects(raw in prop::collection::vec(0u32..0x250, 0..32)) {
        let original = decode_string(&raw);
        let doc = format!("{{\"k\":{}}}", quoted(&original));
        let parsed = json::parse(&doc);
        prop_assert!(parsed.is_ok(), "object with {original:?} unparseable: {doc}");
        let v = parsed.unwrap();
        prop_assert_eq!(
            v.get("k").and_then(Value::as_str),
            Some(original.as_str())
        );
    }

    #[test]
    fn parser_never_panics_on_arbitrary_ascii(raw in prop::collection::vec(0u32..128, 0..48)) {
        let input: String = raw
            .iter()
            .map(|&v| char::from_u32(v).unwrap_or('?'))
            .collect();
        // any Result is fine; panicking or hanging is the failure mode
        let _ = json::parse(&input);
    }

    #[test]
    fn value_serialization_round_trips(nums in prop::collection::vec(0u32..10_000, 1..16)) {
        let arr = Value::Arr(nums.iter().map(|&n| Value::Num(n as f64)).collect());
        let parsed = json::parse(&arr.to_json());
        prop_assert!(parsed.is_ok());
        prop_assert_eq!(parsed.unwrap(), arr);
    }
}

#[test]
fn outcome_json_parses_with_the_shared_parser() {
    use antruss::atr::engine::{registry, RunConfig};
    use antruss::graph::gen::gnm;

    let g = gnm(25, 90, 3);
    let out = registry()
        .get("gas")
        .unwrap()
        .run(&g, &RunConfig::new(2))
        .unwrap();
    let v = json::parse(&out.to_json()).expect("Outcome::to_json is valid JSON");
    assert_eq!(v.get("solver").and_then(Value::as_str), Some("gas"));
    assert_eq!(
        v.get("total_gain").and_then(Value::as_u64),
        Some(out.total_gain)
    );
}
