//! End-to-end integration across the truss and core substrates — the
//! assertions behind the Exp-10 cross-model story, pinned at test scale.

use antruss::atr::baselines::akt::akt_greedy;
use antruss::atr::stability::{
    induced_resilience_gain, resilience_gain, vertex_induced_resilience_gain,
    vertex_resilience_gain,
};
use antruss::atr::{Gas, GasConfig};
use antruss::graph::gen::{social_network, SocialParams};
use antruss::graph::EdgeSet;
use antruss::kcore::{core_decompose, olak_greedy, AnchoredCoreness};
use antruss::truss::decompose;

fn test_graph(seed: u64) -> antruss::graph::CsrGraph {
    social_network(&SocialParams {
        n: 250,
        target_edges: 1_100,
        attach: 4,
        closure: 0.6,
        planted: vec![8, 6],
        onions: vec![],
        seed,
    })
}

/// GAS's induced resilience equals its Definition-4 gain: every follower
/// survives exactly the extra thresholds its +1 trussness buys, and the
/// anchors themselves are excluded from both sides.
#[test]
fn gas_induced_resilience_equals_definition_gain() {
    for seed in [3, 17] {
        let g = test_graph(seed);
        let gas = Gas::new(&g, GasConfig::default()).run(4);
        let set = EdgeSet::from_iter(g.num_edges(), gas.anchors.iter().copied());
        assert_eq!(
            induced_resilience_gain(&g, &set),
            gas.total_gain,
            "seed {seed}"
        );
        // raw resilience adds the anchors' own survival subsidy on top
        assert!(resilience_gain(&g, &set) >= gas.total_gain, "seed {seed}");
    }
}

/// Vertex-anchoring raw resilience always dominates its induced variant —
/// the direct star subsidy is non-negative by construction.
#[test]
fn vertex_raw_resilience_dominates_induced() {
    let g = test_graph(29);
    let info = decompose(&g);
    let akt = akt_greedy(&g, &info.trussness, 4, 3, 16);
    let raw = vertex_resilience_gain(&g, &akt.anchors);
    let induced = vertex_induced_resilience_gain(&g, &akt.anchors);
    assert!(raw >= induced, "raw {raw} < induced {induced}");
}

/// The anchored-coreness greedy beats OLAK in its own currency when OLAK
/// is pinned to one k and coreness may roam — the global-vs-local contrast
/// the ATR paper draws for trusses, reproduced for cores.
#[test]
fn global_coreness_greedy_at_least_matches_fixed_k_olak() {
    let g = test_graph(41);
    let core = core_decompose(&g);
    let b = 3;
    let cor = AnchoredCoreness::new(&g).run(b);
    for k in 2..=core.k_max {
        let olak = olak_greedy(&g, k, b);
        // OLAK's core growth at level k counts (k-1)-shell followers; each
        // is one unit of coreness gain, so the global greedy's total gain
        // must be at least any single level's follower harvest.
        let olak_follower_gain: usize = olak.followers_per_round.iter().sum();
        assert!(
            cor.total_gain >= olak_follower_gain as u64,
            "k={k}: coreness greedy {} < OLAK followers {olak_follower_gain}",
            cor.total_gain
        );
    }
}

/// Spending the budget with the core-model selector must never *beat* GAS
/// in GAS's own currency (trussness gain of edge anchors vs the truss gain
/// their vertex anchors induce) on these analogues — the quantitative form
/// of "core methods provide limited solutions for our problem".
#[test]
fn core_model_selection_does_not_beat_gas_in_truss_currency() {
    for seed in [7, 23] {
        let g = test_graph(seed);
        let b = 4;
        let gas = Gas::new(&g, GasConfig::default()).run(b);
        let cor = AnchoredCoreness::new(&g).run(b);
        let cor_truss = vertex_induced_resilience_gain(&g, &cor.anchors);
        assert!(
            gas.total_gain >= cor_truss,
            "seed {seed}: GAS {} vs coreness-selected induced {cor_truss}",
            gas.total_gain
        );
    }
}
