//! Property-based tests of the dynamic truss maintenance substrate:
//! arbitrary insert/delete sequences must stay bit-identical to scratch
//! decomposition.

use antruss::graph::{CsrGraph, EdgeId, GraphBuilder};
use antruss::truss::{decompose_with, DecomposeOptions, DynamicTruss};
use proptest::prelude::*;

fn graph_from_pairs(pairs: &[(u8, u8)]) -> CsrGraph {
    let mut b = GraphBuilder::new();
    for &(u, v) in pairs {
        b.add_edge(u as u64, v as u64);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn update_sequences_match_scratch(
        pairs in prop::collection::vec((0u8..22, 0u8..22), 5..120),
        flips in prop::collection::vec(0usize..1000, 1..40),
    ) {
        let g = graph_from_pairs(&pairs);
        prop_assume!(g.num_edges() > 0);
        let m = g.num_edges();
        let mut dt = DynamicTruss::new(&g);
        for &f in &flips {
            let e = EdgeId((f % m) as u32);
            if dt.is_alive(e) {
                dt.remove_edge(e);
            } else {
                dt.insert_edge(e);
            }
        }
        let scratch = decompose_with(&g, DecomposeOptions {
            subset: Some(dt.alive()),
            anchors: None,
        });
        prop_assert_eq!(&dt.info().trussness, &scratch.trussness);
        prop_assert_eq!(&dt.info().layer, &scratch.layer);
        prop_assert_eq!(dt.info().k_max, scratch.k_max);
    }

    #[test]
    fn removal_never_raises_and_insertion_never_lowers(
        pairs in prop::collection::vec((0u8..20, 0u8..20), 5..100),
        pick in 0usize..1000,
    ) {
        let g = graph_from_pairs(&pairs);
        prop_assume!(g.num_edges() > 0);
        let m = g.num_edges();
        let e = EdgeId((pick % m) as u32);
        let mut dt = DynamicTruss::new(&g);
        let before = dt.info().trussness.clone();
        dt.remove_edge(e);
        for f in g.edges() {
            if f == e {
                continue;
            }
            prop_assert!(dt.info().t(f) <= before[f.idx()], "deletion raised {f:?}");
        }
        dt.insert_edge(e);
        prop_assert_eq!(&dt.info().trussness, &before, "round trip must restore");
    }

    #[test]
    fn batch_updates_match_scratch(
        pairs in prop::collection::vec((0u8..20, 0u8..20), 5..110),
        batch in prop::collection::vec(0usize..1000, 1..20),
    ) {
        let g = graph_from_pairs(&pairs);
        prop_assume!(g.num_edges() > 0);
        let m = g.num_edges();
        let edges: Vec<EdgeId> = batch.iter().map(|&f| EdgeId((f % m) as u32)).collect();
        let mut dt = DynamicTruss::new(&g);
        dt.remove_edges(edges.iter().copied());
        let scratch = decompose_with(&g, DecomposeOptions {
            subset: Some(dt.alive()),
            anchors: None,
        });
        prop_assert_eq!(&dt.info().trussness, &scratch.trussness, "after batch remove");
        dt.insert_edges(edges);
        let restored = decompose_with(&g, DecomposeOptions {
            subset: Some(dt.alive()),
            anchors: None,
        });
        prop_assert_eq!(&dt.info().trussness, &restored.trussness, "after batch insert");
        prop_assert_eq!(&dt.info().layer, &restored.layer);
    }

    #[test]
    fn stats_are_consistent(
        pairs in prop::collection::vec((0u8..18, 0u8..18), 5..90),
        pick in 0usize..1000,
    ) {
        let g = graph_from_pairs(&pairs);
        prop_assume!(g.num_edges() > 0);
        let m = g.num_edges();
        let e = EdgeId((pick % m) as u32);
        let mut dt = DynamicTruss::new(&g);
        let stats = dt.remove_edge(e).expect("alive");
        prop_assert!(stats.changed <= stats.recomputed);
        prop_assert!(stats.recomputed < m, "re-peel must exclude the frozen stratum... or at least the removed edge");
    }
}
