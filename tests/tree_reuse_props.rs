//! Property-based invariants of the truss-component tree and the
//! follower-reuse machinery (Lemmas 4–5 territory).

use antruss::atr::followers::FollowerSearch;
use antruss::atr::reuse::{anchor_with_reuse, InvalidationPolicy};
use antruss::atr::tree::sla;
use antruss::atr::{AtrState, TrussTree};
use antruss::graph::{CsrGraph, EdgeId, GraphBuilder};
use proptest::prelude::*;
use std::collections::BTreeMap;

fn graph_from_pairs(pairs: &[(u8, u8)]) -> CsrGraph {
    let mut b = GraphBuilder::new();
    for &(u, v) in pairs {
        b.add_edge(u as u64, v as u64);
    }
    b.build()
}

fn partition(tree: &TrussTree, fs: &[EdgeId]) -> Vec<(u32, Vec<EdgeId>)> {
    let mut m: BTreeMap<u32, Vec<EdgeId>> = BTreeMap::new();
    for &f in fs {
        m.entry(tree.id_of_edge(f).expect("follower in tree"))
            .or_default()
            .push(f);
    }
    m.into_iter().collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn tree_is_a_valid_partition(pairs in prop::collection::vec((0u8..24, 0u8..24), 1..140)) {
        let g = graph_from_pairs(&pairs);
        let st = AtrState::new(&g);
        let tree = TrussTree::build(&g, &st.t, &st.anchors);
        tree.assert_valid(&g, &st.t, &st.anchors);
    }

    #[test]
    fn lemma4_followers_live_in_sla_nodes(pairs in prop::collection::vec((0u8..22, 0u8..22), 5..130)) {
        let g = graph_from_pairs(&pairs);
        prop_assume!(g.num_edges() > 0);
        let st = AtrState::new(&g);
        let tree = TrussTree::build(&g, &st.t, &st.anchors);
        let mut fs = FollowerSearch::new(g.num_edges());
        for x in g.edges() {
            let out = fs.followers(&st, x);
            if out.followers.is_empty() {
                continue;
            }
            let sla_x = sla(&g, &st.t, &st.anchors, &tree, x);
            for &f in &out.followers {
                let id = tree.id_of_edge(f).expect("follower in tree");
                prop_assert!(
                    sla_x.contains(&id),
                    "Lemma 4 violated: follower {:?} of {:?} in node {} ∉ sla {:?}",
                    g.endpoints(f), g.endpoints(x), id, sla_x
                );
            }
        }
    }

    #[test]
    fn reuse_refresh_equals_full_refresh(
        pairs in prop::collection::vec((0u8..20, 0u8..20), 10..130),
        picks in prop::collection::vec(0usize..1000, 1..4),
    ) {
        let g = graph_from_pairs(&pairs);
        prop_assume!(g.num_edges() >= 4);
        let m = g.num_edges();
        let mut fast = AtrState::new(&g);
        let mut slow = AtrState::new(&g);
        let mut tree = TrussTree::build(&g, &fast.t, &fast.anchors);
        let mut fs = FollowerSearch::new(m);
        let mut used = std::collections::BTreeSet::new();
        for &p in &picks {
            let x = EdgeId((p % m) as u32);
            if !used.insert(x) {
                continue;
            }
            let followers = fs.followers(&fast, x).followers;
            let by_node = partition(&tree, &followers);
            let sla_x = sla(&g, &fast.t, &fast.anchors, &tree, x);
            anchor_with_reuse(&mut fast, &mut tree, x, &by_node, &sla_x, InvalidationPolicy::PaperExact);
            slow.anchor_full_refresh(x);
            prop_assert_eq!(&fast.t, &slow.t, "trussness after {:?}", x);
            prop_assert_eq!(&fast.l, &slow.l, "layers after {:?}", x);
            tree.assert_valid(&g, &fast.t, &fast.anchors);
        }
    }

    #[test]
    fn subtree_edges_are_closed_components(pairs in prop::collection::vec((0u8..20, 0u8..20), 5..120)) {
        // Every subtree's edge set must contain every non-anchor edge whose
        // trussness is ≥ the node's K and which is triangle-connected to it
        // within that level (spot-checked via the follower search's oracle
        // usage: re-decomposing the subtree must reproduce global t).
        let g = graph_from_pairs(&pairs);
        prop_assume!(g.num_edges() > 0);
        let st = AtrState::new(&g);
        let tree = TrussTree::build(&g, &st.t, &st.anchors);
        for idx in tree.live_nodes() {
            let node_k = tree.nodes[idx as usize].k;
            let edges = tree.subtree_edges(idx);
            let mut subset = antruss::graph::EdgeSet::new(g.num_edges());
            for &e in &edges {
                subset.insert(e);
            }
            let info = antruss::truss::decompose_with(&g, antruss::truss::DecomposeOptions {
                subset: Some(&subset),
                anchors: None,
            });
            for &e in &edges {
                prop_assert!(st.t(e) >= node_k);
                prop_assert_eq!(
                    info.t(e), st.t(e),
                    "component-local decomposition must match global trussness"
                );
            }
        }
    }
}
