//! End-to-end test of `antruss serve`: a real server on an ephemeral
//! port, concurrent clients over real sockets, outcome parity with
//! direct engine dispatch, and cache behaviour observed via `/metrics`.

use std::collections::BTreeMap;
use std::sync::Arc;

use antruss::atr::engine::{registry, RunConfig};
use antruss::atr::json::{self, Value};
use antruss::service::{Client, Server, ServerConfig};

fn start_server() -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        cache_capacity: 64,
        max_body_bytes: 64 * 1024,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

/// Strips every `elapsed_secs` member (the only wall-clock-dependent
/// field) so two runs of a deterministic solver compare equal.
fn strip_elapsed(v: &Value) -> Value {
    match v {
        Value::Arr(items) => Value::Arr(items.iter().map(strip_elapsed).collect()),
        Value::Obj(members) => Value::Obj(
            members
                .iter()
                .filter(|(k, _)| k.as_str() != "elapsed_secs")
                .map(|(k, v)| (k.clone(), strip_elapsed(v)))
                .collect::<BTreeMap<_, _>>(),
        ),
        other => other.clone(),
    }
}

fn metric(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .unwrap_or_else(|| panic!("{name} missing in:\n{text}"))
        .parse()
        .unwrap()
}

#[test]
fn served_outcomes_match_direct_registry_dispatch() {
    let server = start_server();
    let addr = server.addr();

    // the same graph the service will generate for "college:0.05"
    let (id, scale) = antruss::datasets::DatasetId::from_spec("college:0.05").unwrap();
    let g = antruss::datasets::generate(id, scale);

    for (solver, body) in [
        ("gas", r#"{"graph":"college:0.05","solver":"gas","b":2}"#),
        (
            "rand:sup",
            r#"{"graph":"college:0.05","solver":"rand:sup","b":2,"seed":3,"trials":5}"#,
        ),
        ("lazy", r#"{"graph":"college:0.05","solver":"lazy","b":2}"#),
    ] {
        let mut client = Client::new(addr);
        let resp = client
            .post("/solve", "application/json", body.as_bytes())
            .unwrap();
        assert_eq!(resp.status, 200, "{solver}: {}", resp.body_string());

        let mut cfg = RunConfig::new(2)
            .trials(5)
            .exact_cap(100_000)
            .time_budget(std::time::Duration::from_secs(60));
        if solver.starts_with("rand") {
            cfg = cfg.seed(3);
        }
        let direct = registry().get(solver).unwrap().run(&g, &cfg).unwrap();

        let served = json::parse(&resp.body_string()).unwrap();
        let direct_json = json::parse(&direct.to_json()).unwrap();
        assert_eq!(
            strip_elapsed(&served),
            strip_elapsed(&direct_json),
            "{solver}: served outcome diverges from direct dispatch"
        );
    }
    server.shutdown();
}

#[test]
fn repeated_requests_hit_the_cache_byte_for_byte() {
    let server = start_server();
    let mut client = Client::new(server.addr());
    let body = r#"{"graph":"college:0.05","solver":"gas","b":2}"#.as_bytes();

    let first = client.post("/solve", "application/json", body).unwrap();
    assert_eq!(first.status, 200);
    assert_eq!(first.header("x-antruss-cache"), Some("miss"));

    let second = client.post("/solve", "application/json", body).unwrap();
    assert_eq!(second.status, 200);
    assert_eq!(second.header("x-antruss-cache"), Some("hit"));
    assert_eq!(
        first.body, second.body,
        "a cache hit must replay the exact bytes"
    );

    let metrics = client.get("/metrics").unwrap().body_string();
    assert_eq!(metric(&metrics, "antruss_cache_hits_total"), 1);
    assert_eq!(metric(&metrics, "antruss_cache_misses_total"), 1);
    // the hit is served from the cache: only the miss ran a solver, so
    // exactly one latency sample and one entry exist
    assert_eq!(metric(&metrics, "antruss_cache_entries"), 1);
    assert_eq!(metric(&metrics, "antruss_solve_requests_total"), 2);
    server.shutdown();
}

#[test]
fn concurrent_clients_agree_with_each_other() {
    let server = start_server();
    let addr = server.addr();
    let body_for = |seed: u64| {
        format!("{{\"graph\":\"college:0.05\",\"solver\":\"rand\",\"b\":2,\"seed\":{seed},\"trials\":4}}")
            .into_bytes()
    };

    // warm phase: populate the four keys sequentially so every cache
    // outcome below is deterministic (no same-key miss stampede)
    let mut warm = Client::new(addr);
    let mut expected: Vec<Vec<u8>> = Vec::new();
    for seed in 0..4u64 {
        let resp = warm
            .post("/solve", "application/json", &body_for(seed))
            .unwrap();
        assert_eq!(resp.status, 200, "{}", resp.body_string());
        expected.push(resp.body);
    }

    // storm phase: 8 concurrent clients re-request those keys and must
    // all get the warmed bytes back, whichever worker serves them
    let expected = Arc::new(expected);
    std::thread::scope(|scope| {
        for i in 0..8usize {
            let expected = Arc::clone(&expected);
            let body = body_for((i % 4) as u64);
            scope.spawn(move || {
                let mut client = Client::new(addr);
                let resp = client
                    .post("/solve", "application/json", &body)
                    .expect("solve over the wire");
                assert_eq!(resp.status, 200, "{}", resp.body_string());
                assert_eq!(resp.body, expected[i % 4], "same request, different bytes");
                assert_eq!(resp.header("x-antruss-cache"), Some("hit"));
            });
        }
    });

    let metrics = Client::new(addr).get("/metrics").unwrap().body_string();
    assert_eq!(metric(&metrics, "antruss_cache_misses_total"), 4);
    assert_eq!(metric(&metrics, "antruss_cache_hits_total"), 8);
    let report = server.shutdown();
    assert!(report.contains("solve(s)"), "{report}");
}

#[test]
fn wire_level_input_hardening() {
    let server = start_server();
    let addr = server.addr();
    let mut client = Client::new(addr);

    // 413: body over the configured cap (64 KiB here)
    let huge = vec![b'x'; 128 * 1024];
    let resp = client.post("/solve", "application/json", &huge).unwrap();
    assert_eq!(resp.status, 413);

    // 400: malformed JSON
    let resp = client
        .post("/solve", "application/json", b"{not json")
        .unwrap();
    assert_eq!(resp.status, 400);

    // 404: unknown solver, listing the valid names
    let resp = client
        .post(
            "/solve",
            "application/json",
            br#"{"graph":"college:0.05","solver":"frobnicate"}"#,
        )
        .unwrap();
    assert_eq!(resp.status, 404);
    assert!(resp.body_string().contains("gas"), "{}", resp.body_string());

    // 404: unknown route
    let resp = client.get("/so1ve").unwrap();
    assert_eq!(resp.status, 404);

    // the server stays healthy through all of the above
    let resp = client.get("/healthz").unwrap();
    assert_eq!(resp.status, 200);
    server.shutdown();
}

#[test]
fn graph_upload_then_solve_on_it() {
    let server = start_server();
    let mut client = Client::new(server.addr());

    // a 5-clique: every edge has trussness 5
    let mut edges = String::new();
    for u in 0..5u32 {
        for v in (u + 1)..5 {
            edges.push_str(&format!("{u} {v}\n"));
        }
    }
    let resp = client
        .post("/graphs?name=k5", "text/plain", edges.as_bytes())
        .unwrap();
    assert_eq!(resp.status, 201, "{}", resp.body_string());
    let parsed = json::parse(&resp.body_string()).unwrap();
    assert_eq!(parsed.get("edges").unwrap().as_u64(), Some(10));

    let resp = client
        .post(
            "/solve",
            "application/json",
            br#"{"graph":"k5","solver":"gas","b":1}"#,
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_string());

    let listing = client.get("/graphs").unwrap().body_string();
    let parsed = json::parse(&listing).unwrap();
    let loaded = parsed.get("loaded").unwrap().as_array().unwrap();
    assert!(loaded
        .iter()
        .any(|e| e.get("name").unwrap().as_str() == Some("k5")));
    server.shutdown();
}

#[test]
fn delete_graph_contract_over_the_wire() {
    let server = start_server();
    let mut client = Client::new(server.addr());
    client
        .post("/graphs?name=tri", "text/plain", b"0 1\n1 2\n2 0\n")
        .unwrap();
    // cache an outcome so deletion has something to purge
    assert_eq!(
        client
            .post("/solve", "application/json", br#"{"graph":"tri","b":1}"#)
            .unwrap()
            .status,
        200
    );
    assert_eq!(client.delete("/graphs/missing").unwrap().status, 404);
    assert_eq!(
        client.delete("/graphs/college").unwrap().status,
        409,
        "built-in dataset analogues are undeletable"
    );
    let ok = client.delete("/graphs/tri").unwrap();
    assert_eq!(ok.status, 200, "{}", ok.body_string());
    assert!(ok.body_string().contains("\"purged\":1"));
    assert_eq!(client.delete("/graphs/tri").unwrap().status, 404);
    assert_eq!(
        client
            .post("/solve", "application/json", br#"{"graph":"tri","b":1}"#)
            .unwrap()
            .status,
        404,
        "deleted graphs are unsolvable"
    );
    let metrics = client.get("/metrics").unwrap().body_string();
    assert_eq!(metric(&metrics, "antruss_cache_purged_entries_total"), 1);
    assert_eq!(metric(&metrics, "antruss_cache_entries"), 0);
    server.shutdown();
}

#[test]
fn metrics_report_cache_resident_bytes() {
    let server = start_server();
    let mut client = Client::new(server.addr());
    let metrics = client.get("/metrics").unwrap().body_string();
    assert_eq!(metric(&metrics, "antruss_cache_resident_bytes"), 0);

    let resp = client
        .post(
            "/solve",
            "application/json",
            br#"{"graph":"college:0.05","b":2}"#,
        )
        .unwrap();
    assert_eq!(resp.status, 200);
    let metrics = client.get("/metrics").unwrap().body_string();
    assert_eq!(
        metric(&metrics, "antruss_cache_resident_bytes"),
        resp.body.len() as u64,
        "one cached entry = that outcome's serialized bytes"
    );

    // purging makes the release observable
    assert_eq!(
        client
            .post("/cache/purge", "application/json", b"")
            .unwrap()
            .status,
        200
    );
    let metrics = client.get("/metrics").unwrap().body_string();
    assert_eq!(metric(&metrics, "antruss_cache_resident_bytes"), 0);
    server.shutdown();
}

#[test]
fn mutate_over_the_wire_invalidates_and_resolves() {
    let server = start_server();
    let mut client = Client::new(server.addr());
    client
        .post("/graphs?name=tri", "text/plain", b"0 1\n1 2\n2 0\n")
        .unwrap();
    let body = br#"{"graph":"tri","solver":"gas","b":1}"#;
    let stale = client.post("/solve", "application/json", body).unwrap();
    assert_eq!(stale.status, 200);

    // grow the triangle into K4 and verify the cached outcome died
    let resp = client
        .post(
            "/graphs/tri/mutate",
            "application/json",
            br#"{"insert":[[0,3],[1,3],[2,3]]}"#,
        )
        .unwrap();
    assert_eq!(resp.status, 200, "{}", resp.body_string());
    let parsed = json::parse(&resp.body_string()).unwrap();
    assert_eq!(parsed.get("k_max").unwrap().as_u64(), Some(4));
    assert_eq!(parsed.get("purged").unwrap().as_u64(), Some(1));

    let fresh = client.post("/solve", "application/json", body).unwrap();
    assert_eq!(fresh.header("x-antruss-cache"), Some("miss"));
    let outcome = json::parse(&fresh.body_string()).unwrap();
    // K4 is one anchor away from... any anchored edge gains: just check
    // the solve ran on 4 vertices / 6 edges via the graphs listing
    assert!(outcome.get("anchors").is_some(), "{}", fresh.body_string());
    let listing = client.get("/graphs").unwrap().body_string();
    assert!(listing.contains("\"mutated\""), "{listing}");
    assert_eq!(
        client
            .post(
                "/graphs/college/mutate",
                "application/json",
                br#"{"insert":[[0,1]]}"#
            )
            .unwrap()
            .status,
        409,
        "built-ins are immutable"
    );
    server.shutdown();
}

#[test]
fn shutdown_drains_and_reports() {
    let server = start_server();
    let addr = server.addr();
    let mut client = Client::new(addr);
    assert_eq!(client.get("/healthz").unwrap().status, 200);
    let report = server.shutdown();
    assert!(report.contains("request(s)"), "{report}");
    // the listener is gone: new connections fail
    assert!(Client::new(addr).get("/healthz").is_err());
}
