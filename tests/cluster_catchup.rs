//! Live cursor catch-up over real threads and sockets: a durable
//! backend joins a router, persists the cluster cursor riding the
//! fanned-out writes, restarts from disk after missing a mutation, and
//! re-joins advertising that cursor — the router replays only the
//! missed event tail, so untouched graphs keep their disk-recovered
//! state and warm cache instead of being re-streamed from peers.

use std::sync::atomic::Ordering;
use std::time::Duration;

use antruss::atr::json::{self, Value};
use antruss::cluster::{Router, RouterConfig};
use antruss::service::{Client, Server, ServerConfig};

/// Strips every `elapsed_secs` member (the only wall-clock-dependent
/// field) so freshly computed outcomes compare deterministically.
fn strip_elapsed(v: &Value) -> Value {
    match v {
        Value::Arr(items) => Value::Arr(items.iter().map(strip_elapsed).collect()),
        Value::Obj(members) => Value::Obj(
            members
                .iter()
                .filter(|(k, _)| k.as_str() != "elapsed_secs")
                .map(|(k, v)| (k.clone(), strip_elapsed(v)))
                .collect(),
        ),
        other => other.clone(),
    }
}

fn same_outcome(a: &[u8], b: &[u8]) -> bool {
    let a = String::from_utf8_lossy(a);
    let b = String::from_utf8_lossy(b);
    strip_elapsed(&json::parse(&a).unwrap()) == strip_elapsed(&json::parse(&b).unwrap())
}

/// A small deterministic test graph: K5 plus a pendant edge, as a SNAP
/// edge list. `extra` lets each graph differ so checksums do too.
fn edge_list(extra: &str) -> Vec<u8> {
    let mut body = String::new();
    for u in 0..5u32 {
        for v in (u + 1)..5 {
            body.push_str(&format!("{u} {v}\n"));
        }
    }
    body.push_str(extra);
    body.into_bytes()
}

fn solve_body(graph: &str) -> Vec<u8> {
    format!("{{\"graph\":\"{graph}\",\"solver\":\"gas\",\"b\":1}}").into_bytes()
}

fn register(router: std::net::SocketAddr, name: &str, extra: &str) {
    let resp = Client::new(router)
        .post(
            &format!("/graphs?name={name}"),
            "text/plain",
            &edge_list(extra),
        )
        .expect("register");
    assert_eq!(resp.status, 201, "register {name}: {}", resp.body_string());
}

fn solve(addr: std::net::SocketAddr, graph: &str) -> (Vec<u8>, String) {
    let resp = Client::new(addr)
        .post("/solve", "application/json", &solve_body(graph))
        .expect("solve");
    assert_eq!(resp.status, 200, "solve {graph}: {}", resp.body_string());
    let cache = resp.header("x-antruss-cache").unwrap_or("").to_string();
    (resp.body, cache)
}

#[test]
fn durable_member_rejoins_via_event_tail_catchup() {
    let data_dir = std::env::temp_dir().join(format!("antruss-catchup-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);

    // deterministic harness: no background health thread, manual joins
    let router = Router::start(RouterConfig {
        replication: 2,
        health_interval_ms: 0,
        ..RouterConfig::default()
    })
    .expect("router");

    let durable_config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        cache_capacity: 64,
        data_dir: Some(data_dir.to_string_lossy().into_owned()),
        ..ServerConfig::default()
    };
    let memory_config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        cache_capacity: 64,
        ..ServerConfig::default()
    };

    let a = Server::start(durable_config.clone()).expect("backend a");
    let b = Server::start(memory_config).expect("backend b");
    let a_addr = a.addr();
    let b_addr = b.addr();
    for addr in [a_addr, b_addr] {
        let resp = Client::new(router.addr())
            .post(
                "/members",
                "application/json",
                format!("{{\"addr\":\"{addr}\"}}").as_bytes(),
            )
            .expect("join");
        assert_eq!(resp.status, 201, "join {addr}: {}", resp.body_string());
        assert!(
            resp.body_string().contains("\"warm\":\"full\""),
            "a cursor-less join takes the full warm path: {}",
            resp.body_string()
        );
    }

    // three graphs through the router; R=2 over two members fans every
    // write to both, and the cluster-cursor headers riding the fan-out
    // persist (epoch, seq) in backend a's store
    register(router.addr(), "ga", "0 5\n");
    register(router.addr(), "gb", "1 5\n");
    register(router.addr(), "gc", "2 5\n");
    let (ref_ga, _) = solve(router.addr(), "ga");
    let (ref_gb, _) = solve(router.addr(), "gb");
    let (ref_gc, _) = solve(router.addr(), "gc");

    // seed backend a's own outcome cache so the warm-restart +
    // catch-up path has something observable to preserve
    let (direct_gb, _) = solve(a_addr, "gb");
    assert!(
        same_outcome(&direct_gb, &ref_gb),
        "direct solve matches the routed one"
    );
    let (_, second) = solve(a_addr, "gb");
    assert_eq!(second, "hit", "backend a's cache is seeded");

    let store = a
        .state()
        .store
        .clone()
        .expect("durable backend exposes its store");
    let cursor = store
        .load_cluster_cursor()
        .expect("fanned-out writes persisted a cluster cursor");
    assert_eq!(
        cursor.0,
        router.state().events.epoch(),
        "the persisted epoch is the router's"
    );
    drop(store); // release the data-dir lock so the restart can take it

    // backend a leaves gracefully (the shutdown dumps its warm cache)
    // and misses a mutation of ga
    let resp = Client::new(router.addr())
        .delete(&format!("/members/{a_addr}"))
        .expect("leave");
    assert_eq!(resp.status, 200, "leave: {}", resp.body_string());
    a.shutdown();
    let resp = Client::new(router.addr())
        .post(
            "/graphs/ga/mutate",
            "application/json",
            b"{\"insert\":[[3,6],[4,6]]}",
        )
        .expect("mutate");
    assert_eq!(resp.status, 200, "mutate: {}", resp.body_string());
    let (ref_ga2, _) = solve(router.addr(), "ga");
    assert!(
        !same_outcome(&ref_ga2, &ref_ga),
        "the mutation changed the outcome"
    );

    // restart from the same data dir: the catalog recovers ga (stale),
    // gb and gc (current), the cache dump reloads, and the re-join
    // advertises the persisted cursor — exactly what `antruss serve
    // --join --data-dir` does
    let a = Server::start(durable_config).expect("backend a restart");
    let a_addr = a.addr();
    let (epoch, seq) = a
        .state()
        .store
        .clone()
        .expect("store survives restart")
        .load_cluster_cursor()
        .expect("cursor survives restart");
    assert_eq!((epoch, seq), cursor);

    let warmed_before = router.state().warmed_graphs.load(Ordering::Relaxed);
    let skipped_before = router.state().warm_skipped_graphs.load(Ordering::Relaxed);
    let resp = Client::new(router.addr())
        .post(
            "/members",
            "application/json",
            format!("{{\"addr\":\"{a_addr}\",\"epoch\":\"{epoch}\",\"cursor\":{seq}}}").as_bytes(),
        )
        .expect("rejoin");
    assert_eq!(resp.status, 201, "rejoin: {}", resp.body_string());
    let body = resp.body_string();
    assert!(
        body.contains("\"warm\":\"catchup\""),
        "the advertised cursor takes the catch-up path: {body}"
    );
    assert_eq!(router.state().catchup_joins.load(Ordering::Relaxed), 1);

    // the missed tail touches gc (the cursor undercounts by the write
    // in flight when it was stamped) and ga (the mutation): gc's
    // content matches and is skipped, ga is re-synced from b — gb is
    // never touched, let alone re-streamed
    let warmed = router.state().warmed_graphs.load(Ordering::Relaxed) - warmed_before;
    let skipped = router.state().warm_skipped_graphs.load(Ordering::Relaxed) - skipped_before;
    assert_eq!(
        (warmed, skipped),
        (1, 1),
        "catch-up re-syncs only the mutated graph: {body}"
    );

    // gb kept its disk-recovered warm cache through restart + catch-up:
    // a replay of the same cache entry is byte-identical
    let (cached_gb, verdict) = solve(a_addr, "gb");
    assert_eq!(cached_gb, direct_gb, "a cache replay is byte-identical");
    assert_eq!(
        verdict, "hit",
        "an untouched graph's warm cache survives catch-up"
    );

    // ga was re-synced: its cached pre-mutation outcome is gone, and
    // the catch-up's fill pass replayed b's post-mutation entry — the
    // member answers a *hit* with the peer's exact bytes
    let (caught_up_ga, verdict) = solve(a_addr, "ga");
    assert_eq!(
        caught_up_ga, ref_ga2,
        "the fill pass replays the peer's post-mutation bytes"
    );
    assert_eq!(verdict, "hit", "the replayed entry serves as a hit");
    let (routed_ga, _) = solve(router.addr(), "ga");
    let (routed_gc, _) = solve(router.addr(), "gc");
    assert!(same_outcome(&routed_ga, &ref_ga2));
    assert!(same_outcome(&routed_gc, &ref_gc));

    // give the keep-alive sockets a beat to drain before teardown
    std::thread::sleep(Duration::from_millis(50));
    a.shutdown();
    b.shutdown();
    router.shutdown();
    let _ = std::fs::remove_dir_all(&data_dir);
}
