//! Property tests for graph I/O: text and binary round trips preserve the
//! graph exactly, and malformed inputs fail loudly instead of silently
//! truncating.

use antruss::graph::{io, io_binary, CsrGraph, GraphBuilder};
use proptest::prelude::*;

fn graph_from_pairs(pairs: &[(u16, u16)]) -> CsrGraph {
    let mut b = GraphBuilder::new();
    for &(u, v) in pairs {
        b.add_edge(u as u64, v as u64);
    }
    b.build()
}

fn graphs_equal(a: &CsrGraph, b: &CsrGraph) -> bool {
    if a.num_vertices() != b.num_vertices() || a.num_edges() != b.num_edges() {
        return false;
    }
    let mut ea: Vec<(u32, u32)> = a
        .edges()
        .map(|e| {
            let (u, v) = a.endpoints(e);
            (u.0, v.0)
        })
        .collect();
    let mut eb: Vec<(u32, u32)> = b
        .edges()
        .map(|e| {
            let (u, v) = b.endpoints(e);
            (u.0, v.0)
        })
        .collect();
    ea.sort_unstable();
    eb.sort_unstable();
    ea == eb
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn text_roundtrip(pairs in prop::collection::vec((0u16..300, 0u16..300), 0..400)) {
        let g = graph_from_pairs(&pairs);
        let dir = std::env::temp_dir().join(format!("antruss-io-prop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.txt");
        io::write_edge_list_path(&g, path.to_str().unwrap()).unwrap();
        let back = io::read_edge_list_path(path.to_str().unwrap()).unwrap();
        // vertex count can differ (text format loses trailing isolated
        // vertices); edge multiset must survive exactly
        prop_assert_eq!(g.num_edges(), back.num_edges());
        let trussness_a = antruss::truss::decompose(&g).trussness;
        let trussness_b = antruss::truss::decompose(&back).trussness;
        let mut a = trussness_a;
        let mut b = trussness_b;
        a.sort_unstable();
        b.sort_unstable();
        prop_assert_eq!(a, b, "truss structure must survive the round trip");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn binary_roundtrip(pairs in prop::collection::vec((0u16..300, 0u16..300), 0..400)) {
        let g = graph_from_pairs(&pairs);
        let dir = std::env::temp_dir().join(format!("antruss-io-bprop-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("roundtrip.bin");
        io_binary::write_binary_path(&g, path.to_str().unwrap()).unwrap();
        let back = io_binary::read_binary_path(path.to_str().unwrap()).unwrap();
        prop_assert!(graphs_equal(&g, &back), "binary format is lossless");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn truncated_binary_fails() {
    let g = graph_from_pairs(&[(0, 1), (1, 2), (0, 2)]);
    let dir = std::env::temp_dir().join(format!("antruss-io-trunc-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("trunc.bin");
    io_binary::write_binary_path(&g, path.to_str().unwrap()).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    for cut in [0, 1, bytes.len() / 2, bytes.len() - 1] {
        std::fs::write(&path, &bytes[..cut]).unwrap();
        assert!(
            io_binary::read_binary_path(path.to_str().unwrap()).is_err(),
            "truncation at {cut} bytes must be an error"
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn garbage_text_fails() {
    let dir = std::env::temp_dir().join(format!("antruss-io-garbage-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("garbage.txt");
    std::fs::write(&path, "0 1\nnot numbers here\n2 3\n").unwrap();
    assert!(io::read_edge_list_path(path.to_str().unwrap()).is_err());
    std::fs::remove_dir_all(&dir).ok();
}
