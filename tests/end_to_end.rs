//! End-to-end integration tests across all crates: dataset analogues in,
//! anchors out, with every layer's invariants checked along the way.

use antruss::atr::baselines::base::base_greedy;
use antruss::atr::baselines::base_plus::base_plus;
use antruss::atr::baselines::exact::exact;
use antruss::atr::baselines::random::{random_baseline, Pool};
use antruss::atr::{gain_of_anchor_set, Gas, GasConfig, ReusePolicy};
use antruss::datasets::{generate, DatasetId};
use antruss::graph::sample::ego_subgraph_with_edges;
use antruss::graph::EdgeSet;
use antruss::truss::{decompose, verify};

#[test]
fn college_analogue_pipeline() {
    let g = generate(DatasetId::College, 0.25);
    let info = decompose(&g);
    assert!(
        info.k_max >= 3,
        "College analogue must have truss structure"
    );

    let b = 5;
    let gas = Gas::new(&g, GasConfig::default()).run(b);
    assert_eq!(gas.anchors.len(), b);
    assert!(gas.total_gain > 0, "anchoring must help on a social graph");

    // The reported gain must be reproducible from the anchor set alone.
    let set = EdgeSet::from_iter(g.num_edges(), gas.anchors.iter().copied());
    assert_eq!(
        gas.total_gain,
        gain_of_anchor_set(&g, &info.trussness, &set)
    );
}

#[test]
fn gas_equals_base_plus_on_analogues() {
    for id in [DatasetId::College, DatasetId::Brightkite] {
        let g = generate(id, 0.08);
        let plus = base_plus(&g, 5);
        let gas = Gas::new(
            &g,
            GasConfig {
                reuse: ReusePolicy::PaperExact,
                ..GasConfig::default()
            },
        )
        .run(5);
        assert_eq!(plus.anchors, gas.anchors, "{id:?}");
        assert_eq!(plus.total_gain, gas.total_gain, "{id:?}");
    }
}

#[test]
fn greedy_hierarchy_base_equals_base_plus_and_beats_random() {
    let g = generate(DatasetId::College, 0.1);
    let b = 3;
    let base = base_greedy(&g, b, None);
    assert!(!base.timed_out);
    let plus = base_plus(&g, b);
    assert_eq!(base.anchors, plus.anchors);
    assert_eq!(base.total_gain, plus.total_gain);

    let rand = random_baseline(&g, Pool::All, b, 20, 3);
    assert!(
        plus.total_gain >= rand.gain,
        "greedy {} must beat the best of 20 random draws {}",
        plus.total_gain,
        rand.gain
    );
}

#[test]
fn exact_dominates_gas_on_ego_subgraphs() {
    let g = generate(DatasetId::Facebook, 0.1);
    let sub = ego_subgraph_with_edges(&g, 60, 140, 100, 5).expect("extraction");
    for b in 1..=2 {
        let ex = exact(&sub, b, None).expect("b <= m");
        let gas = Gas::new(&sub, GasConfig::default()).run(b);
        assert!(
            ex.gain >= gas.total_gain,
            "b={b}: exact {} < gas {}",
            ex.gain,
            gas.total_gain
        );
        // the paper's Exp-2 shape: GAS stays close to the optimum
        if ex.gain > 0 {
            let ratio = gas.total_gain as f64 / ex.gain as f64;
            assert!(
                ratio > 0.4,
                "b={b}: GAS/Exact ratio {ratio:.2} suspiciously low"
            );
        }
    }
}

#[test]
fn anchored_decomposition_consistent_after_gas() {
    // After a full GAS run, re-decomposing from scratch with the final
    // anchor set must agree with the incremental state.
    let g = generate(DatasetId::Gowalla, 0.03);
    let mut gas = Gas::new(
        &g,
        GasConfig {
            reuse: ReusePolicy::PaperExact,
            ..GasConfig::default()
        },
    );
    for _ in 0..4 {
        if gas.step().is_none() {
            break;
        }
    }
    let st = gas.state();
    let naive = verify::naive_trussness(&g, Some(&st.anchors));
    assert_eq!(st.t, naive, "incremental state diverged from scratch");
}

#[test]
fn conservative_policy_also_matches() {
    let g = generate(DatasetId::Youtube, 0.02);
    let off = base_plus(&g, 4);
    let cons = Gas::new(
        &g,
        GasConfig {
            reuse: ReusePolicy::Conservative,
            ..GasConfig::default()
        },
    )
    .run(4);
    assert_eq!(off.anchors, cons.anchors);
    assert_eq!(off.total_gain, cons.total_gain);
}

#[test]
fn lazy_greedy_tracks_exact_greedy_on_analogue() {
    use antruss::atr::baselines::lazy::lazy_greedy;
    let g = generate(DatasetId::College, 0.15);
    let b = 5;
    let lazy = lazy_greedy(&g, b);
    let exact_greedy = Gas::new(&g, GasConfig::default()).run(b);
    // heuristic under non-submodularity: allow slack but pin a floor
    assert!(
        10 * lazy.total_gain >= 8 * exact_greedy.total_gain,
        "lazy {} vs greedy {}",
        lazy.total_gain,
        exact_greedy.total_gain
    );
    // and it must actually save work after round 1
    let m = g.num_edges();
    assert!(lazy
        .evaluations_per_round
        .iter()
        .skip(1)
        .all(|&e| e < m / 4));
}

#[test]
fn threaded_gas_identical_on_analogue() {
    let g = generate(DatasetId::Brightkite, 0.05);
    let serial = Gas::new(
        &g,
        GasConfig {
            reuse: ReusePolicy::PaperExact,
            threads: 1,
        },
    )
    .run(4);
    let threaded = Gas::new(
        &g,
        GasConfig {
            reuse: ReusePolicy::PaperExact,
            threads: 4,
        },
    )
    .run(4);
    assert_eq!(serial.anchors, threaded.anchors);
    assert_eq!(serial.total_gain, threaded.total_gain);
}

#[test]
fn whatif_session_retraces_gas_on_analogue() {
    use antruss::atr::WhatIf;
    let g = generate(DatasetId::College, 0.1);
    let gas = Gas::new(&g, GasConfig::default()).run(3);
    let mut session = WhatIf::new(&g);
    let mut picked = Vec::new();
    for _ in 0..3 {
        let top = session.top(1);
        let Some(&(e, _)) = top.first() else { break };
        session.commit(e);
        picked.push(e);
    }
    assert_eq!(picked, gas.anchors);
    assert_eq!(session.total_gain(), gas.total_gain);
}
