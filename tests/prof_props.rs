//! Property and e2e tests for the continuous profiler (`obs::prof`).
//!
//! The profiler's one hard promise is that it never lies by omission:
//! the counting allocator is lossless under concurrency, phase-scoped
//! cost spans never attribute more than the thread actually spent, the
//! `/proc` stat parser survives every comm the kernel can hand it
//! (thread names may contain spaces and parens), and the lock-wait
//! instrumentation charges the locks that were actually taken — a
//! mutate-heavy workload shows catalog-write wait, a read-only one
//! shows none.

use antruss::obs::prof::{self, parse_stat_line};
use antruss::service::{Client, Server, ServerConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The counting allocator is lossless under concurrent alloc/free:
    /// each thread sees at least its own deliberate allocations in its
    /// own slot, every deliberate byte is counted on both sides, and
    /// the deliberate churn nets out to zero live bytes.
    #[test]
    fn counting_alloc_is_lossless_under_concurrency(
        sizes in prop::collection::vec(1usize..4096, 1..40),
        threads in 1usize..5,
    ) {
        let results: Vec<(u64, u64, u64, u64)> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let sizes = sizes.clone();
                    scope.spawn(move || {
                        // warm up thread-local slot assignment and any
                        // lazy runtime allocation before snapshotting
                        drop(Vec::<u8>::with_capacity(1));
                        let before = prof::thread_allocs();
                        for &size in &sizes {
                            // Vec<u8>::with_capacity is one allocation
                            // of exactly `size` bytes, freed on drop
                            drop(Vec::<u8>::with_capacity(size));
                        }
                        let after = prof::thread_allocs();
                        (
                            after.allocs - before.allocs,
                            after.alloc_bytes - before.alloc_bytes,
                            after.deallocs - before.deallocs,
                            after.dealloc_bytes - before.dealloc_bytes,
                        )
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        let expected_bytes: u64 = sizes.iter().map(|&s| s as u64).sum();
        for (allocs, alloc_bytes, deallocs, dealloc_bytes) in results {
            prop_assert!(allocs >= sizes.len() as u64,
                "thread saw {allocs} alloc(s), made at least {}", sizes.len());
            prop_assert!(alloc_bytes >= expected_bytes,
                "thread saw {alloc_bytes}B allocated, asked for {expected_bytes}B");
            prop_assert!(deallocs >= sizes.len() as u64);
            prop_assert!(dealloc_bytes >= expected_bytes);
            // everything deliberately allocated was freed, so the two
            // sides must net out (the thread slot only moves when this
            // thread allocates, and it allocated nothing persistent)
            prop_assert_eq!(alloc_bytes, dealloc_bytes,
                "deliberate churn must net to zero live bytes");
        }
    }

    /// The `/proc/*/stat` parser anchors on the *last* `)`, so comms
    /// containing spaces, parens, and digits all round-trip, and the
    /// reported ticks are exactly utime + stime.
    #[test]
    fn stat_parser_round_trips_arbitrary_comms(
        comm_bytes in prop::collection::vec(32u8..127, 1..16),
        utime in 0u64..1_000_000,
        stime in 0u64..1_000_000,
    ) {
        // any printable ASCII comm, spaces and parens included
        let comm: String = comm_bytes.iter().map(|&b| b as char).collect();
        let line = format!(
            "12345 ({comm}) S 1 12345 12345 0 -1 4194304 100 0 0 0 {utime} {stime} \
             0 0 20 0 1 0 100 1000000 10 18446744073709551615"
        );
        let parsed = parse_stat_line(&line);
        prop_assert_eq!(parsed, Some((comm.to_string(), utime + stime)));
    }

    /// Phase-scoped attribution can never exceed what the thread
    /// actually spent: the sum of the cost spans' allocated bytes is
    /// bounded by the thread's total between the same two snapshots.
    #[test]
    fn phase_costs_sum_to_at_most_the_thread_total(
        phase_sizes in prop::collection::vec(1usize..2048, 1..8),
    ) {
        std::thread::scope(|scope| {
            scope.spawn(|| {
                drop(Vec::<u8>::with_capacity(1)); // warm the slot
                antruss::obs::trace::take_costs(); // a clean request
                let request = prof::begin_cost();
                let mut keep = Vec::new();
                for &size in &phase_sizes {
                    let span = prof::cost_span("phase");
                    keep.push(Vec::<u8>::with_capacity(size));
                    drop(span);
                }
                let (_, total_bytes) = request.finish();
                // same-name spans coalesce into one accumulated entry
                let phases = antruss::obs::trace::take_costs();
                assert_eq!(phases.len(), 1);
                let attributed: u64 = phases.iter().map(|&(_, _, b)| b).sum();
                assert!(
                    attributed <= total_bytes,
                    "phases attribute {attributed}B, thread only spent {total_bytes}B"
                );
                // the deliberate allocations alone account for this much
                let deliberate: u64 = phase_sizes.iter().map(|&s| s as u64).sum();
                assert!(attributed >= deliberate,
                    "phases attribute {attributed}B, deliberately allocated {deliberate}B");
            }).join().unwrap();
        });
    }
}

/// A malformed stat line (no parens, parens reversed, too few fields)
/// parses to `None`, never panics.
#[test]
fn stat_parser_rejects_malformed_lines() {
    for bad in [
        "",
        "123",
        "123 comm S 1",
        "123 )comm( S 1 2 3",
        "123 (comm) S",
        "123 (comm",
    ] {
        assert_eq!(parse_stat_line(bad), None, "{bad:?}");
    }
}

fn start_server() -> Server {
    Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        cache_capacity: 64,
        ..ServerConfig::default()
    })
    .expect("bind ephemeral port")
}

fn catalog_write_stats() -> (u64, f64) {
    prof::lock_snapshots()
        .into_iter()
        .find(|l| l.name == "catalog_write")
        .map(|l| (l.acquisitions, l.wait_seconds))
        .unwrap_or((0, 0.0))
}

/// The lock-wait instrumentation charges the locks a workload actually
/// takes: a mutate-heavy run accumulates catalog-write acquisitions and
/// nonzero wait, while a read-only run over the same server adds no
/// catalog-write acquisitions at all.
#[test]
fn mutate_heavy_traffic_shows_catalog_lock_wait_reads_do_not() {
    let server = start_server();
    let addr = server.addr();

    // register a couple of graphs to mutate (these do take the lock —
    // that's fine, they happen before the baselines below)
    let mut client = Client::new(addr);
    for name in ["prof-a", "prof-b"] {
        let resp = client
            .post(
                &format!("/graphs?name={name}"),
                "text/plain",
                b"0 1\n1 2\n2 0\n0 3\n3 4\n4 0\n1 3\n2 4\n",
            )
            .expect("register");
        assert_eq!(resp.status, 201, "{}", resp.body_string());
    }

    // read-only phase: solves never touch the catalog write lock
    let (acq_before_reads, _) = catalog_write_stats();
    std::thread::scope(|scope| {
        for _ in 0..4 {
            scope.spawn(move || {
                let mut c = Client::new(addr);
                for seed in 0..10 {
                    let body = format!("{{\"graph\":\"prof-a\",\"b\":1,\"seed\":{seed}}}");
                    let resp = c
                        .post("/solve", "application/json", body.as_bytes())
                        .expect("solve");
                    assert_eq!(resp.status, 200, "{}", resp.body_string());
                }
            });
        }
    });
    let (acq_after_reads, _) = catalog_write_stats();
    assert_eq!(
        acq_after_reads, acq_before_reads,
        "read-only traffic must not take the catalog write lock"
    );

    // mutate-heavy phase: concurrent mutations serialize on the lock
    let (acq_before, wait_before) = catalog_write_stats();
    std::thread::scope(|scope| {
        for t in 0..4 {
            scope.spawn(move || {
                let mut c = Client::new(addr);
                let graph = if t % 2 == 0 { "prof-a" } else { "prof-b" };
                for i in 0..10u32 {
                    let v = 5 + t * 10 + i;
                    let body = format!("{{\"insert\":[[0,{v}]]}}");
                    let resp = c
                        .post(
                            &format!("/graphs/{graph}/mutate"),
                            "application/json",
                            body.as_bytes(),
                        )
                        .expect("mutate");
                    assert_eq!(resp.status, 200, "{}", resp.body_string());
                }
            });
        }
    });
    let (acq_after, wait_after) = catalog_write_stats();
    assert!(
        acq_after >= acq_before + 40,
        "40 mutations must take the catalog write lock: {acq_before} -> {acq_after}"
    );
    assert!(
        wait_after > wait_before,
        "mutate-heavy traffic must accumulate lock wait: {wait_before} -> {wait_after}"
    );

    // and the accumulated wait is visible where operators look for it
    let prof = client.get("/debug/prof").expect("/debug/prof");
    assert_eq!(prof.status, 200);
    let body = prof.body_string();
    assert!(body.contains("\"catalog_write\""), "{body}");

    server.shutdown();
}

/// Every `/solve` reply carries the request's own cost: the
/// `x-antruss-cost` header parses, and a cache miss (which runs the
/// solver) reports more allocated bytes than zero.
#[test]
fn solve_replies_carry_a_parseable_cost_header() {
    let server = start_server();
    let mut client = Client::new(server.addr());
    let resp = client
        .post(
            "/graphs?name=prof-cost",
            "text/plain",
            b"0 1\n1 2\n2 0\n0 3\n",
        )
        .expect("register");
    assert_eq!(resp.status, 201);
    let resp = client
        .post(
            "/solve",
            "application/json",
            br#"{"graph":"prof-cost","b":1,"seed":0}"#,
        )
        .expect("solve");
    assert_eq!(resp.status, 200);
    let header = resp
        .header(prof::COST_HEADER)
        .expect("every /solve reply carries x-antruss-cost");
    let (_cpu_us, alloc_bytes) = prof::parse_cost(header).expect("cost header parses");
    assert!(
        alloc_bytes > 0,
        "a solver run allocates: {header:?} reports zero bytes"
    );
    server.shutdown();
}
