//! Pinned regressions for the follower search (Algorithm 3).
//!
//! Each case is a minimized graph found by the differential proptests in
//! `followers_oracle.rs` that once disagreed with the anchored
//! re-decomposition oracle. They are kept as plain tests so the exact
//! scenario is re-checked on every run, not just when proptest happens to
//! generate it.

use antruss::atr::followers::{naive_followers, FollowerSearch};
use antruss::atr::AtrState;
use antruss::graph::{CsrGraph, EdgeId, GraphBuilder};

fn graph_from_pairs(pairs: &[(u8, u8)]) -> CsrGraph {
    let mut b = GraphBuilder::new();
    for &(u, v) in pairs {
        b.add_edge(u as u64, v as u64);
    }
    b.build()
}

fn assert_all_candidates_match(g: &CsrGraph, st: &AtrState<'_>) {
    let mut fs = FollowerSearch::new(g.num_edges());
    for x in g.edges() {
        if st.is_anchor(x) {
            continue;
        }
        let mut got = fs.followers(st, x).followers;
        got.sort();
        let want = naive_followers(st, x);
        assert_eq!(got, want, "candidate {:?}", g.endpoints(x));
    }
}

/// The retract cascade used to skip a decrement when *both* partners of a
/// counted triangle were marked eliminated before either retraction ran:
/// each side saw the other as "already eliminated, handled elsewhere" and
/// the survivor kept a phantom effective triangle. Found by proptest with
/// two pre-existing anchors; the mark-order ownership rule fixes it.
#[test]
fn retract_double_skip_with_two_anchors() {
    let pairs: &[(u8, u8)] = &[
        (10, 7),
        (5, 3),
        (18, 5),
        (0, 12),
        (6, 1),
        (6, 11),
        (15, 5),
        (5, 7),
        (8, 1),
        (9, 11),
        (15, 13),
        (3, 4),
        (9, 6),
        (9, 1),
        (4, 0),
        (4, 7),
        (19, 11),
        (15, 2),
        (19, 18),
        (19, 9),
        (11, 12),
        (18, 9),
        (0, 5),
        (16, 17),
        (4, 19),
        (10, 0),
        (12, 19),
        (10, 19),
        (3, 10),
        (4, 14),
        (12, 8),
        (4, 9),
        (3, 13),
        (6, 18),
        (10, 6),
        (0, 8),
        (11, 1),
        (15, 4),
        (9, 0),
        (11, 10),
        (15, 19),
        (6, 13),
        (3, 7),
        (5, 9),
        (3, 17),
        (14, 5),
        (4, 16),
        (5, 8),
        (19, 3),
        (11, 14),
        (13, 19),
        (13, 14),
        (16, 19),
        (15, 3),
        (3, 2),
        (1, 3),
        (18, 14),
        (1, 19),
        (7, 0),
        (2, 0),
        (0, 16),
        (14, 1),
        (16, 15),
    ];
    let g = graph_from_pairs(pairs);
    let m = g.num_edges();
    let mut st = AtrState::new(&g);
    st.anchor_full_refresh(EdgeId((257 % m) as u32));
    st.anchor_full_refresh(EdgeId((566 % m) as u32));
    assert_all_candidates_match(&g, &st);
}

/// Distilled core of the same bug without anchors: a triangle chain where
/// one seed survives on the strength of a triangle whose two partners both
/// die in one retract cascade. The survivor must be retracted too.
#[test]
fn retract_double_skip_minimal_shape() {
    // Triangle {a,b,c} where b and c each have exactly one more triangle
    // hanging off a shared weak edge, so eliminating the weak edge kills
    // b and c in one cascade; a's support must then drop below threshold.
    //
    //   a = (1,2), partners b = (1,3), c = (2,3) via apex 3
    //   b and c lean on triangles through vertex 4; (3,4) is weak.
    let pairs: &[(u8, u8)] = &[
        (1, 2),
        (1, 3),
        (2, 3),
        (1, 4),
        (2, 4),
        (3, 4),
        // second support triangle for (1,2) so it needs both
        (1, 5),
        (2, 5),
    ];
    let g = graph_from_pairs(pairs);
    let st = AtrState::new(&g);
    assert_all_candidates_match(&g, &st);
}
