//! Property tests for the cluster's consistent-hash ring: the balance
//! and minimal-disruption guarantees the serving tier leans on.

use std::collections::HashSet;

use antruss::cluster::{key_point, HashRing};
use proptest::prelude::*;

/// The fixed vnode count the properties pin. 256 points per backend
/// puts each backend's keyspace share within a few percent of fair
/// (σ ≈ 1/√256 ≈ 6%), so the ±25% balance bound below is ~4σ.
const VNODES: usize = 256;

fn keys_from(salt: u64, n: usize) -> Vec<String> {
    (0..n).map(|i| format!("graph-{salt:x}-{i}")).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Across 8 shards, every shard's key share stays within ±25% of
    /// fair (the ISSUE's bound; in practice it lands within a few
    /// percent).
    #[test]
    fn keys_spread_within_25_percent_of_fair_share(salt in 0u64..u64::MAX) {
        const SHARDS: usize = 8;
        const KEYS: usize = 8192;
        let ring = HashRing::new(SHARDS, VNODES);
        let mut counts = [0usize; SHARDS];
        for key in keys_from(salt, KEYS) {
            counts[ring.primary(&key).unwrap()] += 1;
        }
        let fair = KEYS as f64 / SHARDS as f64;
        for (shard, &n) in counts.iter().enumerate() {
            let skew = (n as f64 - fair).abs() / fair;
            prop_assert!(
                skew <= 0.25,
                "shard {shard} holds {n} of {KEYS} keys ({:.1}% off fair share {fair})",
                100.0 * skew
            );
        }
    }

    /// Growing N → N+1 backends moves at most ~1/N of the keys (the
    /// expectation is 1/(N+1); 2x slack absorbs arc-length variance) and
    /// never reshuffles a key between two surviving backends: a key
    /// either keeps its primary or moves to the *new* backend.
    #[test]
    fn resizing_moves_at_most_a_fair_fraction(salt in 0u64..u64::MAX) {
        const N: usize = 8;
        const KEYS: usize = 8192;
        let before = HashRing::new(N, VNODES);
        let after = HashRing::new(N + 1, VNODES);
        let mut moved = 0usize;
        for key in keys_from(salt, KEYS) {
            let old = before.primary(&key).unwrap();
            let new = after.primary(&key).unwrap();
            if old != new {
                moved += 1;
                prop_assert_eq!(
                    new, N,
                    "a moved key must land on the new backend, not reshuffle"
                );
            }
        }
        let fraction = moved as f64 / KEYS as f64;
        prop_assert!(
            fraction <= 2.0 / (N as f64 + 1.0),
            "resizing moved {:.1}% of keys (expected ~{:.1}%)",
            100.0 * fraction,
            100.0 / (N as f64 + 1.0)
        );
        prop_assert!(moved > 0, "the new backend must take some keys");
    }

    /// Replica sets are distinct, ordered prefixes: the R-replica set is
    /// always a prefix of the (R+1)-replica set, so growing the replica
    /// factor never relocates existing replicas.
    #[test]
    fn replica_sets_nest_as_prefixes(salt in 0u64..u64::MAX) {
        let ring = HashRing::new(6, VNODES);
        for key in keys_from(salt, 64) {
            let r2 = ring.replicas(&key, 2);
            let r3 = ring.replicas(&key, 3);
            prop_assert_eq!(&r3[..2], &r2[..], "R=2 must be a prefix of R=3");
            let distinct: HashSet<usize> = r3.iter().copied().collect();
            prop_assert_eq!(distinct.len(), 3, "replicas must be distinct");
        }
    }

    /// The key hash disperses: distinct keys collide on the full 64-bit
    /// circle essentially never at this sample size.
    #[test]
    fn key_points_do_not_collide(salt in 0u64..u64::MAX) {
        let keys = keys_from(salt, 4096);
        let points: HashSet<u64> = keys.iter().map(|k| key_point(k)).collect();
        prop_assert_eq!(points.len(), keys.len());
    }
}
