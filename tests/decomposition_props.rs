//! Property-based invariants of the truss-decomposition substrate.

use antruss::graph::{CsrGraph, EdgeSet, GraphBuilder};
use antruss::truss::{
    decompose, decompose_with, hull_sizes, k_truss_edge_set, precedes, verify, DecomposeOptions,
    ANCHOR_TRUSSNESS,
};
use proptest::prelude::*;

fn graph_from_pairs(pairs: &[(u8, u8)]) -> CsrGraph {
    let mut b = GraphBuilder::new();
    for &(u, v) in pairs {
        b.add_edge(u as u64, v as u64);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn decomposition_matches_naive(pairs in prop::collection::vec((0u8..26, 0u8..26), 1..150)) {
        let g = graph_from_pairs(&pairs);
        let info = decompose(&g);
        let naive = verify::naive_trussness(&g, None);
        prop_assert_eq!(&info.trussness, &naive);
    }

    #[test]
    fn every_truss_level_satisfies_support(pairs in prop::collection::vec((0u8..22, 0u8..22), 1..130)) {
        let g = graph_from_pairs(&pairs);
        let info = decompose(&g);
        for k in 2..=info.k_max {
            let tk = k_truss_edge_set(&info, k);
            prop_assert!(
                verify::satisfies_truss_condition(&g, &tk, k, None),
                "T_{} violates support", k
            );
        }
    }

    #[test]
    fn hulls_partition_and_layers_positive(pairs in prop::collection::vec((0u8..24, 0u8..24), 1..130)) {
        let g = graph_from_pairs(&pairs);
        let info = decompose(&g);
        let total: usize = hull_sizes(&info).iter().sum();
        prop_assert_eq!(total, g.num_edges());
        for e in g.edges() {
            prop_assert!(info.t(e) >= 2, "finite trussness is at least 2");
            prop_assert!(info.l(e) >= 1, "peel layers are 1-based");
        }
    }

    #[test]
    fn anchored_trussness_dominates_plain(
        pairs in prop::collection::vec((0u8..20, 0u8..20), 5..120),
        pick in 0usize..1000,
    ) {
        let g = graph_from_pairs(&pairs);
        prop_assume!(g.num_edges() > 0);
        let m = g.num_edges();
        let plain = decompose(&g);
        let mut anchors = EdgeSet::new(m);
        anchors.insert(antruss::graph::EdgeId((pick % m) as u32));
        let anchored = decompose_with(&g, DecomposeOptions {
            subset: None,
            anchors: Some(&anchors),
        });
        for e in g.edges() {
            if anchors.contains(e) {
                prop_assert_eq!(anchored.t(e), ANCHOR_TRUSSNESS);
            } else {
                prop_assert!(anchored.t(e) >= plain.t(e), "anchoring may never hurt");
                prop_assert!(anchored.t(e) <= plain.t(e) + 1, "Lemma 1: gain at most +1");
            }
        }
    }

    #[test]
    fn deletion_order_is_total_preorder(pairs in prop::collection::vec((0u8..20, 0u8..20), 1..100)) {
        let g = graph_from_pairs(&pairs);
        let info = decompose(&g);
        let t = &info.trussness;
        let l = &info.layer;
        for e1 in g.edges().take(30) {
            for e2 in g.edges().take(30) {
                // totality: at least one direction holds
                prop_assert!(
                    precedes(t, l, e1, e2) || precedes(t, l, e2, e1),
                    "≺ must be total over comparable edges"
                );
            }
        }
    }
}
