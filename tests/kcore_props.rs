//! Property tests for the k-core substrate and its relationship to the
//! truss substrate.

use antruss::graph::{CsrGraph, GraphBuilder, VertexId, VertexSet};
use antruss::kcore::{
    core_decompose, core_decompose_with, core_followers, naive_core_followers, ANCHOR_CORENESS,
};
use antruss::truss::decompose;
use proptest::prelude::*;

fn graph_from_pairs(pairs: &[(u8, u8)]) -> CsrGraph {
    let mut b = GraphBuilder::new();
    for &(u, v) in pairs {
        b.add_edge(u as u64, v as u64);
    }
    b.build()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn coreness_matches_oracle(pairs in prop::collection::vec((0u8..26, 0u8..26), 1..160)) {
        let g = graph_from_pairs(&pairs);
        let info = core_decompose(&g);
        let naive = antruss::kcore::verify::naive_coreness(&g, None);
        prop_assert_eq!(info.coreness, naive);
    }

    #[test]
    fn core_followers_match_oracle(
        pairs in prop::collection::vec((0u8..20, 0u8..20), 8..120),
        a1 in 0usize..1000,
    ) {
        let g = graph_from_pairs(&pairs);
        prop_assume!(g.num_vertices() >= 2);
        let n = g.num_vertices();
        let mut anchors = VertexSet::new(n);
        anchors.insert(VertexId((a1 % n) as u32));
        let info = core_decompose_with(&g, Some(&anchors));
        for x in g.vertices() {
            if anchors.contains(x) {
                continue;
            }
            let got = core_followers(&g, &info, &anchors, x);
            let want = naive_core_followers(&g, &anchors, x);
            prop_assert_eq!(got, want, "candidate {:?}", x);
        }
    }

    /// Every vertex of a k-truss edge sits in the (k−1)-core: coreness
    /// bounds trussness (`t(e) − 1 ≤ min(c(u), c(v))`). This ties the two
    /// substrates together and would catch systematic bias in either.
    #[test]
    fn trussness_bounded_by_coreness(
        pairs in prop::collection::vec((0u8..28, 0u8..28), 1..200)
    ) {
        let g = graph_from_pairs(&pairs);
        prop_assume!(g.num_edges() > 0);
        let truss = decompose(&g);
        let core = core_decompose(&g);
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            let t = truss.t(e);
            prop_assert!(
                t.saturating_sub(1) <= core.c(u) && t.saturating_sub(1) <= core.c(v),
                "edge {:?}: t={} but c({:?})={}, c({:?})={}",
                e, t, u, core.c(u), v, core.c(v)
            );
        }
    }

    /// Anchoring can only raise coreness, by at most 1, and never touches
    /// vertices below the anchor's own level.
    #[test]
    fn anchoring_vertex_monotone_and_bounded(
        pairs in prop::collection::vec((0u8..22, 0u8..22), 8..140),
        pick in 0usize..1000,
    ) {
        let g = graph_from_pairs(&pairs);
        prop_assume!(g.num_vertices() >= 2);
        let n = g.num_vertices();
        let x = VertexId((pick % n) as u32);
        let base = core_decompose(&g);
        let mut anchors = VertexSet::new(n);
        anchors.insert(x);
        let after = core_decompose_with(&g, Some(&anchors));
        for v in g.vertices() {
            if v == x {
                prop_assert_eq!(after.c(v), ANCHOR_CORENESS);
                continue;
            }
            prop_assert!(after.c(v) >= base.c(v), "coreness can never drop");
            prop_assert!(after.c(v) - base.c(v) <= 1, "gain is at most 1");
            if base.c(v) < base.c(x) {
                prop_assert_eq!(
                    after.c(v), base.c(v),
                    "vertices below the anchor's level are unaffected"
                );
            }
        }
    }

    /// Peel layers are a proper stratification: within one coreness level,
    /// a vertex in layer i+1 has at least one neighbour in layer ≤ i of
    /// the same level (otherwise it would have been deleted earlier).
    #[test]
    fn core_layers_are_contiguous(pairs in prop::collection::vec((0u8..24, 0u8..24), 1..150)) {
        let g = graph_from_pairs(&pairs);
        prop_assume!(g.num_vertices() > 0);
        let info = core_decompose(&g);
        for v in g.vertices() {
            let (c, l) = (info.c(v), info.l(v));
            prop_assert!(l >= 1, "{:?} must have a layer", v);
            if l > 1 {
                let has_earlier = g.neighbors(v).iter().any(|&w| {
                    info.c(w) == c && info.l(w) < l || info.c(w) < c
                });
                prop_assert!(
                    has_earlier,
                    "{:?} (c={}, l={}) has no earlier-peeled neighbour",
                    v, c, l
                );
            }
        }
    }
}
