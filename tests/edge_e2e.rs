//! End-to-end edge tier over real threads and sockets: an edge (and a
//! daisy-chained edge-behind-an-edge) serves byte-identical outcomes,
//! invalidates exactly the graphs the upstream's event stream touches,
//! keeps answering every cached read when the upstream goes away, and
//! resumes the event stream from its cursor — no reset, no re-warm —
//! when a durable upstream restarts on the same address.

use std::net::SocketAddr;
use std::time::{Duration, Instant};

use antruss::edge::{Edge, EdgeConfig};
use antruss::service::{Client, Server, ServerConfig};

fn edge_list(extra: &str) -> Vec<u8> {
    let mut body = String::new();
    for u in 0..5u32 {
        for v in (u + 1)..5 {
            body.push_str(&format!("{u} {v}\n"));
        }
    }
    body.push_str(extra);
    body.into_bytes()
}

fn solve_body(graph: &str) -> Vec<u8> {
    format!("{{\"graph\":\"{graph}\",\"solver\":\"gas\",\"b\":1}}").into_bytes()
}

fn register(addr: SocketAddr, name: &str, extra: &str) {
    let resp = Client::new(addr)
        .post(
            &format!("/graphs?name={name}"),
            "text/plain",
            &edge_list(extra),
        )
        .expect("register");
    assert_eq!(resp.status, 201, "register {name}: {}", resp.body_string());
}

/// One solve; returns (body, x-antruss-edge header if any, stale header
/// if any).
fn solve(addr: SocketAddr, graph: &str) -> (Vec<u8>, Option<String>, Option<String>) {
    let resp = Client::new(addr)
        .post("/solve", "application/json", &solve_body(graph))
        .expect("solve");
    assert_eq!(resp.status, 200, "solve {graph}: {}", resp.body_string());
    (
        resp.body.clone(),
        resp.header("x-antruss-edge").map(str::to_string),
        resp.header("x-antruss-stale").map(str::to_string),
    )
}

fn metric(addr: SocketAddr, name: &str) -> u64 {
    let resp = Client::new(addr).get("/metrics").expect("metrics");
    assert_eq!(resp.status, 200);
    resp.body_string()
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or_else(|| panic!("no metric {name}"))
}

fn poll_until(deadline: Duration, mut check: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if check() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(25));
    }
    false
}

// every persistent connection (event subscriber, pooled forward
// client, test client) dedicates a worker on the node it dials, so the
// nodes need enough workers to hold a chain plus the test's own client
fn edge_config(upstream: SocketAddr) -> EdgeConfig {
    EdgeConfig {
        upstream: upstream.to_string(),
        threads: 4,
        cache_capacity: 64,
        poll_wait_ms: 200,
        retry_ms: 20,
        ..EdgeConfig::default()
    }
}

fn server_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        cache_capacity: 64,
        ..ServerConfig::default()
    }
}

/// Parity, selective invalidation, and a daisy-chained second hop that
/// inherits both properties through the first edge's mirrored feed.
#[test]
fn edge_parity_invalidation_and_daisy_chain() {
    let server = Server::start(server_config()).expect("server");
    register(server.addr(), "ga", "0 5\n");
    register(server.addr(), "gb", "1 5\n");

    let near = Edge::start(edge_config(server.addr())).expect("near edge");
    let far = Edge::start(edge_config(near.addr())).expect("far edge");
    assert!(
        poll_until(Duration::from_secs(5), || {
            metric(far.addr(), "antruss_edge_events_head_seq") == 2
        }),
        "the far edge tails the registers through the near edge"
    );

    // a solve through the chain computes (and caches) upstream; the
    // relayed bytes must equal what the origin then replays from its
    // own cache — byte-identical parity
    let (via_far, verdict, _) = solve(far.addr(), "ga");
    assert_eq!(verdict.as_deref(), Some("miss"), "first solve forwards");
    let (direct, _, _) = solve(server.addr(), "ga");
    assert_eq!(via_far, direct, "edge parity is byte-identical");

    // both hops cached the relay: each now serves it locally
    let (hit_far, verdict, _) = solve(far.addr(), "ga");
    assert_eq!(verdict.as_deref(), Some("hit"));
    assert_eq!(hit_far, direct);
    let (hit_near, verdict, _) = solve(near.addr(), "ga");
    assert_eq!(verdict.as_deref(), Some("hit"));
    assert_eq!(hit_near, direct);

    // warm gb on both edges too
    let (gb_ref, _, _) = solve(far.addr(), "gb");
    let (_, verdict, _) = solve(far.addr(), "gb");
    assert_eq!(verdict.as_deref(), Some("hit"));

    // listings pass through byte-identically
    let listed = Client::new(far.addr()).get("/graphs").unwrap();
    let origin = Client::new(server.addr()).get("/graphs").unwrap();
    assert_eq!(listed.body, origin.body, "listing parity");

    // the edge is structurally read-only at every hop
    for addr in [near.addr(), far.addr()] {
        let refused = Client::new(addr)
            .post(
                "/graphs/ga/mutate",
                "application/json",
                b"{\"insert\":[[0,5]]}",
            )
            .unwrap();
        assert_eq!(refused.status, 421, "writes are misdirected");
    }

    // mutate ga at the origin: the event ripples near -> far, and each
    // edge drops exactly ga's entries
    let resp = Client::new(server.addr())
        .post(
            "/graphs/ga/mutate",
            "application/json",
            b"{\"insert\":[[3,6],[4,6]]}",
        )
        .unwrap();
    assert_eq!(resp.status, 200, "mutate: {}", resp.body_string());
    assert!(
        poll_until(Duration::from_secs(5), || {
            metric(far.addr(), "antruss_edge_events_head_seq") == 3
        }),
        "the mutation event reaches the far edge"
    );

    let (gb_after, verdict, _) = solve(far.addr(), "gb");
    assert_eq!(verdict.as_deref(), Some("hit"), "gb was never invalidated");
    assert_eq!(gb_after, gb_ref);

    let (ga_after, verdict, _) = solve(far.addr(), "ga");
    assert_eq!(verdict.as_deref(), Some("miss"), "ga was invalidated");
    assert_ne!(ga_after, via_far, "the stale outcome is gone");
    let (ga_direct, _, _) = solve(server.addr(), "ga");
    assert_eq!(ga_after, ga_direct, "post-mutation parity");

    assert_eq!(metric(far.addr(), "antruss_edge_event_resets_total"), 0);
}

/// Offline mode: the upstream disappears, every previously cached read
/// keeps answering (flagged stale), and when a durable upstream comes
/// back on the same address the subscriber resumes from its cursor —
/// zero resets, no re-warm, and the cache survives the whole episode.
#[test]
fn edge_serves_cached_reads_offline_and_resumes_from_cursor() {
    let data_dir = std::env::temp_dir().join(format!("antruss-edge-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let durable = |addr: String| ServerConfig {
        addr,
        data_dir: Some(data_dir.to_string_lossy().into_owned()),
        ..server_config()
    };

    let server = Server::start(durable("127.0.0.1:0".to_string())).expect("server");
    let upstream = server.addr();
    register(upstream, "ga", "0 5\n");
    register(upstream, "gb", "1 5\n");

    let edge = Edge::start(edge_config(upstream)).expect("edge");
    assert!(
        poll_until(Duration::from_secs(5), || {
            metric(edge.addr(), "antruss_edge_events_head_seq") == 2
        }),
        "the edge tails the registers"
    );
    let (ga_ref, _, _) = solve(edge.addr(), "ga");
    let (gb_ref, _, _) = solve(edge.addr(), "gb");
    assert_eq!(Client::new(edge.addr()).get("/graphs").unwrap().status, 200);

    // the upstream goes away; the subscriber notices within a beat
    server.shutdown();
    assert!(
        poll_until(Duration::from_secs(5), || {
            metric(edge.addr(), "antruss_edge_upstream_up") == 0
        }),
        "the edge notices the upstream is gone"
    );

    // every cached read keeps answering — zero failures, flagged stale
    for _ in 0..20 {
        let (ga, verdict, stale) = solve(edge.addr(), "ga");
        assert_eq!(ga, ga_ref, "offline reads are byte-identical");
        assert_eq!(verdict.as_deref(), Some("hit"));
        assert!(stale.is_some(), "offline hits carry x-antruss-stale");
        let (gb, _, _) = solve(edge.addr(), "gb");
        assert_eq!(gb, gb_ref);
    }
    assert!(metric(edge.addr(), "antruss_edge_stale_serves_total") >= 40);

    // an identity that was never cached has nowhere to go
    let miss = Client::new(edge.addr())
        .post(
            "/solve",
            "application/json",
            b"{\"graph\":\"ga\",\"solver\":\"gas\",\"b\":2}",
        )
        .unwrap();
    assert_eq!(miss.status, 503, "uncached offline reads fail honestly");

    // listings fall back to the last good body, flagged stale
    let listed = Client::new(edge.addr()).get("/graphs").unwrap();
    assert_eq!(listed.status, 200);
    assert!(listed.header("x-antruss-stale").is_some());

    // the durable upstream restarts on the same address: same event
    // epoch, head rebuilt from the WAL — the subscriber resumes from
    // its cursor instead of resetting
    let server = Server::start(durable(upstream.to_string())).expect("server restart");
    assert_eq!(server.addr(), upstream);
    assert!(
        poll_until(Duration::from_secs(5), || {
            metric(edge.addr(), "antruss_edge_upstream_up") == 1
        }),
        "the edge reconnects"
    );
    assert_eq!(
        metric(edge.addr(), "antruss_edge_event_resets_total"),
        0,
        "a same-identity restart resumes mid-stream, no reset"
    );

    // the cache survived the outage and the reconnect
    let (ga, verdict, stale) = solve(edge.addr(), "ga");
    assert_eq!(ga, ga_ref);
    assert_eq!(verdict.as_deref(), Some("hit"));
    assert!(stale.is_none(), "reads are fresh again");

    // and the resumed feed still invalidates selectively
    let resp = Client::new(upstream)
        .post(
            "/graphs/ga/mutate",
            "application/json",
            b"{\"insert\":[[3,6],[4,6]]}",
        )
        .unwrap();
    assert_eq!(resp.status, 200, "mutate: {}", resp.body_string());
    assert!(
        poll_until(Duration::from_secs(5), || {
            metric(edge.addr(), "antruss_edge_events_head_seq") == 3
        }),
        "the mutation event arrives over the resumed stream"
    );
    let (_, verdict, _) = solve(edge.addr(), "ga");
    assert_eq!(verdict.as_deref(), Some("miss"), "ga was invalidated");
    let (gb, verdict, _) = solve(edge.addr(), "gb");
    assert_eq!(verdict.as_deref(), Some("hit"), "gb still warm");
    assert_eq!(gb, gb_ref);

    let _ = std::fs::remove_dir_all(&data_dir);
}
