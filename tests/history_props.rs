//! Property tests for the retained-telemetry layer: the metrics
//! history ring and the SLO burn-rate evaluation on top of it.
//!
//! The ring's one hard promise is bounded memory — no traffic pattern
//! may grow it past its caps — and its derived data must never lie:
//! counter rates are non-negative for monotone inputs, and the
//! downsampler only ever *selects* recorded points, so it cannot
//! invent an extremum a dashboard would then page on. The burn-rate
//! evaluation is pinned against a brute-force oracle computed straight
//! from the raw trajectory, including the rule that makes recovery
//! observable: a clean fast window always reads `ok`.

use antruss::obs::history::{downsample, Point, Recorder};
use antruss::obs::slo::{
    evaluate, parse_slos, Level, SloKind, SloSources, CRIT_AVAILABILITY_BURN, CRIT_LATENCY_BURN,
    WINDOWS,
};
use antruss::obs::Registry;
use proptest::prelude::*;

fn sources() -> SloSources {
    SloSources {
        requests: "req_total".to_string(),
        errors: "err_total".to_string(),
        p99: "lat{q=\"0.99\"}".to_string(),
    }
}

/// Feeds cumulative `(requests, errors, p99_seconds)` steps at
/// `interval`-spaced synthetic timestamps into a recorder with the
/// given ring caps; returns the recorder and the final timestamp.
fn feed(steps: &[(u64, u64, f64)], interval: f64, max_points: usize) -> (Recorder, f64) {
    let rec = Recorder::with_caps(interval, 64, max_points);
    let mut now = 0.0;
    for (i, &(req, err, p99)) in steps.iter().enumerate() {
        now = i as f64 * interval;
        let mut r = Registry::new();
        r.counter("req_total", req);
        r.counter("err_total", err);
        r.gauge_with("lat", &[("q", "0.99")], p99);
        rec.record(now, &r);
    }
    (rec, now)
}

/// Oracle for [`Recorder::window_delta`] over the *retained* raw
/// trajectory: newest value minus the value at the latest point not
/// after `start` (first retained point if the window predates the
/// ring), clamped at zero.
fn brute_delta(points: &[(f64, f64)], start: f64) -> f64 {
    if points.len() < 2 {
        return 0.0;
    }
    let last = points.last().unwrap().1;
    let mut base = None;
    for &(ts, v) in points {
        if ts <= start {
            base = Some(v);
        } else {
            break;
        }
    }
    (last - base.unwrap_or(points[0].1)).max(0.0)
}

/// Oracle for [`Recorder::window_max`]: max value at `ts >= start`.
fn brute_max(points: &[(f64, f64)], start: f64) -> Option<f64> {
    points
        .iter()
        .filter(|(ts, _)| *ts >= start)
        .map(|&(_, v)| v)
        .fold(None, |acc: Option<f64>, v| {
            Some(acc.map_or(v, |a| a.max(v)))
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// No sampling pattern grows the ring past its caps: at most
    /// `max_series` series, at most `max_points` points per ring, and
    /// every series refused by the cap is visible in `dropped_series`.
    #[test]
    fn ring_memory_is_bounded(widths in prop::collection::vec(1usize..20, 1..120)) {
        const MAX_SERIES: usize = 8;
        const MAX_POINTS: usize = 16;
        let rec = Recorder::with_caps(1.0, MAX_SERIES, MAX_POINTS);
        for (i, &width) in widths.iter().enumerate() {
            let mut r = Registry::new();
            for s in 0..width {
                r.counter(&format!("s{s}_total"), i as u64);
            }
            rec.record(i as f64, &r);
        }
        let stats = rec.stats();
        prop_assert!(stats.series <= MAX_SERIES, "{} series", stats.series);
        prop_assert!(
            stats.total_points <= MAX_SERIES * MAX_POINTS,
            "{} points",
            stats.total_points
        );
        for s in 0..20 {
            prop_assert!(rec.series_points(&format!("s{s}_total")).len() <= MAX_POINTS);
        }
        if widths.iter().any(|&w| w > MAX_SERIES) {
            prop_assert!(stats.dropped_series > 0, "cap overflow must be visible");
        }
        prop_assert_eq!(stats.samples, widths.len() as u64);
    }

    /// A monotone counter never yields a negative rate, the first
    /// retained point aside (`rate: None`), and each rate is exactly
    /// Δvalue/Δts of its neighbouring points. A counter reset
    /// (restart) clamps at zero instead of going negative.
    #[test]
    fn counter_rates_are_non_negative(
        increments in prop::collection::vec(0u64..1000, 2..60),
        resets in prop::collection::vec(0u8..8, 2..60),
        interval_ds in 10u32..600,
    ) {
        let interval = interval_ds as f64 / 10.0;
        let rec = Recorder::with_caps(interval, 4, 256);
        let mut cum = 0u64;
        for (i, &inc) in increments.iter().enumerate() {
            // an occasional reset models a process restart
            if resets.get(i).copied().unwrap_or(1) == 0 {
                cum = 0;
            }
            cum += inc;
            let mut r = Registry::new();
            r.counter("c_total", cum);
            rec.record(i as f64 * interval, &r);
        }
        let points = rec.series_points("c_total");
        prop_assert_eq!(points.len(), increments.len());
        prop_assert_eq!(points[0].rate, None);
        for w in points.windows(2) {
            let rate = w[1].rate.expect("every later point carries a rate");
            prop_assert!(rate >= 0.0, "negative rate {rate}");
            let expected = ((w[1].value - w[0].value) / (w[1].ts - w[0].ts)).max(0.0);
            prop_assert!((rate - expected).abs() < 1e-9);
        }
    }

    /// Downsampling is a pure selection: every served point is one of
    /// the recorded points (same ts, value and rate), order is
    /// preserved, the budget holds, and the global minimum and maximum
    /// survive verbatim — the served curve can narrow, never widen.
    #[test]
    fn downsampling_never_invents_extrema(
        values in prop::collection::vec(0u32..100_000, 1..400),
        max in 2usize..64,
    ) {
        let points: Vec<Point> = values
            .iter()
            .enumerate()
            .map(|(i, &v)| Point {
                ts: i as f64,
                value: v as f64 * 1e-3,
                rate: if i == 0 { None } else { Some(i as f64) },
            })
            .collect();
        let served = downsample(&points, max);
        prop_assert!(!served.is_empty());
        prop_assert!(served.len() <= points.len().max(2));
        prop_assert!(served.len() <= max.max(2), "{} > {max}", served.len());
        for w in served.windows(2) {
            prop_assert!(w[0].ts < w[1].ts, "served points out of order");
        }
        for p in &served {
            prop_assert!(
                points.iter().any(|q| q == p),
                "served point {p:?} was never recorded"
            );
        }
        let min = |ps: &[Point]| ps.iter().map(|p| p.value).fold(f64::INFINITY, f64::min);
        let max_of = |ps: &[Point]| ps.iter().map(|p| p.value).fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(min(&served), min(&points), "minimum lost");
        prop_assert_eq!(max_of(&served), max_of(&points), "maximum lost");
    }

    /// The burn-rate evaluation agrees with a brute-force oracle
    /// computed from the raw retained trajectory, window by window,
    /// and the ok/degraded/critical level follows the documented
    /// rules exactly.
    #[test]
    fn burn_rates_match_the_brute_force_oracle(
        steps in prop::collection::vec((0u64..50, 0u64..50, 0u32..20_000), 2..80),
        interval_s in 30u32..120,
    ) {
        let interval = interval_s as f64;
        const MAX_POINTS: usize = 32; // small ring: eviction is in play
        let objectives = parse_slos("availability=99.0,p99_ms=5").unwrap();
        let mut cum = Vec::new();
        let (mut req, mut err) = (0u64, 0u64);
        for &(r, e, p99_us) in &steps {
            req += r;
            err += e.min(r); // errors are a subset of requests
            cum.push((req, err, p99_us as f64 * 1e-6));
        }
        let (rec, now) = feed(&cum, interval, MAX_POINTS);
        let report = evaluate(&objectives, &rec, &sources(), now);
        prop_assert_eq!(report.objectives.len(), 2);

        // raw trajectories, truncated exactly like the ring
        let keep = cum.len().saturating_sub(MAX_POINTS);
        let project = |f: fn(&(u64, u64, f64)) -> f64| -> Vec<(f64, f64)> {
            cum.iter()
                .enumerate()
                .skip(keep)
                .map(|(i, s)| (i as f64 * interval, f(s)))
                .collect()
        };
        let reqs = project(|s| s.0 as f64);
        let errs = project(|s| s.1 as f64);
        let lats = project(|s| s.2);

        for (i, (secs, _)) in WINDOWS.iter().enumerate() {
            let start = now - secs;
            let d_req = brute_delta(&reqs, start);
            let d_err = brute_delta(&errs, start);
            let avail_burn = if d_req <= 0.0 {
                0.0
            } else {
                (d_err / d_req).clamp(0.0, 1.0) / (1.0 - 0.99f64).max(1e-9)
            };
            let lat_burn = brute_max(&lats, start).unwrap_or(0.0) / 0.005;
            prop_assert!(
                (report.objectives[0].burns[i] - avail_burn).abs() < 1e-6,
                "availability window {i}: {} vs oracle {avail_burn}",
                report.objectives[0].burns[i]
            );
            prop_assert!(
                (report.objectives[1].burns[i] - lat_burn).abs() < 1e-6,
                "latency window {i}: {} vs oracle {lat_burn}",
                report.objectives[1].burns[i]
            );
        }
        for (o, crit) in report
            .objectives
            .iter()
            .zip([CRIT_AVAILABILITY_BURN, CRIT_LATENCY_BURN])
        {
            let expected = if o.burns[0] >= crit && o.burns[1] >= crit {
                Level::Critical
            } else if o.burns[0] >= 1.0 && (o.burns[1] >= 1.0 || o.burns[2] >= 1.0) {
                Level::Degraded
            } else {
                Level::Ok
            };
            prop_assert_eq!(o.level, expected, "{}", o.name);
        }
        prop_assert_eq!(
            report.level(),
            report.objectives.iter().map(|o| o.level).max().unwrap()
        );
    }

    /// The fast window is a necessary condition at every level, so
    /// *any* incident history followed by one clean fast window of
    /// traffic reads `ok` again — recovery is never masked by the
    /// slow windows still remembering the incident.
    #[test]
    fn a_clean_fast_window_always_recovers(
        dirty in prop::collection::vec((0u64..50, 0u64..50, 0u32..2_000_000), 1..40),
    ) {
        let objectives = parse_slos("availability=99.0,p99_ms=5").unwrap();
        let interval = 60.0;
        let mut cum = Vec::new();
        let (mut req, mut err) = (0u64, 0u64);
        for &(r, e, p99_us) in &dirty {
            req += r;
            err += e.min(r);
            cum.push((req, err, p99_us as f64 * 1e-6));
        }
        // one full fast window (300 s = 6 clean steps, the first of
        // which still sits inside the window) of error-free, fast
        // traffic
        for _ in 0..6 {
            req += 100;
            cum.push((req, err, 0.001));
        }
        let (rec, now) = feed(&cum, interval, 256);
        let report = evaluate(&objectives, &rec, &sources(), now);
        prop_assert_eq!(
            report.level(),
            Level::Ok,
            "burns: {:?} / {:?}",
            report.objectives[0].burns,
            report.objectives[1].burns
        );
        prop_assert!(report.burning().is_none());
    }
}

/// `SloKind` is part of the public parse surface the CLI leans on;
/// keep its mapping pinned outside the proptest loop.
#[test]
fn parse_maps_keys_to_kinds() {
    let objs = parse_slos("p99_ms=5,availability=99.9").unwrap();
    assert_eq!(objs[0].kind, SloKind::LatencyP99);
    assert_eq!(objs[1].kind, SloKind::Availability);
}
