//! Exposition-format lint over every tier's live `/metrics`.
//!
//! Boots one backend, a router fronting it, and an edge in front of the
//! router — all in-process — drives a little traffic, and scrapes each
//! tier **twice**. The lint then enforces what Prometheus scrapers
//! assume and hand-rolled renderers quietly break:
//!
//! * every sample belongs to a family declared by exactly one `# TYPE`
//!   line, and no series (name + label set) appears twice in a scrape;
//! * counters (`# TYPE … counter`, plus histogram `_count`/`_bucket`
//!   series) never go backwards between the two scrapes;
//! * within a scrape, every histogram's `_bucket` series cumulate: the
//!   counts are non-decreasing as `le` increases, ending at a `+Inf`
//!   bucket equal to `_count`;
//! * every tier's `GET /metrics/history` is valid JSON whose series
//!   count stays within the advertised `series_cap` (the retention
//!   ring's bounded-memory contract), with numeric points under every
//!   series;
//! * the router's `GET /cluster/overview` is valid JSON naming each
//!   member's health, and every tier's `/healthz` carries a `status`
//!   field while `/readyz` answers `ready` on a live tier;
//! * every tier exports the `antruss_prof_*` profiling families and
//!   serves `GET /debug/prof` as valid JSON with the documented shape
//!   (allocator totals, CPU by thread role, lock waits, request-cost
//!   quantiles).
//!
//! CI runs this as a step (`cargo run --release --example
//! metrics_lint`); it exits non-zero listing every violation.

use std::collections::{BTreeMap, BTreeSet};
use std::net::SocketAddr;

use antruss::atr::json;
use antruss::cluster::{Router, RouterConfig};
use antruss::edge::{Edge, EdgeConfig};
use antruss::obs::slo::parse_slos;
use antruss::service::{Client, Server, ServerConfig};

/// One parsed scrape: `# TYPE` declarations and every sample line.
struct Scrape {
    tier: &'static str,
    /// family name -> declared type (`counter`, `gauge`, `histogram`).
    types: BTreeMap<String, String>,
    /// full series key (name incl. labels) -> value, in exposition order.
    samples: Vec<(String, f64)>,
}

/// The family a series belongs to: the name with labels stripped, then
/// with histogram suffixes folded onto the base family.
fn family_of(series: &str, types: &BTreeMap<String, String>) -> String {
    let name = series.split('{').next().unwrap_or(series);
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(base) = name.strip_suffix(suffix) {
            if types.get(base).is_some_and(|t| t == "histogram") {
                return base.to_string();
            }
        }
    }
    name.to_string()
}

fn parse_scrape(tier: &'static str, text: &str, errors: &mut Vec<String>) -> Scrape {
    let mut types = BTreeMap::new();
    let mut samples = Vec::new();
    for line in text.lines() {
        if let Some(decl) = line.strip_prefix("# TYPE ") {
            let mut it = decl.split_whitespace();
            match (it.next(), it.next()) {
                (Some(name), Some(kind)) => {
                    if types.insert(name.to_string(), kind.to_string()).is_some() {
                        errors.push(format!("{tier}: duplicate # TYPE for {name}"));
                    }
                }
                _ => errors.push(format!("{tier}: malformed TYPE line {line:?}")),
            }
            continue;
        }
        if line.starts_with('#') || line.trim().is_empty() {
            continue;
        }
        // a sample is `name{labels} value` or `name value`; labels may
        // contain spaces inside quotes, so split at the last space
        let Some(split_at) = line.rfind(' ') else {
            errors.push(format!("{tier}: malformed sample line {line:?}"));
            continue;
        };
        let (series, value) = line.split_at(split_at);
        let Ok(value) = value.trim().parse::<f64>() else {
            errors.push(format!("{tier}: non-numeric value in {line:?}"));
            continue;
        };
        samples.push((series.to_string(), value));
    }
    Scrape {
        tier,
        types,
        samples,
    }
}

/// Per-scrape lints: unique series, every sample typed.
fn lint_scrape(s: &Scrape, errors: &mut Vec<String>) {
    let mut seen = BTreeSet::new();
    for (series, _) in &s.samples {
        if !seen.insert(series.clone()) {
            errors.push(format!("{}: duplicate series {series}", s.tier));
        }
        let family = family_of(series, &s.types);
        if !s.types.contains_key(&family) {
            errors.push(format!(
                "{}: sample {series} has no # TYPE line (family {family})",
                s.tier
            ));
        }
    }
    lint_buckets(s, errors);
}

/// The `le` bound of a `_bucket` series, and the series key with the
/// `le` label removed (to group one histogram's buckets together).
fn le_of(series: &str) -> Option<(String, f64)> {
    let (name, rest) = series.split_once('{')?;
    if !name.ends_with("_bucket") {
        return None;
    }
    let labels = rest.strip_suffix('}')?;
    let mut le = None;
    let mut others = Vec::new();
    for part in labels.split(',') {
        match part.strip_prefix("le=\"").and_then(|v| v.strip_suffix('"')) {
            Some("+Inf") => le = Some(f64::INFINITY),
            Some(v) => le = Some(v.parse().ok()?),
            None => others.push(part),
        }
    }
    Some((format!("{name}{{{}}}", others.join(",")), le?))
}

/// Within one scrape, every histogram's buckets must cumulate and end
/// at `+Inf` == `_count`.
fn lint_buckets(s: &Scrape, errors: &mut Vec<String>) {
    let mut groups: BTreeMap<String, Vec<(f64, f64)>> = BTreeMap::new();
    for (series, value) in &s.samples {
        if let Some((group, le)) = le_of(series) {
            groups.entry(group).or_default().push((le, *value));
        }
    }
    for (group, buckets) in groups {
        for w in buckets.windows(2) {
            if w[0].0 >= w[1].0 {
                errors.push(format!("{}: {group} le bounds not increasing", s.tier));
            }
            if w[0].1 > w[1].1 {
                errors.push(format!(
                    "{}: {group} bucket counts decrease ({} then {})",
                    s.tier, w[0].1, w[1].1
                ));
            }
        }
        match buckets.last() {
            Some((le, _)) if le.is_infinite() => {}
            _ => errors.push(format!("{}: {group} has no +Inf bucket", s.tier)),
        }
    }
}

/// Across two scrapes of the same tier, counter-typed families and
/// histogram `_bucket`/`_count` series must be monotone.
fn lint_monotone(first: &Scrape, second: &Scrape, errors: &mut Vec<String>) {
    let earlier: BTreeMap<&str, f64> = first
        .samples
        .iter()
        .map(|(s, v)| (s.as_str(), *v))
        .collect();
    for (series, now) in &second.samples {
        let family = family_of(series, &second.types);
        let counts = second.types.get(&family).is_some_and(|t| t == "counter")
            || (series.contains("_bucket") || series.contains("_count"))
                && second.types.get(&family).is_some_and(|t| t == "histogram");
        if !counts {
            continue;
        }
        if let Some(&before) = earlier.get(series.as_str()) {
            if *now < before {
                errors.push(format!(
                    "{}: counter {series} went backwards ({before} -> {now})",
                    second.tier
                ));
            }
        }
    }
}

/// `GET /metrics/history` must be valid JSON, its series count within
/// the advertised `series_cap` (bounded memory), every point numeric.
fn lint_history(tier: &'static str, addr: SocketAddr, errors: &mut Vec<String>) {
    let resp = Client::new(addr)
        .get("/metrics/history")
        .expect("scrape /metrics/history");
    if resp.status != 200 {
        errors.push(format!("{tier}: /metrics/history status {}", resp.status));
        return;
    }
    let body = resp.body_string();
    let doc = match json::parse(&body) {
        Ok(doc) => doc,
        Err(e) => {
            errors.push(format!("{tier}: /metrics/history is not JSON: {e}"));
            return;
        }
    };
    let series_cap = doc.get("series_cap").and_then(|v| v.as_u64()).unwrap_or(0);
    if series_cap == 0 {
        errors.push(format!("{tier}: history advertises no series_cap"));
    }
    let Some(series) = doc.get("series").and_then(|v| v.as_array()) else {
        errors.push(format!("{tier}: history has no series array"));
        return;
    };
    if series.len() as u64 > series_cap {
        errors.push(format!(
            "{tier}: history serves {} series, over its own cap {series_cap}",
            series.len()
        ));
    }
    if doc.get("samples").and_then(|v| v.as_u64()).unwrap_or(0) < 2 {
        errors.push(format!("{tier}: history holds fewer than 2 samples"));
    }
    for s in series {
        let name = s.get("name").and_then(|v| v.as_str()).unwrap_or("?");
        let Some(points) = s.get("points").and_then(|v| v.as_array()) else {
            errors.push(format!("{tier}: history series {name} has no points"));
            continue;
        };
        for p in points {
            if p.get("ts").and_then(|v| v.as_f64()).is_none()
                || p.get("value").and_then(|v| v.as_f64()).is_none()
            {
                errors.push(format!(
                    "{tier}: history series {name} has a non-numeric point"
                ));
                break;
            }
        }
    }
    // the ?since= validator must reject garbage loudly, not serve it
    let bad = Client::new(addr)
        .get("/metrics/history?since=garbage")
        .expect("bad since");
    if bad.status != 400 {
        errors.push(format!(
            "{tier}: /metrics/history?since=garbage answered {} instead of 400",
            bad.status
        ));
    }
}

/// The router's `/cluster/overview` must be valid JSON with a router
/// summary and a health field per member.
fn lint_overview(addr: SocketAddr, expected_members: usize, errors: &mut Vec<String>) {
    let resp = Client::new(addr)
        .get("/cluster/overview")
        .expect("scrape /cluster/overview");
    if resp.status != 200 {
        errors.push(format!("router: /cluster/overview status {}", resp.status));
        return;
    }
    let body = resp.body_string();
    let doc = match json::parse(&body) {
        Ok(doc) => doc,
        Err(e) => {
            errors.push(format!("router: /cluster/overview is not JSON: {e}"));
            return;
        }
    };
    if doc
        .get("router")
        .and_then(|r| r.get("status"))
        .and_then(|v| v.as_str())
        .is_none()
    {
        errors.push("router: overview has no router.status".to_string());
    }
    let Some(members) = doc.get("members").and_then(|v| v.as_array()) else {
        errors.push("router: overview has no members array".to_string());
        return;
    };
    if members.len() != expected_members {
        errors.push(format!(
            "router: overview lists {} member(s), expected {expected_members}",
            members.len()
        ));
    }
    for m in members {
        let addr = m.get("addr").and_then(|v| v.as_str()).unwrap_or("?");
        if m.get("status").and_then(|v| v.as_str()).is_none() {
            errors.push(format!("router: overview member {addr} has no status"));
        }
        if m.get("healthy").and_then(|v| v.as_bool()).is_none() {
            errors.push(format!(
                "router: overview member {addr} has no healthy flag"
            ));
        }
    }
}

/// `/healthz` must carry a `status` field and `/readyz` must answer
/// `ready` with 200 on a live, undraining tier.
fn lint_health(tier: &'static str, addr: SocketAddr, errors: &mut Vec<String>) {
    let health = Client::new(addr).get("/healthz").expect("scrape /healthz");
    match json::parse(&health.body_string()) {
        Ok(doc) => {
            if doc.get("status").and_then(|v| v.as_str()).is_none() {
                errors.push(format!("{tier}: /healthz has no status field"));
            }
        }
        Err(e) => errors.push(format!("{tier}: /healthz is not JSON: {e}")),
    }
    let ready = Client::new(addr).get("/readyz").expect("scrape /readyz");
    if ready.status != 200 || !ready.body_string().contains("ready") {
        errors.push(format!(
            "{tier}: /readyz on a live tier answered {} {:?}",
            ready.status,
            ready.body_string()
        ));
    }
}

/// Every tier must export the profiling families on `/metrics` and
/// serve `GET /debug/prof` as valid JSON with the documented shape.
fn lint_prof(tier: &'static str, addr: SocketAddr, scrape: &Scrape, errors: &mut Vec<String>) {
    for family in [
        "antruss_prof_allocs_total",
        "antruss_prof_alloc_bytes_total",
        "antruss_prof_deallocs_total",
        "antruss_prof_dealloc_bytes_total",
        "antruss_prof_live_bytes",
        "antruss_prof_cpu_seconds_total",
        "antruss_prof_lock_wait_seconds",
        "antruss_prof_request_cpu_seconds",
        "antruss_prof_request_alloc_bytes",
    ] {
        if !scrape.types.contains_key(family) {
            errors.push(format!("{tier}: /metrics lacks the {family} family"));
        }
    }

    let resp = Client::new(addr)
        .get("/debug/prof")
        .expect("scrape /debug/prof");
    if resp.status != 200 {
        errors.push(format!("{tier}: /debug/prof status {}", resp.status));
        return;
    }
    let body = resp.body_string();
    let doc = match json::parse(&body) {
        Ok(doc) => doc,
        Err(e) => {
            errors.push(format!("{tier}: /debug/prof is not JSON: {e}"));
            return;
        }
    };
    if doc.get("tier").and_then(|v| v.as_str()).is_none() {
        errors.push(format!("{tier}: /debug/prof has no tier field"));
    }
    match doc.get("alloc") {
        Some(alloc) => {
            for field in [
                "allocs",
                "alloc_bytes",
                "deallocs",
                "dealloc_bytes",
                "live_bytes",
            ] {
                if alloc.get(field).and_then(|v| v.as_f64()).is_none() {
                    errors.push(format!("{tier}: /debug/prof alloc.{field} missing"));
                }
            }
            if alloc.get("allocs").and_then(|v| v.as_f64()).unwrap_or(0.0) <= 0.0 {
                errors.push(format!(
                    "{tier}: /debug/prof reports zero allocations on a live process"
                ));
            }
        }
        None => errors.push(format!("{tier}: /debug/prof has no alloc section")),
    }
    match doc
        .get("cpu")
        .and_then(|c| c.get("by_role"))
        .and_then(|v| v.as_array())
    {
        Some(roles) => {
            if roles.is_empty() {
                errors.push(format!(
                    "{tier}: /debug/prof cpu.by_role is empty on a live process"
                ));
            }
            for r in roles {
                if r.get("role").and_then(|v| v.as_str()).is_none()
                    || r.get("cpu_seconds").and_then(|v| v.as_f64()).is_none()
                {
                    errors.push(format!("{tier}: /debug/prof cpu.by_role entry malformed"));
                    break;
                }
            }
        }
        None => errors.push(format!("{tier}: /debug/prof has no cpu.by_role array")),
    }
    match doc.get("locks").and_then(|v| v.as_array()) {
        Some(locks) => {
            for l in locks {
                let name = l.get("lock").and_then(|v| v.as_str());
                if name.is_none()
                    || [
                        "acquisitions",
                        "wait_seconds_total",
                        "wait_p99_us",
                        "wait_max_us",
                    ]
                    .iter()
                    .any(|f| l.get(f).and_then(|v| v.as_f64()).is_none())
                {
                    errors.push(format!(
                        "{tier}: /debug/prof lock entry {:?} malformed",
                        name.unwrap_or("?")
                    ));
                    break;
                }
            }
        }
        None => errors.push(format!("{tier}: /debug/prof has no locks array")),
    }
    match doc.get("costs").and_then(|v| v.as_array()) {
        Some(costs) => {
            if costs.is_empty() {
                errors.push(format!(
                    "{tier}: /debug/prof costs are empty after driven traffic"
                ));
            }
            for c in costs {
                if c.get("dim").and_then(|v| v.as_str()).is_none()
                    || c.get("label").and_then(|v| v.as_str()).is_none()
                    || [
                        "count",
                        "cpu_us_p50",
                        "cpu_us_p99",
                        "alloc_bytes_p50",
                        "alloc_bytes_p99",
                    ]
                    .iter()
                    .any(|f| c.get(f).and_then(|v| v.as_f64()).is_none())
                {
                    errors.push(format!("{tier}: /debug/prof cost entry malformed"));
                    break;
                }
            }
        }
        None => errors.push(format!("{tier}: /debug/prof has no costs array")),
    }
}

fn scrape(tier: &'static str, addr: SocketAddr, errors: &mut Vec<String>) -> Scrape {
    let resp = Client::new(addr).get("/metrics").expect("scrape /metrics");
    assert_eq!(resp.status, 200, "{tier} /metrics status {}", resp.status);
    parse_scrape(tier, &resp.body_string(), errors)
}

fn drive(addr: SocketAddr, solves: usize) {
    let mut c = Client::new(addr);
    for seed in 0..solves {
        let body = format!("{{\"graph\":\"lint\",\"solver\":\"gas\",\"b\":1,\"seed\":{seed}}}");
        let resp = c
            .post("/solve", "application/json", body.as_bytes())
            .expect("solve");
        assert_eq!(resp.status, 200, "solve: {}", resp.body_string());
    }
}

fn main() {
    // objectives on every tier so the antruss_slo_* families go through
    // the exposition lint too; interval 0 = no sampler thread, history
    // is recorded by hand at synthetic timestamps so the run is
    // deterministic
    let slos = parse_slos("availability=99.0,p99_ms=500").expect("lint slos");
    let backend = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 4,
        cache_capacity: 64,
        metrics_interval_ms: 0,
        slos: slos.clone(),
        ..ServerConfig::default()
    })
    .expect("backend");
    let router = Router::start(RouterConfig {
        backends: vec![backend.addr()],
        metrics_interval_ms: 0,
        slos: slos.clone(),
        ..RouterConfig::default()
    })
    .expect("router");
    let edge = Edge::start(EdgeConfig {
        upstream: router.addr().to_string(),
        threads: 4,
        cache_capacity: 64,
        poll_wait_ms: 200,
        retry_ms: 20,
        metrics_interval_ms: 0,
        slos,
        ..EdgeConfig::default()
    })
    .expect("edge");

    let mut list = String::new();
    for u in 0..6u32 {
        for v in (u + 1)..6 {
            list.push_str(&format!("{u} {v}\n"));
        }
    }
    let resp = Client::new(router.addr())
        .post("/graphs?name=lint", "text/plain", list.as_bytes())
        .expect("register");
    assert_eq!(resp.status, 201, "register: {}", resp.body_string());

    let mut errors = Vec::new();
    let tiers: [(&'static str, SocketAddr); 3] = [
        ("backend", backend.addr()),
        ("router", router.addr()),
        ("edge", edge.addr()),
    ];

    // two hand-recorded history samples per tier straddle the first
    // scrape, so /metrics/history serves rated points everywhere
    let record_all = |ts: f64| {
        backend.state().record_history(ts);
        router.state().record_history(ts);
        edge.state().record_history(ts);
    };

    drive(edge.addr(), 4);
    record_all(100.0);
    let first: Vec<Scrape> = tiers
        .iter()
        .map(|&(tier, addr)| scrape(tier, addr, &mut errors))
        .collect();
    // more traffic, including a mutation, between the two scrapes
    drive(edge.addr(), 4);
    let resp = Client::new(router.addr())
        .post(
            "/graphs/lint/mutate",
            "application/json",
            br#"{"insert":[[0,6],[1,6]]}"#,
        )
        .expect("mutate");
    assert_eq!(resp.status, 200, "mutate: {}", resp.body_string());
    drive(edge.addr(), 2);
    record_all(105.0);
    let second: Vec<Scrape> = tiers
        .iter()
        .map(|&(tier, addr)| scrape(tier, addr, &mut errors))
        .collect();

    let mut families = 0usize;
    let mut series = 0usize;
    for (a, b) in first.iter().zip(second.iter()) {
        lint_scrape(a, &mut errors);
        lint_scrape(b, &mut errors);
        lint_monotone(a, b, &mut errors);
        families += b.types.len();
        series += b.samples.len();
    }

    // retained-telemetry and health surfaces, per tier; one manual
    // supervision pass populates the router's federated overview before
    // it is linted
    for (i, &(tier, addr)) in tiers.iter().enumerate() {
        lint_history(tier, addr, &mut errors);
        lint_health(tier, addr, &mut errors);
        lint_prof(tier, addr, &second[i], &mut errors);
    }
    router.tick();
    lint_overview(router.addr(), 1, &mut errors);

    drop(edge);
    router.shutdown();
    backend.shutdown();

    if errors.is_empty() {
        println!(
            "metrics lint: {families} famil(ies), {series} series across {} tier(s) x 2 scrapes — clean",
            tiers.len()
        );
    } else {
        eprintln!("metrics lint: {} violation(s):", errors.len());
        for e in &errors {
            eprintln!("  {e}");
        }
        std::process::exit(1);
    }
}
