//! Durability tour: run an `antruss serve` backend with a `--data-dir`
//! equivalent, register and mutate a graph, shut the process state
//! down, and start a **fresh** server over the same directory — the
//! catalog (and the outcome cache, persisted on graceful shutdown)
//! comes back without any peer or re-upload. Finishes by corrupting
//! the WAL tail the way a crash would and showing recovery drop it
//! cleanly.
//!
//! ```sh
//! cargo run --release --example durable_service
//! ```

use antruss::service::{Client, Server, ServerConfig};
use antruss::store::FsyncPolicy;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = std::env::temp_dir().join(format!("antruss-durable-example-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    // `antruss serve --data-dir DIR --fsync always`, programmatically
    let config = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        cache_capacity: 32,
        data_dir: Some(dir.display().to_string()),
        fsync: FsyncPolicy::Always,
        ..ServerConfig::default()
    };

    // ---- first life: register, mutate, solve, shut down gracefully
    let server = Server::start(config.clone())?;
    println!(
        "first life on http://{} (data in {})",
        server.addr(),
        dir.display()
    );
    let mut client = Client::new(server.addr());
    let mut edges = String::new();
    for u in 0..6u32 {
        for v in (u + 1)..6 {
            edges.push_str(&format!("{u} {v}\n"));
        }
    }
    client.post("/graphs?name=k6", "text/plain", edges.as_bytes())?;
    // each of these is in the write-ahead log *before* the 200 returns
    let mutated = client.post(
        "/graphs/k6/mutate",
        "application/json",
        br#"{"insert":[[0,6],[1,6],[2,6]],"delete":[[4,5]]}"#,
    )?;
    println!("mutate -> {}", mutated.body_string());
    let solved = client.post("/solve", "application/json", br#"{"graph":"k6","b":2}"#)?;
    let reference = solved.body.clone();
    println!("solve  -> {} bytes (cache miss)", reference.len());
    // graceful shutdown also dumps the outcome cache next to the WAL
    println!("shutdown: {}", server.shutdown());

    // ---- second life: same directory, no peers, nothing re-uploaded
    let server = Server::start(config.clone())?;
    let mut client = Client::new(server.addr());
    let listing = client.get("/graphs")?.body_string();
    println!("\nsecond life on http://{}", server.addr());
    println!("recovered catalog: {listing}");
    assert!(listing.contains("\"k6\""), "catalog must survive restart");
    let replay = client.post("/solve", "application/json", br#"{"graph":"k6","b":2}"#)?;
    assert_eq!(
        replay.header("x-antruss-cache"),
        Some("hit"),
        "the persisted cache dump warms the restart"
    );
    assert_eq!(replay.body, reference, "warm hits replay the exact bytes");
    println!("solve  -> byte-identical cache hit, no recomputation");
    let metrics = client.get("/metrics")?.body_string();
    for line in metrics.lines().filter(|l| l.starts_with("antruss_store_")) {
        println!("  {line}");
    }
    println!("shutdown: {}", server.shutdown());

    // ---- third life: tear the WAL tail like a crash mid-write would
    let wal = dir.join("wal.log");
    let bytes = std::fs::read(&wal)?;
    std::fs::write(&wal, &bytes[..bytes.len() - 3])?;
    println!(
        "\ntore {} by 3 bytes to simulate a crash mid-append",
        wal.display()
    );
    let server = Server::start(config)?;
    let mut client = Client::new(server.addr());
    let metrics = client.get("/metrics")?.body_string();
    let dropped = metrics
        .lines()
        .find(|l| l.starts_with("antruss_store_dropped_wal_bytes"))
        .unwrap_or("antruss_store_dropped_wal_bytes ?");
    println!("third life recovered cleanly; {dropped}");
    assert!(client.get("/graphs")?.body_string().contains("\"k6\""));
    println!("shutdown: {}", server.shutdown());

    std::fs::remove_dir_all(&dir)?;
    Ok(())
}
