//! A tour of the sharded serving tier, all in one process: start a
//! 3-backend cluster behind the consistent-hash router, register a
//! graph (it lands on its R=2 replicas), solve through the router (miss
//! then byte-identical hit), mutate the graph (the batch fans out to
//! every replica and purges their cached outcomes), and solve again on
//! the new edges.
//!
//! ```sh
//! cargo run --release --example cluster_tour
//! ```

use antruss::cluster::{Cluster, ClusterConfig};
use antruss::service::Client;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = Cluster::start(ClusterConfig {
        backends: 3,
        replication: 2,
        ..ClusterConfig::default()
    })?;
    println!("router on http://{}", cluster.router_addr());
    for (i, addr) in cluster.backend_addrs().iter().enumerate() {
        println!("  shard {i}: http://{addr}");
    }
    let mut client = Client::new(cluster.router_addr());

    // 1. register two 4-cliques; the router fans the upload out to the
    // graph's replicas so losing any one backend loses nothing
    let mut edges = String::new();
    for base in [0u32, 4] {
        for u in base..base + 4 {
            for v in (u + 1)..base + 4 {
                edges.push_str(&format!("{u} {v}\n"));
            }
        }
    }
    let created = client.post("/graphs?name=twin", "text/plain", edges.as_bytes())?;
    println!(
        "\nPOST /graphs?name=twin -> {} (replicas {})",
        created.status,
        created.header("x-antruss-replicas").unwrap_or("?")
    );
    let ring = client.get("/ring?graph=twin")?;
    println!("GET /ring?graph=twin -> {}", ring.body_string());

    // 2. solve through the router: placed by consistent hash, answered
    // by the primary; the repeat is a byte-identical cache hit
    let body = br#"{"graph":"twin","solver":"gas","b":1}"#;
    let miss = client.post("/solve", "application/json", body)?;
    println!(
        "\nPOST /solve -> {} (shard {}, cache {})",
        miss.status,
        miss.header("x-antruss-shard").unwrap_or("?"),
        miss.header("x-antruss-cache").unwrap_or("?"),
    );
    let hit = client.post("/solve", "application/json", body)?;
    println!(
        "POST /solve (repeat) -> cache {} ({} bytes, identical: {})",
        hit.header("x-antruss-cache").unwrap_or("?"),
        hit.body.len(),
        hit.body == miss.body
    );

    // 3. mutate: bridge the cliques. The batch goes through incremental
    // truss maintenance on every replica and kills their cached outcomes
    let batch = br#"{"insert":[[0,4],[0,5],[1,4],[1,5],[2,4],[3,5]]}"#;
    let mutated = client.post("/graphs/twin/mutate", "application/json", batch)?;
    println!(
        "\nPOST /graphs/twin/mutate -> {} {}",
        mutated.status,
        mutated.body_string()
    );

    // 4. the next solve is a miss on the *new* edges
    let fresh = client.post("/solve", "application/json", body)?;
    println!(
        "POST /solve (post-mutation) -> cache {} (outcome changed: {})",
        fresh.header("x-antruss-cache").unwrap_or("?"),
        fresh.body != miss.body
    );

    println!("\nrouter metrics:");
    print!("{}", client.get("/metrics")?.body_string());
    println!("\n{}", cluster.shutdown());
    Ok(())
}
