//! Streaming-graph scenario: maintain trussness under churn, re-anchor
//! when stability degrades.
//!
//! Social networks evolve; the truss-maintenance substrate keeps `t(e)`
//! exact as edges come and go, and the ATR machinery re-selects anchors
//! when the cohesive mass decays past a threshold — the "operational"
//! version of the paper's stability story.
//!
//! ```sh
//! cargo run --release --example dynamic_stream
//! ```

use antruss::atr::engine::{registry, RunConfig};
use antruss::atr::stability::cohesion_profile;
use antruss::graph::gen::{social_network, SocialParams};
use antruss::graph::EdgeId;
use antruss::truss::DynamicTruss;
use rand::{Rng, SeedableRng};

fn main() {
    let g = social_network(&SocialParams {
        n: 600,
        target_edges: 3_000,
        attach: 4,
        closure: 0.55,
        planted: vec![9],
        onions: vec![antruss::graph::gen::OnionSpec {
            core: 8,
            shells: 2,
            shell_size: 25,
        }],
        seed: 4,
    });
    let mut dt = DynamicTruss::new(&g);
    let mut rng = rand::rngs::SmallRng::seed_from_u64(99);
    println!(
        "initial: {} edges alive, k_max = {}",
        dt.alive().len(),
        dt.info().k_max
    );

    // Churn: 120 random edge flips, tracking update cost.
    let mut removed = 0usize;
    let mut total_changed = 0usize;
    for _ in 0..120 {
        let e = EdgeId(rng.gen_range(0..g.num_edges() as u32));
        let stats = if dt.is_alive(e) {
            removed += 1;
            dt.remove_edge(e)
        } else {
            removed -= 1;
            dt.insert_edge(e)
        };
        if let Some(s) = stats {
            total_changed += s.changed;
        }
    }
    println!(
        "after churn: {} edges alive (net -{removed}), k_max = {}, {} trussness updates applied incrementally",
        dt.alive().len(),
        dt.info().k_max,
        total_changed
    );

    // Rebuild the survivor graph and re-anchor.
    let mut b = antruss::graph::GraphBuilder::new();
    for e in dt.alive().iter() {
        let (u, v) = g.endpoints(e);
        b.add_edge(u.0 as u64, v.0 as u64);
    }
    let survivor = b.build();
    let out = registry()
        .get("gas")
        .expect("gas is registered")
        .run(&survivor, &RunConfig::new(5))
        .expect("gas run succeeds");
    println!(
        "\nre-anchored 5 edges on the churned graph: trussness gain {}",
        out.total_gain
    );

    let anchors = antruss::graph::EdgeSet::from_iter(survivor.num_edges(), out.edge_anchors());
    let before = cohesion_profile(&survivor, None);
    let after = cohesion_profile(&survivor, Some(&anchors));
    println!("\ncohesive mass (edges in T_k) before/after re-anchoring:");
    for k in 3..before.len().min(8) {
        println!(
            "  k={k}: {} -> {} ({:+})",
            before[k],
            after[k],
            after[k] as i64 - before[k] as i64
        );
    }
}
