//! Quickstart: anchor edges of a small social graph through the unified
//! solver engine and inspect the gain.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use antruss::atr::engine::{registry, Anchor, RunConfig};
use antruss::graph::gen::{social_network, SocialParams};
use antruss::truss::decompose;

fn main() {
    // A 500-vertex social-style graph with a planted dense core.
    let g = social_network(&SocialParams {
        n: 500,
        target_edges: 2_500,
        attach: 4,
        closure: 0.6,
        planted: vec![10],
        onions: vec![],
        seed: 42,
    });
    let info = decompose(&g);
    println!(
        "graph: {} vertices, {} edges, k_max = {}",
        g.num_vertices(),
        g.num_edges(),
        info.k_max
    );

    // Greedily anchor 5 edges with the full GAS pipeline, dispatched by
    // name through the engine registry — any other registered solver
    // ("base+", "lazy", "rand:sup", …) is a one-string change.
    let gas = registry().get("gas").expect("gas is registered");
    let outcome = gas.run(&g, &RunConfig::new(5)).expect("run succeeds");
    println!(
        "[{}] anchored {} edges for a total trussness gain of {}",
        outcome.solver,
        outcome.anchors.len(),
        outcome.total_gain
    );
    for r in &outcome.rounds {
        let Anchor::Edge(e) = r.chosen else { continue };
        let (u, v) = g.endpoints(e);
        println!(
            "  round {}: anchored ({u}, {v}) -> {} follower(s), {} candidate follower sets recomputed",
            r.round, r.gain, r.recomputed,
        );
    }

    // The unified outcome serializes to JSON for pipelines:
    println!("\nas JSON: {:.60}…", outcome.to_json());
}
