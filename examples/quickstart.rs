//! Quickstart: anchor edges of a small social graph and inspect the gain.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use antruss::atr::{Gas, GasConfig};
use antruss::graph::gen::{social_network, SocialParams};
use antruss::truss::decompose;

fn main() {
    // A 500-vertex social-style graph with a planted dense core.
    let g = social_network(&SocialParams {
        n: 500,
        target_edges: 2_500,
        attach: 4,
        closure: 0.6,
        planted: vec![10],
        onions: vec![],
        seed: 42,
    });
    let info = decompose(&g);
    println!(
        "graph: {} vertices, {} edges, k_max = {}",
        g.num_vertices(),
        g.num_edges(),
        info.k_max
    );

    // Greedily anchor 5 edges with the full GAS pipeline.
    let outcome = Gas::new(&g, GasConfig::default()).run(5);
    println!(
        "anchored {} edges for a total trussness gain of {}",
        outcome.anchors.len(),
        outcome.total_gain
    );
    for r in &outcome.rounds {
        let (u, v) = g.endpoints(r.chosen);
        println!(
            "  round {}: anchored ({u}, {v}) -> {} follower(s), {} candidate follower sets recomputed",
            r.round,
            r.followers.len(),
            r.recomputed,
        );
    }
}
