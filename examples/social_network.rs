//! Social-network stability scenario (the paper's first motivating
//! application).
//!
//! We model an engagement-decay event: every edge whose trussness sits at
//! the bottom of the hierarchy (weak ties) is dropped, simulating users
//! whose relationships lapse. Anchoring a handful of key relationships
//! beforehand measurably increases how much of the network survives the
//! decay — exactly the stability story of Section I.
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use antruss::atr::engine::{registry, RunConfig};
use antruss::atr::gain_of_anchor_set;
use antruss::graph::gen::{social_network, SocialParams};
use antruss::graph::EdgeSet;
use antruss::truss::{decompose, decompose_with, DecomposeOptions, ANCHOR_TRUSSNESS};

/// Number of edges with (anchored) trussness ≥ k — a stability score: how
/// much of the network sits in cohesive structure.
fn edges_at_least(t: &[u32], k: u32) -> usize {
    t.iter()
        .filter(|&&x| x >= k || x == ANCHOR_TRUSSNESS)
        .count()
}

fn main() {
    let g = social_network(&SocialParams {
        n: 1_500,
        target_edges: 8_000,
        attach: 4,
        closure: 0.65,
        planted: vec![12, 8],
        onions: vec![],
        seed: 7,
    });
    let base = decompose(&g);
    println!(
        "community graph: {} vertices, {} edges, k_max = {}",
        g.num_vertices(),
        g.num_edges(),
        base.k_max
    );

    let budget = 8;
    let outcome = registry()
        .get("gas")
        .expect("gas is registered")
        .run(&g, &RunConfig::new(budget))
        .expect("gas run succeeds");
    let anchors = EdgeSet::from_iter(g.num_edges(), outcome.edge_anchors());
    println!(
        "anchored {budget} relationships -> trussness gain {}",
        outcome.total_gain
    );
    assert_eq!(
        outcome.total_gain,
        gain_of_anchor_set(&g, &base.trussness, &anchors),
        "GAS gain must be reproducible from the anchor set alone"
    );

    // Decay event: recompute trussness with anchors in place and compare
    // the cohesive mass at increasing k.
    let after = decompose_with(
        &g,
        DecomposeOptions {
            subset: None,
            anchors: Some(&anchors),
        },
    );
    println!("\ncohesive mass (edges with trussness >= k):");
    println!(
        "{:>4} {:>12} {:>12} {:>8}",
        "k", "unanchored", "anchored", "delta"
    );
    for k in 3..=base.k_max.min(8) {
        let before_k = edges_at_least(&base.trussness, k);
        let after_k = edges_at_least(&after.trussness, k);
        println!(
            "{k:>4} {before_k:>12} {after_k:>12} {:>+8}",
            after_k as i64 - before_k as i64
        );
    }
    println!(
        "\nInterpretation: every extra edge at level k is a relationship that now\n\
         survives a (k-1)-level engagement-decay cascade."
    );
}
