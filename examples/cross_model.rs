//! Cross-model reinforcement: edge/truss anchoring (the paper) versus
//! vertex/core anchoring (the related-work line it argues against).
//!
//! Spends the same budget three ways — GAS anchor edges, AKT anchor
//! vertices at their best k, anchored-coreness anchor vertices — and
//! compares what each buys in truss-level stability (induced resilience:
//! extra decay survivors that were not directly subsidized).
//!
//! ```sh
//! cargo run --release --example cross_model
//! ```

use antruss::atr::engine::{registry, RunConfig};
use antruss::atr::stability::{induced_resilience_gain, vertex_induced_resilience_gain};
use antruss::graph::gen::{social_network, OnionSpec, SocialParams};
use antruss::graph::EdgeSet;
use antruss::kcore::AnchoredCoreness;
use antruss::truss::decompose;

fn main() {
    let budget = 5;
    let g = social_network(&SocialParams {
        n: 400,
        target_edges: 2_000,
        attach: 4,
        closure: 0.6,
        planted: vec![9, 7],
        onions: vec![OnionSpec {
            core: 6,
            shells: 3,
            shell_size: 12,
        }],
        seed: 17,
    });
    let info = decompose(&g);
    println!(
        "graph: {} vertices, {} edges, truss k_max = {}\n",
        g.num_vertices(),
        g.num_edges(),
        info.k_max
    );

    // --- the paper's method: anchor edges --------------------------------
    // (both solvers run through the unified engine; only the name differs)
    let gas = registry()
        .get("gas")
        .expect("gas is registered")
        .run(&g, &RunConfig::new(budget))
        .expect("gas run succeeds");
    let gas_set = EdgeSet::from_iter(g.num_edges(), gas.edge_anchors());
    println!(
        "GAS (edge anchors):      trussness gain {:>4}, induced resilience {:>4}",
        gas.total_gain,
        induced_resilience_gain(&g, &gas_set)
    );

    // --- vertex anchoring at the best fixed k (AKT) ----------------------
    let akt_solver = registry().get("akt").expect("akt is registered");
    let akt = (4..=info.k_max)
        .map(|k| {
            akt_solver
                .run(&g, &RunConfig::new(budget).candidate_cap(16).k(k))
                .expect("akt run succeeds")
        })
        .max_by_key(|o| o.total_gain)
        .expect("non-empty k range");
    let akt_vertices: Vec<_> = akt.anchors.iter().filter_map(|a| a.vertex()).collect();
    println!(
        "AKT (vertex anchors):    best-k gain    {:>4}, induced resilience {:>4}",
        akt.total_gain,
        vertex_induced_resilience_gain(&g, &akt_vertices)
    );

    // --- core-model reasoning: anchored coreness -------------------------
    let cor = AnchoredCoreness::new(&g).run(budget);
    println!(
        "Coreness (vertex):       coreness gain  {:>4}, induced resilience {:>4}",
        cor.total_gain,
        vertex_induced_resilience_gain(&g, &cor.anchors)
    );

    println!(
        "\nThe edge/truss formulation targets triangle support directly, so its\n\
         gains translate one-for-one into decay survival; core-model anchors\n\
         optimize degree and usually buy far less truss-level stability —\n\
         the claim motivating the ATR problem, reproduced on synthetic data."
    );
}
