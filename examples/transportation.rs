//! Transportation-network scenario (the paper's second motivating
//! application).
//!
//! Roads are modelled as a random geometric graph (spatial locality, low
//! degree variance). The ATR machinery identifies the links whose
//! reinforcement best hardens the network's triangulated backbone, and we
//! contrast that with reinforcing the busiest links (highest support) —
//! the paper's `Sup` strawman.
//!
//! ```sh
//! cargo run --release --example transportation
//! ```

use antruss::atr::baselines::random::{random_baseline, Pool};
use antruss::atr::{Gas, GasConfig};
use antruss::graph::gen::random_geometric;
use antruss::truss::decompose;

fn main() {
    // ~2000 intersections in the unit square, links within radius 0.035.
    let g = random_geometric(2_000, 0.035, 99);
    let info = decompose(&g);
    println!(
        "road network: {} intersections, {} links, k_max = {}",
        g.num_vertices(),
        g.num_edges(),
        info.k_max
    );

    let budget = 6;
    let gas = Gas::new(&g, GasConfig::default()).run(budget);
    println!(
        "\nGAS reinforcement of {budget} links: trussness gain {}",
        gas.total_gain
    );
    for r in &gas.rounds {
        let (u, v) = g.endpoints(r.chosen);
        println!(
            "  reinforce link ({u}, {v}): stabilizes {} nearby link(s)",
            r.followers.len()
        );
    }

    // Strawman: reinforce the busiest links instead.
    let sup = random_baseline(&g, Pool::TopSupport(0.2), budget, 40, 5);
    println!(
        "\nbusiest-links heuristic (best of 40 draws): gain {}",
        sup.gain
    );
    println!(
        "GAS / busiest-links gain ratio: {:.1}x",
        gas.total_gain.max(1) as f64 / sup.gain.max(1) as f64
    );
}
