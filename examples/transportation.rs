//! Transportation-network scenario (the paper's second motivating
//! application).
//!
//! Roads are modelled as a random geometric graph (spatial locality, low
//! degree variance). The ATR machinery identifies the links whose
//! reinforcement best hardens the network's triangulated backbone, and we
//! contrast that with reinforcing the busiest links (highest support) —
//! the paper's `Sup` strawman.
//!
//! ```sh
//! cargo run --release --example transportation
//! ```

use antruss::atr::engine::{registry, Anchor, RunConfig};
use antruss::graph::gen::random_geometric;
use antruss::truss::decompose;

fn main() {
    // ~2000 intersections in the unit square, links within radius 0.035.
    let g = random_geometric(2_000, 0.035, 99);
    let info = decompose(&g);
    println!(
        "road network: {} intersections, {} links, k_max = {}",
        g.num_vertices(),
        g.num_edges(),
        info.k_max
    );

    // Both strategies run through the same engine API; only the registry
    // name differs.
    let cfg = RunConfig::new(6).trials(40).seed(5);
    let gas = registry()
        .get("gas")
        .expect("gas is registered")
        .run(&g, &cfg)
        .expect("gas run succeeds");
    println!(
        "\nGAS reinforcement of {} links: trussness gain {}",
        cfg.budget, gas.total_gain
    );
    for r in &gas.rounds {
        let Anchor::Edge(e) = r.chosen else { continue };
        let (u, v) = g.endpoints(e);
        println!(
            "  reinforce link ({u}, {v}): stabilizes {} nearby link(s)",
            r.gain
        );
    }

    // Strawman: reinforce the busiest links instead.
    let sup = registry()
        .get("rand:sup")
        .expect("rand:sup is registered")
        .run(&g, &cfg)
        .expect("rand:sup run succeeds");
    println!(
        "\nbusiest-links heuristic (best of {} draws): gain {}",
        cfg.trials, sup.total_gain
    );
    println!(
        "GAS / busiest-links gain ratio: {:.1}x",
        gas.total_gain.max(1) as f64 / sup.total_gain.max(1) as f64
    );
}
