//! Community growth through edge anchoring.
//!
//! The paper's intro argument in one demo: k-truss communities are the
//! standard cohesive-community model, and anchoring edges (ATR) grows
//! them. We pick the most cohesive community of a query user, anchor a few
//! edges with GAS, and measure how the user's community landscape changes.
//!
//! ```sh
//! cargo run --release --example community_growth
//! ```

use antruss::atr::engine::{registry, RunConfig};
use antruss::graph::gen::{social_network, SocialParams};
use antruss::truss::decompose;
use antruss::truss::{decompose_with, k_truss_communities, DecomposeOptions};

fn main() {
    let g = social_network(&SocialParams {
        n: 800,
        target_edges: 4_000,
        attach: 4,
        closure: 0.6,
        planted: vec![9],
        onions: vec![],
        seed: 21,
    });
    let before = decompose(&g);
    println!(
        "graph: {} vertices, {} edges, k_max = {}",
        g.num_vertices(),
        g.num_edges(),
        before.k_max
    );

    // Anchor 6 edges.
    let outcome = registry()
        .get("gas")
        .expect("gas is registered")
        .run(&g, &RunConfig::new(6))
        .expect("gas run succeeds");
    println!(
        "anchored {} edges, total trussness gain {}\n",
        outcome.anchors.len(),
        outcome.total_gain
    );

    // Recompute the truss landscape with anchors in place.
    let mut anchors = antruss::graph::EdgeSet::new(g.num_edges());
    for a in outcome.edge_anchors() {
        anchors.insert(a);
    }
    let after = decompose_with(
        &g,
        DecomposeOptions {
            subset: None,
            anchors: Some(&anchors),
        },
    );

    println!("community landscape (k-truss communities and their total size):");
    println!(
        "{:>4} {:>22} {:>22}",
        "k", "before (count/edges)", "after (count/edges)"
    );
    for k in 4..=before.k_max.min(9) {
        let b: Vec<_> = k_truss_communities(&g, &before, k);
        let a: Vec<_> = k_truss_communities(&g, &after, k);
        let be: usize = b.iter().map(|c| c.size()).sum();
        let ae: usize = a.iter().map(|c| c.size()).sum();
        println!(
            "{k:>4} {:>22} {:>22}",
            format!("{}/{}", b.len(), be),
            format!("{}/{}", a.len(), ae),
        );
    }

    // Zoom into one anchored edge's endpoint.
    if let Some(first) = outcome.edge_anchors().first().copied() {
        let (u, _) = g.endpoints(first);
        let at_k = |info, q| {
            antruss::truss::max_cohesion_community(&g, info, q)
                .map(|(k, c)| (k, c.size()))
                .unwrap_or((0, 0))
        };
        let (kb, sb) = at_k(&before, u);
        let (ka, sa) = at_k(&after, u);
        println!(
            "\nquery user {u}: best community was k={kb} ({sb} edges), now k={ka} ({sa} edges)"
        );
    }
}
