//! Tour of the eight dataset analogues: generation, structural statistics
//! and truss profiles, side by side with the paper's reported numbers.
//!
//! ```sh
//! cargo run --release --example dataset_tour            # 10% scale
//! cargo run --release --example dataset_tour -- 1.0     # full analogues
//! ```

use antruss::atr::engine::registry;
use antruss::datasets::{generate, DatasetId};
use antruss::graph::stats::graph_stats;
use antruss::truss::{decompose, hull_sizes};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .map(|s| s.parse().expect("scale must be a float"))
        .unwrap_or(0.1);
    println!("generating analogues at scale {scale}\n");
    println!(
        "{:<11} {:>8} {:>8} {:>6} {:>8} {:>7} | paper: {:>9} {:>9} {:>5}",
        "dataset", "|V|", "|E|", "k_max", "sup_max", "clust", "|V|", "|E|", "k_max"
    );
    for id in DatasetId::all() {
        let profile = id.profile();
        let g = generate(id, scale);
        let s = graph_stats(&g);
        let info = decompose(&g);
        println!(
            "{:<11} {:>8} {:>8} {:>6} {:>8} {:>7.3} | {:>16} {:>9} {:>5}",
            profile.name,
            s.vertices,
            s.edges,
            info.k_max,
            s.max_support,
            s.clustering,
            profile.paper.vertices,
            profile.paper.edges,
            profile.paper.k_max,
        );
        // a compact truss profile: the five largest hulls
        let mut hulls: Vec<(usize, usize)> = hull_sizes(&info)
            .into_iter()
            .enumerate()
            .filter(|&(_, c)| c > 0)
            .collect();
        hulls.sort_by_key(|&(_, c)| std::cmp::Reverse(c));
        let head: Vec<String> = hulls
            .iter()
            .take(5)
            .map(|(k, c)| format!("H{k}:{c}"))
            .collect();
        println!("{:<11}   hulls: {}", "", head.join("  "));
    }
    println!(
        "\nrun any solver on these analogues by name: {}",
        registry().names().join(", ")
    );
}
