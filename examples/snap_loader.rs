//! Run the full ATR pipeline on a real SNAP edge list.
//!
//! ```sh
//! cargo run --release --example snap_loader -- /path/to/edges.txt [budget]
//! ```
//!
//! Without a path argument, a small generated graph is analysed instead so
//! the example always runs.

use antruss::atr::engine::{registry, Anchor, RunConfig};
use antruss::graph::gen::{social_network, SocialParams};
use antruss::graph::io::read_edge_list_path;
use antruss::truss::decompose;

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next();
    let budget: usize = args
        .next()
        .map(|s| s.parse().expect("budget must be an integer"))
        .unwrap_or(5);

    let g = match &path {
        Some(p) => match read_edge_list_path(p) {
            Ok(g) => {
                println!("loaded {p}");
                g
            }
            Err(e) => {
                eprintln!("failed to load {p}: {e}");
                std::process::exit(1);
            }
        },
        None => {
            println!("no path given; using a generated 300-vertex demo graph");
            social_network(&SocialParams {
                n: 300,
                target_edges: 1_500,
                attach: 4,
                closure: 0.5,
                planted: vec![8],
                onions: vec![],
                seed: 1,
            })
        }
    };

    let info = decompose(&g);
    println!(
        "graph: {} vertices, {} edges, k_max = {}",
        g.num_vertices(),
        g.num_edges(),
        info.k_max
    );
    let gas = registry().get("gas").expect("gas is registered");
    let outcome = gas
        .run(&g, &RunConfig::new(budget))
        .expect("gas run succeeds");
    println!(
        "budget {budget}: total trussness gain {}",
        outcome.total_gain
    );
    for r in &outcome.rounds {
        let Anchor::Edge(e) = r.chosen else { continue };
        let (u, v) = g.endpoints(e);
        println!("  ({u}, {v}) -> +{}", r.gain);
    }
}
