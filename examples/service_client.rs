//! A programmatic client against an in-process `antruss serve` handle:
//! start the service, register a graph, solve on it twice (miss then
//! hit), and read the metrics — all over real sockets, no external
//! process.
//!
//! ```sh
//! cargo run --release --example service_client
//! ```

use antruss::service::{Client, Server, ServerConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // an ephemeral port keeps the example runnable alongside a real server
    let server = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        cache_capacity: 32,
        ..ServerConfig::default()
    })?;
    println!("service listening on http://{}", server.addr());
    let mut client = Client::new(server.addr());

    // 1. the solver line-up, straight from the engine registry
    let solvers = client.get("/solvers")?;
    println!(
        "\nGET /solvers -> {}\n{}",
        solvers.status,
        solvers.body_string()
    );

    // 2. register a small graph: two 5-cliques sharing one vertex
    let mut edges = String::new();
    for base in [0u32, 4] {
        for u in base..base + 5 {
            for v in (u + 1)..base + 5 {
                edges.push_str(&format!("{u} {v}\n"));
            }
        }
    }
    let created = client.post("/graphs?name=barbell", "text/plain", edges.as_bytes())?;
    println!(
        "POST /graphs?name=barbell -> {} {}",
        created.status,
        created.body_string()
    );

    // 3. solve on it twice: the first request runs GAS, the second is
    //    answered from the outcome cache with identical bytes
    let body = br#"{"graph":"barbell","solver":"gas","b":1}"#;
    let first = client.post("/solve", "application/json", body)?;
    let second = client.post("/solve", "application/json", body)?;
    println!(
        "\nPOST /solve #1 -> {} (cache {})",
        first.status,
        first.header("x-antruss-cache").unwrap_or("?")
    );
    println!(
        "POST /solve #2 -> {} (cache {})",
        second.status,
        second.header("x-antruss-cache").unwrap_or("?")
    );
    println!("outcome: {}", first.body_string());
    assert_eq!(first.body, second.body, "cache hits replay exact bytes");

    // 4. the service's own view of all that
    let metrics = client.get("/metrics")?;
    println!("\nGET /metrics ->\n{}", metrics.body_string());

    println!("shutting down: {}", server.shutdown());
    Ok(())
}
