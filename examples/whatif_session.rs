//! Interactive what-if analysis: rank candidate relationships, inspect
//! what anchoring each would buy, and commit selectively.
//!
//! Models the workflow of a community manager deciding which
//! relationships to reinforce: look at the top candidates, check *which*
//! ties each one would stabilize, and spend budget only where the
//! footprint looks right.
//!
//! ```sh
//! cargo run --release --example whatif_session
//! ```

use antruss::atr::engine::{registry, RunConfig};
use antruss::atr::WhatIf;
use antruss::graph::gen::{social_network, SocialParams};

fn main() {
    let g = social_network(&SocialParams {
        n: 600,
        target_edges: 3_000,
        attach: 4,
        closure: 0.6,
        planted: vec![10, 8],
        onions: vec![],
        seed: 99,
    });
    let mut session = WhatIf::new(&g);
    session.threads = 2;

    println!(
        "graph: {} vertices, {} edges\n",
        g.num_vertices(),
        g.num_edges()
    );

    // Rank the five most valuable relationships to reinforce right now.
    println!("top candidates before any commitment:");
    for (e, gain) in session.top(5) {
        let (u, v) = g.endpoints(e);
        println!("  ({u}, {v}) would elevate {gain} other relationship(s)");
    }

    // Inspect the best candidate's footprint, then commit it.
    let top = session.top(1);
    let (best, _) = top[0];
    let followers = session.followers_of(best).expect("not yet anchored");
    let (u, v) = g.endpoints(best);
    println!(
        "\ncommitting ({u}, {v}); its followers span trussness levels {:?}",
        {
            let mut levels: Vec<u32> = followers.iter().map(|&f| session.state().t(f)).collect();
            levels.sort_unstable();
            levels.dedup();
            levels
        }
    );
    session.commit(best);

    // The ranking changes after a commit: gains are not independent.
    println!("\ntop candidates after the commit:");
    for (e, gain) in session.top(5) {
        let (u, v) = g.endpoints(e);
        println!("  ({u}, {v}) would now elevate {gain} relationship(s)");
    }
    println!(
        "\ncommitted {} anchor(s), total trussness gain {}",
        session.committed(),
        session.total_gain()
    );

    // Hand the remaining budget to any engine solver: commit_solver plans
    // with the solver and folds its edge anchors into this session.
    let lazy = registry().get("lazy").expect("lazy is registered");
    let planned = session
        .commit_solver(lazy, &RunConfig::new(3))
        .expect("lazy plans edge anchors");
    println!(
        "\ndelegated 3 picks to the {:?} solver; session now holds {} anchor(s), total gain {}",
        planned.solver,
        session.committed(),
        session.total_gain()
    );
}
