//! Retained metrics history: a fixed-size ring per series.
//!
//! `/metrics` is a point-in-time snapshot; the [`Recorder`] turns it
//! into a trajectory. A sampler thread (one per tier) builds the tier's
//! [`Registry`] every `--metrics-interval` and calls
//! [`Recorder::record`]; the recorder keeps, per series, a bounded ring
//! of timestamped points:
//!
//! * **counters** — the raw cumulative value plus the per-interval
//!   rate (`Δvalue / Δt`, clamped at zero so a process restart never
//!   renders a negative rate);
//! * **gauges** — the value as sampled;
//! * **histograms** — *per-interval* quantiles: each sample diffs the
//!   histogram snapshot against the previous one (log2 buckets are
//!   monotone, so bucket-wise subtraction is exact) and stores the
//!   [`QUANTILES`] of just that interval's observations as
//!   `name{...,q="..."}` series. Lifetime quantile gauges can never
//!   recover from one bad minute; interval quantiles make regressions
//!   *and recoveries* visible, which is what the SLO burn-rate engine
//!   ([`crate::slo`]) evaluates.
//!
//! **Bounded memory, by construction:** at most [`MAX_SERIES`] distinct
//! series (excess series are counted in `dropped_series`, never stored)
//! times [`MAX_POINTS`] points per series, each point three `f64`s plus
//! the one-time key string — ~24 B/point, < 2 MiB at the default caps.
//! The ring never grows past its cap no matter how long the process
//! runs; `tests/history_props.rs` pins the invariant.

use crate::hist::{HistSnapshot, BUCKETS};
use crate::registry::QUANTILES;
use crate::Registry;
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::sync::Mutex;

/// Default cap on distinct series the recorder will retain.
pub const MAX_SERIES: usize = 512;

/// Default cap on points per series (at the default 5 s interval this
/// is ~21 minutes of full-resolution history — enough to cover the SLO
/// fast windows at full fidelity; slow windows see downsampled rings).
pub const MAX_POINTS: usize = 256;

/// Cap on points per series returned by [`Recorder::render_json`];
/// longer rings are downsampled (extrema-preserving, see
/// [`downsample`]) before serving.
pub const MAX_SERVED_POINTS: usize = 128;

/// What a series holds per sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesKind {
    /// Monotone counter: points carry value + per-interval rate.
    Counter,
    /// Gauge: points carry the sampled value.
    Gauge,
    /// Per-interval histogram quantile (seconds).
    WindowQuantile,
}

impl SeriesKind {
    fn as_str(self) -> &'static str {
        match self {
            SeriesKind::Counter => "counter",
            SeriesKind::Gauge => "gauge",
            SeriesKind::WindowQuantile => "window_quantile",
        }
    }
}

/// One timestamped observation in a series ring.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Point {
    /// Sample time, seconds (unix epoch from the sampler thread;
    /// synthetic in tests — the recorder only compares/diffs them).
    pub ts: f64,
    /// Counter: cumulative value. Gauge: value. WindowQuantile:
    /// quantile in seconds over the interval ending at `ts`.
    pub value: f64,
    /// Counters only: `Δvalue / Δt` vs the previous point, clamped at
    /// zero; `None` on the first point of a ring.
    pub rate: Option<f64>,
}

#[derive(Debug)]
struct Series {
    name: String,
    labels: String,
    kind: SeriesKind,
    points: VecDeque<Point>,
}

#[derive(Debug, Default)]
struct Inner {
    /// Keyed by `name{labels}` — the exposition line prefix.
    series: BTreeMap<String, Series>,
    /// Previous raw histogram snapshot per `name{labels}`, diffed on
    /// the next sample.
    prev_hists: BTreeMap<String, HistSnapshot>,
    /// Series refused because [`MAX_SERIES`] distinct keys already
    /// exist (counted once per refused sample, so growth is visible).
    dropped_series: u64,
    /// Newest sample timestamp.
    last_ts: f64,
    /// Total `record` calls.
    samples: u64,
}

/// Point-in-time accounting of a [`Recorder`] — what the bounded-memory
/// property test asserts against.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecorderStats {
    /// Distinct series currently retained.
    pub series: usize,
    /// Total points across every ring.
    pub total_points: usize,
    /// Samples refused by the series cap.
    pub dropped_series: u64,
    /// `record` calls so far.
    pub samples: u64,
}

/// The fixed-size ring store behind `GET /metrics/history`.
#[derive(Debug)]
pub struct Recorder {
    interval_seconds: f64,
    max_series: usize,
    max_points: usize,
    inner: Mutex<Inner>,
}

impl Recorder {
    /// A recorder with the default caps; `interval_seconds` is the
    /// sampler period (advisory — stored for the JSON header, the
    /// recorder itself accepts whatever timestamps it is given).
    pub fn new(interval_seconds: f64) -> Recorder {
        Recorder::with_caps(interval_seconds, MAX_SERIES, MAX_POINTS)
    }

    /// A recorder with explicit caps (tests shrink them).
    pub fn with_caps(interval_seconds: f64, max_series: usize, max_points: usize) -> Recorder {
        Recorder {
            interval_seconds,
            max_series,
            max_points: max_points.max(1),
            inner: Mutex::new(Inner::default()),
        }
    }

    /// The sampler period this recorder was configured with.
    pub fn interval_seconds(&self) -> f64 {
        self.interval_seconds
    }

    /// Samples every scalar and histogram series of `registry` at time
    /// `ts` (seconds).
    pub fn record(&self, ts: f64, registry: &Registry) {
        let mut inner = self.inner.lock().unwrap();
        inner.samples += 1;
        inner.last_ts = if inner.samples == 1 {
            ts
        } else {
            inner.last_ts.max(ts)
        };
        for s in registry.scalar_samples() {
            let kind = if s.counter {
                SeriesKind::Counter
            } else {
                SeriesKind::Gauge
            };
            push_point(
                &mut inner,
                &s.name,
                &s.labels,
                kind,
                ts,
                s.value,
                self.max_series,
                self.max_points,
            );
        }
        for (name, labels, snap) in registry.hist_samples() {
            let key = format!("{name}{labels}");
            let diff = match inner.prev_hists.get(&key) {
                Some(prev) => snap_diff(&snap, prev),
                None => snap.clone(),
            };
            inner.prev_hists.insert(key, snap);
            for (q, tag) in QUANTILES {
                let qlabels = labels_with_q(&labels, tag);
                let value = if diff.count() == 0 {
                    0.0
                } else {
                    diff.quantile_seconds(q)
                };
                push_point(
                    &mut inner,
                    &name,
                    &qlabels,
                    SeriesKind::WindowQuantile,
                    ts,
                    value,
                    self.max_series,
                    self.max_points,
                );
            }
        }
    }

    /// The newest sample timestamp seen, if any — the evaluation "now"
    /// for SLO windows (live samplers feed wall time; tests feed
    /// synthetic time, and windows stay consistent either way).
    pub fn last_ts(&self) -> Option<f64> {
        let inner = self.inner.lock().unwrap();
        if inner.samples == 0 {
            None
        } else {
            Some(inner.last_ts)
        }
    }

    /// Current accounting (see [`RecorderStats`]).
    pub fn stats(&self) -> RecorderStats {
        let inner = self.inner.lock().unwrap();
        RecorderStats {
            series: inner.series.len(),
            total_points: inner.series.values().map(|s| s.points.len()).sum(),
            dropped_series: inner.dropped_series,
            samples: inner.samples,
        }
    }

    /// The raw ring of the series keyed `name{labels}` (oldest first);
    /// empty if unknown. Key = the exposition line prefix, e.g.
    /// `antruss_requests_total` or
    /// `antruss_request_phase_seconds{phase="solve",q="0.99"}`.
    pub fn series_points(&self, key: &str) -> Vec<Point> {
        let inner = self.inner.lock().unwrap();
        inner
            .series
            .get(key)
            .map(|s| s.points.iter().copied().collect())
            .unwrap_or_default()
    }

    /// The newest point of series `key`.
    pub fn latest(&self, key: &str) -> Option<Point> {
        let inner = self.inner.lock().unwrap();
        inner.series.get(key).and_then(|s| s.points.back().copied())
    }

    /// Counter delta over the window `[start, now]`: newest value minus
    /// the value at the latest point not after `start` (the window is
    /// clamped to available history). Clamped at zero; 0.0 with fewer
    /// than two points.
    pub fn window_delta(&self, key: &str, start: f64) -> f64 {
        let inner = self.inner.lock().unwrap();
        let Some(s) = inner.series.get(key) else {
            return 0.0;
        };
        let Some(last) = s.points.back() else {
            return 0.0;
        };
        let mut base = None;
        for p in s.points.iter() {
            if p.ts <= start {
                base = Some(p.value);
            } else {
                break;
            }
        }
        let base = base.unwrap_or_else(|| s.points.front().map(|p| p.value).unwrap_or(0.0));
        if s.points.len() < 2 {
            return 0.0;
        }
        (last.value - base).max(0.0)
    }

    /// Maximum value over points with `ts >= start`; `None` if the
    /// window is empty.
    pub fn window_max(&self, key: &str, start: f64) -> Option<f64> {
        let inner = self.inner.lock().unwrap();
        inner.series.get(key).and_then(|s| {
            s.points
                .iter()
                .filter(|p| p.ts >= start)
                .map(|p| p.value)
                .fold(None, |acc: Option<f64>, v| {
                    Some(acc.map_or(v, |a| a.max(v)))
                })
        })
    }

    /// Renders the `GET /metrics/history` JSON body. `series` filters
    /// to families whose *name* equals the filter (every label set of
    /// it); `since` drops points at or before that timestamp. Rings
    /// longer than [`MAX_SERVED_POINTS`] are downsampled.
    pub fn render_json(&self, series: Option<&str>, since: Option<f64>) -> String {
        let inner = self.inner.lock().unwrap();
        let mut body = String::with_capacity(4096);
        body.push('{');
        body.push_str(&format!(
            "\"interval_seconds\":{},\"points_cap\":{},\"series_cap\":{},\"served_points_cap\":{},\"dropped_series\":{},\"samples\":{},\"series\":[",
            fmt_f64(self.interval_seconds),
            self.max_points,
            self.max_series,
            MAX_SERVED_POINTS,
            inner.dropped_series,
            inner.samples,
        ));
        let mut first = true;
        for s in inner.series.values() {
            if let Some(filter) = series {
                if s.name != filter {
                    continue;
                }
            }
            let pts: Vec<Point> = s
                .points
                .iter()
                .filter(|p| since.is_none_or(|t| p.ts > t))
                .copied()
                .collect();
            if pts.is_empty() && series.is_none() {
                continue;
            }
            if !first {
                body.push(',');
            }
            first = false;
            body.push_str(&format!(
                "{{\"name\":\"{}\",\"labels\":\"{}\",\"kind\":\"{}\",\"points\":[",
                jesc(&s.name),
                jesc(&s.labels),
                s.kind.as_str()
            ));
            let served = downsample(&pts, MAX_SERVED_POINTS);
            for (i, p) in served.iter().enumerate() {
                if i > 0 {
                    body.push(',');
                }
                body.push_str(&format!(
                    "{{\"ts\":{},\"value\":{}",
                    fmt_f64(p.ts),
                    fmt_f64(p.value)
                ));
                if let Some(rate) = p.rate {
                    body.push_str(&format!(",\"rate\":{}", fmt_f64(rate)));
                }
                body.push('}');
            }
            body.push_str("]}");
        }
        body.push_str("]}");
        body
    }
}

#[allow(clippy::too_many_arguments)]
fn push_point(
    inner: &mut Inner,
    name: &str,
    labels: &str,
    kind: SeriesKind,
    ts: f64,
    value: f64,
    max_series: usize,
    max_points: usize,
) {
    let key = format!("{name}{labels}");
    if !inner.series.contains_key(&key) {
        if inner.series.len() >= max_series {
            inner.dropped_series += 1;
            return;
        }
        inner.series.insert(
            key.clone(),
            Series {
                name: name.to_string(),
                labels: labels.to_string(),
                kind,
                points: VecDeque::with_capacity(max_points.min(64)),
            },
        );
    }
    let s = inner.series.get_mut(&key).unwrap();
    let rate = if kind == SeriesKind::Counter {
        s.points.back().and_then(|prev| {
            let dt = ts - prev.ts;
            if dt > 0.0 {
                Some(((value - prev.value) / dt).max(0.0))
            } else {
                None
            }
        })
    } else {
        None
    };
    if s.points.len() >= max_points {
        s.points.pop_front();
    }
    s.points.push_back(Point { ts, value, rate });
}

/// Bucket-wise `cur - prev` (both monotone under sampling, so
/// saturating subtraction only fires on a histogram reset).
fn snap_diff(cur: &HistSnapshot, prev: &HistSnapshot) -> HistSnapshot {
    let mut buckets = [0u64; BUCKETS];
    for (i, out) in buckets.iter_mut().enumerate() {
        *out = cur.buckets[i].saturating_sub(prev.buckets[i]);
    }
    HistSnapshot {
        buckets,
        sum_ns: cur.sum_ns.saturating_sub(prev.sum_ns),
    }
}

/// Appends `q="tag"` to an already-rendered label set.
fn labels_with_q(labels: &str, tag: &str) -> String {
    if labels.is_empty() {
        format!("{{q=\"{tag}\"}}")
    } else {
        format!("{},q=\"{tag}\"}}", &labels[..labels.len() - 1])
    }
}

/// Reduces `points` to at most `max` (≥ 2) of its *own* points: the
/// ring is split into chunks and each chunk contributes its minimum and
/// maximum point, in timestamp order. Because the output is a subset of
/// the input, downsampling can never invent an extremum — the served
/// min/max always bracket within the recorded min/max
/// (`tests/history_props.rs` pins this).
pub fn downsample(points: &[Point], max: usize) -> Vec<Point> {
    let max = max.max(2);
    if points.len() <= max {
        return points.to_vec();
    }
    let chunks = max / 2;
    let chunk_len = points.len().div_ceil(chunks);
    let mut out = Vec::with_capacity(max);
    for chunk in points.chunks(chunk_len) {
        let mut lo = 0usize;
        let mut hi = 0usize;
        for (i, p) in chunk.iter().enumerate() {
            if p.value < chunk[lo].value {
                lo = i;
            }
            if p.value >= chunk[hi].value {
                hi = i;
            }
        }
        let (a, b) = (lo.min(hi), lo.max(hi));
        out.push(chunk[a]);
        if b != a {
            out.push(chunk[b]);
        }
    }
    out
}

/// JSON number rendering: finite, compact, never `NaN`/`inf` (which
/// would break strict parsers).
fn fmt_f64(v: f64) -> String {
    if !v.is_finite() {
        return "0".to_string();
    }
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

fn jesc(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Histogram;

    fn registry(requests: u64, cache_entries: f64) -> Registry {
        let mut r = Registry::new();
        r.counter("antruss_requests_total", requests);
        r.gauge("antruss_cache_entries", cache_entries);
        r
    }

    #[test]
    fn counters_get_rates_gauges_do_not() {
        let rec = Recorder::new(5.0);
        rec.record(0.0, &registry(0, 1.0));
        rec.record(5.0, &registry(100, 2.0));
        rec.record(10.0, &registry(150, 3.0));
        let pts = rec.series_points("antruss_requests_total");
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0].rate, None);
        assert_eq!(pts[1].rate, Some(20.0));
        assert_eq!(pts[2].rate, Some(10.0));
        let gauge = rec.series_points("antruss_cache_entries");
        assert!(gauge.iter().all(|p| p.rate.is_none()));
    }

    #[test]
    fn counter_reset_clamps_rate_at_zero() {
        let rec = Recorder::new(5.0);
        rec.record(0.0, &registry(500, 0.0));
        rec.record(5.0, &registry(3, 0.0)); // restart: counter went backwards
        let pts = rec.series_points("antruss_requests_total");
        assert_eq!(pts[1].rate, Some(0.0));
    }

    #[test]
    fn ring_caps_points_and_series() {
        let rec = Recorder::with_caps(1.0, 1, 4);
        for i in 0..50u64 {
            rec.record(i as f64, &registry(i, i as f64));
        }
        let stats = rec.stats();
        assert_eq!(stats.series, 1, "second series refused by the cap");
        assert_eq!(stats.total_points, 4);
        assert!(stats.dropped_series > 0);
        let pts = rec.series_points("antruss_requests_total");
        assert_eq!(pts.len(), 4);
        assert_eq!(pts.last().unwrap().ts, 49.0);
    }

    #[test]
    fn histogram_samples_become_interval_quantiles() {
        let h = Histogram::new();
        let build = |h: &Histogram| {
            let mut r = Registry::new();
            r.histogram(
                "antruss_phase_seconds",
                &[("phase", "solve")],
                &h.snapshot(),
            );
            r
        };
        let rec = Recorder::new(5.0);
        for _ in 0..100 {
            h.observe_ns(1_000_000); // ~1ms
        }
        rec.record(0.0, &build(&h));
        for _ in 0..100 {
            h.observe_ns(64_000_000); // ~64ms: only the new interval sees it
        }
        rec.record(5.0, &build(&h));
        let key = "antruss_phase_seconds{phase=\"solve\",q=\"0.99\"}";
        let pts = rec.series_points(key);
        assert_eq!(pts.len(), 2);
        // first interval: ~1ms (within 2x); second: ~64ms, NOT the
        // lifetime blend — the diff isolates the interval
        assert!(pts[0].value < 0.004, "{pts:?}");
        assert!(pts[1].value > 0.03, "{pts:?}");
        let p50 = rec.series_points("antruss_phase_seconds{phase=\"solve\",q=\"0.5\"}");
        assert_eq!(p50.len(), 2);
    }

    #[test]
    fn window_queries() {
        let rec = Recorder::new(5.0);
        for (ts, v) in [(0.0, 0u64), (10.0, 100), (20.0, 150), (30.0, 160)] {
            rec.record(ts, &registry(v, v as f64 / 10.0));
        }
        // full window
        assert_eq!(rec.window_delta("antruss_requests_total", -1.0), 160.0);
        // window starting at ts=10: baseline is the point AT 10
        assert_eq!(rec.window_delta("antruss_requests_total", 10.0), 60.0);
        // window starting mid-gap: baseline is the latest point <= start
        assert_eq!(rec.window_delta("antruss_requests_total", 15.0), 60.0);
        assert_eq!(rec.window_max("antruss_cache_entries", 15.0), Some(16.0));
        assert_eq!(rec.window_max("antruss_cache_entries", 99.0), None);
        assert_eq!(rec.window_delta("no_such_series", 0.0), 0.0);
    }

    #[test]
    fn json_filters_by_series_and_since() {
        let rec = Recorder::new(5.0);
        rec.record(10.0, &registry(5, 1.0));
        rec.record(20.0, &registry(9, 2.0));
        let all = rec.render_json(None, None);
        assert!(all.contains("\"name\":\"antruss_requests_total\""), "{all}");
        assert!(all.contains("\"name\":\"antruss_cache_entries\""), "{all}");
        assert!(all.contains("\"kind\":\"counter\""), "{all}");
        assert!(all.contains("\"rate\":"), "{all}");
        let one = rec.render_json(Some("antruss_cache_entries"), None);
        assert!(!one.contains("antruss_requests_total"), "{one}");
        assert!(one.contains("\"kind\":\"gauge\""), "{one}");
        let late = rec.render_json(Some("antruss_cache_entries"), Some(15.0));
        assert!(late.contains("\"ts\":20"), "{late}");
        assert!(!late.contains("\"ts\":10"), "{late}");
    }

    #[test]
    fn downsample_is_a_subset_preserving_extrema() {
        let points: Vec<Point> = (0..1000)
            .map(|i| Point {
                ts: i as f64,
                value: ((i * 37) % 101) as f64,
                rate: None,
            })
            .collect();
        let ds = downsample(&points, 64);
        assert!(ds.len() <= 64);
        let in_min = points.iter().map(|p| p.value).fold(f64::MAX, f64::min);
        let in_max = points.iter().map(|p| p.value).fold(f64::MIN, f64::max);
        let out_min = ds.iter().map(|p| p.value).fold(f64::MAX, f64::min);
        let out_max = ds.iter().map(|p| p.value).fold(f64::MIN, f64::max);
        assert!(out_min >= in_min && out_max <= in_max);
        // every served point is a recorded point
        for p in &ds {
            assert!(points.contains(p));
        }
        // timestamps stay ordered
        for w in ds.windows(2) {
            assert!(w[0].ts <= w[1].ts);
        }
        // short rings pass through untouched
        assert_eq!(downsample(&points[..10], 64), points[..10].to_vec());
    }
}
