//! One Prometheus-text renderer for every `/metrics` endpoint.
//!
//! Each tier keeps its own long-lived atomics and [`Histogram`]s and, on
//! every scrape, builds a [`Registry`], registers the current values and
//! calls [`Registry::render`]. The registry owns the things a hand-rolled
//! string builder gets subtly wrong per tier: `# TYPE` lines (exactly one
//! per family), duplicate-series detection, label escaping, and value
//! formatting (integral values render without a decimal point, so
//! `name value` lines stay greppable/parseable by the line-prefix
//! consumers in `loadgen` and the router's warm path).

use crate::hist::HistSnapshot;
use std::time::Duration;

/// The quantiles every latency histogram exposes alongside its buckets.
pub const QUANTILES: [(f64, &str); 4] = [
    (0.5, "0.5"),
    (0.95, "0.95"),
    (0.99, "0.99"),
    (0.999, "0.999"),
];

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug)]
enum Sample {
    /// `(labels, value)` — labels already rendered (`{k="v"}` or
    /// empty), the value already formatted. Formatting at registration
    /// keeps 64-bit integers (epochs, seqs) exact instead of routing
    /// them through an `f64` with a 53-bit mantissa.
    Scalar(String, String),
    /// `(labels, snapshot, raw)` — expands to `_bucket`/`_sum`/`_count`.
    /// Boxed: a snapshot is 64 buckets, far larger than a scalar. `raw`
    /// histograms render bucket bounds and the sum as plain unit counts
    /// (bytes, items) instead of converting nanoseconds to seconds.
    Hist(String, Box<HistSnapshot>, bool),
}

#[derive(Debug)]
struct Family {
    name: String,
    kind: Kind,
    samples: Vec<Sample>,
}

/// A per-scrape collection of metric families; see the module docs.
#[derive(Debug, Default)]
pub struct Registry {
    families: Vec<Family>,
}

/// One scalar (counter or gauge) series read back out of a built
/// [`Registry`] — what [`crate::history::Recorder`] samples. Histogram
/// families are skipped: every tier registers sibling
/// `*_quantile_seconds{q}` gauge families, which show up here as
/// scalars.
#[derive(Debug, Clone, PartialEq)]
pub struct ScalarSample {
    /// Family name, e.g. `antruss_requests_total`.
    pub name: String,
    /// Rendered label set, `{k="v",...}` or empty.
    pub labels: String,
    /// `true` for counter families (sampled as rates), `false` for
    /// gauges (sampled as-is).
    pub counter: bool,
    /// The registered value, parsed back from its exposition rendering.
    pub value: f64,
}

fn escape_label(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn render_labels(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let body: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    format!("{{{}}}", body.join(","))
}

/// Renders a value the way the pre-registry renderers did: integral
/// values without a decimal point, everything else with six decimals.
fn fmt_value(v: f64) -> String {
    if v.fract() == 0.0 && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{v:.6}")
    }
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn family(&mut self, name: &str, kind: Kind) -> &mut Family {
        if let Some(i) = self.families.iter().position(|f| f.name == name) {
            debug_assert_eq!(
                self.families[i].kind, kind,
                "metric family {name:?} registered with two kinds"
            );
            return &mut self.families[i];
        }
        self.families.push(Family {
            name: name.to_string(),
            kind,
            samples: Vec::new(),
        });
        self.families.last_mut().unwrap()
    }

    fn push_scalar(&mut self, name: &str, kind: Kind, labels: &[(&str, &str)], v: String) {
        let rendered = render_labels(labels);
        let fam = self.family(name, kind);
        debug_assert!(
            !fam.samples
                .iter()
                .any(|s| matches!(s, Sample::Scalar(l, _) if *l == rendered)),
            "duplicate series {name}{rendered}"
        );
        fam.samples.push(Sample::Scalar(rendered, v));
    }

    /// Registers a monotone counter (rendered exactly, never through
    /// floating point).
    pub fn counter(&mut self, name: &str, v: u64) {
        self.push_scalar(name, Kind::Counter, &[], v.to_string());
    }

    /// Registers a labeled counter series (same name, many label sets).
    pub fn counter_with(&mut self, name: &str, labels: &[(&str, &str)], v: u64) {
        self.push_scalar(name, Kind::Counter, labels, v.to_string());
    }

    /// Registers a labeled counter holding a non-integral total
    /// (cumulative CPU seconds). Prometheus counters may be floats;
    /// every integral value still renders without a decimal point.
    pub fn counter_f64_with(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.push_scalar(name, Kind::Counter, labels, fmt_value(v));
    }

    /// Registers a gauge.
    pub fn gauge(&mut self, name: &str, v: f64) {
        self.push_scalar(name, Kind::Gauge, &[], fmt_value(v));
    }

    /// Registers a labeled gauge series.
    pub fn gauge_with(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        self.push_scalar(name, Kind::Gauge, labels, fmt_value(v));
    }

    /// Registers a gauge holding an exact 64-bit integer — epochs and
    /// sequence ids exceed an `f64` mantissa and must not be rounded.
    pub fn gauge_u64(&mut self, name: &str, v: u64) {
        self.push_scalar(name, Kind::Gauge, &[], v.to_string());
    }

    /// Registers a histogram snapshot under `name` (expanded at render
    /// time into `{name}_bucket{le=...}` / `{name}_sum` / `{name}_count`
    /// with bounds in seconds).
    pub fn histogram(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistSnapshot) {
        let rendered = render_labels(labels);
        let fam = self.family(name, Kind::Histogram);
        fam.samples
            .push(Sample::Hist(rendered, Box::new(snap.clone()), false));
    }

    /// Registers a histogram whose observations are raw unit counts
    /// (allocated bytes per request) rather than nanoseconds: bucket
    /// bounds and the `_sum` render as plain numbers, not seconds.
    /// Raw histograms are skipped by [`Registry::hist_samples`] so the
    /// history recorder never mislabels their quantiles as seconds.
    pub fn raw_histogram(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistSnapshot) {
        let rendered = render_labels(labels);
        let fam = self.family(name, Kind::Histogram);
        fam.samples
            .push(Sample::Hist(rendered, Box::new(snap.clone()), true));
    }

    /// Registers the standard [`QUANTILES`] of a raw-unit histogram as a
    /// gauge family `name{q=...}` in the histogram's own units.
    pub fn raw_quantiles(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistSnapshot) {
        for (q, tag) in QUANTILES {
            let mut all: Vec<(&str, &str)> = labels.to_vec();
            all.push(("q", tag));
            self.gauge_with(name, &all, snap.quantile_ns(q));
        }
    }

    /// Registers the standard [`QUANTILES`] of `snap` as a gauge family
    /// `name{q="0.5|0.95|0.99|0.999"}` in seconds, appending `labels` to
    /// each series.
    pub fn quantiles(&mut self, name: &str, labels: &[(&str, &str)], snap: &HistSnapshot) {
        for (q, tag) in QUANTILES {
            let mut all: Vec<(&str, &str)> = labels.to_vec();
            all.push(("q", tag));
            self.gauge_with(name, &all, snap.quantile_seconds(q));
        }
    }

    /// Every scalar series currently registered, in registration order.
    /// Histogram samples are skipped (their quantile-gauge siblings are
    /// scalars and cover them); a value that fails to parse back (never
    /// produced by [`fmt_value`]) is skipped too.
    pub fn scalar_samples(&self) -> Vec<ScalarSample> {
        let mut out = Vec::new();
        for fam in &self.families {
            let counter = fam.kind == Kind::Counter;
            if fam.kind == Kind::Histogram {
                continue;
            }
            for sample in &fam.samples {
                if let Sample::Scalar(labels, v) = sample {
                    if let Ok(value) = v.parse::<f64>() {
                        out.push(ScalarSample {
                            name: fam.name.clone(),
                            labels: labels.clone(),
                            counter,
                            value,
                        });
                    }
                }
            }
        }
        out
    }

    /// Every histogram series currently registered as
    /// `(name, rendered_labels, snapshot)` — what the history recorder
    /// diffs into per-interval quantiles.
    pub fn hist_samples(&self) -> Vec<(String, String, HistSnapshot)> {
        let mut out = Vec::new();
        for fam in &self.families {
            for sample in &fam.samples {
                if let Sample::Hist(labels, snap, false) = sample {
                    out.push((fam.name.clone(), labels.clone(), (**snap).clone()));
                }
            }
        }
        out
    }

    /// Renders every family as Prometheus text exposition: one `# TYPE`
    /// line per family, then its samples in registration order.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for fam in &self.families {
            out.push_str(&format!("# TYPE {} {}\n", fam.name, fam.kind.as_str()));
            for sample in &fam.samples {
                match sample {
                    Sample::Scalar(labels, v) => {
                        out.push_str(&format!("{}{} {v}\n", fam.name, labels));
                    }
                    Sample::Hist(labels, snap, raw) => {
                        render_hist(&mut out, &fam.name, labels, snap, *raw)
                    }
                }
            }
        }
        out
    }
}

/// Formats a bucket bound in seconds without trailing zero noise.
fn fmt_le(ns: u64) -> String {
    let secs = Duration::from_nanos(ns).as_secs_f64();
    let s = format!("{secs:.9}");
    let trimmed = s.trim_end_matches('0').trim_end_matches('.');
    if trimmed.is_empty() {
        "0".to_string()
    } else {
        trimmed.to_string()
    }
}

fn render_hist(out: &mut String, name: &str, labels: &str, snap: &HistSnapshot, raw: bool) {
    // re-open the label set to append le="..."
    let with = |extra: &str| -> String {
        if labels.is_empty() {
            format!("{{{extra}}}")
        } else {
            format!("{},{extra}}}", &labels[..labels.len() - 1])
        }
    };
    let mut total = 0u64;
    for (upper, cum) in snap.cumulative() {
        let bound = if raw {
            upper.to_string()
        } else {
            fmt_le(upper)
        };
        out.push_str(&format!(
            "{name}_bucket{} {cum}\n",
            with(&format!("le=\"{bound}\""))
        ));
        total = cum;
    }
    debug_assert_eq!(total, snap.count());
    out.push_str(&format!(
        "{name}_bucket{} {}\n",
        with("le=\"+Inf\""),
        snap.count()
    ));
    let sum = if raw {
        snap.sum_ns.to_string()
    } else {
        fmt_value(snap.sum_seconds())
    };
    out.push_str(&format!("{name}_sum{labels} {sum}\n"));
    out.push_str(&format!("{name}_count{labels} {}\n", snap.count()));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    #[test]
    fn renders_types_and_plain_lines() {
        let mut r = Registry::new();
        r.counter("antruss_requests_total", 5);
        r.gauge("antruss_uptime_seconds", 12.5);
        r.gauge("antruss_cache_entries", 42.0);
        let text = r.render();
        assert!(
            text.contains("# TYPE antruss_requests_total counter\n"),
            "{text}"
        );
        assert!(text.contains("antruss_requests_total 5\n"), "{text}");
        assert!(
            text.contains("antruss_uptime_seconds 12.500000\n"),
            "{text}"
        );
        // integral gauges render without a decimal point (line-prefix
        // parsers depend on this)
        assert!(text.contains("antruss_cache_entries 42\n"), "{text}");
    }

    #[test]
    fn labeled_series_share_one_type_line() {
        let mut r = Registry::new();
        r.gauge_with("antruss_shard_healthy", &[("shard", "0")], 1.0);
        r.gauge_with("antruss_shard_healthy", &[("shard", "1")], 0.0);
        let text = r.render();
        assert_eq!(text.matches("# TYPE antruss_shard_healthy").count(), 1);
        assert!(
            text.contains("antruss_shard_healthy{shard=\"0\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("antruss_shard_healthy{shard=\"1\"} 0\n"),
            "{text}"
        );
    }

    #[test]
    fn big_integers_render_exactly() {
        // a full 64-bit epoch would be rounded by an f64 mantissa
        let epoch = u64::MAX - 3;
        let mut r = Registry::new();
        r.gauge_u64("antruss_events_epoch", epoch);
        r.counter("antruss_big_total", epoch);
        let text = r.render();
        assert!(
            text.contains(&format!("antruss_events_epoch {epoch}\n")),
            "{text}"
        );
        assert!(
            text.contains(&format!("antruss_big_total {epoch}\n")),
            "{text}"
        );
    }

    #[test]
    fn label_values_are_escaped() {
        let mut r = Registry::new();
        r.gauge_with("g", &[("addr", "a\"b\\c")], 1.0);
        assert!(r.render().contains("g{addr=\"a\\\"b\\\\c\"} 1\n"));
    }

    #[test]
    fn histograms_expand_to_bucket_sum_count() {
        let h = Histogram::new();
        h.observe_ns(1_000); // ~1us
        h.observe_ns(1_000_000); // ~1ms
        let mut r = Registry::new();
        r.histogram(
            "antruss_phase_seconds",
            &[("phase", "parse")],
            &h.snapshot(),
        );
        let text = r.render();
        assert!(
            text.contains("# TYPE antruss_phase_seconds histogram\n"),
            "{text}"
        );
        assert!(
            text.contains("antruss_phase_seconds_bucket{phase=\"parse\",le=\"+Inf\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("antruss_phase_seconds_count{phase=\"parse\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("antruss_phase_seconds_sum{phase=\"parse\"}"),
            "{text}"
        );
        // cumulative counts end at the total
        let inf = text
            .lines()
            .find(|l| l.contains("le=\"+Inf\""))
            .unwrap()
            .rsplit(' ')
            .next()
            .unwrap();
        assert_eq!(inf, "2");
    }

    #[test]
    fn scalar_samples_read_back_counters_and_gauges() {
        let mut r = Registry::new();
        r.counter("antruss_requests_total", 5);
        r.gauge_with("antruss_quantile", &[("q", "0.99")], 0.25);
        let h = Histogram::new();
        h.observe_ns(1_000);
        r.histogram(
            "antruss_phase_seconds",
            &[("phase", "parse")],
            &h.snapshot(),
        );
        let samples = r.scalar_samples();
        assert_eq!(samples.len(), 2, "{samples:?}");
        assert_eq!(samples[0].name, "antruss_requests_total");
        assert!(samples[0].counter);
        assert_eq!(samples[0].value, 5.0);
        assert_eq!(samples[1].labels, "{q=\"0.99\"}");
        assert!(!samples[1].counter);
        assert!((samples[1].value - 0.25).abs() < 1e-9);
    }

    #[test]
    fn raw_histograms_render_unit_bounds() {
        let h = Histogram::new();
        h.observe_ns(300); // 300 bytes, bucket upper 511
        h.observe_ns(5_000); // 5000 bytes, bucket upper 8191
        let mut r = Registry::new();
        r.raw_histogram("antruss_prof_request_alloc_bytes", &[], &h.snapshot());
        r.raw_quantiles(
            "antruss_prof_request_alloc_bytes_quantile",
            &[],
            &h.snapshot(),
        );
        let text = r.render();
        // bounds stay raw byte counts, never divided down to seconds
        assert!(
            text.contains("antruss_prof_request_alloc_bytes_bucket{le=\"511\"} 1\n"),
            "{text}"
        );
        assert!(
            text.contains("antruss_prof_request_alloc_bytes_bucket{le=\"+Inf\"} 2\n"),
            "{text}"
        );
        assert!(
            text.contains("antruss_prof_request_alloc_bytes_sum 5300\n"),
            "{text}"
        );
        assert!(
            text.contains("antruss_prof_request_alloc_bytes_quantile{q=\"0.99\"}"),
            "{text}"
        );
        // raw histograms never reach the history recorder's seconds path
        assert!(r.hist_samples().is_empty());
    }

    #[test]
    fn float_counters_render_like_gauges() {
        let mut r = Registry::new();
        r.counter_f64_with(
            "antruss_prof_cpu_seconds_total",
            &[("role", "worker")],
            1.25,
        );
        r.counter_f64_with("antruss_prof_cpu_seconds_total", &[("role", "main")], 3.0);
        let text = r.render();
        assert!(
            text.contains("# TYPE antruss_prof_cpu_seconds_total counter\n"),
            "{text}"
        );
        assert!(
            text.contains("antruss_prof_cpu_seconds_total{role=\"worker\"} 1.250000\n"),
            "{text}"
        );
        assert!(
            text.contains("antruss_prof_cpu_seconds_total{role=\"main\"} 3\n"),
            "{text}"
        );
    }

    #[test]
    fn quantile_family_renders_q_labels() {
        let h = Histogram::new();
        for _ in 0..100 {
            h.observe_ns(2_000_000);
        }
        let mut r = Registry::new();
        r.quantiles(
            "antruss_phase_quantile_seconds",
            &[("phase", "solve")],
            &h.snapshot(),
        );
        let text = r.render();
        for tag in ["0.5", "0.95", "0.99", "0.999"] {
            assert!(
                text.contains(&format!(
                    "antruss_phase_quantile_seconds{{phase=\"solve\",q=\"{tag}\"}}"
                )),
                "{text}"
            );
        }
    }
}
