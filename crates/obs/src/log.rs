//! Leveled, optionally-JSON structured logging to stderr.
//!
//! One process-wide level (default `info`) and output mode, set once by
//! the CLI from `--log-level` / `--log-json`. The [`crate::log!`] macro
//! (and its [`crate::error!`] / [`crate::warn!`] / [`crate::info!`] /
//! [`crate::debug!`] shorthands) formats lazily — below-level messages
//! cost one atomic load.
//!
//! Plain mode keeps the historical `antruss <target>: <message>` shape
//! the tiers have always printed; JSON mode emits one
//! `{"ts":…,"level":…,"target":…,"msg":…}` object per line for log
//! shippers.

use std::sync::atomic::{AtomicBool, AtomicU8, Ordering};
use std::time::{SystemTime, UNIX_EPOCH};

/// Log severities, most severe first.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum Level {
    /// The process is in trouble.
    Error = 0,
    /// Something degraded but survivable (failed heartbeat, dropped WAL tail).
    Warn = 1,
    /// Normal lifecycle events (listening, recovered, joined).
    Info = 2,
    /// Chatty diagnostics.
    Debug = 3,
}

impl Level {
    /// The lower-case name used on the wire and the CLI.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Error => "error",
            Level::Warn => "warn",
            Level::Info => "info",
            Level::Debug => "debug",
        }
    }
}

/// Parses a `--log-level` spelling.
pub fn parse_level(s: &str) -> Result<Level, String> {
    match s.to_ascii_lowercase().as_str() {
        "error" => Ok(Level::Error),
        "warn" | "warning" => Ok(Level::Warn),
        "info" => Ok(Level::Info),
        "debug" => Ok(Level::Debug),
        other => Err(format!(
            "unknown log level {other:?} (expected error|warn|info|debug)"
        )),
    }
}

static LEVEL: AtomicU8 = AtomicU8::new(Level::Info as u8);
static JSON: AtomicBool = AtomicBool::new(false);

/// Sets the process-wide level and output mode (called once by the CLI;
/// tests may call it repeatedly).
pub fn init(level: Level, json: bool) {
    LEVEL.store(level as u8, Ordering::Relaxed);
    JSON.store(json, Ordering::Relaxed);
}

/// Whether messages at `level` are currently emitted.
#[inline]
pub fn enabled(level: Level) -> bool {
    (level as u8) <= LEVEL.load(Ordering::Relaxed)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Emits one already-formatted message (use the macros instead; this is
/// the macro's target).
pub fn write(level: Level, target: &str, msg: &str) {
    if JSON.load(Ordering::Relaxed) {
        let ts = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        eprintln!(
            "{{\"ts\":{ts},\"level\":\"{}\",\"target\":\"{}\",\"msg\":\"{}\"}}",
            level.as_str(),
            json_escape(target),
            json_escape(msg)
        );
    } else if level <= Level::Warn {
        eprintln!("antruss {target} [{}]: {msg}", level.as_str());
    } else {
        eprintln!("antruss {target}: {msg}");
    }
}

/// Logs a formatted message at `level` under `target` (a short tier or
/// subsystem name: `serve`, `router`, `edge`, `store`, …).
#[macro_export]
macro_rules! log {
    ($level:expr, $target:expr, $($arg:tt)+) => {
        if $crate::log::enabled($level) {
            $crate::log::write($level, $target, &format!($($arg)+));
        }
    };
}

/// [`log!`] at [`Level::Error`].
#[macro_export]
macro_rules! error {
    ($target:expr, $($arg:tt)+) => { $crate::log!($crate::log::Level::Error, $target, $($arg)+) };
}

/// [`log!`] at [`Level::Warn`].
#[macro_export]
macro_rules! warn {
    ($target:expr, $($arg:tt)+) => { $crate::log!($crate::log::Level::Warn, $target, $($arg)+) };
}

/// [`log!`] at [`Level::Info`].
#[macro_export]
macro_rules! info {
    ($target:expr, $($arg:tt)+) => { $crate::log!($crate::log::Level::Info, $target, $($arg)+) };
}

/// [`log!`] at [`Level::Debug`].
#[macro_export]
macro_rules! debug {
    ($target:expr, $($arg:tt)+) => { $crate::log!($crate::log::Level::Debug, $target, $($arg)+) };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_parse_and_order() {
        assert_eq!(parse_level("warn").unwrap(), Level::Warn);
        assert_eq!(parse_level("WARNING").unwrap(), Level::Warn);
        assert!(parse_level("loud").is_err());
        assert!(Level::Error < Level::Debug);
    }

    #[test]
    fn gating_respects_the_level() {
        init(Level::Warn, false);
        assert!(enabled(Level::Error));
        assert!(enabled(Level::Warn));
        assert!(!enabled(Level::Info));
        init(Level::Info, false); // restore the default for other tests
        assert!(enabled(Level::Info));
        assert!(!enabled(Level::Debug));
    }

    #[test]
    fn macros_expand() {
        // smoke: the macros must compile against every arm and not
        // panic when invoked
        crate::info!("test", "hello {}", 1);
        crate::warn!("test", "warned");
        crate::debug!("test", "below default level, not emitted");
    }

    #[test]
    fn json_escaping_is_safe() {
        assert_eq!(json_escape("a\"b\\c\n"), "a\\\"b\\\\c\\u000a");
    }
}
