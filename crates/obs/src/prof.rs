//! Always-on continuous profiling and per-request cost accounting.
//!
//! Four pieces, all cheap enough to leave on in production:
//!
//! * [`CountingAlloc`] — a `#[global_allocator]` wrapper over the
//!   system allocator keeping **lossless** per-thread alloc/dealloc
//!   counts and byte totals. Each thread owns a slot in a fixed static
//!   table, so the counting path is two relaxed atomic adds and never
//!   allocates (no recursion, no locks, no sampling loss).
//! * **Thread roles** — [`register_thread`] maps a thread's name (the
//!   kernel `comm`, truncated to 15 bytes) to a role (`worker`,
//!   `solver`, `gossip`, …). [`cpu_report`] reads per-thread CPU from
//!   `/proc/self/task/*/stat` and aggregates it by role, retiring the
//!   ticks of exited threads so `antruss_prof_cpu_seconds_total{role=}`
//!   is monotone even across thread churn.
//! * **Lock-wait accounting** — [`ProfMutex`] / [`ProfRwLock`] are
//!   drop-in wrappers over the std primitives that time every
//!   acquisition into a process-wide named histogram
//!   (`antruss_prof_lock_wait_seconds{lock=}`), so "waiters queued on
//!   the catalog mutate lock" is a scrape, not a guess.
//! * **Request costs** — [`begin_cost`] / [`CostSpan`] snapshot the
//!   handling thread's CPU clock and allocation counters around a
//!   request (or one phase of it); the deltas ride the
//!   [`COST_HEADER`] response header, feed per-endpoint cost
//!   histograms, and land in the slow-trace ring via
//!   [`crate::trace::note_phase_cost`].
//!
//! Everything surfaces in one place per tier: [`debug_json`] renders
//! the `GET /debug/prof` body and [`register_metrics`] registers the
//! `antruss_prof_*` families into a tier's scrape registry.
//!
//! Caveats, by design: per-thread attribution covers the handling
//! thread only (a parallel solver's helper threads show up in role CPU,
//! not in the request's cost header), and a process hosting several
//! in-process tiers (tests, `loadgen --edge`) reports the same
//! process-wide profile from every tier's endpoint.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

use crate::hist::Histogram;
use crate::registry::Registry;
use crate::trace;

/// Response header carrying a request's accumulated resource cost as
/// `cpu_us=<n>;alloc_bytes=<n>`. Tiers on a forwarding path fold the
/// downstream value into their own, so the client sees the whole
/// chain's spend.
pub const COST_HEADER: &str = "x-antruss-cost";

// ---------------------------------------------------------------------
// CountingAlloc: lossless per-thread allocation counters
// ---------------------------------------------------------------------

/// Per-thread allocation counters. Slot 0 is the shared overflow slot:
/// threads beyond [`MAX_THREAD_SLOTS`] and allocations during TLS
/// teardown count there, so process totals stay lossless even when
/// per-thread attribution degrades.
struct AllocSlot {
    allocs: AtomicU64,
    alloc_bytes: AtomicU64,
    deallocs: AtomicU64,
    dealloc_bytes: AtomicU64,
}

/// How many threads get a private counter slot before falling back to
/// the shared overflow slot. Slots are never recycled (an exited
/// thread's totals must keep counting toward the process totals).
pub const MAX_THREAD_SLOTS: usize = 1024;

#[allow(clippy::declare_interior_mutable_const)]
const EMPTY_SLOT: AllocSlot = AllocSlot {
    allocs: AtomicU64::new(0),
    alloc_bytes: AtomicU64::new(0),
    deallocs: AtomicU64::new(0),
    dealloc_bytes: AtomicU64::new(0),
};
static SLOTS: [AllocSlot; MAX_THREAD_SLOTS] = [EMPTY_SLOT; MAX_THREAD_SLOTS];
static NEXT_SLOT: AtomicUsize = AtomicUsize::new(1);

thread_local! {
    /// This thread's slot index; `usize::MAX` = not yet assigned.
    static MY_SLOT: Cell<usize> = const { Cell::new(usize::MAX) };
}

#[inline]
fn slot_index() -> usize {
    // try_with: the allocator runs during TLS destruction too, when the
    // cell is gone — those late frees land in the overflow slot
    MY_SLOT
        .try_with(|s| {
            let i = s.get();
            if i != usize::MAX {
                return i;
            }
            let next = NEXT_SLOT.fetch_add(1, Ordering::Relaxed);
            let i = if next < MAX_THREAD_SLOTS { next } else { 0 };
            s.set(i);
            i
        })
        .unwrap_or(0)
}

/// The index just past the highest assigned slot.
fn slot_watermark() -> usize {
    NEXT_SLOT.load(Ordering::Relaxed).min(MAX_THREAD_SLOTS)
}

/// A `#[global_allocator]` wrapper over [`System`] that counts every
/// allocation and deallocation against the calling thread's slot. The
/// counting path never allocates, so there is no reentrancy to guard.
pub struct CountingAlloc;

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            let s = &SLOTS[slot_index()];
            s.allocs.fetch_add(1, Ordering::Relaxed);
            s.alloc_bytes
                .fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            let s = &SLOTS[slot_index()];
            s.allocs.fetch_add(1, Ordering::Relaxed);
            s.alloc_bytes
                .fetch_add(layout.size() as u64, Ordering::Relaxed);
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        let s = &SLOTS[slot_index()];
        s.deallocs.fetch_add(1, Ordering::Relaxed);
        s.dealloc_bytes
            .fetch_add(layout.size() as u64, Ordering::Relaxed);
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            // a grow-or-move counts as one free of the old block and one
            // allocation of the new, keeping byte totals exact
            let s = &SLOTS[slot_index()];
            s.deallocs.fetch_add(1, Ordering::Relaxed);
            s.dealloc_bytes
                .fetch_add(layout.size() as u64, Ordering::Relaxed);
            s.allocs.fetch_add(1, Ordering::Relaxed);
            s.alloc_bytes.fetch_add(new_size as u64, Ordering::Relaxed);
        }
        p
    }
}

/// The process-wide counting allocator. Living in the library means
/// every binary linking any tier gets always-on allocation accounting
/// without per-binary opt-in.
#[global_allocator]
static GLOBAL_ALLOC: CountingAlloc = CountingAlloc;

/// A point-in-time copy of allocation counters (one thread's, or the
/// whole process's).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AllocSnapshot {
    /// Allocations (including the alloc half of every realloc).
    pub allocs: u64,
    /// Bytes allocated.
    pub alloc_bytes: u64,
    /// Deallocations.
    pub deallocs: u64,
    /// Bytes freed.
    pub dealloc_bytes: u64,
}

impl AllocSnapshot {
    /// Bytes currently live (allocated minus freed), clamped at zero —
    /// a thread view can go "negative" when it frees blocks other
    /// threads allocated.
    pub fn live_bytes(&self) -> u64 {
        self.alloc_bytes.saturating_sub(self.dealloc_bytes)
    }
}

fn read_slot(s: &AllocSlot) -> AllocSnapshot {
    AllocSnapshot {
        allocs: s.allocs.load(Ordering::Relaxed),
        alloc_bytes: s.alloc_bytes.load(Ordering::Relaxed),
        deallocs: s.deallocs.load(Ordering::Relaxed),
        dealloc_bytes: s.dealloc_bytes.load(Ordering::Relaxed),
    }
}

/// The calling thread's own allocation counters (plus any overflow
/// sharing, if the process exceeded [`MAX_THREAD_SLOTS`] threads).
pub fn thread_allocs() -> AllocSnapshot {
    read_slot(&SLOTS[slot_index()])
}

/// Process-wide allocation totals: the sum over every thread slot,
/// including slots of threads that have exited.
pub fn process_allocs() -> AllocSnapshot {
    let mut total = AllocSnapshot::default();
    // the overflow slot (0) always counts; assigned slots start at 1
    for s in SLOTS.iter().take(slot_watermark().max(1)) {
        let v = read_slot(s);
        total.allocs += v.allocs;
        total.alloc_bytes += v.alloc_bytes;
        total.deallocs += v.deallocs;
        total.dealloc_bytes += v.dealloc_bytes;
    }
    total
}

// ---------------------------------------------------------------------
// Thread registry: comm -> role
// ---------------------------------------------------------------------

/// `(comm, role)` pairs; comm is the thread name truncated to the 15
/// bytes the kernel keeps, so `/proc` task entries match registrations.
static ROLES: Mutex<Vec<(String, &'static str)>> = Mutex::new(Vec::new());

/// `(tid, role)` pairs — exact, unlike comm matching, which collapses
/// names sharing a 15-byte prefix (`antruss-router-worker-0` and
/// `antruss-router-health` are the same comm). [`spawn`] registers the
/// tid from inside the new thread; pruned when the CPU tracker retires
/// the tid.
static TID_ROLES: Mutex<Vec<(u64, &'static str)>> = Mutex::new(Vec::new());

/// The calling thread's kernel task id (what `/proc/self/task` lists).
#[cfg(target_os = "linux")]
fn current_tid() -> u64 {
    extern "C" {
        fn gettid() -> i32;
    }
    unsafe { gettid() as u64 }
}

#[cfg(not(target_os = "linux"))]
fn current_tid() -> u64 {
    0
}

/// Registers the *calling* thread's tid under `role`.
fn register_tid(role: &'static str) {
    let tid = current_tid();
    if tid == 0 {
        return;
    }
    let mut tids = TID_ROLES.lock().unwrap();
    match tids.iter_mut().find(|(t, _)| *t == tid) {
        Some(slot) => slot.1 = role,
        None => tids.push((tid, role)),
    }
}

fn role_of_tid(tid: u64) -> Option<&'static str> {
    TID_ROLES
        .lock()
        .unwrap()
        .iter()
        .find(|(t, _)| *t == tid)
        .map(|(_, r)| *r)
}

fn forget_tid(tid: u64) {
    TID_ROLES.lock().unwrap().retain(|(t, _)| *t != tid);
}

/// The kernel's `comm` field: the first 15 bytes of the thread name.
fn comm_of(name: &str) -> &str {
    let end = name
        .char_indices()
        .map(|(i, c)| i + c.len_utf8())
        .take_while(|&e| e <= 15)
        .last()
        .unwrap_or(0);
    &name[..end]
}

/// Registers the *current* thread under `role` — by exact tid and by
/// comm — call at the top of a thread's run function (or use
/// [`spawn`], which does both).
pub fn register_thread(role: &'static str) {
    register_tid(role);
    let name = std::thread::current()
        .name()
        .unwrap_or("unnamed")
        .to_string();
    register_thread_named(&name, role);
}

/// Registers a thread *name* under `role` before or after the thread
/// exists — spawners call this so the mapping is in place by the time
/// the CPU sampler first sees the task.
pub fn register_thread_named(name: &str, role: &'static str) {
    let comm = comm_of(name).to_string();
    let mut roles = ROLES.lock().unwrap();
    match roles.iter_mut().find(|(c, _)| *c == comm) {
        Some(slot) => slot.1 = role,
        None => roles.push((comm, role)),
    }
}

/// The role a `/proc` comm maps to; unregistered threads are `other`.
pub fn role_of_comm(comm: &str) -> &'static str {
    ROLES
        .lock()
        .unwrap()
        .iter()
        .find(|(c, _)| c == comm)
        .map(|(_, r)| *r)
        .unwrap_or("other")
}

/// Spawns a named thread registered under `role`, propagating the
/// Builder error instead of swallowing it. The new thread registers
/// its own tid before running `f`, so its role survives 15-byte comm
/// truncation collisions; the name registration stays as a fallback
/// for threads the tid registry has never seen.
pub fn spawn<T, F>(
    name: &str,
    role: &'static str,
    f: F,
) -> std::io::Result<std::thread::JoinHandle<T>>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    register_thread_named(name, role);
    std::thread::Builder::new()
        .name(name.to_string())
        .spawn(move || {
            register_tid(role);
            f()
        })
}

// ---------------------------------------------------------------------
// Per-thread CPU accounting from /proc/self/task/*/stat
// ---------------------------------------------------------------------

/// Linux `USER_HZ`: the unit of utime/stime in `/proc/*/stat`. Fixed at
/// 100 on every mainstream architecture (the kernel exports a scaled
/// value precisely so userspace can hard-code it without `sysconf`).
const CLK_TCK: f64 = 100.0;

/// One task's CPU usage as read from `/proc/self/task/<tid>/stat`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskCpu {
    /// Kernel task id (the directory name).
    pub tid: u64,
    /// The task's `comm` (thread name truncated to 15 bytes).
    pub comm: String,
    /// `utime + stime`, in clock ticks.
    pub ticks: u64,
}

/// Parses one `/proc/*/stat` line into `(comm, utime + stime ticks)`.
///
/// The comm field is parenthesized and may itself contain spaces and
/// parens (`(a b) c)` is a legal thread name), so the parse anchors on
/// the *last* `)` in the line; fields count from there.
pub fn parse_stat_line(line: &str) -> Option<(String, u64)> {
    let open = line.find('(')?;
    let close = line.rfind(')')?;
    if close < open {
        return None;
    }
    let comm = line.get(open + 1..close)?.to_string();
    // after ") ": state(3) ppid(4) ... utime(14) stime(15)
    let rest: Vec<&str> = line.get(close + 1..)?.split_whitespace().collect();
    let utime: u64 = rest.get(11)?.parse().ok()?;
    let stime: u64 = rest.get(12)?.parse().ok()?;
    Some((comm, utime + stime))
}

/// Reads every live task's CPU ticks from `/proc/self/task`. Returns an
/// empty vec on platforms without procfs — callers degrade to "no CPU
/// panel", not an error.
pub fn sample_tasks() -> Vec<TaskCpu> {
    let mut out = Vec::new();
    let Ok(dir) = std::fs::read_dir("/proc/self/task") else {
        return out;
    };
    for entry in dir.flatten() {
        let name = entry.file_name();
        let Some(tid) = name.to_str().and_then(|s| s.parse::<u64>().ok()) else {
            continue;
        };
        let Ok(stat) = std::fs::read_to_string(entry.path().join("stat")) else {
            continue; // the task exited mid-walk
        };
        if let Some((comm, ticks)) = parse_stat_line(&stat) {
            out.push(TaskCpu { tid, comm, ticks });
        }
    }
    out
}

/// Tracks per-task CPU so role totals stay monotone across thread
/// churn: a task's ticks are remembered at the role it had when first
/// seen, and moved into `retired` when the task disappears (or its tid
/// is reused).
#[derive(Default)]
struct CpuTracker {
    /// tid -> (comm, role-at-first-sight, last ticks).
    live: HashMap<u64, (String, &'static str, u64)>,
    /// Ticks of exited threads, by role.
    retired: HashMap<&'static str, u64>,
}

static CPU: Mutex<Option<CpuTracker>> = Mutex::new(None);

/// One thread's row in a [`CpuReport`].
#[derive(Debug, Clone)]
pub struct ThreadCpu {
    /// Kernel task id.
    pub tid: u64,
    /// Thread name as the kernel sees it (15 bytes).
    pub comm: String,
    /// The registered role (`other` when unregistered).
    pub role: &'static str,
    /// Cumulative CPU seconds (user + system).
    pub seconds: f64,
}

/// Per-thread and per-role CPU usage; see [`cpu_report`].
#[derive(Debug, Clone, Default)]
pub struct CpuReport {
    /// Live threads, sorted by descending CPU.
    pub threads: Vec<ThreadCpu>,
    /// Cumulative CPU seconds by role (live + retired), sorted by
    /// descending CPU. Monotone between calls.
    pub by_role: Vec<(String, f64)>,
}

/// Samples `/proc/self/task`, updates the churn tracker, and returns
/// the per-thread and per-role CPU picture.
pub fn cpu_report() -> CpuReport {
    let tasks = sample_tasks();
    let mut guard = CPU.lock().unwrap();
    let tracker = guard.get_or_insert_with(CpuTracker::default);

    let mut seen: HashMap<u64, &TaskCpu> = HashMap::new();
    for t in &tasks {
        seen.insert(t.tid, t);
    }
    // retire tasks that vanished (or whose tid was reused by a new
    // thread — detectable as a ticks regression or a comm change)
    let gone: Vec<u64> = tracker
        .live
        .iter()
        .filter(|(tid, (comm, _, ticks))| match seen.get(tid) {
            None => true,
            Some(t) => t.ticks < *ticks || t.comm != *comm,
        })
        .map(|(tid, _)| *tid)
        .collect();
    for tid in gone {
        if let Some((_, role, ticks)) = tracker.live.remove(&tid) {
            *tracker.retired.entry(role).or_insert(0) += ticks;
        }
        forget_tid(tid);
    }
    for t in &tasks {
        tracker
            .live
            .entry(t.tid)
            .and_modify(|(_, _, ticks)| *ticks = t.ticks)
            .or_insert_with(|| {
                // exact tid registration wins; comm matching is the
                // fallback (names sharing a 15-byte prefix collide)
                let role = role_of_tid(t.tid).unwrap_or_else(|| role_of_comm(&t.comm));
                (t.comm.clone(), role, t.ticks)
            });
    }

    let mut threads: Vec<ThreadCpu> = tracker
        .live
        .iter()
        .map(|(tid, (comm, role, ticks))| ThreadCpu {
            tid: *tid,
            comm: comm.clone(),
            role,
            seconds: *ticks as f64 / CLK_TCK,
        })
        .collect();
    threads.sort_by(|a, b| {
        b.seconds
            .partial_cmp(&a.seconds)
            .unwrap()
            .then(a.tid.cmp(&b.tid))
    });

    let mut by_role: HashMap<&'static str, f64> = HashMap::new();
    for (role, ticks) in &tracker.retired {
        *by_role.entry(role).or_insert(0.0) += *ticks as f64 / CLK_TCK;
    }
    for t in &threads {
        *by_role.entry(t.role).or_insert(0.0) += t.seconds;
    }
    let mut by_role: Vec<(String, f64)> = by_role
        .into_iter()
        .map(|(r, s)| (r.to_string(), s))
        .collect();
    by_role.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap().then(a.0.cmp(&b.0)));
    CpuReport { threads, by_role }
}

/// The calling thread's cumulative CPU time in nanoseconds
/// (`CLOCK_THREAD_CPUTIME_ID`) — cheap enough to read per request.
#[cfg(unix)]
pub fn thread_cpu_ns() -> u64 {
    #[repr(C)]
    struct Timespec {
        sec: i64,
        nsec: i64,
    }
    extern "C" {
        fn clock_gettime(clockid: i32, tp: *mut Timespec) -> i32;
    }
    const CLOCK_THREAD_CPUTIME_ID: i32 = 3;
    let mut ts = Timespec { sec: 0, nsec: 0 };
    if unsafe { clock_gettime(CLOCK_THREAD_CPUTIME_ID, &mut ts) } != 0 {
        return 0;
    }
    (ts.sec as u64).saturating_mul(1_000_000_000) + ts.nsec as u64
}

/// Non-unix fallback: no thread CPU clock; costs report zero CPU.
#[cfg(not(unix))]
pub fn thread_cpu_ns() -> u64 {
    0
}

// ---------------------------------------------------------------------
// Lock-wait accounting
// ---------------------------------------------------------------------

/// Wait-time accounting for one named lock. Shared by every instance
/// registered under the same name (a test may build many caches; they
/// are one "outcome_cache" lock to the profile).
#[derive(Debug)]
pub struct LockStats {
    name: &'static str,
    wait: Histogram,
    max_wait_ns: AtomicU64,
}

impl LockStats {
    fn observe(&self, wait: Duration) {
        let ns = u64::try_from(wait.as_nanos()).unwrap_or(u64::MAX);
        self.wait.observe_ns(ns);
        self.max_wait_ns.fetch_max(ns, Ordering::Relaxed);
    }
}

static LOCKS: Mutex<Vec<&'static LockStats>> = Mutex::new(Vec::new());

/// The shared stats for `name`, registering (and leaking — locks are
/// process-lifetime) on first use.
fn lock_stats(name: &'static str) -> &'static LockStats {
    let mut locks = LOCKS.lock().unwrap();
    if let Some(s) = locks.iter().find(|s| s.name == name) {
        return s;
    }
    let s: &'static LockStats = Box::leak(Box::new(LockStats {
        name,
        wait: Histogram::new(),
        max_wait_ns: AtomicU64::new(0),
    }));
    locks.push(s);
    s
}

/// One named lock's wait picture, for `/debug/prof` and the overview.
#[derive(Debug, Clone)]
pub struct LockSnapshot {
    /// The lock's registered name.
    pub name: &'static str,
    /// Acquisitions observed.
    pub acquisitions: u64,
    /// Total seconds spent waiting to acquire.
    pub wait_seconds: f64,
    /// p99 wait in microseconds.
    pub p99_us: f64,
    /// Worst single wait in microseconds.
    pub max_us: f64,
    /// The underlying wait histogram (nanosecond observations).
    pub hist: crate::hist::HistSnapshot,
}

/// Every registered lock's wait snapshot, worst total wait first.
pub fn lock_snapshots() -> Vec<LockSnapshot> {
    let locks = LOCKS.lock().unwrap();
    let mut out: Vec<LockSnapshot> = locks
        .iter()
        .map(|s| {
            let hist = s.wait.snapshot();
            LockSnapshot {
                name: s.name,
                acquisitions: hist.count(),
                wait_seconds: hist.sum_seconds(),
                p99_us: hist.quantile_ns(0.99) / 1e3,
                max_us: s.max_wait_ns.load(Ordering::Relaxed) as f64 / 1e3,
                hist,
            }
        })
        .collect();
    out.sort_by(|a, b| b.wait_seconds.partial_cmp(&a.wait_seconds).unwrap());
    out
}

/// A [`Mutex`] whose every acquisition records its wait against a
/// process-wide named histogram. Drop-in: `lock()` keeps the std
/// signature, so `.lock().unwrap()` call sites don't change.
#[derive(Debug)]
pub struct ProfMutex<T> {
    stats: &'static LockStats,
    inner: Mutex<T>,
}

impl<T> ProfMutex<T> {
    /// Wraps `value` in a mutex accounted under `name`.
    pub fn new(name: &'static str, value: T) -> ProfMutex<T> {
        ProfMutex {
            stats: lock_stats(name),
            inner: Mutex::new(value),
        }
    }

    /// Acquires the lock, recording the time spent waiting for it.
    pub fn lock(&self) -> std::sync::LockResult<std::sync::MutexGuard<'_, T>> {
        let started = Instant::now();
        let guard = self.inner.lock();
        self.stats.observe(started.elapsed());
        guard
    }
}

/// An [`std::sync::RwLock`] with the same wait accounting as
/// [`ProfMutex`]; reader and writer waits share the lock's histogram
/// (it is the *contention* on the lock that matters, and the writer
/// holding it is what makes readers wait).
#[derive(Debug)]
pub struct ProfRwLock<T> {
    stats: &'static LockStats,
    inner: std::sync::RwLock<T>,
}

impl<T> ProfRwLock<T> {
    /// Wraps `value` in a rwlock accounted under `name`.
    pub fn new(name: &'static str, value: T) -> ProfRwLock<T> {
        ProfRwLock {
            stats: lock_stats(name),
            inner: std::sync::RwLock::new(value),
        }
    }

    /// Acquires a read guard, recording the wait.
    pub fn read(&self) -> std::sync::LockResult<std::sync::RwLockReadGuard<'_, T>> {
        let started = Instant::now();
        let guard = self.inner.read();
        self.stats.observe(started.elapsed());
        guard
    }

    /// Acquires the write guard, recording the wait.
    pub fn write(&self) -> std::sync::LockResult<std::sync::RwLockWriteGuard<'_, T>> {
        let started = Instant::now();
        let guard = self.inner.write();
        self.stats.observe(started.elapsed());
        guard
    }
}

// ---------------------------------------------------------------------
// Per-request / per-phase cost attribution
// ---------------------------------------------------------------------

/// A snapshot of the handling thread's CPU clock and allocation bytes
/// at request entry; [`RequestCost::finish`] turns it into the
/// request's spend.
#[derive(Debug, Clone, Copy)]
pub struct RequestCost {
    cpu_ns: u64,
    alloc_bytes: u64,
}

/// Starts cost accounting for the current thread's request.
pub fn begin_cost() -> RequestCost {
    RequestCost {
        cpu_ns: thread_cpu_ns(),
        alloc_bytes: thread_allocs().alloc_bytes,
    }
}

impl RequestCost {
    /// The `(cpu_us, alloc_bytes)` the thread spent since
    /// [`begin_cost`].
    pub fn finish(&self) -> (u64, u64) {
        let cpu_us = thread_cpu_ns().saturating_sub(self.cpu_ns) / 1_000;
        let bytes = thread_allocs().alloc_bytes.saturating_sub(self.alloc_bytes);
        (cpu_us, bytes)
    }
}

/// RAII guard attributing one phase's CPU and allocations: snapshot on
/// construction, delta into [`trace::note_phase_cost`] on drop.
#[derive(Debug)]
pub struct CostSpan {
    name: &'static str,
    at: RequestCost,
}

/// Opens a cost span for `name` — pair it with the wall-clock
/// `note_phase` the handler already records.
pub fn cost_span(name: &'static str) -> CostSpan {
    CostSpan {
        name,
        at: begin_cost(),
    }
}

impl Drop for CostSpan {
    fn drop(&mut self) {
        let (cpu_us, bytes) = self.at.finish();
        trace::note_phase_cost(self.name, cpu_us, bytes);
    }
}

/// Formats the [`COST_HEADER`] value.
pub fn format_cost(cpu_us: u64, alloc_bytes: u64) -> String {
    format!("cpu_us={cpu_us};alloc_bytes={alloc_bytes}")
}

/// Parses a [`COST_HEADER`] value back into `(cpu_us, alloc_bytes)`.
pub fn parse_cost(v: &str) -> Option<(u64, u64)> {
    let mut cpu_us = None;
    let mut bytes = None;
    for field in v.split(';') {
        match field.trim().split_once('=') {
            Some(("cpu_us", n)) => cpu_us = n.parse().ok(),
            Some(("alloc_bytes", n)) => bytes = n.parse().ok(),
            _ => {} // unknown fields from a newer peer
        }
    }
    Some((cpu_us?, bytes?))
}

/// One labeled request-cost accumulator (CPU ns + allocated bytes).
struct CostFamily {
    dim: &'static str,
    label: String,
    cpu: Histogram,
    bytes: Histogram,
}

static COST_FAMILIES: Mutex<Vec<&'static CostFamily>> = Mutex::new(Vec::new());

/// Accumulates one finished request's cost under a labeled family —
/// `dim` is the label key (`endpoint`, `solver`), `label` its value.
/// The label set is small and process-lifetime, so families leak.
pub fn observe_request_cost(dim: &'static str, label: &str, cpu_us: u64, alloc_bytes: u64) {
    let fams = COST_FAMILIES.lock().unwrap();
    if let Some(f) = fams.iter().find(|f| f.dim == dim && f.label == label) {
        f.cpu.observe_ns(cpu_us.saturating_mul(1_000));
        f.bytes.observe_ns(alloc_bytes);
        return;
    }
    drop(fams);
    let f: &'static CostFamily = Box::leak(Box::new(CostFamily {
        dim,
        label: label.to_string(),
        cpu: Histogram::new(),
        bytes: Histogram::new(),
    }));
    f.cpu.observe_ns(cpu_us.saturating_mul(1_000));
    f.bytes.observe_ns(alloc_bytes);
    let mut fams = COST_FAMILIES.lock().unwrap();
    // a racing registration of the same label is tolerated: both ends up
    // in the list, the registry merges them at render time
    if let Some(existing) = fams.iter().find(|e| e.dim == dim && e.label == label) {
        existing.cpu.merge_from(&f.cpu);
        existing.bytes.merge_from(&f.bytes);
    } else {
        fams.push(f);
    }
}

/// One labeled cost family's snapshot, for `/debug/prof`.
#[derive(Debug, Clone)]
pub struct CostSnapshot {
    /// Label key (`endpoint`, `solver`).
    pub dim: &'static str,
    /// Label value (`solve`, `gas`, …).
    pub label: String,
    /// Requests observed.
    pub count: u64,
    /// CPU-microsecond histogram (stored as ns).
    pub cpu: crate::hist::HistSnapshot,
    /// Allocated-bytes histogram (raw units).
    pub bytes: crate::hist::HistSnapshot,
}

/// Every labeled cost family's snapshot, in registration order.
pub fn cost_snapshots() -> Vec<CostSnapshot> {
    COST_FAMILIES
        .lock()
        .unwrap()
        .iter()
        .map(|f| {
            let cpu = f.cpu.snapshot();
            CostSnapshot {
                dim: f.dim,
                label: f.label.clone(),
                count: cpu.count(),
                cpu,
                bytes: f.bytes.snapshot(),
            }
        })
        .collect()
}

// ---------------------------------------------------------------------
// Export: registry families and the /debug/prof body
// ---------------------------------------------------------------------

/// Registers the process-wide `antruss_prof_*` families into a tier's
/// scrape registry: allocation totals, CPU seconds by role, lock-wait
/// histograms and per-label request-cost histograms.
pub fn register_metrics(reg: &mut Registry) {
    let a = process_allocs();
    reg.counter("antruss_prof_allocs_total", a.allocs);
    reg.counter("antruss_prof_alloc_bytes_total", a.alloc_bytes);
    reg.counter("antruss_prof_deallocs_total", a.deallocs);
    reg.counter("antruss_prof_dealloc_bytes_total", a.dealloc_bytes);
    reg.gauge("antruss_prof_live_bytes", a.live_bytes() as f64);

    for (role, seconds) in &cpu_report().by_role {
        reg.counter_f64_with(
            "antruss_prof_cpu_seconds_total",
            &[("role", role)],
            *seconds,
        );
    }

    for lock in lock_snapshots() {
        reg.histogram(
            "antruss_prof_lock_wait_seconds",
            &[("lock", lock.name)],
            &lock.hist,
        );
        reg.quantiles(
            "antruss_prof_lock_wait_quantile_seconds",
            &[("lock", lock.name)],
            &lock.hist,
        );
    }

    for cost in cost_snapshots() {
        reg.histogram(
            "antruss_prof_request_cpu_seconds",
            &[(cost.dim, &cost.label)],
            &cost.cpu,
        );
        reg.raw_histogram(
            "antruss_prof_request_alloc_bytes",
            &[(cost.dim, &cost.label)],
            &cost.bytes,
        );
        reg.raw_quantiles(
            "antruss_prof_request_alloc_bytes_quantile",
            &[(cost.dim, &cost.label)],
            &cost.bytes,
        );
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the `GET /debug/prof` JSON body for `tier`: allocation
/// totals, per-thread and per-role CPU, lock waits and request costs.
pub fn debug_json(tier: &str) -> String {
    let a = process_allocs();
    let cpu = cpu_report();
    let threads: Vec<String> = cpu
        .threads
        .iter()
        .map(|t| {
            format!(
                "{{\"tid\":{},\"name\":\"{}\",\"role\":\"{}\",\"cpu_seconds\":{:.3}}}",
                t.tid,
                json_escape(&t.comm),
                json_escape(t.role),
                t.seconds
            )
        })
        .collect();
    let by_role: Vec<String> = cpu
        .by_role
        .iter()
        .map(|(role, s)| {
            format!(
                "{{\"role\":\"{}\",\"cpu_seconds\":{s:.3}}}",
                json_escape(role)
            )
        })
        .collect();
    let locks: Vec<String> = lock_snapshots()
        .iter()
        .map(|l| {
            format!(
                "{{\"lock\":\"{}\",\"acquisitions\":{},\"wait_seconds_total\":{:.6},\
                 \"wait_p99_us\":{:.1},\"wait_max_us\":{:.1}}}",
                json_escape(l.name),
                l.acquisitions,
                l.wait_seconds,
                l.p99_us,
                l.max_us
            )
        })
        .collect();
    let costs: Vec<String> = cost_snapshots()
        .iter()
        .map(|c| {
            format!(
                "{{\"dim\":\"{}\",\"label\":\"{}\",\"count\":{},\
                 \"cpu_us_p50\":{:.1},\"cpu_us_p99\":{:.1},\
                 \"alloc_bytes_p50\":{:.0},\"alloc_bytes_p99\":{:.0}}}",
                json_escape(c.dim),
                json_escape(&c.label),
                c.count,
                c.cpu.quantile_ns(0.5) / 1e3,
                c.cpu.quantile_ns(0.99) / 1e3,
                c.bytes.quantile_ns(0.5),
                c.bytes.quantile_ns(0.99)
            )
        })
        .collect();
    format!(
        "{{\"tier\":\"{}\",\"alloc\":{{\"allocs\":{},\"alloc_bytes\":{},\"deallocs\":{},\
         \"dealloc_bytes\":{},\"live_bytes\":{}}},\
         \"cpu\":{{\"by_role\":[{}],\"threads\":[{}]}},\
         \"locks\":[{}],\"costs\":[{}]}}",
        json_escape(tier),
        a.allocs,
        a.alloc_bytes,
        a.deallocs,
        a.dealloc_bytes,
        a.live_bytes(),
        by_role.join(","),
        threads.join(","),
        locks.join(","),
        costs.join(",")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counting_alloc_sees_this_thread() {
        let before = thread_allocs();
        let v: Vec<u8> = Vec::with_capacity(4096);
        let after = thread_allocs();
        drop(v);
        let freed = thread_allocs();
        assert!(after.allocs > before.allocs, "{after:?} vs {before:?}");
        assert!(after.alloc_bytes >= before.alloc_bytes + 4096);
        assert!(freed.dealloc_bytes >= after.dealloc_bytes + 4096);
        let total = process_allocs();
        assert!(total.allocs >= after.allocs);
    }

    #[test]
    fn stat_parser_survives_kernel_comm_quirks() {
        // plain
        let (comm, ticks) = parse_stat_line(
            "1234 (worker-0) S 1 1 1 0 -1 4194304 100 0 0 0 7 3 0 0 20 0 1 0 100 0 0",
        )
        .unwrap();
        assert_eq!(comm, "worker-0");
        assert_eq!(ticks, 10);
        // comm with spaces and a nested paren — anchor on the LAST ')'
        let (comm, ticks) =
            parse_stat_line("99 (a b) c) R 1 1 1 0 -1 0 0 0 0 0 42 8 0 0 20 0 1 0 0 0 0").unwrap();
        assert_eq!(comm, "a b) c");
        assert_eq!(ticks, 50);
        // truncated / garbage lines fail closed
        assert!(parse_stat_line("1234 (x) S 1 2").is_none());
        assert!(parse_stat_line("no parens here").is_none());
    }

    #[test]
    fn roles_map_by_truncated_comm() {
        register_thread_named("antruss-prof-test-worker-7", "test-worker");
        // the kernel sees only the first 15 bytes
        assert_eq!(role_of_comm("antruss-prof-te"), "test-worker");
        assert_eq!(role_of_comm("never-registered"), "other");
    }

    #[test]
    fn cpu_report_is_monotone_and_sees_live_threads() {
        let first = cpu_report();
        // burn CPU on a named, registered thread
        let t = spawn("prof-burn", "burner", || {
            let mut x = 0u64;
            let until = Instant::now() + Duration::from_millis(30);
            while Instant::now() < until {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
            }
            std::hint::black_box(x)
        })
        .unwrap();
        t.join().unwrap();
        let second = cpu_report();
        assert!(!second.threads.is_empty());
        let total = |r: &CpuReport| r.by_role.iter().map(|(_, s)| s).sum::<f64>();
        assert!(total(&second) >= total(&first), "role CPU went backwards");
        // burner's ticks survive its exit, under its role
        let third = cpu_report();
        let burned = |r: &CpuReport| {
            r.by_role
                .iter()
                .find(|(role, _)| role == "burner")
                .map(|(_, s)| *s)
        };
        // 10ms tick granularity: a 30ms burn may still round to 0
        if let (Some(b2), Some(b3)) = (burned(&second), burned(&third)) {
            assert!(b3 >= b2);
        }
    }

    /// Thread names sharing a 15-byte prefix collapse to one kernel
    /// comm, but exact tid registration keeps their roles distinct.
    #[cfg(target_os = "linux")]
    #[test]
    fn colliding_comms_keep_distinct_roles_via_tid() {
        use std::sync::mpsc;
        // both names truncate to the comm "prof-collision-"
        let (hold_tx, hold_rx) = mpsc::channel::<()>();
        let (ready_tx, ready_rx) = mpsc::channel::<u64>();
        let ready2 = ready_tx.clone();
        let a = spawn("prof-collision-alpha", "alpha", move || {
            ready_tx.send(current_tid()).unwrap();
            std::thread::sleep(Duration::from_millis(200));
        })
        .unwrap();
        let b = spawn("prof-collision-beta", "beta", move || {
            ready2.send(current_tid()).unwrap();
            hold_rx.recv().ok();
        })
        .unwrap();
        let (tid1, tid2) = (ready_rx.recv().unwrap(), ready_rx.recv().unwrap());
        let report = cpu_report();
        let role_of = |tid: u64| report.threads.iter().find(|t| t.tid == tid).map(|t| t.role);
        let mut seen: Vec<&str> = [role_of(tid1), role_of(tid2)]
            .into_iter()
            .flatten()
            .collect();
        seen.sort_unstable();
        assert_eq!(
            seen,
            ["alpha", "beta"],
            "tid registration must win over comm"
        );
        drop(hold_tx);
        a.join().unwrap();
        b.join().unwrap();
    }

    #[test]
    fn thread_cpu_clock_advances_under_load() {
        let before = thread_cpu_ns();
        let mut x = 1u64;
        for i in 0..2_000_000u64 {
            x = x.wrapping_mul(i | 1);
        }
        std::hint::black_box(x);
        let after = thread_cpu_ns();
        assert!(after > before, "CLOCK_THREAD_CPUTIME_ID did not advance");
    }

    #[test]
    fn prof_locks_account_waits() {
        let m = ProfMutex::new("prof_test_mutex", 0u64);
        for _ in 0..10 {
            *m.lock().unwrap() += 1;
        }
        let l = ProfRwLock::new("prof_test_rwlock", ());
        drop(l.read().unwrap());
        drop(l.write().unwrap());
        let snaps = lock_snapshots();
        let m_snap = snaps.iter().find(|s| s.name == "prof_test_mutex").unwrap();
        assert!(m_snap.acquisitions >= 10);
        let rw = snaps.iter().find(|s| s.name == "prof_test_rwlock").unwrap();
        assert!(rw.acquisitions >= 2);
        // two locks under one name share one accounting entry
        let again = ProfMutex::new("prof_test_mutex", 0u64);
        drop(again.lock().unwrap());
        let snaps = lock_snapshots();
        assert_eq!(
            snaps.iter().filter(|s| s.name == "prof_test_mutex").count(),
            1
        );
    }

    #[test]
    fn cost_header_round_trips() {
        let v = format_cost(1234, 98765);
        assert_eq!(v, "cpu_us=1234;alloc_bytes=98765");
        assert_eq!(parse_cost(&v), Some((1234, 98765)));
        assert_eq!(parse_cost("cpu_us=5;alloc_bytes=6;future=7"), Some((5, 6)));
        assert_eq!(parse_cost("garbage"), None);
    }

    #[test]
    fn request_costs_accumulate_per_label() {
        observe_request_cost("endpoint", "prof-test-solve", 500, 10_000);
        observe_request_cost("endpoint", "prof-test-solve", 1500, 30_000);
        let snap = cost_snapshots()
            .into_iter()
            .find(|c| c.label == "prof-test-solve")
            .unwrap();
        assert_eq!(snap.count, 2);
        assert!(snap.cpu.quantile_ns(0.99) >= 500_000.0, "{snap:?}");
        assert!(snap.bytes.quantile_ns(0.99) >= 10_000.0, "{snap:?}");
    }

    #[test]
    fn cost_spans_feed_the_trace_costs() {
        trace::begin_request(trace::TraceContext::originate());
        {
            let _span = cost_span("prof-span-test");
            let v: Vec<u8> = Vec::with_capacity(64 * 1024);
            std::hint::black_box(&v);
        }
        let costs = trace::take_costs();
        trace::take_phases();
        let (name, _cpu, bytes) = costs
            .into_iter()
            .find(|(n, _, _)| *n == "prof-span-test")
            .unwrap();
        assert_eq!(name, "prof-span-test");
        assert!(bytes >= 64 * 1024, "span missed the allocation: {bytes}");
    }

    #[test]
    fn debug_json_has_the_documented_shape() {
        let m = ProfMutex::new("prof_json_lock", ());
        drop(m.lock().unwrap());
        observe_request_cost("endpoint", "prof-json", 10, 100);
        let body = debug_json("server");
        for key in [
            "\"tier\":\"server\"",
            "\"alloc\":{\"allocs\":",
            "\"live_bytes\":",
            "\"by_role\":[",
            "\"threads\":[",
            "\"locks\":[",
            "\"costs\":[",
            "\"lock\":\"prof_json_lock\"",
            "\"label\":\"prof-json\"",
        ] {
            assert!(body.contains(key), "missing {key} in {body}");
        }
    }
}
