//! Telemetry for the antruss serving tiers.
//!
//! Four small, dependency-free pieces that every tier (server, router,
//! edge) shares:
//!
//! * [`hist`] — fixed-bucket log2 latency [`Histogram`]s: lock-free
//!   (one atomic per bucket), mergeable (bucket-wise addition), with
//!   quantile estimates that are provably within a factor of two of the
//!   exact order statistic.
//! * [`registry`] — a [`Registry`] of named counters / gauges /
//!   histograms with label support and one Prometheus-text renderer, so
//!   all `/metrics` endpoints agree on `# TYPE` lines, label escaping
//!   and value formatting.
//! * [`trace`] — cross-tier trace propagation: a [`TraceContext`]
//!   carried on `x-antruss-trace`/`x-antruss-span` request headers, hop
//!   timing echoed back on the `x-antruss-hops` response header, and a
//!   bounded [`SlowTraces`] ring of the worst assembled traces (served
//!   at `GET /debug/traces`, dumped on SIGINT drain).
//! * [`log`] — a leveled [`log!`] facility with an optional JSON mode,
//!   replacing ad-hoc `eprintln!`s on health/heartbeat/recovery paths.
//! * [`history`] — a bounded ring [`history::Recorder`] that samples a
//!   tier's registry every `--metrics-interval` and serves the
//!   trajectory (counter rates, gauges, per-interval histogram
//!   quantiles) at `GET /metrics/history`.
//! * [`slo`] — configurable objectives (`--slo availability=99.9,
//!   p99_ms=5`) evaluated as multi-window burn rates over the history
//!   ring; exported as `antruss_slo_*` gauges and as the
//!   `ok|degraded|critical` status `/healthz` now reports.
//! * [`prof`] — always-on continuous profiling: a counting
//!   `#[global_allocator]`, per-thread CPU by named role from
//!   `/proc/self/task`, lock-wait histograms on the hot locks, and
//!   per-request cost attribution surfaced as the `x-antruss-cost`
//!   header, `antruss_prof_*` families and `GET /debug/prof`.

#![warn(missing_docs)]

pub mod hist;
pub mod history;
pub mod log;
pub mod prof;
pub mod registry;
pub mod slo;
pub mod trace;

pub use hist::{HistSnapshot, Histogram};
pub use history::Recorder;
pub use prof::{CostSpan, ProfMutex, ProfRwLock, COST_HEADER};
pub use registry::Registry;
pub use slo::{Level, Objective, SloReport, SloSources};
pub use trace::{Hop, SlowTraces, TraceContext};
