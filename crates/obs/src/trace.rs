//! Cross-tier trace propagation.
//!
//! A request entering any tier either **adopts** the trace carried on
//! its `x-antruss-trace` / `x-antruss-span` headers (the incoming span
//! becomes the parent) or **originates** a fresh one. When a tier
//! forwards downstream it sends the same trace id and its own span id;
//! each tier appends one [`Hop`] record — span, parent, wall time,
//! per-phase timings — to the `x-antruss-hops` response header on the
//! way back, so the originating tier (or a tracing client like
//! `loadgen --trace`) can assemble the full edge→router→backend
//! timeline from a single header.
//!
//! The tier that originated a trace keeps the worst assembled timelines
//! in a bounded [`SlowTraces`] ring, served at `GET /debug/traces` and
//! dumped on SIGINT drain.
//!
//! Handler plumbing rides a thread-local (one request at a time per
//! worker thread): [`begin_request`] installs the context, phase
//! measurements deep in the handler call [`note_phase`], and
//! [`take_phases`] drains them into the hop record. This keeps the
//! `handle(&state, &request)` signatures of all three tiers unchanged.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Duration, SystemTime, UNIX_EPOCH};

/// Request header carrying the 16-hex trace id.
pub const TRACE_HEADER: &str = "x-antruss-trace";
/// Request header carrying the caller's span id (our parent).
pub const SPAN_HEADER: &str = "x-antruss-span";
/// Response header accumulating one encoded [`Hop`] record per tier.
pub const HOPS_HEADER: &str = "x-antruss-hops";

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e3779b97f4a7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d049bb133111eb);
    x ^ (x >> 31)
}

/// A fresh non-zero id: SplitMix64 over wall clock, a process-wide
/// counter and the pid — unique enough for correlating hops without a
/// random-number dependency.
fn fresh_id() -> u64 {
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let t = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let c = COUNTER.fetch_add(1, Ordering::Relaxed);
    let id = splitmix64(t ^ c.rotate_left(32) ^ ((std::process::id() as u64) << 17));
    id.max(1)
}

fn parse_hex(s: &str) -> Option<u64> {
    if s.is_empty() || s.len() > 16 {
        return None;
    }
    u64::from_str_radix(s, 16).ok()
}

/// The identity one request carries through the tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// Trace id shared by every hop of the request.
    pub trace: u64,
    /// The caller's span id (zero when this tier originated the trace).
    pub parent: u64,
    /// This tier's span id.
    pub span: u64,
}

impl TraceContext {
    /// Starts a brand-new trace at this tier.
    pub fn originate() -> TraceContext {
        TraceContext {
            trace: fresh_id(),
            parent: 0,
            span: fresh_id(),
        }
    }

    /// Adopts the trace named by incoming header values, or originates
    /// one. Returns `(context, originated)` — `originated` is true when
    /// no (valid) incoming trace id was present, which makes this tier
    /// responsible for assembling the timeline.
    pub fn from_headers(trace: Option<&str>, span: Option<&str>) -> (TraceContext, bool) {
        match trace.and_then(parse_hex) {
            Some(t) => (
                TraceContext {
                    trace: t,
                    parent: span.and_then(parse_hex).unwrap_or(0),
                    span: fresh_id(),
                },
                false,
            ),
            None => (TraceContext::originate(), true),
        }
    }

    /// The `(x-antruss-trace, x-antruss-span)` header pair a downstream
    /// forward of this request must carry — our span becomes its parent.
    pub fn headers(&self) -> [(String, String); 2] {
        [
            (TRACE_HEADER.to_string(), format!("{:016x}", self.trace)),
            (SPAN_HEADER.to_string(), format!("{:016x}", self.span)),
        ]
    }

    /// The trace id as 16 hex digits.
    pub fn trace_hex(&self) -> String {
        format!("{:016x}", self.trace)
    }
}

/// One tier's contribution to a trace: its span, timing and phases.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Hop {
    /// Which tier recorded the hop (`server`, `router`, `edge`).
    pub tier: String,
    /// This hop's span id.
    pub span: u64,
    /// The parent span id (zero at the originating hop).
    pub parent: u64,
    /// Wall time the tier spent on the request, in microseconds.
    pub us: u64,
    /// The request path (sanitized for the wire).
    pub op: String,
    /// Named phase timings in microseconds (`parse`, `cache`, `solve`, …).
    pub phases: Vec<(String, u64)>,
    /// CPU time the handling thread spent on the request, microseconds
    /// (zero when the tier predates cost accounting).
    pub cpu_us: u64,
    /// Bytes the handling thread allocated during the request.
    pub alloc_bytes: u64,
    /// Per-phase resource costs: `(phase, cpu_us, alloc_bytes)` — what
    /// a slow phase *spent*, alongside the wall time in [`Hop::phases`].
    pub costs: Vec<(String, u64, u64)>,
}

/// Strips the characters the `k=v;…,`-structured wire format reserves.
fn sanitize(s: &str) -> String {
    s.chars()
        .map(|c| {
            if matches!(c, ',' | ';' | '=' | ' ' | '\r' | '\n') {
                '_'
            } else {
                c
            }
        })
        .collect()
}

impl Hop {
    /// Encodes the hop as one `k=v;…` record for [`HOPS_HEADER`].
    pub fn encode(&self) -> String {
        let mut out = format!(
            "tier={};span={:016x};parent={:016x};us={};op={}",
            sanitize(&self.tier),
            self.span,
            self.parent,
            self.us,
            sanitize(&self.op)
        );
        for (name, us) in &self.phases {
            out.push_str(&format!(";{}_us={us}", sanitize(name)));
        }
        if self.cpu_us > 0 || self.alloc_bytes > 0 {
            out.push_str(&format!(";cu={};ab={}", self.cpu_us, self.alloc_bytes));
        }
        // the `_cu`/`_ab` suffixes deliberately avoid `_us`, so an older
        // peer's decoder skips them instead of misreading them as phases
        for (name, cpu_us, bytes) in &self.costs {
            if *cpu_us > 0 {
                out.push_str(&format!(";{}_cu={cpu_us}", sanitize(name)));
            }
            if *bytes > 0 {
                out.push_str(&format!(";{}_ab={bytes}", sanitize(name)));
            }
        }
        out
    }

    /// Decodes one record; `None` when the required fields are missing.
    pub fn decode(s: &str) -> Option<Hop> {
        let mut hop = Hop::default();
        fn cost_slot<'h>(
            costs: &'h mut Vec<(String, u64, u64)>,
            name: &str,
        ) -> &'h mut (String, u64, u64) {
            if let Some(i) = costs.iter().position(|(n, _, _)| n == name) {
                return &mut costs[i];
            }
            costs.push((name.to_string(), 0, 0));
            costs.last_mut().unwrap()
        }
        for field in s.split(';') {
            let (k, v) = field.split_once('=')?;
            match k {
                "tier" => hop.tier = v.to_string(),
                "span" => hop.span = parse_hex(v)?,
                "parent" => hop.parent = parse_hex(v)?,
                "us" => hop.us = v.parse().ok()?,
                "op" => hop.op = v.to_string(),
                "cu" => hop.cpu_us = v.parse().ok()?,
                "ab" => hop.alloc_bytes = v.parse().ok()?,
                other => {
                    if let (Some(name), Ok(us)) = (other.strip_suffix("_us"), v.parse()) {
                        hop.phases.push((name.to_string(), us));
                    } else if let (Some(name), Ok(cu)) = (other.strip_suffix("_cu"), v.parse()) {
                        cost_slot(&mut hop.costs, name).1 = cu;
                    } else if let (Some(name), Ok(ab)) = (other.strip_suffix("_ab"), v.parse()) {
                        cost_slot(&mut hop.costs, name).2 = ab;
                    }
                    // unknown fields from a newer peer are skipped
                }
            }
        }
        if hop.tier.is_empty() || hop.span == 0 {
            return None;
        }
        Some(hop)
    }
}

/// Parses an `x-antruss-hops` header value (downstream-first order).
/// Malformed records are dropped, not fatal.
pub fn parse_hops(header: &str) -> Vec<Hop> {
    header.split(',').filter_map(Hop::decode).collect()
}

/// Appends `hop` to an existing hops header value (or starts one).
pub fn append_hop(prev: Option<&str>, hop: &Hop) -> String {
    match prev {
        Some(p) if !p.is_empty() => format!("{p},{}", hop.encode()),
        _ => hop.encode(),
    }
}

thread_local! {
    static CURRENT: RefCell<Option<TraceContext>> = const { RefCell::new(None) };
    static PHASES: RefCell<Vec<(&'static str, u64)>> = const { RefCell::new(Vec::new()) };
    static COSTS: RefCell<Vec<(&'static str, u64, u64)>> = const { RefCell::new(Vec::new()) };
}

/// Installs `ctx` as the worker thread's current trace context and
/// clears any stale phase notes. Handlers call this on entry.
pub fn begin_request(ctx: TraceContext) {
    CURRENT.with(|c| *c.borrow_mut() = Some(ctx));
    PHASES.with(|p| p.borrow_mut().clear());
    COSTS.with(|c| c.borrow_mut().clear());
}

/// The current request's trace context, if one is installed (forwarding
/// code uses this to stamp downstream requests).
pub fn current() -> Option<TraceContext> {
    CURRENT.with(|c| *c.borrow())
}

/// Records a named phase duration against the current request. Safe to
/// call with no active trace (the note is still collected for the hop
/// record of whoever drains it).
pub fn note_phase(name: &'static str, d: Duration) {
    let us = u64::try_from(d.as_micros()).unwrap_or(u64::MAX);
    PHASES.with(|p| {
        let mut phases = p.borrow_mut();
        if let Some(slot) = phases.iter_mut().find(|(n, _)| *n == name) {
            slot.1 += us;
        } else {
            phases.push((name, us));
        }
    });
}

/// Records a named phase's resource cost (CPU microseconds and
/// allocated bytes) against the current request — the companion of
/// [`note_phase`], usually called by a [`crate::prof`] cost span guard.
pub fn note_phase_cost(name: &'static str, cpu_us: u64, alloc_bytes: u64) {
    COSTS.with(|c| {
        let mut costs = c.borrow_mut();
        if let Some(slot) = costs.iter_mut().find(|(n, _, _)| *n == name) {
            slot.1 += cpu_us;
            slot.2 += alloc_bytes;
        } else {
            costs.push((name, cpu_us, alloc_bytes));
        }
    });
}

/// Drains the phases noted since [`begin_request`] and uninstalls the
/// trace context.
pub fn take_phases() -> Vec<(&'static str, u64)> {
    CURRENT.with(|c| *c.borrow_mut() = None);
    PHASES.with(|p| std::mem::take(&mut *p.borrow_mut()))
}

/// Drains the per-phase costs noted since [`begin_request`].
pub fn take_costs() -> Vec<(&'static str, u64, u64)> {
    COSTS.with(|c| std::mem::take(&mut *c.borrow_mut()))
}

/// One fully assembled request timeline, worst-first in [`SlowTraces`].
#[derive(Debug, Clone)]
pub struct AssembledTrace {
    /// The 16-hex trace id shared by every hop.
    pub trace: String,
    /// The request path at the originating tier.
    pub op: String,
    /// Total wall time at the originating tier, microseconds.
    pub total_us: u64,
    /// Wall-clock completion time, unix milliseconds.
    pub unix_ms: u64,
    /// Hops, downstream-first (backend, router, …, originator last).
    pub hops: Vec<Hop>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl AssembledTrace {
    /// Builds a timeline from this tier's own hop (already holding the
    /// total) plus the hops echoed back by downstream tiers.
    pub fn assemble(ctx: &TraceContext, own: Hop, downstream: &str) -> AssembledTrace {
        let mut hops = parse_hops(downstream);
        let total_us = own.us;
        let op = own.op.clone();
        hops.push(own);
        AssembledTrace {
            trace: format!("{:016x}", ctx.trace),
            op,
            total_us,
            unix_ms: SystemTime::now()
                .duration_since(UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0),
            hops,
        }
    }

    /// The timeline as a JSON object.
    pub fn to_json(&self) -> String {
        let hops: Vec<String> = self
            .hops
            .iter()
            .map(|h| {
                let phases: Vec<String> = h
                    .phases
                    .iter()
                    .map(|(n, us)| format!("\"{}\":{us}", json_escape(n)))
                    .collect();
                let costs: Vec<String> = h
                    .costs
                    .iter()
                    .map(|(n, cpu_us, bytes)| {
                        format!(
                            "\"{}\":{{\"cpu_us\":{cpu_us},\"alloc_bytes\":{bytes}}}",
                            json_escape(n)
                        )
                    })
                    .collect();
                format!(
                    "{{\"tier\":\"{}\",\"span\":\"{:016x}\",\"parent\":\"{:016x}\",\"us\":{},\"op\":\"{}\",\"cpu_us\":{},\"alloc_bytes\":{},\"phases\":{{{}}},\"costs\":{{{}}}}}",
                    json_escape(&h.tier),
                    h.span,
                    h.parent,
                    h.us,
                    json_escape(&h.op),
                    h.cpu_us,
                    h.alloc_bytes,
                    phases.join(","),
                    costs.join(",")
                )
            })
            .collect();
        format!(
            "{{\"trace\":\"{}\",\"op\":\"{}\",\"total_us\":{},\"unix_ms\":{},\"hops\":[{}]}}",
            json_escape(&self.trace),
            json_escape(&self.op),
            self.total_us,
            self.unix_ms,
            hops.join(",")
        )
    }
}

/// A bounded ring of the worst (slowest) assembled traces.
#[derive(Debug)]
pub struct SlowTraces {
    cap: usize,
    worst: Mutex<Vec<AssembledTrace>>,
}

impl SlowTraces {
    /// A ring keeping the `cap` slowest traces.
    pub fn new(cap: usize) -> SlowTraces {
        SlowTraces {
            cap: cap.max(1),
            worst: Mutex::new(Vec::new()),
        }
    }

    /// Offers one assembled trace; kept only while it ranks among the
    /// `cap` worst seen so far.
    pub fn record(&self, t: AssembledTrace) {
        let mut worst = self.worst.lock().unwrap();
        let at = worst
            .iter()
            .position(|w| w.total_us < t.total_us)
            .unwrap_or(worst.len());
        if at < self.cap {
            worst.insert(at, t);
            worst.truncate(self.cap);
        }
    }

    /// Number of traces currently held.
    pub fn len(&self) -> usize {
        self.worst.lock().unwrap().len()
    }

    /// Whether the ring is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The ring as the `GET /debug/traces` JSON body.
    pub fn to_json(&self) -> String {
        let worst = self.worst.lock().unwrap();
        let traces: Vec<String> = worst.iter().map(AssembledTrace::to_json).collect();
        format!(
            "{{\"count\":{},\"traces\":[{}]}}",
            worst.len(),
            traces.join(",")
        )
    }

    /// A human-readable dump for the SIGINT drain.
    pub fn render_text(&self) -> String {
        let worst = self.worst.lock().unwrap();
        let mut out = String::new();
        for t in worst.iter() {
            out.push_str(&format!(
                "trace {} {} total {:.3}ms\n",
                t.trace,
                t.op,
                t.total_us as f64 / 1000.0
            ));
            for h in t.hops.iter().rev() {
                let phases: Vec<String> = h
                    .phases
                    .iter()
                    .map(|(n, us)| format!("{n} {:.3}ms", *us as f64 / 1000.0))
                    .collect();
                let cost = if h.cpu_us > 0 || h.alloc_bytes > 0 {
                    format!(" [cpu {}us, alloc {}B]", h.cpu_us, h.alloc_bytes)
                } else {
                    String::new()
                };
                out.push_str(&format!(
                    "  [{}] span {:016x} parent {:016x} {:.3}ms {}{cost}\n",
                    h.tier,
                    h.span,
                    h.parent,
                    h.us as f64 / 1000.0,
                    phases.join(" ")
                ));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn originate_and_adopt() {
        let (origin, originated) = TraceContext::from_headers(None, None);
        assert!(originated);
        assert_eq!(origin.parent, 0);
        let headers = origin.headers();
        assert_eq!(headers[0].0, TRACE_HEADER);
        let (adopted, originated) =
            TraceContext::from_headers(Some(&headers[0].1), Some(&headers[1].1));
        assert!(!originated);
        assert_eq!(adopted.trace, origin.trace);
        assert_eq!(adopted.parent, origin.span);
        assert_ne!(adopted.span, origin.span);
        // garbage trace ids originate instead of crashing
        let (_, originated) = TraceContext::from_headers(Some("zzz"), None);
        assert!(originated);
    }

    #[test]
    fn hop_round_trip() {
        let hop = Hop {
            tier: "router".to_string(),
            span: 0xabc,
            parent: 0xdef,
            us: 1234,
            op: "/solve".to_string(),
            phases: vec![("forward".to_string(), 1000), ("parse".to_string(), 12)],
            cpu_us: 800,
            alloc_bytes: 4096,
            costs: vec![("forward".to_string(), 700, 4000)],
        };
        let decoded = Hop::decode(&hop.encode()).unwrap();
        assert_eq!(decoded, hop);
        // a cost-free hop encodes without any cost fields at all
        let lean = Hop {
            cpu_us: 0,
            alloc_bytes: 0,
            costs: Vec::new(),
            ..hop.clone()
        };
        assert!(!lean.encode().contains("cu="), "{}", lean.encode());
        assert_eq!(Hop::decode(&lean.encode()).unwrap(), lean);
    }

    #[test]
    fn hops_header_appends_and_parses() {
        let a = Hop {
            tier: "server".to_string(),
            span: 1,
            parent: 2,
            us: 10,
            op: "/solve".to_string(),
            ..Hop::default()
        };
        let b = Hop {
            tier: "router".to_string(),
            span: 2,
            parent: 3,
            us: 20,
            op: "/solve".to_string(),
            ..Hop::default()
        };
        let header = append_hop(Some(&append_hop(None, &a)), &b);
        let hops = parse_hops(&header);
        assert_eq!(hops.len(), 2);
        assert_eq!(hops[0].tier, "server");
        assert_eq!(hops[1].tier, "router");
        // a corrupt record is dropped without taking the rest with it
        let hops = parse_hops(&format!("garbage,{header}"));
        assert_eq!(hops.len(), 2);
    }

    #[test]
    fn thread_local_phase_notes() {
        begin_request(TraceContext::originate());
        assert!(current().is_some());
        note_phase("cache", Duration::from_micros(5));
        note_phase("solve", Duration::from_micros(100));
        note_phase("cache", Duration::from_micros(3));
        note_phase_cost("solve", 80, 1024);
        note_phase_cost("solve", 10, 6);
        let phases = take_phases();
        assert!(current().is_none());
        assert_eq!(phases, vec![("cache", 8), ("solve", 100)]);
        assert_eq!(take_costs(), vec![("solve", 90, 1030)]);
        // drained: a second take is empty
        assert!(take_phases().is_empty());
        assert!(take_costs().is_empty());
    }

    #[test]
    fn slow_ring_keeps_the_worst() {
        let ring = SlowTraces::new(2);
        for us in [50u64, 10, 90, 70] {
            ring.record(AssembledTrace {
                trace: format!("{us:016x}"),
                op: "/solve".to_string(),
                total_us: us,
                unix_ms: 0,
                hops: vec![],
            });
        }
        assert_eq!(ring.len(), 2);
        let json = ring.to_json();
        assert!(json.contains("\"total_us\":90"), "{json}");
        assert!(json.contains("\"total_us\":70"), "{json}");
        assert!(!json.contains("\"total_us\":50"), "{json}");
    }

    #[test]
    fn assembled_trace_serializes() {
        let ctx = TraceContext::originate();
        let downstream = Hop {
            tier: "server".to_string(),
            span: 7,
            parent: ctx.span,
            us: 900,
            op: "/solve".to_string(),
            phases: vec![("solve".to_string(), 800)],
            cpu_us: 750,
            alloc_bytes: 2048,
            costs: vec![("solve".to_string(), 700, 2000)],
        };
        let own = Hop {
            tier: "edge".to_string(),
            span: ctx.span,
            parent: 0,
            us: 1000,
            op: "/solve".to_string(),
            phases: vec![("forward".to_string(), 950)],
            ..Hop::default()
        };
        let t = AssembledTrace::assemble(&ctx, own, &downstream.encode());
        assert_eq!(t.total_us, 1000);
        assert_eq!(t.hops.len(), 2);
        let json = t.to_json();
        assert!(
            json.contains(&format!("\"trace\":\"{}\"", ctx.trace_hex())),
            "{json}"
        );
        assert!(json.contains("\"solve\":800"), "{json}");
        // the slow hop carries what it spent, not just where time went
        assert!(json.contains("\"cpu_us\":750"), "{json}");
        assert!(json.contains("\"alloc_bytes\":2048"), "{json}");
        assert!(
            json.contains("\"solve\":{\"cpu_us\":700,\"alloc_bytes\":2000}"),
            "{json}"
        );
        assert!(SlowTraces::new(4).is_empty());
    }
}
