//! Lock-free log2 latency histograms.
//!
//! Observations are durations bucketed by the bit length of their
//! nanosecond value: bucket `i` holds values in `[2^(i-1), 2^i)` (bucket
//! 0 holds exactly zero). Recording is one relaxed atomic increment per
//! observation — no lock, no sampling window — so histograms sit on hot
//! request paths, merge across threads and processes by bucket-wise
//! addition, and never forget old samples the way a bounded ring does.
//!
//! The price of log2 buckets is resolution: a quantile read from the
//! histogram lands in the same bucket as the exact order statistic, so
//! it is off by **less than a factor of two** (`tests/obs_props.rs`
//! pins the bound). For latency attribution — "is the p99 in solve
//! compute or in socket writes?" — that is exactly enough.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Number of log2 buckets: bit lengths 0..=63 of a nanosecond value
/// (bucket 63 additionally absorbs everything above `2^63`).
pub const BUCKETS: usize = 64;

/// The bucket an observation of `ns` nanoseconds falls into.
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    ((u64::BITS - ns.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// Inclusive lower bound of bucket `i` in nanoseconds.
#[inline]
pub fn bucket_lower(i: usize) -> u64 {
    if i == 0 {
        0
    } else {
        1u64 << (i - 1)
    }
}

/// Inclusive upper bound of bucket `i` in nanoseconds.
#[inline]
pub fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

/// A mergeable, lock-free latency histogram (see the module docs).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    sum_ns: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records one duration.
    #[inline]
    pub fn observe(&self, d: Duration) {
        self.observe_ns(u64::try_from(d.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Records one raw nanosecond value.
    #[inline]
    pub fn observe_ns(&self, ns: u64) {
        self.buckets[bucket_of(ns)].fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Folds every observation of `other` into `self` (bucket-wise
    /// addition — the merged histogram is indistinguishable from one
    /// that observed the concatenated stream).
    pub fn merge_from(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(other.buckets.iter()) {
            let n = theirs.load(Ordering::Relaxed);
            if n > 0 {
                mine.fetch_add(n, Ordering::Relaxed);
            }
        }
        self.sum_ns
            .fetch_add(other.sum_ns.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// A point-in-time copy of the bucket counts, for rendering and
    /// quantile reads.
    pub fn snapshot(&self) -> HistSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (out, b) in buckets.iter_mut().zip(self.buckets.iter()) {
            *out = b.load(Ordering::Relaxed);
        }
        HistSnapshot {
            buckets,
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket observation counts (not cumulative).
    pub buckets: [u64; BUCKETS],
    /// Sum of all observed nanoseconds (for means).
    pub sum_ns: u64,
}

impl HistSnapshot {
    /// Total number of observations (derived from the buckets, so it is
    /// always consistent with them).
    pub fn count(&self) -> u64 {
        self.buckets.iter().sum()
    }

    /// Sum of observations in seconds.
    pub fn sum_seconds(&self) -> f64 {
        self.sum_ns as f64 / 1e9
    }

    /// The `q`-quantile (`0.0 < q <= 1.0`) in nanoseconds, estimated by
    /// linear interpolation inside the bucket holding the target rank.
    /// Returns 0 for an empty histogram. The estimate lands in the same
    /// log2 bucket as the exact order statistic, so it is within a
    /// factor of two of it.
    pub fn quantile_ns(&self, q: f64) -> f64 {
        let total = self.count();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            if c == 0 {
                continue;
            }
            if cum + c >= rank {
                let lower = bucket_lower(i) as f64;
                let upper = bucket_upper(i) as f64;
                let into = (rank - cum) as f64 / c as f64;
                return lower + (upper - lower) * into;
            }
            cum += c;
        }
        bucket_upper(BUCKETS - 1) as f64
    }

    /// The `q`-quantile in seconds.
    pub fn quantile_seconds(&self, q: f64) -> f64 {
        self.quantile_ns(q) / 1e9
    }

    /// Cumulative `(upper_bound_ns, count <= upper_bound)` pairs for
    /// every bucket up to the highest non-empty one — the Prometheus
    /// `_bucket{le=...}` series (the renderer appends `+Inf` itself).
    pub fn cumulative(&self) -> Vec<(u64, u64)> {
        let last = match self.buckets.iter().rposition(|&c| c > 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        let mut out = Vec::with_capacity(last + 1);
        let mut cum = 0u64;
        for i in 0..=last {
            cum += self.buckets[i];
            out.push((bucket_upper(i), cum));
        }
        out
    }

    /// Merges another snapshot into this one.
    pub fn merge(&mut self, other: &HistSnapshot) {
        for (mine, theirs) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *mine += theirs;
        }
        self.sum_ns += other.sum_ns;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_cover_the_line() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), BUCKETS - 1);
        for i in 1..BUCKETS - 1 {
            assert_eq!(bucket_of(bucket_lower(i)), i);
            assert_eq!(bucket_of(bucket_upper(i)), i);
        }
    }

    #[test]
    fn quantiles_track_known_values() {
        let h = Histogram::new();
        for ns in 1..=1000u64 {
            h.observe_ns(ns * 1000);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 1000);
        let p50 = s.quantile_ns(0.5);
        let exact = 500_000.0;
        assert!(p50 <= 2.0 * exact && 2.0 * p50 >= exact, "p50 {p50}");
        let p99 = s.quantile_ns(0.99);
        let exact = 990_000.0;
        assert!(p99 <= 2.0 * exact && 2.0 * p99 >= exact, "p99 {p99}");
    }

    #[test]
    fn merge_equals_concatenation() {
        let a = Histogram::new();
        let b = Histogram::new();
        let all = Histogram::new();
        for ns in [0u64, 5, 17, 1_000, 42_000, 9_999_999] {
            a.observe_ns(ns);
            all.observe_ns(ns);
        }
        for ns in [3u64, 17, 512, 70_000_000] {
            b.observe_ns(ns);
            all.observe_ns(ns);
        }
        a.merge_from(&b);
        assert_eq!(a.snapshot(), all.snapshot());
    }

    #[test]
    fn empty_histogram_is_quiet() {
        let s = Histogram::new().snapshot();
        assert_eq!(s.count(), 0);
        assert_eq!(s.quantile_ns(0.99), 0.0);
        assert!(s.cumulative().is_empty());
    }

    #[test]
    fn cumulative_is_monotone() {
        let h = Histogram::new();
        for ns in [1u64, 1, 3, 900, 70_000, 70_000, 5_000_000] {
            h.observe_ns(ns);
        }
        let cum = h.snapshot().cumulative();
        assert!(!cum.is_empty());
        for w in cum.windows(2) {
            assert!(w[0].0 < w[1].0);
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(cum.last().unwrap().1, 7);
    }
}
