//! SLO objectives evaluated as multi-window burn rates over the
//! metrics history ring.
//!
//! An objective is either an **availability** target (`availability=
//! 99.9`: at most 0.1% of requests may error) or a **p99 latency**
//! objective (`p99_ms=5`: the per-interval p99 should stay under 5 ms).
//! Both are turned into *burn rates* — "how many times faster than
//! budget are we failing" — over three windows of the
//! [`crate::history::Recorder`]:
//!
//! * availability burn over a window = `error_fraction / error_budget`
//!   where the fractions come from counter deltas across the window;
//! * latency burn over a window = `worst per-interval p99 / objective`.
//!
//! Health levels use the classic paired-window rule (a short window
//! confirms the problem is *still happening*, a long window confirms it
//! is *material*), which is also what makes recovery visible quickly:
//! the fast window drains in [`WINDOW_FAST_SECS`] and the level clears
//! with it, even though the long windows still remember the incident.
//!
//! * **critical** — fast (5m) *and* mid (1h) burn ≥ the critical
//!   threshold ([`CRIT_AVAILABILITY_BURN`] 14.4, the classic
//!   2%-of-30-day-budget-per-hour rate, or [`CRIT_LATENCY_BURN`]).
//! * **degraded** — fast burn ≥ 1 and either mid (1h) or slow (6h)
//!   burn ≥ 1.
//! * **ok** — everything else. With no objectives configured the
//!   report is always ok (`/healthz` keeps its historical behavior).
//!
//! Windows are clamped to available history, so a freshly started
//! process evaluates over whatever trajectory it has.

use crate::history::Recorder;
use crate::Registry;

/// Fast window: 5 minutes. Drains quickly — governs how fast levels
/// clear after recovery.
pub const WINDOW_FAST_SECS: f64 = 300.0;
/// Mid window: 1 hour — the "is it material" confirmation for critical.
pub const WINDOW_MID_SECS: f64 = 3600.0;
/// Slow window: 6 hours — catches slow sustained burns.
pub const WINDOW_SLOW_SECS: f64 = 21600.0;

/// Every evaluation window with its exposition label.
pub const WINDOWS: [(f64, &str); 3] = [
    (WINDOW_FAST_SECS, "5m"),
    (WINDOW_MID_SECS, "1h"),
    (WINDOW_SLOW_SECS, "6h"),
];

/// Critical availability burn: spending 30-day budget 14.4x too fast
/// (2% of the monthly budget per hour).
pub const CRIT_AVAILABILITY_BURN: f64 = 14.4;
/// Critical latency burn: worst interval p99 at 2x the objective.
pub const CRIT_LATENCY_BURN: f64 = 2.0;

/// What an [`Objective`] measures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SloKind {
    /// Fraction of non-error responses, target in percent (`99.9`).
    Availability,
    /// Per-interval p99 latency bound, objective in seconds.
    LatencyP99,
}

/// One configured objective.
#[derive(Debug, Clone, PartialEq)]
pub struct Objective {
    /// What is measured.
    pub kind: SloKind,
    /// Exposition label: `availability` or `p99_ms`.
    pub name: &'static str,
    /// Availability: target percent (0–100). Latency: objective in
    /// **seconds** (the flag takes milliseconds).
    pub target: f64,
}

/// Parses a `--slo` flag value: comma-separated `key=value` pairs,
/// keys `availability` (percent) and `p99_ms` (milliseconds).
/// `parse_slos("availability=99.9,p99_ms=5")` — empty string parses to
/// no objectives.
pub fn parse_slos(spec: &str) -> Result<Vec<Objective>, String> {
    let mut out = Vec::new();
    for part in spec.split(',').map(str::trim).filter(|p| !p.is_empty()) {
        let (key, value) = part
            .split_once('=')
            .ok_or_else(|| format!("--slo: expected key=value, got {part:?}"))?;
        let v: f64 = value
            .trim()
            .parse()
            .map_err(|_| format!("--slo: {key}: not a number: {value:?}"))?;
        match key.trim() {
            "availability" => {
                if !(0.0..=100.0).contains(&v) {
                    return Err(format!("--slo: availability must be 0-100, got {v}"));
                }
                if out
                    .iter()
                    .any(|o: &Objective| o.kind == SloKind::Availability)
                {
                    return Err("--slo: availability given twice".to_string());
                }
                out.push(Objective {
                    kind: SloKind::Availability,
                    name: "availability",
                    target: v,
                });
            }
            "p99_ms" => {
                if v <= 0.0 {
                    return Err(format!("--slo: p99_ms must be positive, got {v}"));
                }
                if out
                    .iter()
                    .any(|o: &Objective| o.kind == SloKind::LatencyP99)
                {
                    return Err("--slo: p99_ms given twice".to_string());
                }
                out.push(Objective {
                    kind: SloKind::LatencyP99,
                    name: "p99_ms",
                    target: v / 1000.0,
                });
            }
            other => return Err(format!("--slo: unknown objective {other:?}")),
        }
    }
    Ok(out)
}

/// Which recorder series an evaluation reads. Keys are exposition line
/// prefixes (`name{labels}`) as stored by the recorder — each tier
/// points these at its own metric names.
#[derive(Debug, Clone)]
pub struct SloSources {
    /// Monotone request counter, e.g. `antruss_requests_total`.
    pub requests: String,
    /// Monotone error counter, e.g. `antruss_http_errors_total`.
    pub errors: String,
    /// Per-interval p99 series, e.g.
    /// `antruss_endpoint_latency_seconds{endpoint="solve",q="0.99"}`.
    pub p99: String,
}

/// Health level, ordered: worse compares greater.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// No objective burning.
    Ok = 0,
    /// Budget burning faster than earned.
    Degraded = 1,
    /// Burning fast enough to page.
    Critical = 2,
}

impl Level {
    /// The `/healthz` status string.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Ok => "ok",
            Level::Degraded => "degraded",
            Level::Critical => "critical",
        }
    }
}

/// One objective's evaluation.
#[derive(Debug, Clone)]
pub struct ObjectiveStatus {
    /// `availability` or `p99_ms`.
    pub name: &'static str,
    /// The configured target (percent, or seconds for latency).
    pub target: f64,
    /// This objective's level.
    pub level: Level,
    /// Burn rate per window, in [`WINDOWS`] order (5m, 1h, 6h).
    pub burns: [f64; 3],
}

impl ObjectiveStatus {
    /// The objective's worst burn across windows.
    pub fn worst_burn(&self) -> f64 {
        self.burns.iter().copied().fold(0.0, f64::max)
    }
}

/// A full evaluation: the overall level is the worst objective's.
#[derive(Debug, Clone, Default)]
pub struct SloReport {
    /// Per-objective results (empty when no objectives are configured).
    pub objectives: Vec<ObjectiveStatus>,
}

impl SloReport {
    /// Worst level across objectives ([`Level::Ok`] when empty).
    pub fn level(&self) -> Level {
        self.objectives
            .iter()
            .map(|o| o.level)
            .max()
            .unwrap_or(Level::Ok)
    }

    /// The worst-burning objective, if any is above [`Level::Ok`].
    pub fn burning(&self) -> Option<&ObjectiveStatus> {
        self.objectives
            .iter()
            .filter(|o| o.level > Level::Ok)
            .max_by(|a, b| a.worst_burn().total_cmp(&b.worst_burn()))
    }

    /// Registers the `antruss_slo_*` gauge families on `r`.
    pub fn register(&self, r: &mut Registry) {
        r.gauge("antruss_slo_health", self.level() as u8 as f64);
        for o in &self.objectives {
            r.gauge_with("antruss_slo_target", &[("objective", o.name)], o.target);
            r.gauge_with(
                "antruss_slo_level",
                &[("objective", o.name)],
                o.level as u8 as f64,
            );
            for (i, (_, label)) in WINDOWS.iter().enumerate() {
                r.gauge_with(
                    "antruss_slo_burn_rate",
                    &[("objective", o.name), ("window", label)],
                    o.burns[i],
                );
            }
        }
    }

    /// The `"slo":{...}` JSON object embedded in `/healthz` bodies:
    /// overall status, and per-objective targets/burns/levels.
    pub fn to_json(&self) -> String {
        let mut out = format!("{{\"status\":\"{}\"", self.level().as_str());
        if let Some(burning) = self.burning() {
            out.push_str(&format!(",\"burning\":\"{}\"", burning.name));
        }
        out.push_str(",\"objectives\":[");
        for (i, o) in self.objectives.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "{{\"objective\":\"{}\",\"target\":{:.6},\"level\":\"{}\",\"burn\":{{\"5m\":{:.3},\"1h\":{:.3},\"6h\":{:.3}}}}}",
                o.name,
                o.target,
                o.level.as_str(),
                o.burns[0],
                o.burns[1],
                o.burns[2]
            ));
        }
        out.push_str("]}");
        out
    }
}

/// Evaluates `objectives` against `rec` at time `now` (same clock the
/// recorder was fed). See the module docs for the level rules.
pub fn evaluate(
    objectives: &[Objective],
    rec: &Recorder,
    sources: &SloSources,
    now: f64,
) -> SloReport {
    let mut report = SloReport::default();
    for obj in objectives {
        let mut burns = [0.0f64; 3];
        for (i, (secs, _)) in WINDOWS.iter().enumerate() {
            let start = now - secs;
            burns[i] = match obj.kind {
                SloKind::Availability => {
                    let requests = rec.window_delta(&sources.requests, start);
                    let errors = rec.window_delta(&sources.errors, start);
                    if requests <= 0.0 {
                        0.0
                    } else {
                        let fraction = (errors / requests).clamp(0.0, 1.0);
                        let budget = (1.0 - obj.target / 100.0).max(1e-9);
                        fraction / budget
                    }
                }
                SloKind::LatencyP99 => {
                    let worst = rec.window_max(&sources.p99, start).unwrap_or(0.0);
                    worst / obj.target
                }
            };
        }
        let crit = match obj.kind {
            SloKind::Availability => CRIT_AVAILABILITY_BURN,
            SloKind::LatencyP99 => CRIT_LATENCY_BURN,
        };
        let level = if burns[0] >= crit && burns[1] >= crit {
            Level::Critical
        } else if burns[0] >= 1.0 && (burns[1] >= 1.0 || burns[2] >= 1.0) {
            Level::Degraded
        } else {
            Level::Ok
        };
        report.objectives.push(ObjectiveStatus {
            name: obj.name,
            target: obj.target,
            level,
            burns,
        });
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sources() -> SloSources {
        SloSources {
            requests: "req_total".to_string(),
            errors: "err_total".to_string(),
            p99: "lat{q=\"0.99\"}".to_string(),
        }
    }

    /// Feeds the recorder a synthetic trajectory: per-step
    /// `(requests_cum, errors_cum, p99_seconds)` at `interval`-spaced
    /// timestamps starting at 0.
    fn feed(steps: &[(u64, u64, f64)], interval: f64) -> (Recorder, f64) {
        let rec = Recorder::new(interval);
        let mut now = 0.0;
        for (i, (req, err, p99)) in steps.iter().enumerate() {
            now = i as f64 * interval;
            let mut r = Registry::new();
            r.counter("req_total", *req);
            r.counter("err_total", *err);
            r.gauge_with("lat", &[("q", "0.99")], *p99);
            rec.record(now, &r);
        }
        (rec, now)
    }

    #[test]
    fn parse_slos_accepts_the_documented_spec() {
        let objs = parse_slos("availability=99.9,p99_ms=5").unwrap();
        assert_eq!(objs.len(), 2);
        assert_eq!(objs[0].kind, SloKind::Availability);
        assert_eq!(objs[0].target, 99.9);
        assert_eq!(objs[1].kind, SloKind::LatencyP99);
        assert!((objs[1].target - 0.005).abs() < 1e-12);
        assert!(parse_slos("").unwrap().is_empty());
        assert!(parse_slos(" p99_ms = 2 ").is_ok());
        for bad in [
            "availability",
            "availability=banana",
            "availability=101",
            "p99_ms=0",
            "p99_ms=-1",
            "rps=5",
            "availability=99,availability=98",
        ] {
            assert!(parse_slos(bad).is_err(), "{bad} should fail");
        }
    }

    #[test]
    fn empty_objectives_are_always_ok() {
        let (rec, now) = feed(&[(0, 0, 9.0), (100, 100, 9.0)], 5.0);
        let report = evaluate(&[], &rec, &sources(), now);
        assert_eq!(report.level(), Level::Ok);
        assert!(report.burning().is_none());
    }

    #[test]
    fn clean_traffic_is_ok() {
        let (rec, now) = feed(&[(0, 0, 0.001), (1000, 0, 0.001), (2000, 1, 0.002)], 5.0);
        let objs = parse_slos("availability=99.9,p99_ms=5").unwrap();
        let report = evaluate(&objs, &rec, &sources(), now);
        assert_eq!(report.level(), Level::Ok, "{report:?}");
    }

    #[test]
    fn heavy_errors_go_critical_and_recovery_clears_in_the_fast_window() {
        let objs = parse_slos("availability=99.0").unwrap();
        // 20% errors: fraction 0.2 / budget 0.01 = burn 20 > 14.4
        let (rec, now) = feed(&[(0, 0, 0.0), (1000, 200, 0.0), (2000, 400, 0.0)], 5.0);
        let report = evaluate(&objs, &rec, &sources(), now);
        assert_eq!(report.level(), Level::Critical, "{report:?}");
        assert_eq!(report.burning().unwrap().name, "availability");

        // recovery: clean traffic for longer than the fast window —
        // the 5m burn drains and the level clears even though the 1h
        // window still contains the incident
        let mut ts = now;
        let mut req = 2000u64;
        while ts < now + WINDOW_FAST_SECS + 120.0 {
            ts += 5.0;
            req += 100;
            let mut reg = Registry::new();
            reg.counter("req_total", req);
            reg.counter("err_total", 400);
            rec.record(ts, &reg);
        }
        let after = evaluate(&objs, &rec, &sources(), ts);
        assert_eq!(after.level(), Level::Ok, "{after:?}");
        // the 1h window still remembers the incident...
        assert!(after.objectives[0].burns[1] > 1.0, "{after:?}");
        // ...but the fast window is clean
        assert!(after.objectives[0].burns[0] < 1.0, "{after:?}");
    }

    #[test]
    fn slow_latency_degrades_and_double_objective_is_critical() {
        let objs = parse_slos("p99_ms=5").unwrap();
        // p99 at 6ms: burn 1.2 on every window → degraded
        let (rec, now) = feed(&[(0, 0, 0.006), (10, 0, 0.006), (20, 0, 0.006)], 5.0);
        let report = evaluate(&objs, &rec, &sources(), now);
        assert_eq!(report.level(), Level::Degraded, "{report:?}");
        // p99 at 12ms: burn 2.4 ≥ 2.0 on fast+mid → critical
        let (rec, now) = feed(&[(0, 0, 0.012), (10, 0, 0.012)], 5.0);
        let report = evaluate(&objs, &rec, &sources(), now);
        assert_eq!(report.level(), Level::Critical, "{report:?}");
    }

    #[test]
    fn report_renders_gauges_and_json() {
        let objs = parse_slos("availability=99.9,p99_ms=5").unwrap();
        let (rec, now) = feed(&[(0, 0, 0.001), (100, 50, 0.001)], 5.0);
        let report = evaluate(&objs, &rec, &sources(), now);
        let mut r = Registry::new();
        report.register(&mut r);
        let text = r.render();
        for needle in [
            "# TYPE antruss_slo_health gauge",
            "antruss_slo_target{objective=\"availability\"} 99.9",
            "antruss_slo_target{objective=\"p99_ms\"} 0.005",
            "antruss_slo_burn_rate{objective=\"availability\",window=\"5m\"}",
            "antruss_slo_burn_rate{objective=\"availability\",window=\"1h\"}",
            "antruss_slo_burn_rate{objective=\"availability\",window=\"6h\"}",
            "antruss_slo_level{objective=\"availability\"}",
        ] {
            assert!(text.contains(needle), "missing {needle} in:\n{text}");
        }
        let json = report.to_json();
        assert!(json.starts_with("{\"status\":\""), "{json}");
        assert!(json.contains("\"burning\":\"availability\""), "{json}");
        assert!(json.contains("\"objective\":\"p99_ms\""), "{json}");
        assert!(json.contains("\"5m\":"), "{json}");
    }
}
