//! `GAS` — Algorithm 6: the full greedy with upward-route follower search
//! and tree-based result reuse.

use std::time::{Duration, Instant};

use antruss_graph::{EdgeId, FxHashSet};

use crate::followers::FollowerSearch;
use crate::metrics::ReuseClassCounts;
use crate::problem::AtrState;
use crate::reuse::{anchor_with_reuse, InvalidationPolicy};
use crate::tree::{sla, TrussTree};

/// Reuse strategy of the greedy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReusePolicy {
    /// Algorithm 5/6 as printed in the paper.
    #[default]
    PaperExact,
    /// Paper's invalidation plus all of `sla(x)` (see
    /// [`InvalidationPolicy::Conservative`]).
    Conservative,
    /// No reuse at all: recompute every candidate every round and refresh
    /// the state with a full re-decomposition. This is exactly the paper's
    /// `BASE+` baseline.
    Off,
}

/// Configuration for [`Gas`].
#[derive(Debug, Clone, Default)]
pub struct GasConfig {
    /// Reuse strategy (default: the paper's).
    pub reuse: ReusePolicy,
    /// Worker threads for the candidate scan (`0` or `1` = serial). The
    /// scan dominates round 1 and the no-reuse (`BASE+`) mode; later
    /// reuse-enabled rounds recompute too few candidates to benefit.
    /// Selections are deterministic for any thread count.
    pub threads: usize,
}

/// Per-round report.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// 1-based round number.
    pub round: usize,
    /// The chosen anchor.
    pub chosen: EdgeId,
    /// Followers of the chosen anchor (each gains exactly +1 trussness).
    pub followers: Vec<EdgeId>,
    /// Trussness of each follower at selection time (for the Fig. 11(b)
    /// distribution).
    pub follower_trussness: Vec<u32>,
    /// Wall-clock time of the round.
    pub elapsed: Duration,
    /// Number of candidate edges whose follower sets were recomputed this
    /// round (m on round 1; much less with reuse).
    pub recomputed: usize,
    /// FR/PR/NR classification of candidate caches entering this round
    /// (rounds ≥ 2 with reuse enabled).
    pub reuse_classes: Option<ReuseClassCounts>,
}

/// Final outcome of a GAS run.
#[derive(Debug, Clone)]
pub struct GasOutcome {
    /// Selected anchors in selection order.
    pub anchors: Vec<EdgeId>,
    /// True cumulative trussness gain (`Σ_{e∈E\A} t_A(e) − t(e)`,
    /// Definition 4), recomputed from the final state.
    pub total_gain: u64,
    /// Sum of per-round follower counts. May exceed `total_gain`: an edge
    /// elevated as a follower in an early round can itself be *anchored*
    /// later, and Definition 4 excludes anchors from the final gain.
    pub claimed_gain: u64,
    /// Per-round details.
    pub rounds: Vec<RoundReport>,
}

/// Cached follower partition of one candidate: `(TN.I, F[e][TN.I])`,
/// sorted by node id; present for *every* id in the candidate's `sla` at
/// computation time (possibly with an empty follower list).
type CacheEntry = Vec<(u32, Vec<EdgeId>)>;

/// The GAS driver (Algorithm 6).
pub struct Gas<'g> {
    st: AtrState<'g>,
    cfg: GasConfig,
    tree: Option<TrussTree>,
    search: FollowerSearch,
    /// `F[e][id]` caches; empty and unused when reuse is off.
    cache: Vec<CacheEntry>,
    /// `sla(e)` caches with a dirty flag.
    sla_cache: Vec<Option<Vec<u32>>>,
    /// Invalidation set from the previous round (node ids).
    es: Vec<u32>,
    round: usize,
}

impl<'g> Gas<'g> {
    /// Decomposes the graph and prepares the round state.
    pub fn new(g: &'g antruss_graph::CsrGraph, cfg: GasConfig) -> Self {
        let st = AtrState::new(g);
        let tree = match cfg.reuse {
            ReusePolicy::Off => None,
            _ => Some(TrussTree::build(g, &st.t, &st.anchors)),
        };
        let m = g.num_edges();
        Gas {
            st,
            cfg,
            tree,
            search: FollowerSearch::new(m),
            cache: vec![CacheEntry::new(); m],
            sla_cache: vec![None; m],
            es: Vec::new(),
            round: 0,
        }
    }

    /// Read access to the evolving state.
    pub fn state(&self) -> &AtrState<'g> {
        &self.st
    }

    /// Runs `b` greedy rounds (stops early when no candidate has any
    /// follower **and** the budget exceeds the edge count).
    pub fn run(mut self, b: usize) -> GasOutcome {
        let mut rounds = Vec::with_capacity(b);
        for _ in 0..b {
            match self.step() {
                Some(r) => rounds.push(r),
                None => break,
            }
        }
        let claimed = rounds.iter().map(|r| r.followers.len() as u64).sum();
        GasOutcome {
            anchors: rounds.iter().map(|r| r.chosen).collect(),
            total_gain: self.st.total_gain(),
            claimed_gain: claimed,
            rounds,
        }
    }

    /// Executes one greedy round; `None` when no candidate edge remains.
    pub fn step(&mut self) -> Option<RoundReport> {
        self.round += 1;
        let start = Instant::now();
        match self.cfg.reuse {
            ReusePolicy::Off => self.step_no_reuse(start),
            _ => self.step_with_reuse(start),
        }
    }

    /// BASE+ behaviour: recompute everything, refresh fully.
    fn step_no_reuse(&mut self, start: Instant) -> Option<RoundReport> {
        let g = self.st.graph();
        let candidates: Vec<EdgeId> = g.edges().filter(|&e| !self.st.is_anchor(e)).collect();
        let recomputed = candidates.len();
        let (chosen, _) = crate::parallel::best_candidate(&self.st, &candidates, self.cfg.threads)?;
        let outcome = self.search.followers(&self.st, chosen);
        let follower_trussness = outcome.followers.iter().map(|&f| self.st.t(f)).collect();
        self.st.anchor_full_refresh(chosen);
        Some(RoundReport {
            round: self.round,
            chosen,
            followers: outcome.followers,
            follower_trussness,
            elapsed: start.elapsed(),
            recomputed,
            reuse_classes: None,
        })
    }

    /// Algorithm 6 proper.
    fn step_with_reuse(&mut self, start: Instant) -> Option<RoundReport> {
        let g = self.st.graph();
        let first_round = self.round == 1;
        let mut best: Option<(usize, EdgeId)> = None;
        let mut recomputed = 0usize;
        let mut classes = ReuseClassCounts::default();
        let es_set: FxHashSet<u32> = self.es.iter().copied().collect();

        if first_round && self.cfg.threads > 1 {
            // Round 1 computes every candidate from scratch — the one scan
            // worth fanning out (`sla` is complete, caches are all empty,
            // the seed filter is vacuous).
            let tree = self.tree.as_ref().expect("tree present with reuse");
            let candidates: Vec<EdgeId> = g.edges().filter(|&e| !self.st.is_anchor(e)).collect();
            let st = &self.st;
            let results = crate::parallel::scan_map(st, &candidates, self.cfg.threads, |fs, e| {
                let sla_e = sla(g, &st.t, &st.anchors, tree, e);
                if sla_e.is_empty() {
                    return (sla_e, CacheEntry::new());
                }
                let outcome = fs.followers(st, e);
                let mut entry: CacheEntry = sla_e.iter().map(|&id| (id, Vec::new())).collect();
                for f in outcome.followers {
                    let id = tree.id_of_edge(f).expect("follower in tree");
                    match entry.binary_search_by_key(&id, |(i, _)| *i) {
                        Ok(pos) => entry[pos].1.push(f),
                        Err(pos) => entry.insert(pos, (id, vec![f])),
                    }
                }
                (sla_e, entry)
            });
            for (&e, (sla_e, entry)) in candidates.iter().zip(results) {
                let count: usize = entry.iter().map(|(_, fs)| fs.len()).sum();
                if !sla_e.is_empty() {
                    recomputed += 1;
                }
                self.sla_cache[e.idx()] = Some(sla_e);
                self.cache[e.idx()] = entry;
                // candidates ascend, so the first maximum keeps the
                // smallest edge id — identical to the serial tie-break
                if best.is_none_or(|(bc, _)| count > bc) {
                    best = Some((count, e));
                }
            }
            return self.commit_round(start, best, recomputed, classes, first_round);
        }

        for e in g.edges() {
            if self.st.is_anchor(e) {
                continue;
            }
            // -- refresh sla(e) if dirty -----------------------------------
            if self.sla_cache[e.idx()].is_none() {
                let tree = self.tree.as_ref().expect("tree present with reuse");
                self.sla_cache[e.idx()] = Some(sla(g, &self.st.t, &self.st.anchors, tree, e));
            }
            let sla_e = self.sla_cache[e.idx()].as_ref().expect("just refreshed");
            if sla_e.is_empty() {
                // no seeds possible ⇒ zero followers, but the edge is still
                // a legal candidate (keeps tie-breaking aligned with BASE+)
                self.cache[e.idx()].clear();
                if best.is_none() {
                    best = Some((0, e));
                }
                continue;
            }
            // -- determine which node ids must be recomputed ---------------
            let entry = &self.cache[e.idx()];
            let mut need: Vec<u32> = Vec::new();
            let mut kept: CacheEntry = Vec::new();
            if first_round {
                need.extend_from_slice(sla_e);
            } else {
                for &id in sla_e {
                    let cached = entry.iter().find(|(cid, _)| *cid == id);
                    match cached {
                        Some((_, fs)) if !es_set.contains(&id) => {
                            kept.push((id, fs.clone()));
                        }
                        _ => need.push(id),
                    }
                }
                // classification for the reuse experiment (Exp-8)
                if need.is_empty() {
                    classes.fully += 1;
                } else if kept.is_empty() {
                    classes.non += 1;
                } else {
                    classes.partially += 1;
                }
            }
            // -- recompute the needed nodes --------------------------------
            let mut rebuilt: CacheEntry = kept;
            if !need.is_empty() {
                recomputed += 1;
                let tree = self.tree.as_ref().expect("tree present with reuse");
                let outcome = self.search.followers_filtered(&self.st, e, |seed| {
                    tree.id_of_edge(seed)
                        .is_some_and(|id| need.binary_search(&id).is_ok())
                });
                let mut fresh: Vec<(u32, Vec<EdgeId>)> =
                    need.iter().map(|&id| (id, Vec::new())).collect();
                for f in outcome.followers {
                    let id = tree.id_of_edge(f).expect("follower in tree");
                    match fresh.binary_search_by_key(&id, |(i, _)| *i) {
                        Ok(pos) => fresh[pos].1.push(f),
                        Err(pos) => fresh.insert(pos, (id, vec![f])),
                    }
                }
                rebuilt.extend(fresh);
            }
            rebuilt.sort_unstable_by_key(|(id, _)| *id);
            let count: usize = rebuilt.iter().map(|(_, fs)| fs.len()).sum();
            self.cache[e.idx()] = rebuilt;
            if best.is_none_or(|(bc, be)| count > bc || (count == bc && e < be))
                && best.is_none_or(|(bc, _)| count >= bc)
            {
                best = Some((count, e));
            }
        }

        self.commit_round(start, best, recomputed, classes, first_round)
    }

    /// Shared tail of a reuse-enabled round: anchors the winner with a
    /// component-local refresh and invalidates the affected caches.
    fn commit_round(
        &mut self,
        start: Instant,
        best: Option<(usize, EdgeId)>,
        recomputed: usize,
        classes: ReuseClassCounts,
        first_round: bool,
    ) -> Option<RoundReport> {
        let g = self.st.graph();
        let (_, chosen) = best?;
        let followers: Vec<EdgeId> = self.cache[chosen.idx()]
            .iter()
            .flat_map(|(_, fs)| fs.iter().copied())
            .collect();
        let follower_trussness: Vec<u32> = followers.iter().map(|&f| self.st.t(f)).collect();

        // -- commit: component-local refresh + invalidation -----------------
        let tree = self.tree.as_mut().expect("tree present with reuse");
        let by_node = self.cache[chosen.idx()].clone();
        let sla_x = self.sla_cache[chosen.idx()].clone().unwrap_or_default();
        let policy = match self.cfg.reuse {
            ReusePolicy::Conservative => InvalidationPolicy::Conservative,
            _ => InvalidationPolicy::PaperExact,
        };
        let outcome = anchor_with_reuse(&mut self.st, tree, chosen, &by_node, &sla_x, policy);

        // mark sla caches dirty for every edge touching the rebuilt region
        let mut touched = vec![false; g.num_vertices()];
        for &e in &outcome.region {
            let (u, v) = g.endpoints(e);
            touched[u.idx()] = true;
            touched[v.idx()] = true;
        }
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            if touched[u.idx()] || touched[v.idx()] {
                self.sla_cache[e.idx()] = None;
            }
        }
        self.es = outcome.invalidated;
        self.cache[chosen.idx()].clear();

        Some(RoundReport {
            round: self.round,
            chosen,
            followers,
            follower_trussness,
            elapsed: start.elapsed(),
            recomputed,
            reuse_classes: (!first_round).then_some(classes),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antruss_graph::gen::{gnm, social_network, SocialParams};
    use antruss_graph::GraphBuilder;

    #[test]
    fn gas_off_equals_base_plus_semantics() {
        let g = gnm(30, 110, 7);
        let out = Gas::new(
            &g,
            GasConfig {
                reuse: ReusePolicy::Off,
                ..GasConfig::default()
            },
        )
        .run(3);
        assert_eq!(out.anchors.len(), 3);
        assert_eq!(out.total_gain, out.claimed_gain);
    }

    #[test]
    fn gas_reuse_matches_no_reuse_on_random_graphs() {
        for seed in 0..6 {
            let g = gnm(28, 100, seed);
            let off = Gas::new(
                &g,
                GasConfig {
                    reuse: ReusePolicy::Off,
                    ..GasConfig::default()
                },
            )
            .run(4);
            let on = Gas::new(
                &g,
                GasConfig {
                    reuse: ReusePolicy::PaperExact,
                    ..GasConfig::default()
                },
            )
            .run(4);
            assert_eq!(
                off.anchors, on.anchors,
                "seed {seed}: selections must agree"
            );
            assert_eq!(off.total_gain, on.total_gain, "seed {seed}");
            // per-round follower counts must agree too (reuse is exact)
            let off_counts: Vec<usize> = off.rounds.iter().map(|r| r.followers.len()).collect();
            let on_counts: Vec<usize> = on.rounds.iter().map(|r| r.followers.len()).collect();
            assert_eq!(off_counts, on_counts, "seed {seed}");
            // claimed gain can exceed the true gain only via re-anchored
            // followers, never fall below it
            assert!(on.claimed_gain >= on.total_gain, "seed {seed}");
        }
    }

    #[test]
    fn gas_reuse_matches_no_reuse_on_social_graph() {
        let g = social_network(&SocialParams {
            n: 150,
            target_edges: 600,
            attach: 4,
            closure: 0.6,
            planted: vec![6],
            onions: vec![],
            seed: 3,
        });
        let off = Gas::new(
            &g,
            GasConfig {
                reuse: ReusePolicy::Off,
                ..GasConfig::default()
            },
        )
        .run(5);
        let on = Gas::new(
            &g,
            GasConfig {
                reuse: ReusePolicy::PaperExact,
                ..GasConfig::default()
            },
        )
        .run(5);
        assert_eq!(off.anchors, on.anchors);
        assert_eq!(off.total_gain, on.total_gain);
    }

    #[test]
    fn reuse_recomputes_fewer_candidates() {
        let g = social_network(&SocialParams {
            n: 200,
            target_edges: 900,
            attach: 4,
            closure: 0.6,
            planted: vec![7],
            onions: vec![],
            seed: 5,
        });
        let out = Gas::new(
            &g,
            GasConfig {
                reuse: ReusePolicy::PaperExact,
                ..GasConfig::default()
            },
        )
        .run(4);
        let later: usize = out.rounds[1..].iter().map(|r| r.recomputed).sum();
        let first = out.rounds[0].recomputed;
        assert!(
            later < first * (out.rounds.len() - 1),
            "reuse should cut recomputation: first={first}, later_total={later}"
        );
        // reuse classes are reported from round 2 on
        assert!(out.rounds[1].reuse_classes.is_some());
    }

    #[test]
    fn budget_larger_than_edges_stops() {
        let mut b = GraphBuilder::dense();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        let g = b.build();
        let out = Gas::new(&g, GasConfig::default()).run(10);
        assert!(out.anchors.len() <= 3);
    }

    #[test]
    fn empty_graph_yields_no_rounds() {
        let g = GraphBuilder::new().build();
        let out = Gas::new(&g, GasConfig::default()).run(3);
        assert!(out.anchors.is_empty());
        assert_eq!(out.total_gain, 0);
    }

    #[test]
    fn rounds_report_monotone_round_numbers() {
        let g = gnm(25, 90, 2);
        let out = Gas::new(&g, GasConfig::default()).run(3);
        for (i, r) in out.rounds.iter().enumerate() {
            assert_eq!(r.round, i + 1);
            assert_eq!(r.followers.len(), r.follower_trussness.len());
        }
    }
}
