//! Adapters wrapping each algorithm behind the [`Solver`] trait.

use std::time::Instant;

use antruss_graph::CsrGraph;
use antruss_truss::decompose;

use crate::baselines::akt::akt_greedy;
use crate::baselines::base::base_greedy;
use crate::baselines::edge_deletion::edge_deletion_anchors;
use crate::baselines::exact::exact;
use crate::baselines::lazy::lazy_greedy;
use crate::baselines::random::{random_baseline, Pool};
use crate::engine::{
    Anchor, Extras, Observer, Outcome, RoundReport, RunConfig, SolveError, Solver,
};
use crate::gas::{Gas, GasConfig, ReusePolicy};

/// `gas` / `base+`: the paper's Algorithm 6, with the reuse policy from
/// the config (`base+` pins [`ReusePolicy::Off`]).
pub(crate) struct GasSolver {
    pub(crate) name: &'static str,
    /// `Some(policy)` pins the policy (BASE+); `None` reads the config.
    pub(crate) pinned_reuse: Option<ReusePolicy>,
}

impl Solver for GasSolver {
    fn name(&self) -> &str {
        self.name
    }

    fn description(&self) -> &str {
        match self.pinned_reuse {
            Some(ReusePolicy::Off) => "BASE+ (upward-route search, no reuse)",
            _ => "GAS (Algorithm 6: upward routes + tree reuse)",
        }
    }

    fn run_observed(
        &self,
        g: &CsrGraph,
        cfg: &RunConfig,
        obs: &mut dyn Observer,
    ) -> Result<Outcome, SolveError> {
        let reuse = self.pinned_reuse.unwrap_or(cfg.reuse);
        let start = Instant::now();
        let mut gas = Gas::new(
            g,
            GasConfig {
                reuse,
                threads: cfg.threads,
            },
        );
        let mut rounds = Vec::with_capacity(cfg.budget);
        let mut claimed = 0u64;
        for _ in 0..cfg.budget {
            let Some(r) = gas.step() else { break };
            claimed += r.followers.len() as u64;
            let report = RoundReport {
                round: r.round,
                chosen: Anchor::Edge(r.chosen),
                gain: r.followers.len() as u64,
                follower_trussness: r.follower_trussness,
                elapsed: r.elapsed,
                recomputed: r.recomputed,
                reuse_classes: r.reuse_classes,
            };
            obs.on_round(&report);
            rounds.push(report);
        }
        Ok(Outcome {
            solver: self.name.to_string(),
            anchors: rounds.iter().map(|r| r.chosen).collect(),
            total_gain: gas.state().total_gain(),
            claimed_gain: claimed,
            rounds,
            elapsed: start.elapsed(),
            extras: Extras::Gas { reuse },
        })
    }
}

/// `base`: Algorithm 2, full decomposition per candidate, time-capped.
pub(crate) struct BaseSolver;

impl Solver for BaseSolver {
    fn name(&self) -> &str {
        "base"
    }

    fn description(&self) -> &str {
        "BASE (full decomposition per candidate, time-capped)"
    }

    fn run_observed(
        &self,
        g: &CsrGraph,
        cfg: &RunConfig,
        obs: &mut dyn Observer,
    ) -> Result<Outcome, SolveError> {
        let out = base_greedy(g, cfg.budget, cfg.time_budget);
        let rounds: Vec<RoundReport> = out
            .anchors
            .iter()
            .enumerate()
            .map(|(i, &e)| RoundReport {
                round: i + 1,
                chosen: Anchor::Edge(e),
                gain: 0, // BASE does not report per-round claims
                follower_trussness: Vec::new(),
                elapsed: std::time::Duration::ZERO,
                recomputed: 0,
                reuse_classes: None,
            })
            .collect();
        for r in &rounds {
            obs.on_round(r);
        }
        Ok(Outcome {
            solver: "base".to_string(),
            anchors: out.anchors.iter().map(|&e| Anchor::Edge(e)).collect(),
            total_gain: out.total_gain,
            claimed_gain: out.total_gain,
            rounds,
            elapsed: out.elapsed,
            extras: Extras::Base {
                timed_out: out.timed_out,
            },
        })
    }
}

/// `exact`: exhaustive optimal anchor set.
pub(crate) struct ExactSolver;

impl Solver for ExactSolver {
    fn name(&self) -> &str {
        "exact"
    }

    fn description(&self) -> &str {
        "exhaustive optimal anchor set"
    }

    fn run_observed(
        &self,
        g: &CsrGraph,
        cfg: &RunConfig,
        _obs: &mut dyn Observer,
    ) -> Result<Outcome, SolveError> {
        let start = Instant::now();
        let out = exact(g, cfg.budget, cfg.exact_cap).ok_or(SolveError::BudgetExceedsEdges {
            budget: cfg.budget,
            edges: g.num_edges(),
        })?;
        Ok(Outcome {
            solver: "exact".to_string(),
            anchors: out.anchors.iter().map(|&e| Anchor::Edge(e)).collect(),
            total_gain: out.gain,
            claimed_gain: out.gain,
            rounds: Vec::new(),
            elapsed: start.elapsed(),
            extras: Extras::Exact {
                evaluated: out.evaluated,
            },
        })
    }
}

/// `rand` / `rand:sup` / `rand:tur`: best of `trials` random draws.
pub(crate) struct RandomSolver {
    pub(crate) name: &'static str,
    pub(crate) pool_name: &'static str,
}

impl Solver for RandomSolver {
    fn name(&self) -> &str {
        self.name
    }

    fn description(&self) -> &str {
        match self.pool_name {
            "sup" => "best of N random draws (pool: top 20% by support)",
            "tur" => "best of N random draws (pool: top 20% by route size)",
            _ => "best of N random draws (pool: all edges)",
        }
    }

    fn run_observed(
        &self,
        g: &CsrGraph,
        cfg: &RunConfig,
        _obs: &mut dyn Observer,
    ) -> Result<Outcome, SolveError> {
        let pool = match self.pool_name {
            "all" => Pool::All,
            "sup" => Pool::TopSupport(0.2),
            "tur" => Pool::TopRouteSize(0.2),
            other => {
                return Err(SolveError::InvalidConfig(format!(
                    "unknown random pool {other:?}"
                )))
            }
        };
        let start = Instant::now();
        let out = random_baseline(g, pool, cfg.budget, cfg.trials, cfg.seed);
        Ok(Outcome {
            solver: self.name.to_string(),
            anchors: out.anchors.iter().map(|&e| Anchor::Edge(e)).collect(),
            total_gain: out.gain,
            claimed_gain: out.gain,
            rounds: Vec::new(),
            elapsed: start.elapsed(),
            extras: Extras::Random {
                pool: self.pool_name,
                trials: out.trials,
            },
        })
    }
}

/// `akt`: vertex anchoring at one truss level (Zhang et al., ICDE'18).
pub(crate) struct AktSolver;

impl Solver for AktSolver {
    fn name(&self) -> &str {
        "akt"
    }

    fn description(&self) -> &str {
        "vertex anchoring at level k (Zhang et al., ICDE'18)"
    }

    fn run_observed(
        &self,
        g: &CsrGraph,
        cfg: &RunConfig,
        obs: &mut dyn Observer,
    ) -> Result<Outcome, SolveError> {
        let start = Instant::now();
        let info = decompose(g);
        let k = cfg.k.unwrap_or(info.k_max);
        if k < 3 {
            return Err(SolveError::InvalidConfig(format!(
                "akt needs a truss level k >= 3 (got {k}; graph k_max = {})",
                info.k_max
            )));
        }
        let out = akt_greedy(g, &info.trussness, k, cfg.budget, cfg.candidate_cap);
        let mut rounds = Vec::with_capacity(out.anchors.len());
        let mut prev = 0u64;
        for (i, (&v, &cum)) in out.anchors.iter().zip(&out.gain_curve).enumerate() {
            let report = RoundReport {
                round: i + 1,
                chosen: Anchor::Vertex(v),
                gain: cum.saturating_sub(prev),
                follower_trussness: Vec::new(),
                elapsed: std::time::Duration::ZERO,
                recomputed: 0,
                reuse_classes: None,
            };
            prev = cum;
            obs.on_round(&report);
            rounds.push(report);
        }
        // AKT's per-round marginals are exact cumulative differences but
        // the objective is not monotone in general; keep claimed >= total
        let claimed: u64 = rounds.iter().map(|r| r.gain).sum::<u64>().max(out.gain);
        Ok(Outcome {
            solver: "akt".to_string(),
            anchors: out.anchors.iter().map(|&v| Anchor::Vertex(v)).collect(),
            total_gain: out.gain,
            claimed_gain: claimed,
            rounds,
            elapsed: start.elapsed(),
            extras: Extras::Akt {
                k,
                gain_curve: out.gain_curve,
            },
        })
    }
}

/// `edge-del`: anchor the most deletion-critical edges (case-study
/// comparator).
pub(crate) struct EdgeDeletionSolver;

impl Solver for EdgeDeletionSolver {
    fn name(&self) -> &str {
        "edge-del"
    }

    fn description(&self) -> &str {
        "anchor the most deletion-critical edges"
    }

    fn run_observed(
        &self,
        g: &CsrGraph,
        cfg: &RunConfig,
        _obs: &mut dyn Observer,
    ) -> Result<Outcome, SolveError> {
        let start = Instant::now();
        let out = edge_deletion_anchors(g, cfg.budget, cfg.candidate_cap);
        Ok(Outcome {
            solver: "edge-del".to_string(),
            anchors: out.anchors.iter().map(|&e| Anchor::Edge(e)).collect(),
            total_gain: out.gain,
            claimed_gain: out.gain,
            rounds: Vec::new(),
            elapsed: start.elapsed(),
            extras: Extras::EdgeDeletion {
                criticality: out.criticality,
            },
        })
    }
}

/// `lazy`: CELF-style lazy greedy (heuristic under non-submodularity).
pub(crate) struct LazySolver;

impl Solver for LazySolver {
    fn name(&self) -> &str {
        "lazy"
    }

    fn description(&self) -> &str {
        "CELF-style lazy greedy (heuristic extension)"
    }

    fn run_observed(
        &self,
        g: &CsrGraph,
        cfg: &RunConfig,
        obs: &mut dyn Observer,
    ) -> Result<Outcome, SolveError> {
        let start = Instant::now();
        let out = lazy_greedy(g, cfg.budget);
        let rounds: Vec<RoundReport> = out
            .anchors
            .iter()
            .zip(&out.evaluations_per_round)
            .enumerate()
            .map(|(i, (&e, &evals))| RoundReport {
                round: i + 1,
                chosen: Anchor::Edge(e),
                gain: 0, // lazy reports evaluations, not per-round claims
                follower_trussness: Vec::new(),
                elapsed: std::time::Duration::ZERO,
                recomputed: evals,
                reuse_classes: None,
            })
            .collect();
        for r in &rounds {
            obs.on_round(r);
        }
        Ok(Outcome {
            solver: "lazy".to_string(),
            anchors: out.anchors.iter().map(|&e| Anchor::Edge(e)).collect(),
            total_gain: out.total_gain,
            claimed_gain: out.total_gain,
            rounds,
            elapsed: start.elapsed(),
            extras: Extras::Lazy {
                evaluations_per_round: out.evaluations_per_round,
            },
        })
    }
}
