//! Shared run configuration for every [`Solver`](crate::engine::Solver).

use std::time::Duration;

use crate::gas::ReusePolicy;

/// One configuration understood by **all** solvers.
///
/// Each solver reads the subset it needs and ignores the rest, so a
/// single `RunConfig` can drive a whole comparison sweep:
///
/// ```
/// use antruss_core::engine::{registry, RunConfig};
/// use antruss_graph::gen::gnm;
///
/// let g = gnm(30, 110, 7);
/// let cfg = RunConfig::new(3).threads(2).trials(10);
/// for name in ["gas", "rand:sup", "lazy"] {
///     let out = registry().get(name).unwrap().run(&g, &cfg).unwrap();
///     assert!(out.anchors.len() <= 3);
/// }
/// ```
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// Anchor budget `b` — the number of greedy rounds / set size.
    pub budget: usize,
    /// Worker threads for candidate scans (`0`/`1` = serial). Selections
    /// are deterministic for any thread count.
    pub threads: usize,
    /// Wall-clock cap honoured by solvers that support graceful
    /// truncation (currently `base`); `None` = unbounded.
    pub time_budget: Option<Duration>,
    /// Seed for randomized solvers (`rand`, `rand:sup`, `rand:tur`).
    pub seed: u64,
    /// Reuse strategy for the GAS family (`gas` honours it; `base+` is by
    /// definition [`ReusePolicy::Off`]).
    pub reuse: ReusePolicy,
    /// Trials for the randomized solvers (the paper uses 2000).
    pub trials: usize,
    /// Candidate cap for solvers that rank a candidate pool (`akt`,
    /// `edge-del`).
    pub candidate_cap: usize,
    /// Truss level `k` for the vertex-anchoring `akt` comparator;
    /// `None` = the graph's `k_max`.
    pub k: Option<u32>,
    /// Enumeration cap for `exact` (`None` = exhaustive).
    pub exact_cap: Option<u64>,
}

impl RunConfig {
    /// A config with budget `b` and the defaults the paper's evaluation
    /// uses: serial, unbounded time, seed 1, paper-exact reuse, 30
    /// trials, candidate cap 64, `k = k_max`, exhaustive `exact`.
    pub fn new(budget: usize) -> RunConfig {
        RunConfig {
            budget,
            threads: 1,
            time_budget: None,
            seed: 1,
            reuse: ReusePolicy::PaperExact,
            trials: 30,
            candidate_cap: 64,
            k: None,
            exact_cap: None,
        }
    }

    /// Sets the worker-thread count.
    pub fn threads(mut self, threads: usize) -> RunConfig {
        self.threads = threads;
        self
    }

    /// Sets the wall-clock cap.
    pub fn time_budget(mut self, cap: Duration) -> RunConfig {
        self.time_budget = Some(cap);
        self
    }

    /// Sets the randomization seed.
    pub fn seed(mut self, seed: u64) -> RunConfig {
        self.seed = seed;
        self
    }

    /// Sets the GAS reuse policy.
    pub fn reuse(mut self, reuse: ReusePolicy) -> RunConfig {
        self.reuse = reuse;
        self
    }

    /// Sets the randomized-solver trial count.
    pub fn trials(mut self, trials: usize) -> RunConfig {
        self.trials = trials;
        self
    }

    /// Sets the ranked-candidate cap.
    pub fn candidate_cap(mut self, cap: usize) -> RunConfig {
        self.candidate_cap = cap;
        self
    }

    /// Pins the `akt` truss level.
    pub fn k(mut self, k: u32) -> RunConfig {
        self.k = Some(k);
        self
    }

    /// Caps the `exact` enumeration.
    pub fn exact_cap(mut self, cap: u64) -> RunConfig {
        self.exact_cap = Some(cap);
        self
    }
}

impl Default for RunConfig {
    /// Budget 10 with the [`RunConfig::new`] defaults.
    fn default() -> RunConfig {
        RunConfig::new(10)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chains() {
        let cfg = RunConfig::new(5)
            .threads(4)
            .seed(9)
            .trials(100)
            .candidate_cap(8)
            .k(4)
            .exact_cap(1000)
            .time_budget(Duration::from_secs(2))
            .reuse(ReusePolicy::Off);
        assert_eq!(cfg.budget, 5);
        assert_eq!(cfg.threads, 4);
        assert_eq!(cfg.seed, 9);
        assert_eq!(cfg.trials, 100);
        assert_eq!(cfg.candidate_cap, 8);
        assert_eq!(cfg.k, Some(4));
        assert_eq!(cfg.exact_cap, Some(1000));
        assert_eq!(cfg.time_budget, Some(Duration::from_secs(2)));
        assert_eq!(cfg.reuse, ReusePolicy::Off);
    }

    #[test]
    fn defaults_are_paper_shaped() {
        let cfg = RunConfig::default();
        assert_eq!(cfg.budget, 10);
        assert_eq!(cfg.threads, 1);
        assert_eq!(cfg.reuse, ReusePolicy::PaperExact);
        assert!(cfg.time_budget.is_none());
        assert!(cfg.k.is_none());
    }
}
