//! The by-name solver registry used by the CLI and the experiment
//! harness.

use std::sync::OnceLock;

use crate::engine::solvers::{
    AktSolver, BaseSolver, EdgeDeletionSolver, ExactSolver, GasSolver, LazySolver, RandomSolver,
};
use crate::engine::Solver;
use crate::gas::ReusePolicy;

/// A fixed collection of named [`Solver`]s.
pub struct Registry {
    solvers: Vec<Box<dyn Solver>>,
}

impl Registry {
    /// Looks a solver up by its registry name (case-insensitive).
    pub fn get(&self, name: &str) -> Option<&dyn Solver> {
        self.solvers
            .iter()
            .find(|s| s.name().eq_ignore_ascii_case(name))
            .map(|s| s.as_ref())
    }

    /// Registry names in registration order.
    pub fn names(&self) -> Vec<&str> {
        self.solvers.iter().map(|s| s.name()).collect()
    }

    /// Iterates over every registered solver.
    pub fn iter(&self) -> impl Iterator<Item = &dyn Solver> {
        self.solvers.iter().map(|s| s.as_ref())
    }

    /// Number of registered solvers.
    pub fn len(&self) -> usize {
        self.solvers.len()
    }

    /// Whether the registry is empty (never, for the built-in registry).
    pub fn is_empty(&self) -> bool {
        self.solvers.is_empty()
    }
}

/// The built-in registry over every algorithm the paper evaluates:
///
/// | name       | algorithm |
/// |------------|-----------|
/// | `gas`      | GAS (Algorithm 6; reuse policy from the config) |
/// | `base`     | BASE (Algorithm 2, full decomposition per candidate) |
/// | `base+`    | BASE+ (upward-route search, no reuse) |
/// | `exact`    | exhaustive optimal anchor set |
/// | `rand`     | best of `trials` random draws, pool = all edges |
/// | `rand:sup` | pool = top 20 % edges by support |
/// | `rand:tur` | pool = top 20 % edges by upward-route size |
/// | `akt`      | vertex anchoring at level `k` (Zhang et al., ICDE'18) |
/// | `edge-del` | anchor the most deletion-critical edges |
/// | `lazy`     | CELF-style lazy greedy (extension) |
pub fn registry() -> &'static Registry {
    static REGISTRY: OnceLock<Registry> = OnceLock::new();
    REGISTRY.get_or_init(|| Registry {
        solvers: vec![
            Box::new(GasSolver {
                name: "gas",
                pinned_reuse: None,
            }),
            Box::new(BaseSolver),
            Box::new(GasSolver {
                name: "base+",
                pinned_reuse: Some(ReusePolicy::Off),
            }),
            Box::new(ExactSolver),
            Box::new(RandomSolver {
                name: "rand",
                pool_name: "all",
            }),
            Box::new(RandomSolver {
                name: "rand:sup",
                pool_name: "sup",
            }),
            Box::new(RandomSolver {
                name: "rand:tur",
                pool_name: "tur",
            }),
            Box::new(AktSolver),
            Box::new(EdgeDeletionSolver),
            Box::new(LazySolver),
        ],
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_eight_algorithms_are_registered() {
        let names = registry().names();
        for required in [
            "gas", "base", "base+", "exact", "rand", "rand:sup", "rand:tur", "akt", "edge-del",
            "lazy",
        ] {
            assert!(names.contains(&required), "missing {required} in {names:?}");
        }
        assert_eq!(registry().len(), 10);
        assert!(!registry().is_empty());
    }

    #[test]
    fn every_solver_has_a_description() {
        for s in registry().iter() {
            assert!(
                !s.description().is_empty(),
                "{} is missing a description for listings",
                s.name()
            );
        }
    }

    #[test]
    fn lookup_is_case_insensitive_and_total() {
        assert!(registry().get("GAS").is_some());
        assert!(registry().get("Rand:Sup").is_some());
        assert!(registry().get("nope").is_none());
        for s in registry().iter() {
            assert_eq!(registry().get(s.name()).unwrap().name(), s.name());
        }
    }
}
