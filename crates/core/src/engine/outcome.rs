//! The unified result type every solver adapts into.

use std::time::Duration;

use antruss_graph::{EdgeId, VertexId};

use crate::gas::ReusePolicy;
use crate::json;
use crate::metrics::ReuseClassCounts;

/// One selected anchor. GAS and the edge baselines anchor edges; the
/// `akt` comparator (Zhang et al., ICDE'18) anchors vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Anchor {
    /// An anchored edge.
    Edge(EdgeId),
    /// An anchored vertex (vertex-anchoring comparators only).
    Vertex(VertexId),
}

impl Anchor {
    /// The edge id, if this is an edge anchor.
    pub fn edge(self) -> Option<EdgeId> {
        match self {
            Anchor::Edge(e) => Some(e),
            Anchor::Vertex(_) => None,
        }
    }

    /// The vertex id, if this is a vertex anchor.
    pub fn vertex(self) -> Option<VertexId> {
        match self {
            Anchor::Edge(_) => None,
            Anchor::Vertex(v) => Some(v),
        }
    }
}

/// Per-round progress of an iterative solver. Solvers that select their
/// whole anchor set at once (`exact`, the randomized family) report no
/// rounds.
#[derive(Debug, Clone)]
pub struct RoundReport {
    /// 1-based round number.
    pub round: usize,
    /// The anchor chosen this round.
    pub chosen: Anchor,
    /// Gain claimed this round (follower count for the GAS family,
    /// marginal gain for `akt`).
    pub gain: u64,
    /// Trussness of each follower at selection time (GAS family only,
    /// empty elsewhere) — feeds the Fig. 11(b) distribution.
    pub follower_trussness: Vec<u32>,
    /// Wall-clock time of the round (zero when the solver does not time
    /// rounds individually).
    pub elapsed: Duration,
    /// Candidate evaluations performed this round (0 when untracked).
    pub recomputed: usize,
    /// FR/PR/NR cache classification (GAS with reuse, rounds ≥ 2).
    pub reuse_classes: Option<ReuseClassCounts>,
}

/// Solver-specific extras that don't fit the shared shape.
#[derive(Debug, Clone)]
pub enum Extras {
    /// Nothing beyond the shared fields.
    None,
    /// GAS family: the reuse policy the run used.
    Gas {
        /// Reuse policy of the run.
        reuse: ReusePolicy,
    },
    /// `base`: whether the wall-clock cap expired before `b` rounds.
    Base {
        /// `true` if the run was truncated by the time budget.
        timed_out: bool,
    },
    /// `exact`: enumeration effort.
    Exact {
        /// Number of candidate sets evaluated.
        evaluated: u64,
    },
    /// Randomized family: pool and trial count.
    Random {
        /// Pool name (`all`, `sup`, `tur`).
        pool: &'static str,
        /// Trials executed.
        trials: usize,
    },
    /// `akt`: truss level and the cumulative gain curve.
    Akt {
        /// The anchored-truss level `k`.
        k: u32,
        /// `gain_curve[i]` = cumulative gain with budget `i + 1`.
        gain_curve: Vec<u64>,
    },
    /// `edge-del`: per-candidate deletion criticality, descending.
    EdgeDeletion {
        /// `(edge, trussness loss if deleted)` for evaluated candidates.
        criticality: Vec<(EdgeId, u64)>,
    },
    /// `lazy`: candidate evaluations per round (the savings CELF buys).
    Lazy {
        /// Evaluations per completed round.
        evaluations_per_round: Vec<usize>,
    },
}

/// The unified outcome of one solver run.
#[derive(Debug, Clone)]
pub struct Outcome {
    /// Registry name of the solver that produced this outcome.
    pub solver: String,
    /// Selected anchors in selection order.
    pub anchors: Vec<Anchor>,
    /// True cumulative trussness gain `Σ_{e∈E\A} (t_A(e) − t(e))`
    /// (Definition 4), recomputed from the final state.
    pub total_gain: u64,
    /// Sum of per-round claimed gains. **Invariant:
    /// `claimed_gain >= total_gain`** — an edge elevated as a follower in
    /// an early round can itself be anchored later, and Definition 4
    /// excludes anchors from the final gain, so per-round claims can
    /// overcount but never undercount. Solvers without per-round claims
    /// report `claimed_gain == total_gain`.
    pub claimed_gain: u64,
    /// Per-round details (empty for one-shot solvers).
    pub rounds: Vec<RoundReport>,
    /// Wall-clock time of the whole run.
    pub elapsed: Duration,
    /// Solver-specific extras.
    pub extras: Extras,
}

impl Outcome {
    /// The edge anchors in selection order (skips vertex anchors).
    pub fn edge_anchors(&self) -> Vec<EdgeId> {
        self.anchors.iter().filter_map(|a| a.edge()).collect()
    }

    /// Serializes the outcome as a JSON object.
    ///
    /// Hand-rolled over [`crate::json`] (the build environment vendors no
    /// `serde`): stable field order, lossless integers, durations in
    /// seconds as floats.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(256 + 64 * self.rounds.len());
        s.push_str("{\"solver\":");
        push_json_str(&mut s, &self.solver);
        s.push_str(",\"anchors\":[");
        for (i, a) in self.anchors.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_anchor(&mut s, *a);
        }
        s.push_str("],\"total_gain\":");
        s.push_str(&self.total_gain.to_string());
        s.push_str(",\"claimed_gain\":");
        s.push_str(&self.claimed_gain.to_string());
        s.push_str(",\"elapsed_secs\":");
        push_f64(&mut s, self.elapsed.as_secs_f64());
        s.push_str(",\"rounds\":[");
        for (i, r) in self.rounds.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            push_round(&mut s, r);
        }
        s.push_str("],\"extras\":");
        push_extras(&mut s, &self.extras);
        s.push('}');
        s
    }
}

fn push_json_str(s: &mut String, v: &str) {
    s.push('"');
    json::escape_into(s, v);
    s.push('"');
}

fn push_f64(s: &mut String, v: f64) {
    // JSON has no NaN/Inf; durations never produce them, but stay safe
    json::write_f64(s, v);
}

fn push_anchor(s: &mut String, a: Anchor) {
    match a {
        Anchor::Edge(e) => s.push_str(&format!("{{\"edge\":{}}}", e.0)),
        Anchor::Vertex(v) => s.push_str(&format!("{{\"vertex\":{}}}", v.0)),
    }
}

fn push_round(s: &mut String, r: &RoundReport) {
    s.push_str(&format!("{{\"round\":{},\"chosen\":", r.round));
    push_anchor(s, r.chosen);
    s.push_str(&format!(",\"gain\":{},\"elapsed_secs\":", r.gain));
    push_f64(s, r.elapsed.as_secs_f64());
    s.push_str(&format!(",\"recomputed\":{}", r.recomputed));
    s.push_str(",\"follower_trussness\":[");
    for (i, t) in r.follower_trussness.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&t.to_string());
    }
    s.push(']');
    if let Some(c) = r.reuse_classes {
        s.push_str(&format!(
            ",\"reuse_classes\":{{\"fully\":{},\"partially\":{},\"non\":{}}}",
            c.fully, c.partially, c.non
        ));
    }
    s.push('}');
}

fn push_extras(s: &mut String, e: &Extras) {
    match e {
        Extras::None => s.push_str("null"),
        Extras::Gas { reuse } => {
            s.push_str(&format!("{{\"kind\":\"gas\",\"reuse\":\"{reuse:?}\"}}"))
        }
        Extras::Base { timed_out } => {
            s.push_str(&format!("{{\"kind\":\"base\",\"timed_out\":{timed_out}}}"))
        }
        Extras::Exact { evaluated } => {
            s.push_str(&format!("{{\"kind\":\"exact\",\"evaluated\":{evaluated}}}"))
        }
        Extras::Random { pool, trials } => s.push_str(&format!(
            "{{\"kind\":\"random\",\"pool\":\"{pool}\",\"trials\":{trials}}}"
        )),
        Extras::Akt { k, gain_curve } => {
            s.push_str(&format!("{{\"kind\":\"akt\",\"k\":{k},\"gain_curve\":["));
            for (i, g) in gain_curve.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&g.to_string());
            }
            s.push_str("]}");
        }
        Extras::EdgeDeletion { criticality } => {
            s.push_str("{\"kind\":\"edge-del\",\"criticality\":[");
            for (i, (e, loss)) in criticality.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&format!("{{\"edge\":{},\"loss\":{loss}}}", e.0));
            }
            s.push_str("]}");
        }
        Extras::Lazy {
            evaluations_per_round,
        } => {
            s.push_str("{\"kind\":\"lazy\",\"evaluations_per_round\":[");
            for (i, n) in evaluations_per_round.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(&n.to_string());
            }
            s.push_str("]}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Outcome {
        Outcome {
            solver: "gas".to_string(),
            anchors: vec![Anchor::Edge(EdgeId(3)), Anchor::Vertex(VertexId(7))],
            total_gain: 11,
            claimed_gain: 12,
            rounds: vec![RoundReport {
                round: 1,
                chosen: Anchor::Edge(EdgeId(3)),
                gain: 12,
                follower_trussness: vec![3, 3, 4],
                elapsed: Duration::from_millis(5),
                recomputed: 40,
                reuse_classes: Some(ReuseClassCounts {
                    fully: 1,
                    partially: 2,
                    non: 3,
                }),
            }],
            elapsed: Duration::from_millis(9),
            extras: Extras::Gas {
                reuse: ReusePolicy::PaperExact,
            },
        }
    }

    #[test]
    fn json_has_stable_shape() {
        let j = sample().to_json();
        assert!(j.starts_with("{\"solver\":\"gas\""), "{j}");
        assert!(
            j.contains("\"anchors\":[{\"edge\":3},{\"vertex\":7}]"),
            "{j}"
        );
        assert!(j.contains("\"total_gain\":11"), "{j}");
        assert!(j.contains("\"claimed_gain\":12"), "{j}");
        assert!(
            j.contains("\"reuse_classes\":{\"fully\":1,\"partially\":2,\"non\":3}"),
            "{j}"
        );
        assert!(
            j.contains("\"extras\":{\"kind\":\"gas\",\"reuse\":\"PaperExact\"}"),
            "{j}"
        );
        assert!(j.ends_with('}'), "{j}");
        // balanced braces/brackets (cheap structural sanity)
        let opens = j.matches('{').count() + j.matches('[').count();
        let closes = j.matches('}').count() + j.matches(']').count();
        assert_eq!(opens, closes, "{j}");
    }

    #[test]
    fn string_escaping() {
        let mut s = String::new();
        push_json_str(&mut s, "a\"b\\c\nd");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\"");
    }

    #[test]
    fn edge_anchor_filtering() {
        let out = sample();
        assert_eq!(out.edge_anchors(), vec![EdgeId(3)]);
        assert_eq!(out.anchors[1].vertex(), Some(VertexId(7)));
        assert_eq!(out.anchors[1].edge(), None);
    }
}
