//! The unified solver engine: one trait, one config, one outcome type
//! and a by-name registry over **every** algorithm the paper evaluates.
//!
//! The paper's Section IV compares GAS against seven baselines, each of
//! which historically had its own entry point and result struct. This
//! module erases that asymmetry:
//!
//! * [`Solver`] — `name()` + `run(graph, config) -> Outcome`;
//! * [`RunConfig`] — one builder-style configuration all solvers read;
//! * [`Outcome`] — anchors in order, `total_gain`, per-round
//!   [`RoundReport`]s, wall-clock, and solver-specific [`Extras`];
//! * [`registry()`] — string-keyed dispatch (`"gas"`, `"base+"`,
//!   `"rand:sup"`, …) used by the CLI and the experiment harness;
//! * [`Observer`] — optional per-round streaming for long runs.
//!
//! ```
//! use antruss_core::engine::{registry, RunConfig};
//! use antruss_graph::gen::gnm;
//!
//! let g = gnm(30, 110, 7);
//! let gas = registry().get("gas").unwrap();
//! let out = gas.run(&g, &RunConfig::new(3)).unwrap();
//! assert_eq!(out.anchors.len(), out.rounds.len());
//! assert!(out.claimed_gain >= out.total_gain);
//! ```

mod config;
mod outcome;
mod registry;
mod solvers;

pub use config::RunConfig;
pub use outcome::{Anchor, Extras, Outcome, RoundReport};
pub use registry::{registry, Registry};

use antruss_graph::CsrGraph;

/// Why a solver run could not produce an outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SolveError {
    /// The configuration is invalid for this solver.
    InvalidConfig(String),
    /// The budget exceeds the number of candidate edges (`exact` refuses;
    /// greedy solvers stop early instead).
    BudgetExceedsEdges {
        /// Requested anchor budget.
        budget: usize,
        /// Edges available.
        edges: usize,
    },
    /// The solver does not support the requested operation.
    Unsupported(String),
}

impl std::fmt::Display for SolveError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SolveError::InvalidConfig(msg) => write!(f, "invalid config: {msg}"),
            SolveError::BudgetExceedsEdges { budget, edges } => {
                write!(f, "budget {budget} exceeds the {edges} candidate edges")
            }
            SolveError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for SolveError {}

/// Per-round progress callback for long runs (status streaming, early
/// logging). Solvers that select their whole set at once never call it.
///
/// Only the GAS family streams rounds *as they complete*; adapters over
/// batch algorithms (`base`, `akt`, `lazy`) replay their synthesized
/// round reports after the run finishes, so attach an observer to those
/// for uniform logging, not for mid-run liveness.
pub trait Observer {
    /// Called after each completed round, in round order.
    fn on_round(&mut self, report: &RoundReport);
}

/// An [`Observer`] that ignores everything.
pub struct NullObserver;

impl Observer for NullObserver {
    fn on_round(&mut self, _report: &RoundReport) {}
}

impl<F: FnMut(&RoundReport)> Observer for F {
    fn on_round(&mut self, report: &RoundReport) {
        self(report)
    }
}

/// One anchoring algorithm behind the unified API.
///
/// Implementations are stateless (all run state lives in the call), so a
/// single registry instance serves concurrent runs.
pub trait Solver: Send + Sync {
    /// The registry name (`"gas"`, `"base+"`, `"rand:sup"`, …).
    fn name(&self) -> &str;

    /// One-line human description for listings (empty by default).
    fn description(&self) -> &str {
        ""
    }

    /// Runs the solver on `g` under `cfg`.
    fn run(&self, g: &CsrGraph, cfg: &RunConfig) -> Result<Outcome, SolveError> {
        self.run_observed(g, cfg, &mut NullObserver)
    }

    /// Like [`Solver::run`], streaming per-round progress to `obs`.
    fn run_observed(
        &self,
        g: &CsrGraph,
        cfg: &RunConfig,
        obs: &mut dyn Observer,
    ) -> Result<Outcome, SolveError>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use antruss_graph::gen::{gnm, planted_cliques};

    #[test]
    fn every_solver_runs_on_a_small_graph() {
        let g = gnm(20, 70, 3);
        let cfg = RunConfig::new(2).trials(5).candidate_cap(10).exact_cap(500);
        for solver in registry().iter() {
            let out = solver
                .run(&g, &cfg)
                .unwrap_or_else(|e| panic!("{} failed: {e}", solver.name()));
            assert_eq!(out.solver, solver.name());
            assert!(out.anchors.len() <= 2, "{}", solver.name());
            assert!(
                out.claimed_gain >= out.total_gain,
                "{}: claimed {} < total {}",
                solver.name(),
                out.claimed_gain,
                out.total_gain
            );
        }
    }

    #[test]
    fn observer_streams_gas_rounds() {
        let g = gnm(25, 90, 1);
        let mut seen: Vec<usize> = Vec::new();
        let mut obs = |r: &RoundReport| seen.push(r.round);
        let out = registry()
            .get("gas")
            .unwrap()
            .run_observed(&g, &RunConfig::new(3), &mut obs)
            .unwrap();
        assert_eq!(seen, vec![1, 2, 3]);
        assert_eq!(out.rounds.len(), 3);
    }

    #[test]
    fn exact_rejects_oversized_budget() {
        let g = planted_cliques(&[3]);
        let err = registry()
            .get("exact")
            .unwrap()
            .run(&g, &RunConfig::new(10))
            .unwrap_err();
        assert_eq!(
            err,
            SolveError::BudgetExceedsEdges {
                budget: 10,
                edges: 3
            }
        );
        assert!(err.to_string().contains("exceeds"));
    }

    #[test]
    fn solve_error_display() {
        assert!(SolveError::InvalidConfig("x".into())
            .to_string()
            .contains("invalid"));
        assert!(SolveError::Unsupported("y".into())
            .to_string()
            .contains("unsupported"));
    }
}
