//! The truss-component tree (Section III-C, Algorithm 4).
//!
//! Every non-anchored edge belongs to exactly one tree node; a node holds
//! the edges of trussness `TN.K` inside one `TN.K`-truss component, and the
//! subtree rooted at a node induces that component. The node identifier
//! `TN.I` is the smallest edge id in the node, which keeps identifiers
//! stable across partial rebuilds — the property the reuse machinery's
//! invalidation sets rely on.
//!
//! **Anchors are wildcards.** An anchored edge belongs to every truss
//! `T_k(G_A)`, so it can glue two otherwise-separate k-truss components
//! into one (a triangle through an anchor connects them at every level).
//! Component computation therefore *includes* anchors as connective tissue
//! at every recursion level, while never assigning them to a node. This is
//! what keeps `subtree(T[x])` equal to the true component of `x` in `G_A`
//! — and hence keeps the component-local re-decomposition of Algorithm 5
//! exact in rounds ≥ 2.

use antruss_graph::triangles::for_each_triangle;
use antruss_graph::{CsrGraph, EdgeId, EdgeSet};
use antruss_truss::triangle_connected_components_of;

/// One node of the truss-component tree.
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// `TN.K`: common trussness of the node's edges.
    pub k: u32,
    /// `TN.I`: smallest edge id in [`TreeNode::edges`] — the stable
    /// identifier used by `sla`, follower caches and invalidation sets.
    pub id: u32,
    /// `TN.E`: the edges of trussness `k` in this component (ascending).
    pub edges: Vec<EdgeId>,
    /// Parent node *index* (`None` for children of the virtual root).
    pub parent: Option<u32>,
    /// Child node indices.
    pub children: Vec<u32>,
    /// Tombstone flag set when a subtree is rebuilt.
    pub dead: bool,
}

/// The truss-component tree `T` over the non-anchored edges of one graph.
pub struct TrussTree {
    /// Node arena; rebuilt subtrees tombstone old entries and append.
    pub nodes: Vec<TreeNode>,
    /// Edge index → node index (`u32::MAX` for anchors).
    node_of: Vec<u32>,
    /// Children of the virtual root.
    roots: Vec<u32>,
    /// Scratch membership bitset reused across build calls.
    scratch: EdgeSet,
}

impl TrussTree {
    /// Builds the tree for all non-anchored edges (Algorithm 4 with the
    /// whole graph and a virtual root). Anchors participate as connective
    /// wildcards but receive no node.
    pub fn build(g: &CsrGraph, t: &[u32], anchors: &EdgeSet) -> Self {
        let m = g.num_edges();
        let mut tree = TrussTree {
            nodes: Vec::new(),
            node_of: vec![u32::MAX; m],
            roots: Vec::new(),
            scratch: EdgeSet::new(m),
        };
        let region: Vec<EdgeId> = g.edges().collect();
        let tops = tree.build_region(g, t, anchors, region, None);
        tree.roots = tops;
        tree
    }

    /// Node index containing `e`, if any.
    #[inline]
    pub fn node_of_edge(&self, e: EdgeId) -> Option<u32> {
        let idx = self.node_of[e.idx()];
        (idx != u32::MAX).then_some(idx)
    }

    /// `TN.I` of the node containing `e`, if any.
    #[inline]
    pub fn id_of_edge(&self, e: EdgeId) -> Option<u32> {
        self.node_of_edge(e).map(|i| self.nodes[i as usize].id)
    }

    /// Children of the virtual root (live nodes only).
    pub fn roots(&self) -> &[u32] {
        &self.roots
    }

    /// Live node indices.
    pub fn live_nodes(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.nodes.len() as u32).filter(|&i| !self.nodes[i as usize].dead)
    }

    /// All edges in the subtree rooted at `idx` (the `TN.K`-truss
    /// component induced by that node).
    pub fn subtree_edges(&self, idx: u32) -> Vec<EdgeId> {
        let mut out = Vec::new();
        let mut stack = vec![idx];
        while let Some(i) = stack.pop() {
            let node = &self.nodes[i as usize];
            out.extend_from_slice(&node.edges);
            stack.extend_from_slice(&node.children);
        }
        out
    }

    /// All node indices in the subtree rooted at `idx`.
    pub fn subtree_nodes(&self, idx: u32) -> Vec<u32> {
        let mut out = Vec::new();
        let mut stack = vec![idx];
        while let Some(i) = stack.pop() {
            out.push(i);
            stack.extend_from_slice(&self.nodes[i as usize].children);
        }
        out
    }

    /// Replaces the subtree rooted at `root_idx` by rebuilding Algorithm 4
    /// over `region` (the refreshed edges of that component, anchors
    /// included as wildcards), attaching the new nodes to the old parent.
    /// Returns the new top-level node indices.
    ///
    /// Old subtree nodes are tombstoned (`dead = true`); edges of `region`
    /// are reassigned; anchors in `region` end up in no node.
    pub fn rebuild_subtree(
        &mut self,
        g: &CsrGraph,
        t: &[u32],
        anchors: &EdgeSet,
        root_idx: u32,
        region: Vec<EdgeId>,
    ) -> Vec<u32> {
        let parent = self.nodes[root_idx as usize].parent;
        // tombstone the old subtree
        for i in self.subtree_nodes(root_idx) {
            let node = &mut self.nodes[i as usize];
            node.dead = true;
            for e in std::mem::take(&mut node.edges) {
                self.node_of[e.idx()] = u32::MAX;
            }
        }
        // detach from parent / roots
        match parent {
            Some(p) => self.nodes[p as usize].children.retain(|&c| c != root_idx),
            None => self.roots.retain(|&c| c != root_idx),
        }
        let tops = self.build_region(g, t, anchors, region, parent);
        match parent {
            Some(p) => self.nodes[p as usize].children.extend_from_slice(&tops),
            None => self.roots.extend_from_slice(&tops),
        }
        tops
    }

    /// Core of Algorithm 4: recursively peel minimum-trussness edges off
    /// triangle-connected components. Anchors travel with their component
    /// at every level (wildcards) but never enter a node. Returns the
    /// top-level node indices created for `region`.
    fn build_region(
        &mut self,
        g: &CsrGraph,
        t: &[u32],
        anchors: &EdgeSet,
        region: Vec<EdgeId>,
        parent: Option<u32>,
    ) -> Vec<u32> {
        let mut tops = Vec::new();
        // (edges, parent, attach_to_tops)
        let mut stack: Vec<(Vec<EdgeId>, Option<u32>, bool)> = vec![(region, parent, true)];
        while let Some((edges, parent, is_top)) = stack.pop() {
            if edges.is_empty() {
                continue;
            }
            for &e in &edges {
                self.scratch.insert(e);
            }
            let comps = triangle_connected_components_of(g, &edges, &self.scratch);
            for &e in &edges {
                self.scratch.remove(e);
            }
            for comp in comps {
                let k_min = comp
                    .iter()
                    .filter(|&&e| !anchors.contains(e))
                    .map(|&e| t[e.idx()])
                    .min();
                let Some(k_min) = k_min else {
                    continue; // pure-anchor piece: no node, nothing below it
                };
                let mut node_edges = Vec::new();
                let mut rest = Vec::new();
                for e in comp {
                    if !anchors.contains(e) && t[e.idx()] == k_min {
                        node_edges.push(e);
                    } else {
                        rest.push(e); // higher-trussness edges and anchors
                    }
                }
                let idx = self.nodes.len() as u32;
                let id = node_edges[0].0; // ascending order ⇒ min edge id
                for &e in &node_edges {
                    self.node_of[e.idx()] = idx;
                }
                self.nodes.push(TreeNode {
                    k: k_min,
                    id,
                    edges: node_edges,
                    parent,
                    children: Vec::new(),
                    dead: false,
                });
                if let Some(p) = parent {
                    self.nodes[p as usize].children.push(idx);
                }
                if is_top {
                    tops.push(idx);
                }
                if !rest.is_empty() {
                    stack.push((rest, Some(idx), false));
                }
            }
        }
        tops
    }

    /// Test/debug helper: asserts the structural invariants of the tree
    /// over the current `(t, anchors)` state.
    pub fn assert_valid(&self, g: &CsrGraph, t: &[u32], anchors: &EdgeSet) {
        // every non-anchor edge in exactly one live node, with matching K
        for e in g.edges() {
            if anchors.contains(e) {
                assert_eq!(
                    self.node_of[e.idx()],
                    u32::MAX,
                    "anchor {e:?} must not be in the tree"
                );
            } else {
                let idx = self.node_of[e.idx()];
                assert_ne!(idx, u32::MAX, "edge {e:?} missing from the tree");
                let node = &self.nodes[idx as usize];
                assert!(!node.dead, "edge {e:?} points to a dead node");
                assert_eq!(node.k, t[e.idx()], "node K mismatch for {e:?}");
                assert!(node.edges.contains(&e));
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if node.dead {
                continue;
            }
            assert_eq!(
                node.id,
                node.edges
                    .iter()
                    .map(|e| e.0)
                    .min()
                    .expect("non-empty node"),
                "TN.I must be the smallest edge id"
            );
            if let Some(p) = node.parent {
                let parent = &self.nodes[p as usize];
                assert!(!parent.dead, "live node {i} has dead parent");
                assert!(
                    parent.k < node.k,
                    "parent K {} must be below child K {}",
                    parent.k,
                    node.k
                );
                assert!(parent.children.contains(&(i as u32)));
            }
        }
    }
}

/// `sla(e)`: the subtree-adjacency node ids of `e` — the `TN.I` of every
/// node holding a neighbour-edge `e'` (sharing a triangle with `e`) with
/// `t(e') ≥ t(e)`. Sorted and deduplicated. Lemma 4: the followers of
/// anchoring `e` all live in these nodes.
pub fn sla(g: &CsrGraph, t: &[u32], anchors: &EdgeSet, tree: &TrussTree, e: EdgeId) -> Vec<u32> {
    let te = t[e.idx()];
    let mut out = Vec::new();
    for_each_triangle(g, e, |w| {
        for p in [w.e_uw, w.e_vw] {
            if anchors.contains(p) {
                continue;
            }
            if t[p.idx()] >= te {
                if let Some(id) = tree.id_of_edge(p) {
                    out.push(id);
                }
            }
        }
    });
    out.sort_unstable();
    out.dedup();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::AtrState;
    use antruss_graph::gen::{gnm, planted_cliques};
    use antruss_graph::{GraphBuilder, VertexId};

    fn fig3() -> CsrGraph {
        let mut b = GraphBuilder::dense();
        for &(u, v) in &[
            (1, 2),
            (1, 5),
            (1, 7),
            (1, 9),
            (2, 5),
            (2, 7),
            (2, 9),
            (5, 7),
            (7, 9),
            (6, 8),
            (6, 11),
            (6, 12),
            (8, 10),
            (8, 11),
            (8, 12),
            (10, 11),
            (10, 12),
            (11, 12),
            (3, 4),
            (3, 5),
            (3, 6),
            (3, 13),
            (4, 5),
            (4, 6),
            (4, 13),
            (5, 6),
            (5, 13),
            (6, 13),
            (9, 10),
            (8, 9),
            (7, 8),
            (5, 8),
        ] {
            b.add_edge(u, v);
        }
        b.build()
    }

    fn eid(g: &CsrGraph, u: u32, v: u32) -> EdgeId {
        g.edge_between(VertexId(u), VertexId(v)).unwrap()
    }

    #[test]
    fn fig3_tree_shape_matches_fig4() {
        // Fig. 4: one K=3 root node (the whole graph is triangle-connected)
        // with three children: two K=4 nodes and one K=5 node.
        let g = fig3();
        let st = AtrState::new(&g);
        let tree = TrussTree::build(&g, &st.t, &st.anchors);
        tree.assert_valid(&g, &st.t, &st.anchors);
        assert_eq!(tree.roots().len(), 1);
        let root = &tree.nodes[tree.roots()[0] as usize];
        assert_eq!(root.k, 3);
        assert_eq!(root.edges.len(), 4); // the 3-hull tail
        assert_eq!(root.children.len(), 3);
        let mut child_ks: Vec<(u32, usize)> = root
            .children
            .iter()
            .map(|&c| {
                let n = &tree.nodes[c as usize];
                (n.k, n.edges.len())
            })
            .collect();
        child_ks.sort();
        assert_eq!(child_ks, vec![(4, 9), (4, 9), (5, 10)]);
    }

    #[test]
    fn fig3_sla_matches_example5() {
        // Example 5 (translated to our edge ids): sla((v9,v10)) holds the
        // ids of the 3-hull node and the K=4 node {v6,v8,v10,v11,v12};
        // sla((v5,v8)) holds all four node ids.
        let g = fig3();
        let st = AtrState::new(&g);
        let tree = TrussTree::build(&g, &st.t, &st.anchors);
        let id_of = |u: u32, v: u32| tree.id_of_edge(eid(&g, u, v)).unwrap();
        let s_910 = sla(&g, &st.t, &st.anchors, &tree, eid(&g, 9, 10));
        assert_eq!(
            s_910,
            {
                let mut v = vec![id_of(9, 10), id_of(8, 10)];
                v.sort();
                v
            },
            "sla((9,10)) = its own node + the K4 node of (8,10)"
        );
        let s_58 = sla(&g, &st.t, &st.anchors, &tree, eid(&g, 5, 8));
        let mut want = vec![id_of(5, 8), id_of(1, 2), id_of(8, 10), id_of(3, 4)];
        want.sort();
        assert_eq!(s_58, want, "sla((5,8)) spans all four nodes");
    }

    #[test]
    fn disjoint_cliques_give_disjoint_roots() {
        let g = planted_cliques(&[5, 4]);
        let st = AtrState::new(&g);
        let tree = TrussTree::build(&g, &st.t, &st.anchors);
        tree.assert_valid(&g, &st.t, &st.anchors);
        assert_eq!(tree.roots().len(), 2);
    }

    #[test]
    fn every_edge_in_exactly_one_node_random() {
        for seed in 0..4 {
            let g = gnm(40, 160, seed);
            let st = AtrState::new(&g);
            let tree = TrussTree::build(&g, &st.t, &st.anchors);
            tree.assert_valid(&g, &st.t, &st.anchors);
            let total: usize = tree
                .live_nodes()
                .map(|i| tree.nodes[i as usize].edges.len())
                .sum();
            assert_eq!(total, g.num_edges());
        }
    }

    #[test]
    fn subtree_edges_cover_component() {
        let g = fig3();
        let st = AtrState::new(&g);
        let tree = TrussTree::build(&g, &st.t, &st.anchors);
        let root = tree.roots()[0];
        let mut edges = tree.subtree_edges(root);
        edges.sort();
        assert_eq!(edges.len(), g.num_edges());
    }

    #[test]
    fn rebuild_subtree_preserves_ids_of_unchanged_nodes() {
        let g = fig3();
        let st = AtrState::new(&g);
        let mut tree = TrussTree::build(&g, &st.t, &st.anchors);
        let root = tree.roots()[0];
        let before: Vec<u32> = {
            let mut ids: Vec<u32> = tree
                .live_nodes()
                .map(|i| tree.nodes[i as usize].id)
                .collect();
            ids.sort();
            ids
        };
        // rebuild with identical t: same structure, same ids
        let region = tree.subtree_edges(root);
        tree.rebuild_subtree(&g, &st.t, &st.anchors, root, region);
        tree.assert_valid(&g, &st.t, &st.anchors);
        let after: Vec<u32> = {
            let mut ids: Vec<u32> = tree
                .live_nodes()
                .map(|i| tree.nodes[i as usize].id)
                .collect();
            ids.sort();
            ids
        };
        assert_eq!(before, after);
    }

    #[test]
    fn empty_graph_tree() {
        let g = GraphBuilder::new().build();
        let st = AtrState::new(&g);
        let tree = TrussTree::build(&g, &st.t, &st.anchors);
        assert!(tree.roots().is_empty());
        assert_eq!(tree.live_nodes().count(), 0);
    }
}
