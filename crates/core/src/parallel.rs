//! Parallel candidate evaluation.
//!
//! The dominant cost of the greedy is the *scan*: computing the follower
//! set of every candidate edge (all `m` of them in round 1; the
//! invalidated subset in later rounds). Each candidate's search only reads
//! the shared [`AtrState`], so the scan is embarrassingly parallel — the
//! only mutable state is the per-worker [`FollowerSearch`] scratch.
//!
//! [`scan_map`] fans candidates out over a small thread pool with
//! chunk-granular work stealing (route sizes are heavily skewed: a few
//! candidates in dense regions cost orders of magnitude more than the
//! median, so static partitioning would straggle). Results are returned
//! in candidate order, so downstream tie-breaking — smallest edge id
//! wins — is deterministic regardless of interleaving.
//!
//! This is an engineering extension over the paper (which evaluates a
//! single-threaded C++ implementation); `benches/ablation.rs` measures the
//! speedup and `tests/parallel_props.rs` pins serial/parallel equivalence.

use std::sync::atomic::{AtomicUsize, Ordering};

use antruss_graph::EdgeId;

use crate::followers::FollowerSearch;
use crate::problem::AtrState;

/// Candidates per work-stealing unit. Small enough to balance skewed
/// route sizes, large enough to amortize the atomic fetch.
const CHUNK: usize = 32;

/// Applies `f` to every candidate, fanning out over `threads` workers
/// (serial when `threads <= 1`). Results come back in candidate order.
///
/// `f` receives a worker-private scratch, so it may run follower searches
/// freely; it must not mutate shared state.
///
/// ```
/// use antruss_core::parallel::scan_follower_counts;
/// use antruss_core::AtrState;
/// use antruss_graph::gen::gnm;
///
/// let g = gnm(25, 90, 1);
/// let st = AtrState::new(&g);
/// let candidates: Vec<_> = g.edges().collect();
/// let serial = scan_follower_counts(&st, &candidates, 1);
/// let parallel = scan_follower_counts(&st, &candidates, 4);
/// assert_eq!(serial, parallel); // deterministic for any thread count
/// ```
pub fn scan_map<T, F>(st: &AtrState<'_>, candidates: &[EdgeId], threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(&mut FollowerSearch, EdgeId) -> T + Sync,
{
    let m = st.graph().num_edges();
    if threads <= 1 || candidates.len() <= CHUNK {
        let mut fs = FollowerSearch::new(m);
        return candidates.iter().map(|&e| f(&mut fs, e)).collect();
    }

    let cursor = AtomicUsize::new(0);
    let workers = threads.min(candidates.len().div_ceil(CHUNK));
    let mut partials: Vec<Vec<(usize, Vec<T>)>> = Vec::new();
    crossbeam::scope(|scope| {
        let mut handles = Vec::with_capacity(workers);
        for _ in 0..workers {
            let cursor = &cursor;
            let f = &f;
            handles.push(scope.spawn(move |_| {
                let mut fs = FollowerSearch::new(m);
                let mut runs: Vec<(usize, Vec<T>)> = Vec::new();
                loop {
                    let start = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                    if start >= candidates.len() {
                        break;
                    }
                    let end = (start + CHUNK).min(candidates.len());
                    let out: Vec<T> = candidates[start..end]
                        .iter()
                        .map(|&e| f(&mut fs, e))
                        .collect();
                    runs.push((start, out));
                }
                runs
            }));
        }
        partials = handles
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect();
    })
    .expect("scoped threads");

    // Stitch the runs back into candidate order.
    let mut slots: Vec<Option<T>> = (0..candidates.len()).map(|_| None).collect();
    for runs in partials {
        for (start, out) in runs {
            for (i, v) in out.into_iter().enumerate() {
                slots[start + i] = Some(v);
            }
        }
    }
    slots
        .into_iter()
        .map(|s| s.expect("every candidate scanned"))
        .collect()
}

/// Follower counts of every candidate, in order.
pub fn scan_follower_counts(st: &AtrState<'_>, candidates: &[EdgeId], threads: usize) -> Vec<u32> {
    scan_map(st, candidates, threads, |fs, e| {
        fs.followers(st, e).followers.len() as u32
    })
}

/// The best candidate under the greedy criterion — most followers, ties
/// toward the smaller edge id — or `None` for an empty candidate list.
/// Deterministic for any thread count.
pub fn best_candidate(
    st: &AtrState<'_>,
    candidates: &[EdgeId],
    threads: usize,
) -> Option<(EdgeId, u32)> {
    let counts = scan_follower_counts(st, candidates, threads);
    candidates
        .iter()
        .zip(&counts)
        .map(|(&e, &c)| (e, c))
        .max_by(|&(e1, c1), &(e2, c2)| c1.cmp(&c2).then_with(|| e2.cmp(&e1)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use antruss_graph::gen::{gnm, social_network, SocialParams};

    #[test]
    fn parallel_counts_match_serial() {
        let g = gnm(40, 160, 11);
        let st = AtrState::new(&g);
        let candidates: Vec<EdgeId> = g.edges().collect();
        let serial = scan_follower_counts(&st, &candidates, 1);
        for threads in [2, 3, 4, 8] {
            let par = scan_follower_counts(&st, &candidates, threads);
            assert_eq!(serial, par, "threads = {threads}");
        }
    }

    #[test]
    fn best_candidate_deterministic_across_thread_counts() {
        let g = social_network(&SocialParams {
            n: 120,
            target_edges: 500,
            attach: 4,
            closure: 0.6,
            planted: vec![6],
            onions: vec![],
            seed: 2,
        });
        let st = AtrState::new(&g);
        let candidates: Vec<EdgeId> = g.edges().collect();
        let serial = best_candidate(&st, &candidates, 1);
        for threads in [2, 4] {
            assert_eq!(serial, best_candidate(&st, &candidates, threads));
        }
    }

    #[test]
    fn empty_candidate_list() {
        let g = gnm(10, 20, 0);
        let st = AtrState::new(&g);
        assert_eq!(best_candidate(&st, &[], 4), None);
        assert!(scan_follower_counts(&st, &[], 4).is_empty());
    }

    #[test]
    fn single_chunk_stays_serial() {
        let g = gnm(12, 25, 1);
        let st = AtrState::new(&g);
        let candidates: Vec<EdgeId> = g.edges().collect();
        // fewer candidates than a chunk: the threads argument is moot
        let a = scan_follower_counts(&st, &candidates, 1);
        let b = scan_follower_counts(&st, &candidates, 16);
        assert_eq!(a, b);
    }
}
