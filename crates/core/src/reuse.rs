//! `FollowerReuse` — Algorithm 5 of the paper.
//!
//! After the greedy commits to an anchor `x`, only the `t(x)`-truss
//! component containing `x` (the subtree rooted at `T[x]`) can change:
//! followers gain one trussness level and peel layers inside the component
//! shift. This module
//!
//! 1. re-decomposes exactly that region (anchors preserved),
//! 2. rebuilds the corresponding subtree of the truss-component tree,
//! 3. returns the invalidation set `ES` of tree-node ids whose cached
//!    follower results can no longer be reused:
//!    `ES = {T[x].I} ∪ {id : F[x][id] ≠ ∅} ∪ {T*[f].I : f ∈ F(x)}`
//!    (plus, under [`InvalidationPolicy::Conservative`], all of `sla(x)` —
//!    see the policy docs).
//!
//! Every cached `F[e][id]` with `id ∉ ES` is reused next round (Lemma 5).

use antruss_graph::{EdgeId, EdgeSet, FxHashSet};
use antruss_truss::{decompose_into, DecomposeOptions};

use crate::problem::AtrState;
use crate::tree::TrussTree;

/// How aggressively cached follower results are invalidated after an
/// anchoring.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InvalidationPolicy {
    /// Algorithm 5 verbatim: invalidate the anchor's node, the nodes that
    /// contained its followers, and the nodes its followers moved into.
    #[default]
    PaperExact,
    /// Additionally invalidate every node in `sla(x)`. The anchored edge
    /// keeps supporting neighbour-edges in *all* adjacent nodes in later
    /// rounds, which can change their follower sets even when they held no
    /// follower of `x` itself; the conservative policy also drops those
    /// caches. Costs more recomputation, never reuses a stale result
    /// through the anchor's immediate neighbourhood.
    Conservative,
}

/// Result of applying one anchor with component-local refresh.
#[derive(Debug, Clone)]
pub struct ReuseOutcome {
    /// Invalidated tree-node ids (`ES`), sorted.
    pub invalidated: Vec<u32>,
    /// Edges whose `t`/`l` entries were refreshed (the rebuilt region,
    /// including the new anchor itself).
    pub region: Vec<EdgeId>,
}

/// Commits anchor `x`: inserts it into the anchor set, refreshes `t`/`l`
/// for its component only, rebuilds the tree subtree and computes `ES`.
///
/// `followers_by_node` is the cached `F[x][id]` partition from the round
/// that selected `x`; `sla_x` is `sla(x)` at selection time.
pub fn anchor_with_reuse(
    st: &mut AtrState<'_>,
    tree: &mut TrussTree,
    x: EdgeId,
    followers_by_node: &[(u32, Vec<EdgeId>)],
    sla_x: &[u32],
    policy: InvalidationPolicy,
) -> ReuseOutcome {
    assert!(!st.is_anchor(x), "{x:?} already anchored");
    let g = st.graph();
    let root_idx = tree
        .node_of_edge(x)
        .expect("candidate anchor must be in the tree");

    // --- lines 1-4: seed ES -------------------------------------------
    let mut es: FxHashSet<u32> = FxHashSet::default();
    es.insert(tree.nodes[root_idx as usize].id);
    for (id, fs) in followers_by_node {
        if !fs.is_empty() {
            es.insert(*id);
        }
    }
    if policy == InvalidationPolicy::Conservative {
        es.extend(sla_x.iter().copied());
    }

    // --- lines 5-6: re-decompose the component, anchors preserved ------
    let region = tree.subtree_edges(root_idx);
    st.anchors.insert(x);
    let mut subset = EdgeSet::new(g.num_edges());
    for &e in &region {
        subset.insert(e);
    }
    // all anchors participate: an anchor inside the component keeps
    // supporting triangles; anchors elsewhere are inert but harmless.
    subset.union_with(&st.anchors);
    decompose_into(
        g,
        DecomposeOptions {
            subset: Some(&subset),
            anchors: Some(&st.anchors),
        },
        &mut st.t,
        &mut st.l,
        &mut st.k_max,
    );

    // --- lines 7-9: rebuild the subtree under the old parent -----------
    // The rebuild region is the refreshed subset: component edges plus all
    // anchors as connective wildcards (unrelated anchors form pure-anchor
    // pieces and are dropped by the builder).
    let rebuilt_region: Vec<EdgeId> = subset.iter().collect();
    tree.rebuild_subtree(g, &st.t, &st.anchors, root_idx, rebuilt_region);

    // --- line 11: nodes the followers moved into ------------------------
    for (_, fs) in followers_by_node {
        for &f in fs {
            if let Some(id) = tree.id_of_edge(f) {
                es.insert(id);
            }
        }
    }

    let mut invalidated: Vec<u32> = es.into_iter().collect();
    invalidated.sort_unstable();
    ReuseOutcome {
        invalidated,
        region,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::followers::{naive_followers, FollowerSearch};
    use antruss_graph::gen::gnm;
    use antruss_graph::CsrGraph;

    fn partition_by_node(tree: &TrussTree, followers: &[EdgeId]) -> Vec<(u32, Vec<EdgeId>)> {
        let mut map: std::collections::BTreeMap<u32, Vec<EdgeId>> = Default::default();
        for &f in followers {
            let id = tree.id_of_edge(f).expect("follower in tree");
            map.entry(id).or_default().push(f);
        }
        map.into_iter().collect()
    }

    fn check_refresh_matches_full(g: &CsrGraph, picks: &[EdgeId]) {
        let mut fast = AtrState::new(g);
        let mut slow = AtrState::new(g);
        let mut tree = TrussTree::build(g, &fast.t, &fast.anchors);
        let mut fs = FollowerSearch::new(g.num_edges());
        for &x in picks {
            let followers = fs.followers(&fast, x).followers;
            let by_node = partition_by_node(&tree, &followers);
            let sla_x = crate::tree::sla(g, &fast.t, &fast.anchors, &tree, x);
            anchor_with_reuse(
                &mut fast,
                &mut tree,
                x,
                &by_node,
                &sla_x,
                InvalidationPolicy::PaperExact,
            );
            slow.anchor_full_refresh(x);
            assert_eq!(fast.t, slow.t, "trussness after anchoring {x:?}");
            assert_eq!(fast.l, slow.l, "layers after anchoring {x:?}");
            tree.assert_valid(g, &fast.t, &fast.anchors);
        }
    }

    #[test]
    fn partial_refresh_equals_full_refresh_random() {
        for seed in 0..5 {
            let g = gnm(30, 110, seed);
            let picks = [EdgeId(2), EdgeId(31), EdgeId(77 % g.num_edges() as u32)];
            let picks: Vec<EdgeId> = picks
                .iter()
                .copied()
                .collect::<std::collections::BTreeSet<_>>()
                .into_iter()
                .collect();
            check_refresh_matches_full(&g, &picks);
        }
    }

    #[test]
    fn es_contains_anchor_node_and_follower_nodes() {
        let g = gnm(30, 110, 9);
        let mut st = AtrState::new(&g);
        let mut tree = TrussTree::build(&g, &st.t, &st.anchors);
        let mut fs = FollowerSearch::new(g.num_edges());
        // pick an edge with followers, if any
        let x = g
            .edges()
            .max_by_key(|&e| fs.followers(&st, e).followers.len())
            .unwrap();
        let followers = fs.followers(&st, x).followers;
        let x_node_id = tree.id_of_edge(x).unwrap();
        let old_ids: Vec<(EdgeId, u32)> = followers
            .iter()
            .map(|&f| (f, tree.id_of_edge(f).unwrap()))
            .collect();
        let by_node = partition_by_node(&tree, &followers);
        let sla_x = crate::tree::sla(&g, &st.t, &st.anchors, &tree, x);
        let out = anchor_with_reuse(
            &mut st,
            &mut tree,
            x,
            &by_node,
            &sla_x,
            InvalidationPolicy::PaperExact,
        );
        assert!(out.invalidated.contains(&x_node_id));
        for (f, old_id) in old_ids {
            assert!(out.invalidated.contains(&old_id));
            let new_id = tree.id_of_edge(f).unwrap();
            assert!(out.invalidated.contains(&new_id));
        }
    }

    #[test]
    fn followers_recomputed_after_reuse_match_oracle() {
        // After a component-local refresh, a fresh follower search on any
        // candidate must still agree with the naive oracle.
        let g = gnm(26, 90, 4);
        let mut st = AtrState::new(&g);
        let mut tree = TrussTree::build(&g, &st.t, &st.anchors);
        let mut fs = FollowerSearch::new(g.num_edges());
        let x = EdgeId(5);
        let followers = fs.followers(&st, x).followers;
        let by_node = partition_by_node(&tree, &followers);
        let sla_x = crate::tree::sla(&g, &st.t, &st.anchors, &tree, x);
        anchor_with_reuse(
            &mut st,
            &mut tree,
            x,
            &by_node,
            &sla_x,
            InvalidationPolicy::PaperExact,
        );
        for e in g.edges() {
            if st.is_anchor(e) {
                continue;
            }
            let mut got = fs.followers(&st, e).followers;
            got.sort();
            assert_eq!(got, naive_followers(&st, e), "candidate {e:?}");
        }
    }

    #[test]
    fn conservative_superset_of_paper_exact() {
        let g = gnm(30, 110, 12);
        let x = EdgeId(3);
        let run = |policy: InvalidationPolicy| {
            let mut st = AtrState::new(&g);
            let mut tree = TrussTree::build(&g, &st.t, &st.anchors);
            let mut fs = FollowerSearch::new(g.num_edges());
            let followers = fs.followers(&st, x).followers;
            let by_node = partition_by_node(&tree, &followers);
            let sla_x = crate::tree::sla(&g, &st.t, &st.anchors, &tree, x);
            anchor_with_reuse(&mut st, &mut tree, x, &by_node, &sla_x, policy).invalidated
        };
        let exact = run(InvalidationPolicy::PaperExact);
        let conservative = run(InvalidationPolicy::Conservative);
        for id in exact {
            assert!(conservative.contains(&id));
        }
    }
}
