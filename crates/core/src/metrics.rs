//! Measurement helpers for the paper's evaluation section.

/// Reuse classification of candidate caches entering a round (Exp-8 /
/// Fig. 10): fully reusable, partially reusable, non-reusable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseClassCounts {
    /// `FR`: every cached node result reused.
    pub fully: usize,
    /// `PR`: some node results recomputed.
    pub partially: usize,
    /// `NR`: everything recomputed.
    pub non: usize,
}

impl ReuseClassCounts {
    /// Total classified candidates.
    pub fn total(&self) -> usize {
        self.fully + self.partially + self.non
    }

    /// `(FR, PR, NR)` as fractions of the total (zeros when empty).
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.total();
        if t == 0 {
            return (0.0, 0.0, 0.0);
        }
        let t = t as f64;
        (
            self.fully as f64 / t,
            self.partially as f64 / t,
            self.non as f64 / t,
        )
    }

    /// Accumulates another round's counts.
    pub fn merge(&mut self, other: &ReuseClassCounts) {
        self.fully += other.fully;
        self.partially += other.partially;
        self.non += other.non;
    }
}

/// Histogram over `u32` keys (trussness levels, budgets, …) with dense
/// storage and sparse reporting.
#[derive(Debug, Clone, Default)]
pub struct Histogram {
    counts: Vec<u64>,
}

impl Histogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `weight` at `key`.
    pub fn add(&mut self, key: u32, weight: u64) {
        if self.counts.len() <= key as usize {
            self.counts.resize(key as usize + 1, 0);
        }
        self.counts[key as usize] += weight;
    }

    /// Count at `key`.
    pub fn get(&self, key: u32) -> u64 {
        self.counts.get(key as usize).copied().unwrap_or(0)
    }

    /// Non-zero `(key, count)` pairs in ascending key order.
    pub fn entries(&self) -> Vec<(u32, u64)> {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(k, &c)| (k as u32, c))
            .collect()
    }

    /// Sum of all counts.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fractions_sum_to_one() {
        let c = ReuseClassCounts {
            fully: 80,
            partially: 15,
            non: 5,
        };
        let (f, p, n) = c.fractions();
        assert!((f + p + n - 1.0).abs() < 1e-12);
        assert!((f - 0.8).abs() < 1e-12);
    }

    #[test]
    fn empty_fractions_are_zero() {
        let c = ReuseClassCounts::default();
        assert_eq!(c.fractions(), (0.0, 0.0, 0.0));
    }

    #[test]
    fn merge_accumulates() {
        let mut a = ReuseClassCounts {
            fully: 1,
            partially: 2,
            non: 3,
        };
        a.merge(&ReuseClassCounts {
            fully: 10,
            partially: 20,
            non: 30,
        });
        assert_eq!(a.total(), 66);
    }

    #[test]
    fn histogram_basics() {
        let mut h = Histogram::new();
        h.add(3, 2);
        h.add(7, 1);
        h.add(3, 1);
        assert_eq!(h.get(3), 3);
        assert_eq!(h.get(5), 0);
        assert_eq!(h.entries(), vec![(3, 3), (7, 1)]);
        assert_eq!(h.total(), 4);
    }
}
