//! Every baseline the paper evaluates against (Section IV-A).
//!
//! | name   | module            | description |
//! |--------|-------------------|-------------|
//! | Exact  | [`exact`]         | exhaustive search over all `C(m, b)` anchor sets |
//! | Rand   | [`random`]        | best of `trials` random `b`-subsets of all edges |
//! | Sup    | [`random`]        | same, pool = top 20 % edges by support |
//! | Tur    | [`random`]        | same, pool = top 20 % edges by upward-route size |
//! | BASE   | [`base`]          | greedy, full truss decomposition per candidate |
//! | BASE+  | [`base_plus`]     | greedy with upward-route follower search, no reuse |
//! | AKT    | [`akt`]           | anchored k-truss vertex anchoring (Zhang et al., ICDE'18) |
//! | —      | [`edge_deletion`] | case-study comparator: anchor the most deletion-critical edges |
//! | —      | [`lazy`]          | extension: CELF-style lazy greedy (heuristic under non-submodularity) |

pub mod akt;
pub mod base;
pub mod base_plus;
pub mod edge_deletion;
pub mod exact;
pub mod lazy;
pub mod random;
