//! `BASE+`: greedy with upward-route follower computation, no reuse.
//!
//! Identical to [`crate::Gas`] with [`crate::ReusePolicy::Off`] — every
//! round recomputes the followers of every candidate via Algorithm 3 and
//! refreshes the state with a full re-decomposition. This thin wrapper
//! exists so the experiment harness can name the paper's baseline
//! explicitly.

use antruss_graph::CsrGraph;

use crate::gas::{Gas, GasConfig, GasOutcome, ReusePolicy};

/// Runs BASE+ for budget `b`.
pub fn base_plus(g: &CsrGraph, b: usize) -> GasOutcome {
    Gas::new(
        g,
        GasConfig {
            reuse: ReusePolicy::Off,
            ..GasConfig::default()
        },
    )
    .run(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use antruss_graph::gen::gnm;

    #[test]
    fn base_plus_reports_full_recompute_each_round() {
        let g = gnm(20, 60, 5);
        let out = base_plus(&g, 3);
        assert_eq!(out.anchors.len(), 3);
        for (i, r) in out.rounds.iter().enumerate() {
            assert_eq!(r.recomputed, g.num_edges() - i, "round {i} recomputes all");
            assert!(r.reuse_classes.is_none());
        }
    }
}
