//! `Rand`, `Sup`, `Tur`: randomized anchor selection (Section IV-A).
//!
//! Each trial draws `b` distinct edges from a pool and evaluates the whole
//! set's gain by anchored decomposition; the best trial is reported
//! (the paper uses 2000 trials). The three baselines differ only in the
//! pool:
//!
//! * `Rand` — all edges;
//! * `Sup`  — the top 20 % of edges by support;
//! * `Tur`  — the top 20 % of edges by upward-route size.

use antruss_graph::{triangles, CsrGraph, EdgeId, EdgeSet};
use antruss_truss::decompose;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

use crate::problem::{gain_of_anchor_set, AtrState};
use crate::route::route_sizes;

/// Result of a randomized baseline.
#[derive(Debug, Clone)]
pub struct RandomOutcome {
    /// Best anchor set found.
    pub anchors: Vec<EdgeId>,
    /// Its trussness gain (max over trials).
    pub gain: u64,
    /// Number of trials executed.
    pub trials: usize,
}

/// Candidate pools for [`random_trials`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Pool {
    /// Every edge (`Rand`).
    All,
    /// Top `fraction` of edges by support (`Sup`, paper uses 0.2).
    TopSupport(f64),
    /// Top `fraction` of edges by upward-route size (`Tur`, paper uses 0.2).
    TopRouteSize(f64),
}

/// Materializes a pool of candidate edges.
pub fn build_pool(g: &CsrGraph, pool: Pool) -> Vec<EdgeId> {
    match pool {
        Pool::All => g.edges().collect(),
        Pool::TopSupport(frac) => top_fraction(g, frac, &triangles::support(g, None)),
        Pool::TopRouteSize(frac) => {
            let st = AtrState::new(g);
            let sizes: Vec<u32> = route_sizes(&st).iter().map(|&s| s as u32).collect();
            top_fraction(g, frac, &sizes)
        }
    }
}

fn top_fraction(g: &CsrGraph, frac: f64, score: &[u32]) -> Vec<EdgeId> {
    assert!((0.0..=1.0).contains(&frac), "fraction must be in [0, 1]");
    let mut ids: Vec<EdgeId> = g.edges().collect();
    ids.sort_unstable_by_key(|e| std::cmp::Reverse(score[e.idx()]));
    let keep = ((ids.len() as f64) * frac).ceil() as usize;
    ids.truncate(keep.max(1).min(ids.len()));
    ids
}

/// Runs `trials` random draws of `b` anchors from `pool_edges`, returning
/// the best set by gain. Deterministic for a fixed `seed`.
pub fn random_trials(
    g: &CsrGraph,
    pool_edges: &[EdgeId],
    b: usize,
    trials: usize,
    seed: u64,
) -> RandomOutcome {
    let base = decompose(g).trussness;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut best_gain = 0u64;
    let mut best: Vec<EdgeId> = Vec::new();
    let b_eff = b.min(pool_edges.len());
    let mut scratch: Vec<EdgeId> = pool_edges.to_vec();
    for _ in 0..trials {
        scratch.shuffle(&mut rng);
        let draw = &scratch[..b_eff];
        let anchors = EdgeSet::from_iter(g.num_edges(), draw.iter().copied());
        let gain = gain_of_anchor_set(g, &base, &anchors);
        if gain > best_gain || best.is_empty() {
            best_gain = gain;
            best = draw.to_vec();
        }
    }
    RandomOutcome {
        anchors: best,
        gain: best_gain,
        trials,
    }
}

/// Convenience wrapper: builds the pool and runs the trials.
pub fn random_baseline(
    g: &CsrGraph,
    pool: Pool,
    b: usize,
    trials: usize,
    seed: u64,
) -> RandomOutcome {
    let edges = build_pool(g, pool);
    random_trials(g, &edges, b, trials, seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gas, GasConfig};
    use antruss_graph::gen::{gnm, social_network, SocialParams};

    #[test]
    fn pools_have_expected_sizes() {
        let g = gnm(50, 300, 1);
        assert_eq!(build_pool(&g, Pool::All).len(), 300);
        assert_eq!(build_pool(&g, Pool::TopSupport(0.2)).len(), 60);
        let tur = build_pool(&g, Pool::TopRouteSize(0.2));
        assert_eq!(tur.len(), 60);
    }

    #[test]
    fn top_support_pool_actually_top() {
        let g = gnm(40, 200, 2);
        let sup = triangles::support(&g, None);
        let pool = build_pool(&g, Pool::TopSupport(0.1));
        let min_in_pool = pool.iter().map(|e| sup[e.idx()]).min().unwrap();
        let max_out = g
            .edges()
            .filter(|e| !pool.contains(e))
            .map(|e| sup[e.idx()])
            .max()
            .unwrap_or(0);
        assert!(min_in_pool >= max_out);
    }

    #[test]
    fn deterministic_across_runs() {
        let g = gnm(30, 120, 3);
        let a = random_baseline(&g, Pool::All, 3, 20, 9);
        let b = random_baseline(&g, Pool::All, 3, 20, 9);
        assert_eq!(a.gain, b.gain);
        assert_eq!(a.anchors, b.anchors);
    }

    #[test]
    fn greedy_beats_or_ties_random_on_social_graph() {
        let g = social_network(&SocialParams {
            n: 150,
            target_edges: 600,
            attach: 4,
            closure: 0.6,
            planted: vec![6],
            onions: vec![],
            seed: 4,
        });
        let gas = Gas::new(&g, GasConfig::default()).run(3);
        let rand = random_baseline(&g, Pool::All, 3, 30, 1);
        assert!(
            gas.total_gain >= rand.gain,
            "greedy {} < random {}",
            gas.total_gain,
            rand.gain
        );
    }

    #[test]
    fn small_pool_clamps_budget() {
        let g = gnm(6, 6, 0);
        let out = random_baseline(&g, Pool::All, 100, 3, 1);
        assert!(out.anchors.len() <= 6);
    }
}
