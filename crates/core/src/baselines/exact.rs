//! `Exact`: exhaustive optimal anchor selection.
//!
//! Enumerates every `b`-subset of edges, evaluates `TG(A, G)` by anchored
//! decomposition, and returns the best. The problem is non-submodular
//! (Theorem 2), so no pruning of zero-singleton-gain edges is sound — two
//! individually useless anchors can combine for positive gain. Complexity
//! is `O(C(m, b) · m^{1.5})`; the paper (and our Exp-2) applies it to ego
//! subgraphs of 150–250 edges with `b ≤ 3`.

use antruss_graph::{CsrGraph, EdgeId, EdgeSet};
use antruss_truss::decompose;

use crate::problem::gain_of_anchor_set;

/// Result of the exhaustive search.
#[derive(Debug, Clone)]
pub struct ExactOutcome {
    /// An optimal anchor set (lexicographically first among ties).
    pub anchors: Vec<EdgeId>,
    /// Its trussness gain.
    pub gain: u64,
    /// Number of candidate sets evaluated.
    pub evaluated: u64,
}

/// Exhaustively finds an optimal anchor set of size `b`.
///
/// Returns `None` if `b > m`. `max_sets` caps the enumeration as a safety
/// valve (`None` = unbounded); when the cap is hit the best set found so
/// far is returned with `evaluated` equal to the cap.
pub fn exact(g: &CsrGraph, b: usize, max_sets: Option<u64>) -> Option<ExactOutcome> {
    let m = g.num_edges();
    if b > m {
        return None;
    }
    let base = decompose(g).trussness;
    let mut combo: Vec<u32> = (0..b as u32).collect();
    let mut best_gain = 0u64;
    let mut best: Vec<EdgeId> = combo.iter().map(|&i| EdgeId(i)).collect();
    let mut evaluated = 0u64;
    let mut anchors = EdgeSet::new(m);

    loop {
        anchors.clear();
        for &i in &combo {
            anchors.insert(EdgeId(i));
        }
        let gain = gain_of_anchor_set(g, &base, &anchors);
        evaluated += 1;
        if gain > best_gain {
            best_gain = gain;
            best = combo.iter().map(|&i| EdgeId(i)).collect();
        }
        if max_sets.is_some_and(|cap| evaluated >= cap) {
            break;
        }
        // next combination in lexicographic order
        let mut i = b;
        loop {
            if i == 0 {
                return Some(ExactOutcome {
                    anchors: best,
                    gain: best_gain,
                    evaluated,
                });
            }
            i -= 1;
            if combo[i] < (m - (b - i)) as u32 {
                combo[i] += 1;
                for j in i + 1..b {
                    combo[j] = combo[j - 1] + 1;
                }
                break;
            }
        }
    }
    Some(ExactOutcome {
        anchors: best,
        gain: best_gain,
        evaluated,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gas, GasConfig};
    use antruss_graph::gen::gnm;
    use antruss_graph::GraphBuilder;

    #[test]
    fn enumerates_all_combinations() {
        let g = gnm(8, 12, 1);
        let out = exact(&g, 2, None).unwrap();
        assert_eq!(out.evaluated, 12 * 11 / 2);
    }

    #[test]
    fn exact_at_least_as_good_as_greedy() {
        for seed in 0..4 {
            let g = gnm(10, 20, seed);
            let ex = exact(&g, 2, None).unwrap();
            let greedy = Gas::new(&g, GasConfig::default()).run(2);
            assert!(
                ex.gain >= greedy.total_gain,
                "seed {seed}: exact {} < greedy {}",
                ex.gain,
                greedy.total_gain
            );
        }
    }

    #[test]
    fn non_submodular_combo_found() {
        // Paper Fig. 1(a) / Theorem 2: two anchors with zero individual
        // gain combine for positive gain. Build the K4 + double-triangle
        // gadget and check Exact finds a strictly positive pair.
        let mut bld = GraphBuilder::dense();
        // 4-truss block: K4 on 0-3
        for &(u, v) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            bld.add_edge(u, v);
        }
        // 3-hull ring around it
        bld.add_edge(3, 4);
        bld.add_edge(2, 4);
        bld.add_edge(4, 5);
        bld.add_edge(3, 5);
        let g = bld.build();
        let single = exact(&g, 1, None).unwrap();
        let pair = exact(&g, 2, None).unwrap();
        assert!(pair.gain >= single.gain);
    }

    #[test]
    fn budget_exceeds_edges() {
        let g = gnm(4, 3, 0);
        assert!(exact(&g, 5, None).is_none());
    }

    #[test]
    fn cap_limits_enumeration() {
        let g = gnm(10, 25, 2);
        let out = exact(&g, 2, Some(10)).unwrap();
        assert_eq!(out.evaluated, 10);
    }
}
