//! `BASE`: the naive greedy (Algorithm 2).
//!
//! Each round evaluates `TG({e}, G_A)` for every candidate by running a
//! *full* anchored truss decomposition — `O(b · m^{2.5})` overall. The
//! paper could only finish it on the smallest dataset (College) within
//! three days; we keep a wall-clock budget so harness runs degrade
//! gracefully instead of hanging.

use std::time::{Duration, Instant};

use antruss_graph::{CsrGraph, EdgeId};
use antruss_truss::{decompose_with, DecomposeOptions, ANCHOR_TRUSSNESS};

use crate::problem::AtrState;

/// Result of a BASE run.
#[derive(Debug, Clone)]
pub struct BaseOutcome {
    /// Selected anchors in order.
    pub anchors: Vec<EdgeId>,
    /// Total trussness gain.
    pub total_gain: u64,
    /// Wall-clock time.
    pub elapsed: Duration,
    /// `true` if the time budget expired before `b` rounds completed.
    pub timed_out: bool,
}

/// Runs the naive greedy for budget `b` with an optional wall-clock cap.
pub fn base_greedy(g: &CsrGraph, b: usize, time_budget: Option<Duration>) -> BaseOutcome {
    let start = Instant::now();
    let mut st = AtrState::new(g);
    let mut anchors = Vec::new();
    let mut timed_out = false;

    'rounds: for _ in 0..b {
        let mut best: Option<(u64, EdgeId)> = None;
        for e in g.edges() {
            if st.is_anchor(e) {
                continue;
            }
            if time_budget.is_some_and(|tb| start.elapsed() > tb) {
                timed_out = true;
                break 'rounds;
            }
            let gain = singleton_gain(&st, e);
            if best.is_none_or(|(bg, be)| gain > bg || (gain == bg && e < be))
                && best.is_none_or(|(bg, _)| gain >= bg)
            {
                best = Some((gain, e));
            }
        }
        let Some((_, chosen)) = best else { break };
        st.anchor_full_refresh(chosen);
        anchors.push(chosen);
    }

    BaseOutcome {
        anchors,
        total_gain: st.total_gain(),
        elapsed: start.elapsed(),
        timed_out,
    }
}

/// `TG({e}, G_A)` by full anchored decomposition (Algorithm 2, line 3).
fn singleton_gain(st: &AtrState<'_>, x: EdgeId) -> u64 {
    let mut anchors = st.anchors.clone();
    anchors.insert(x);
    let info = decompose_with(
        st.graph(),
        DecomposeOptions {
            subset: None,
            anchors: Some(&anchors),
        },
    );
    let mut gain = 0u64;
    for e in st.graph().edges() {
        if anchors.contains(e) {
            continue;
        }
        let before = st.t(e);
        debug_assert_ne!(before, ANCHOR_TRUSSNESS);
        gain += (info.t(e) - before) as u64;
    }
    gain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gas, GasConfig, ReusePolicy};
    use antruss_graph::gen::gnm;

    #[test]
    fn base_matches_base_plus_selections() {
        // BASE and BASE+ optimise the same objective with the same tie
        // break, so their greedy picks must coincide.
        for seed in 0..4 {
            let g = gnm(24, 80, seed);
            let base = base_greedy(&g, 3, None);
            let plus = Gas::new(
                &g,
                GasConfig {
                    reuse: ReusePolicy::Off,
                    ..GasConfig::default()
                },
            )
            .run(3);
            assert_eq!(base.anchors, plus.anchors, "seed {seed}");
            assert_eq!(base.total_gain, plus.total_gain, "seed {seed}");
        }
    }

    #[test]
    fn time_budget_short_circuits() {
        let g = gnm(60, 400, 1);
        let out = base_greedy(&g, 50, Some(Duration::from_millis(1)));
        assert!(out.timed_out);
        assert!(out.anchors.len() < 50);
    }

    #[test]
    fn zero_budget() {
        let g = gnm(10, 20, 0);
        let out = base_greedy(&g, 0, None);
        assert!(out.anchors.is_empty());
        assert_eq!(out.total_gain, 0);
    }
}
