//! `AKT`: anchored k-truss vertex anchoring (Zhang et al., ICDE 2018).
//!
//! The comparator of Exp-4 and Exp-9. For a fixed `k`, AKT picks `b`
//! anchor *vertices*; an edge incident to an anchor vertex survives the
//! k-truss peel as long as it lies in at least one triangle of the current
//! subgraph (that is the Example-1 semantics of the ATR paper: anchoring
//! `v8` keeps `(v3, v8)` and `(v4, v8)` because of `△v3v4v8`). As the ATR
//! paper notes, vertex anchoring can only lift edges of trussness `k − 1`
//! into the `k`-truss, so the trussness gain of an AKT solution is the
//! number of `(k−1)`-hull edges captured by the anchored k-truss.
//!
//! We re-implement the greedy selection (best marginal-follower vertex per
//! round) with a configurable candidate cap; candidates are the endpoints
//! of `(k−1)`-hull edges, ranked by how many such edges they touch.

use antruss_graph::triangles::for_each_triangle_in;
use antruss_graph::{CsrGraph, EdgeId, EdgeSet, FxHashMap, VertexId};

/// Result of an AKT greedy run for one `k`.
#[derive(Debug, Clone)]
pub struct AktOutcome {
    /// Chosen anchor vertices, in selection order.
    pub anchors: Vec<VertexId>,
    /// Cumulative trussness gain after each selection (`gain_curve[i]` is
    /// the gain with budget `i + 1`); empty if no candidate exists.
    pub gain_curve: Vec<u64>,
    /// Final gain (`gain_curve.last()`, 0 if empty).
    pub gain: u64,
}

/// Computes the anchored k-truss edge set for anchor vertices `anchored`.
///
/// Start set: every edge of trussness ≥ `k − 1` plus every edge incident
/// to an anchor. Peel rule: a non-anchor-incident edge needs support
/// ≥ `k − 2`; an anchor-incident edge needs support ≥ 1.
pub fn anchored_k_truss(g: &CsrGraph, t: &[u32], k: u32, anchored: &[bool]) -> EdgeSet {
    let m = g.num_edges();
    let mut live = EdgeSet::new(m);
    let incident = |e: EdgeId| {
        let (u, v) = g.endpoints(e);
        anchored[u.idx()] || anchored[v.idx()]
    };
    for e in g.edges() {
        if t[e.idx()] + 1 >= k || incident(e) {
            live.insert(e);
        }
    }
    // peel to fixpoint
    let mut sup = vec![0u32; m];
    let mut queue: Vec<EdgeId> = Vec::new();
    let mut queued = vec![false; m];
    let threshold = |e: EdgeId| if incident(e) { 1 } else { k.saturating_sub(2) };
    for e in live.iter() {
        let mut s = 0u32;
        for_each_triangle_in(g, &live, e, |_| s += 1);
        sup[e.idx()] = s;
        if s < threshold(e) {
            queue.push(e);
            queued[e.idx()] = true;
        }
    }
    while let Some(e) = queue.pop() {
        if !live.contains(e) {
            continue;
        }
        for_each_triangle_in(g, &live, e, |w| {
            for side in [w.e_uw, w.e_vw] {
                sup[side.idx()] = sup[side.idx()].saturating_sub(1);
                if sup[side.idx()] < threshold(side) && !queued[side.idx()] {
                    queued[side.idx()] = true;
                    queue.push(side);
                }
            }
        });
        live.remove(e);
    }
    live
}

/// Trussness gain of an anchored k-truss: the number of `(k−1)`-hull edges
/// it captures (each gains exactly +1).
pub fn akt_gain(g: &CsrGraph, t: &[u32], k: u32, truss: &EdgeSet) -> u64 {
    g.edges()
        .filter(|&e| t[e.idx()] + 1 == k && truss.contains(e))
        .count() as u64
}

/// Greedy AKT for one `k`: each round adds the vertex with the best
/// marginal gain, evaluating at most `candidate_cap` candidates (endpoints
/// of `(k−1)`-hull edges ranked by incident hull-edge count).
pub fn akt_greedy(g: &CsrGraph, t: &[u32], k: u32, b: usize, candidate_cap: usize) -> AktOutcome {
    // rank candidate vertices by incident (k-1)-hull edges
    let mut incident_count: FxHashMap<u32, u32> = FxHashMap::default();
    for e in g.edges() {
        if t[e.idx()] + 1 == k {
            let (u, v) = g.endpoints(e);
            *incident_count.entry(u.0).or_insert(0) += 1;
            *incident_count.entry(v.0).or_insert(0) += 1;
        }
    }
    let mut candidates: Vec<(u32, u32)> = incident_count.into_iter().collect();
    candidates.sort_unstable_by_key(|&(v, c)| (std::cmp::Reverse(c), v));
    candidates.truncate(candidate_cap);
    let candidates: Vec<VertexId> = candidates.into_iter().map(|(v, _)| VertexId(v)).collect();

    let mut anchored = vec![false; g.num_vertices()];
    let mut anchors = Vec::new();
    let mut gain_curve = Vec::new();
    let mut current_gain = 0u64;

    for _ in 0..b {
        let mut best: Option<(u64, VertexId)> = None;
        for &v in &candidates {
            if anchored[v.idx()] {
                continue;
            }
            anchored[v.idx()] = true;
            let truss = anchored_k_truss(g, t, k, &anchored);
            let gain = akt_gain(g, t, k, &truss);
            anchored[v.idx()] = false;
            if best.is_none_or(|(bg, bv)| gain > bg || (gain == bg && v < bv))
                && best.is_none_or(|(bg, _)| gain >= bg)
            {
                best = Some((gain, v));
            }
        }
        let Some((gain, v)) = best else { break };
        anchored[v.idx()] = true;
        anchors.push(v);
        current_gain = gain;
        gain_curve.push(current_gain);
    }

    AktOutcome {
        anchors,
        gain: current_gain,
        gain_curve,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antruss_graph::gen::gnm;
    use antruss_graph::GraphBuilder;
    use antruss_truss::decompose;

    /// Fig. 1(a) pattern: K4 core with a 3-hull fringe.
    fn fringe_graph() -> CsrGraph {
        let mut b = GraphBuilder::dense();
        for &(u, v) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v);
        }
        // fringe vertex 4 forming a triangle with the core edge (2,3)
        b.add_edge(2, 4);
        b.add_edge(3, 4);
        b.build()
    }

    #[test]
    fn unanchored_k_truss_matches_decomposition() {
        let g = gnm(30, 110, 1);
        let info = decompose(&g);
        let anchored = vec![false; g.num_vertices()];
        for k in 3..=info.k_max {
            let truss = anchored_k_truss(&g, &info.trussness, k, &anchored);
            let expected = antruss_truss::k_truss_edge_set(&info, k);
            assert_eq!(truss.len(), expected.len(), "k={k}");
            for e in expected.iter() {
                assert!(truss.contains(e), "k={k}, missing {e:?}");
            }
        }
    }

    #[test]
    fn anchoring_fringe_vertex_lifts_edges() {
        // Anchoring vertex 4 keeps (2,4) and (3,4) in the 4-truss via
        // △(2,3,4): gain = 2 at k = 4.
        let g = fringe_graph();
        let info = decompose(&g);
        let mut anchored = vec![false; g.num_vertices()];
        anchored[4] = true;
        let truss = anchored_k_truss(&g, &info.trussness, 4, &anchored);
        assert_eq!(akt_gain(&g, &info.trussness, 4, &truss), 2);
    }

    #[test]
    fn greedy_finds_the_fringe_vertex() {
        let g = fringe_graph();
        let info = decompose(&g);
        let out = akt_greedy(&g, &info.trussness, 4, 1, 16);
        assert_eq!(out.anchors, vec![VertexId(4)]);
        assert_eq!(out.gain, 2);
        assert_eq!(out.gain_curve, vec![2]);
    }

    #[test]
    fn gain_curve_is_monotone() {
        let g = gnm(40, 160, 7);
        let info = decompose(&g);
        for k in 3..=info.k_max.min(5) {
            let out = akt_greedy(&g, &info.trussness, k, 4, 16);
            for w in out.gain_curve.windows(2) {
                assert!(w[1] >= w[0], "k={k}: gain curve must be monotone");
            }
        }
    }

    #[test]
    fn no_candidates_for_huge_k() {
        let g = fringe_graph();
        let info = decompose(&g);
        let out = akt_greedy(&g, &info.trussness, 40, 3, 16);
        assert!(out.anchors.is_empty());
        assert_eq!(out.gain, 0);
    }
}
