//! Lazy greedy (CELF-style) — an efficiency extension over the paper.
//!
//! The plain greedy re-scores every candidate each round. CELF-style lazy
//! evaluation keeps the previous round's scores in a max-heap and only
//! re-scores the heap top until the best entry is *fresh* (computed under
//! the current anchor set). For submodular objectives this is exact; the
//! ATR gain function is **not** submodular (Theorem 2), so a candidate's
//! score may *rise* after an anchoring and the lazy pick can miss it —
//! this module is therefore an explicitly *heuristic* accelerator, and
//! `benches/ablation.rs` + the tests below quantify how often it deviates
//! from the exact greedy (rarely: score rises need new triangles around
//! the candidate, which a single anchoring seldom creates at distance).
//!
//! Between rounds the state is refreshed with a full anchored
//! re-decomposition, so scores themselves are exact; only their
//! *staleness* is heuristic.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use antruss_graph::{CsrGraph, EdgeId};

use crate::followers::FollowerSearch;
use crate::problem::AtrState;

/// Result of a lazy greedy run.
#[derive(Debug, Clone)]
pub struct LazyOutcome {
    /// Selected anchors in selection order.
    pub anchors: Vec<EdgeId>,
    /// True cumulative trussness gain (Definition 4) of the final set.
    pub total_gain: u64,
    /// Candidate evaluations per round — the quantity lazy evaluation
    /// saves (the plain greedy evaluates every non-anchor edge).
    pub evaluations_per_round: Vec<usize>,
}

/// Runs the lazy greedy for budget `b`.
///
/// Round 1 scores all candidates (identical to the exact greedy). Later
/// rounds pop the stale maximum, re-score it, and select as soon as the
/// heap top is fresh; ties break toward the smaller edge id, matching the
/// exact greedy's tie-break.
pub fn lazy_greedy(g: &CsrGraph, b: usize) -> LazyOutcome {
    let m = g.num_edges();
    let mut st = AtrState::new(g);
    let mut fs = FollowerSearch::new(m);
    let mut out = LazyOutcome {
        anchors: Vec::with_capacity(b),
        total_gain: 0,
        evaluations_per_round: Vec::with_capacity(b),
    };
    if m == 0 {
        return out;
    }

    // (count, Reverse(edge), round_scored): max-heap picks the highest
    // count first and the smallest edge id among equal counts.
    let mut heap: BinaryHeap<(u32, Reverse<u32>, usize)> = BinaryHeap::new();
    let mut evals = 0usize;
    for e in g.edges() {
        let c = fs.followers(&st, e).followers.len() as u32;
        evals += 1;
        heap.push((c, Reverse(e.0), 1));
    }

    for round in 1..=b {
        let chosen = loop {
            let Some((count, Reverse(eidx), scored)) = heap.pop() else {
                break None;
            };
            let e = EdgeId(eidx);
            if st.is_anchor(e) {
                continue;
            }
            if scored == round {
                break Some((e, count));
            }
            // stale: re-score under the current anchor set and re-insert
            let fresh = fs.followers(&st, e).followers.len() as u32;
            evals += 1;
            heap.push((fresh, Reverse(eidx), round));
        };
        let Some((e, _)) = chosen else { break };
        out.anchors.push(e);
        st.anchor_full_refresh(e);
        out.evaluations_per_round.push(evals);
        evals = 0;
    }
    out.total_gain = st.total_gain();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gas, GasConfig};
    use antruss_graph::gen::{gnm, social_network, SocialParams};

    #[test]
    fn round_one_matches_exact_greedy() {
        // With b = 1 there is no staleness: lazy == exact.
        for seed in 0..5 {
            let g = gnm(30, 100, seed);
            let lazy = lazy_greedy(&g, 1);
            let exact = Gas::new(&g, GasConfig::default()).run(1);
            assert_eq!(lazy.anchors, exact.anchors, "seed {seed}");
            assert_eq!(lazy.total_gain, exact.total_gain, "seed {seed}");
        }
    }

    #[test]
    fn lazy_saves_evaluations_on_later_rounds() {
        let g = social_network(&SocialParams {
            n: 150,
            target_edges: 650,
            attach: 4,
            closure: 0.6,
            planted: vec![6],
            onions: vec![],
            seed: 8,
        });
        let lazy = lazy_greedy(&g, 4);
        assert_eq!(lazy.evaluations_per_round.len(), lazy.anchors.len());
        let m = g.num_edges();
        assert_eq!(lazy.evaluations_per_round[0], m, "round 1 scores all");
        for (i, &e) in lazy.evaluations_per_round.iter().enumerate().skip(1) {
            assert!(
                e < m / 2,
                "round {}: lazy should re-score a small fraction, got {e}/{m}",
                i + 1
            );
        }
    }

    #[test]
    fn lazy_gain_close_to_exact_greedy() {
        // Non-submodularity can cost the lazy variant a little quality;
        // empirically it stays within a small factor on social-like
        // graphs. Pin a generous floor so regressions surface.
        for seed in 0..4 {
            let g = gnm(35, 140, seed + 50);
            let b = 4;
            let lazy = lazy_greedy(&g, b);
            let exact = Gas::new(&g, GasConfig::default()).run(b);
            assert!(
                10 * lazy.total_gain >= 7 * exact.total_gain,
                "seed {seed}: lazy {} vs exact {}",
                lazy.total_gain,
                exact.total_gain
            );
        }
    }

    #[test]
    fn empty_graph() {
        let g = antruss_graph::GraphBuilder::new().build();
        let out = lazy_greedy(&g, 3);
        assert!(out.anchors.is_empty());
        assert_eq!(out.total_gain, 0);
    }

    #[test]
    fn budget_exceeding_edges_stops() {
        let g = antruss_graph::gen::clique(3);
        let out = lazy_greedy(&g, 10);
        assert!(out.anchors.len() <= 3);
    }
}
