//! Edge-deletion comparator (case study, Exp-4 / Fig. 7).
//!
//! Selects as anchors the edges whose *removal* would reduce global
//! trussness the most — the natural "critical edge" heuristic the paper
//! contrasts GAS with. As the paper observes, such edges sit high in the
//! truss hierarchy, and anchoring them only helps even-higher-trussness
//! edges, so their anchoring gain is poor despite their criticality.

use antruss_graph::{CsrGraph, EdgeId, EdgeSet};
use antruss_truss::{decompose, decompose_with, DecomposeOptions};

use crate::problem::gain_of_anchor_set;

/// Result of the edge-deletion selection.
#[derive(Debug, Clone)]
pub struct EdgeDeletionOutcome {
    /// Chosen anchors (most deletion-critical first).
    pub anchors: Vec<EdgeId>,
    /// Trussness gain of anchoring them (computed exactly).
    pub gain: u64,
    /// `(edge, trussness loss if deleted)` for every evaluated candidate,
    /// sorted by loss descending.
    pub criticality: Vec<(EdgeId, u64)>,
}

/// Trussness loss caused by deleting `e`:
/// `Σ_{f ≠ e} (t(f) − t_{G∖e}(f)) + t(e)` (the deleted edge's own
/// trussness counts as lost structure).
pub fn deletion_impact(g: &CsrGraph, base: &[u32], e: EdgeId) -> u64 {
    let mut subset = EdgeSet::full(g.num_edges());
    subset.remove(e);
    let info = decompose_with(
        g,
        DecomposeOptions {
            subset: Some(&subset),
            anchors: None,
        },
    );
    let mut loss = base[e.idx()] as u64;
    for f in g.edges() {
        if f == e {
            continue;
        }
        debug_assert!(info.t(f) <= base[f.idx()]);
        loss += (base[f.idx()] - info.t(f)) as u64;
    }
    loss
}

/// Picks the `b` most deletion-critical edges among the top
/// `candidate_cap` candidates (ranked by trussness, then support) and
/// reports the gain of anchoring them.
pub fn edge_deletion_anchors(g: &CsrGraph, b: usize, candidate_cap: usize) -> EdgeDeletionOutcome {
    let base = decompose(g).trussness;
    let sup = antruss_graph::triangles::support(g, None);
    let mut candidates: Vec<EdgeId> = g.edges().collect();
    candidates.sort_unstable_by_key(|e| {
        (
            std::cmp::Reverse(base[e.idx()]),
            std::cmp::Reverse(sup[e.idx()]),
            e.0,
        )
    });
    candidates.truncate(candidate_cap.max(b));

    let mut criticality: Vec<(EdgeId, u64)> = candidates
        .into_iter()
        .map(|e| (e, deletion_impact(g, &base, e)))
        .collect();
    criticality.sort_unstable_by_key(|&(e, loss)| (std::cmp::Reverse(loss), e.0));

    let anchors: Vec<EdgeId> = criticality.iter().take(b).map(|&(e, _)| e).collect();
    let set = EdgeSet::from_iter(g.num_edges(), anchors.iter().copied());
    let gain = gain_of_anchor_set(g, &base, &set);
    EdgeDeletionOutcome {
        anchors,
        gain,
        criticality,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antruss_graph::gen::{gnm, planted_cliques};
    use antruss_graph::GraphBuilder;

    #[test]
    fn deleting_clique_edge_collapses_trussness() {
        // K4: deleting any edge drops the remaining 5 edges from t=4 to
        // t=3 and loses the edge's own t=4: loss = 5 + 4 = 9.
        let g = planted_cliques(&[4]);
        let base = decompose(&g).trussness;
        assert_eq!(deletion_impact(&g, &base, EdgeId(0)), 9);
    }

    #[test]
    fn bridge_deletion_is_cheap() {
        let mut b = GraphBuilder::dense();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(0, 2);
        b.add_edge(2, 3); // bridge, t=2
        let g = b.build();
        let base = decompose(&g).trussness;
        let bridge = g
            .edge_between(antruss_graph::VertexId(2), antruss_graph::VertexId(3))
            .unwrap();
        assert_eq!(deletion_impact(&g, &base, bridge), 2);
    }

    #[test]
    fn selection_is_by_descending_criticality() {
        let g = gnm(25, 90, 3);
        let out = edge_deletion_anchors(&g, 3, 20);
        assert_eq!(out.anchors.len(), 3);
        for w in out.criticality.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn gain_is_consistent_with_exact_evaluation() {
        let g = gnm(20, 70, 5);
        let out = edge_deletion_anchors(&g, 2, 10);
        let base = decompose(&g).trussness;
        let set = EdgeSet::from_iter(g.num_edges(), out.anchors.iter().copied());
        assert_eq!(out.gain, gain_of_anchor_set(&g, &base, &set));
    }
}
