//! Upward-route size measurement (Exp-7 / Table IV).
//!
//! The *route size* of an edge `x` is the number of candidate edges the
//! follower search examines when `x` is anchored — the quantity Table IV
//! aggregates to show that upward routes touch only a vanishing fraction of
//! the graph. The same sizes drive the `Tur` baseline's candidate pool.

use antruss_graph::EdgeId;

use crate::followers::FollowerSearch;
use crate::problem::AtrState;

/// Candidate followers of `x` per Lemma 2 alone — the upward-route sweep
/// **without** the effective-triangle support check. This is the ablation
/// of Lemma 3: the result is a superset of the true follower set whose
/// size gap quantifies how much pruning the support check provides.
pub fn route_only_candidates(st: &AtrState<'_>, x: EdgeId) -> Vec<EdgeId> {
    use antruss_graph::triangles::for_each_triangle;
    let g = st.graph();
    let (tx, lx) = (st.t(x), st.l(x));
    let mut seen = vec![false; g.num_edges()];
    let mut stack: Vec<EdgeId> = Vec::new();
    // Lemma 2(i) seeds
    for_each_triangle(g, x, |w| {
        for p in [w.e_uw, w.e_vw] {
            if st.is_anchor(p) || seen[p.idx()] {
                continue;
            }
            let (tp, lp) = (st.t(p), st.l(p));
            if tp > tx || (tp == tx && lp > lx) {
                seen[p.idx()] = true;
                stack.push(p);
            }
        }
    });
    // Lemma 2(ii): same-trussness, layer-monotone expansion
    let mut out = Vec::new();
    while let Some(e) = stack.pop() {
        out.push(e);
        let (te, le) = (st.t(e), st.l(e));
        for_each_triangle(g, e, |w| {
            for p in [w.e_uw, w.e_vw] {
                if p == x || st.is_anchor(p) || seen[p.idx()] {
                    continue;
                }
                if st.t(p) == te && le <= st.l(p) {
                    seen[p.idx()] = true;
                    stack.push(p);
                }
            }
        });
    }
    out.sort_unstable();
    out
}

/// Aggregate route-size statistics (one row of Table IV).
#[derive(Debug, Clone, PartialEq)]
pub struct RouteStats {
    /// Smallest route.
    pub min: usize,
    /// Largest route.
    pub max: usize,
    /// Total size over all edges ("Sum size").
    pub sum: u64,
    /// `sum / m` ("Average size").
    pub avg: f64,
}

/// Route size of every edge in the current state (first-round semantics).
pub fn route_sizes(st: &AtrState<'_>) -> Vec<usize> {
    let m = st.graph().num_edges();
    let mut search = FollowerSearch::new(m);
    let mut sizes = vec![0usize; m];
    for e in st.graph().edges() {
        if st.is_anchor(e) {
            continue;
        }
        sizes[e.idx()] = search.followers(st, e).route_size;
    }
    sizes
}

/// Aggregates per-edge sizes into Table-IV statistics.
pub fn route_stats(sizes: &[usize]) -> RouteStats {
    if sizes.is_empty() {
        return RouteStats {
            min: 0,
            max: 0,
            sum: 0,
            avg: 0.0,
        };
    }
    let sum: u64 = sizes.iter().map(|&s| s as u64).sum();
    RouteStats {
        min: sizes.iter().copied().min().unwrap_or(0),
        max: sizes.iter().copied().max().unwrap_or(0),
        sum,
        avg: sum as f64 / sizes.len() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antruss_graph::gen::{gnm, planted_cliques};

    #[test]
    fn clique_routes_are_zero() {
        // In a single clique every edge has the same trussness and the
        // same (single) peel layer; no neighbour satisfies Lemma 2(i)'s
        // strict layer condition, so routes are empty.
        let g = planted_cliques(&[6]);
        let st = AtrState::new(&g);
        let sizes = route_sizes(&st);
        assert!(sizes.iter().all(|&s| s == 0), "{sizes:?}");
        let stats = route_stats(&sizes);
        assert_eq!(stats.sum, 0);
        assert_eq!(stats.max, 0);
    }

    #[test]
    fn random_graph_routes_bounded_by_m() {
        let g = gnm(40, 150, 3);
        let st = AtrState::new(&g);
        let sizes = route_sizes(&st);
        assert_eq!(sizes.len(), g.num_edges());
        for &s in &sizes {
            assert!(s <= g.num_edges());
        }
        let stats = route_stats(&sizes);
        assert!(stats.min <= stats.max);
        assert!((stats.avg - stats.sum as f64 / sizes.len() as f64).abs() < 1e-12);
    }

    #[test]
    fn empty_input() {
        let stats = route_stats(&[]);
        assert_eq!(stats.sum, 0);
        assert_eq!(stats.avg, 0.0);
    }

    #[test]
    fn route_only_candidates_superset_of_followers() {
        use crate::followers::FollowerSearch;
        let g = gnm(35, 130, 11);
        let st = AtrState::new(&g);
        let mut fs = FollowerSearch::new(g.num_edges());
        for x in g.edges() {
            let candidates = route_only_candidates(&st, x);
            let mut followers = fs.followers(&st, x).followers;
            followers.sort();
            for f in &followers {
                assert!(
                    candidates.binary_search(f).is_ok(),
                    "follower {f:?} of {x:?} missing from Lemma-2 candidates"
                );
            }
        }
    }

    #[test]
    fn support_check_prunes_something() {
        // on a random graph the Lemma-2 candidate set is strictly larger
        // than the confirmed follower set for at least some anchor
        use crate::followers::FollowerSearch;
        let g = gnm(35, 130, 13);
        let st = AtrState::new(&g);
        let mut fs = FollowerSearch::new(g.num_edges());
        let pruned_somewhere = g
            .edges()
            .any(|x| route_only_candidates(&st, x).len() > fs.followers(&st, x).followers.len());
        assert!(pruned_somewhere, "Lemma 3 should prune on random graphs");
    }
}
