//! Interactive what-if analysis: per-edge gain queries, top-k candidate
//! ranking, and incremental commits.
//!
//! [`Gas`](crate::Gas) answers one question — "run the greedy for `b`
//! rounds" — as a batch. Downstream users (the paper's social-network and
//! transportation scenarios) more often ask *interactive* questions:
//! which relationships are worth reinforcing, what would reinforcing
//! *this particular* edge buy, how do the top candidates compare. This
//! module packages the same machinery (state + upward-route search) as a
//! query service:
//!
//! * [`WhatIf::gain_of`] — exact trussness gain of anchoring one edge
//!   under the current anchor set (one follower search, `O(route·d_max)`);
//! * [`WhatIf::top`] — the `k` best candidates right now (one scan,
//!   optionally threaded);
//! * [`WhatIf::commit`] — actually anchor an edge and refresh the state.
//!
//! Commits refresh by full anchored re-decomposition: in a what-if
//! workflow queries dominate commits, and the simple refresh keeps every
//! subsequent answer trivially exact. Batch users should prefer
//! [`Gas`](crate::Gas), which amortizes refreshes with the component tree.

use antruss_graph::{CsrGraph, EdgeId};

use crate::engine::{Outcome, RunConfig, SolveError, Solver};
use crate::followers::FollowerSearch;
use crate::parallel::scan_map;
use crate::problem::AtrState;

/// An interactive ATR query session over one graph.
///
/// ```
/// use antruss_core::WhatIf;
/// use antruss_graph::gen::gnm;
///
/// let g = gnm(30, 110, 7);
/// let mut session = WhatIf::new(&g);
/// let ranked = session.top(3);
/// if let Some(&(best, predicted)) = ranked.first() {
///     let realized = session.commit(best).unwrap();
///     assert_eq!(predicted, realized); // round-1 predictions are exact
///     assert_eq!(session.total_gain(), realized);
/// }
/// ```
pub struct WhatIf<'g> {
    st: AtrState<'g>,
    search: FollowerSearch,
    /// Worker threads for [`WhatIf::top`] scans (`0`/`1` = serial).
    pub threads: usize,
}

impl<'g> WhatIf<'g> {
    /// Decomposes the graph and opens a session with no anchors.
    pub fn new(g: &'g CsrGraph) -> Self {
        WhatIf {
            st: AtrState::new(g),
            search: FollowerSearch::new(g.num_edges()),
            threads: 1,
        }
    }

    /// Read access to the current state (trussness, layers, anchors).
    pub fn state(&self) -> &AtrState<'g> {
        &self.st
    }

    /// Exact trussness gain of anchoring `e` on top of the current anchor
    /// set (Lemma 1: the follower count). Returns `None` if `e` is
    /// already anchored.
    pub fn gain_of(&mut self, e: EdgeId) -> Option<u64> {
        if self.st.is_anchor(e) {
            return None;
        }
        Some(self.search.followers(&self.st, e).followers.len() as u64)
    }

    /// The follower edges anchoring `e` would elevate (each by exactly
    /// +1), sorted by edge id. `None` if `e` is already anchored.
    pub fn followers_of(&mut self, e: EdgeId) -> Option<Vec<EdgeId>> {
        if self.st.is_anchor(e) {
            return None;
        }
        let mut f = self.search.followers(&self.st, e).followers;
        f.sort();
        Some(f)
    }

    /// The `k` best candidate anchors under the current state, sorted by
    /// descending gain (ties toward the smaller edge id). Scans every
    /// non-anchored edge; set [`WhatIf::threads`] to fan the scan out.
    pub fn top(&mut self, k: usize) -> Vec<(EdgeId, u64)> {
        let g = self.st.graph();
        let candidates: Vec<EdgeId> = g.edges().filter(|&e| !self.st.is_anchor(e)).collect();
        let st = &self.st;
        let counts = scan_map(st, &candidates, self.threads, |fs, e| {
            fs.followers(st, e).followers.len() as u64
        });
        let mut ranked: Vec<(EdgeId, u64)> = candidates.into_iter().zip(counts).collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        ranked.truncate(k);
        ranked
    }

    /// Anchors `e` and refreshes the state. Returns the realized gain
    /// (the follower count at commit time), or `None` if `e` was already
    /// anchored.
    pub fn commit(&mut self, e: EdgeId) -> Option<u64> {
        let gain = self.gain_of(e)?;
        self.st.anchor_full_refresh(e);
        Some(gain)
    }

    /// Plans with any [`Solver`] from the engine and commits its anchors
    /// into this session.
    ///
    /// The solver runs against the session's *underlying graph* (solvers
    /// are stateless and always start from an empty anchor set); every
    /// edge anchor it returns that is not yet committed here is then
    /// committed in selection order. Vertex-anchoring solvers (`akt`)
    /// are rejected with [`SolveError::Unsupported`], since a what-if
    /// session tracks edge anchors only.
    ///
    /// Returns the solver's [`Outcome`]; the session's
    /// [`total_gain`](WhatIf::total_gain) reflects the combined anchor
    /// set afterwards.
    pub fn commit_solver(
        &mut self,
        solver: &dyn Solver,
        cfg: &RunConfig,
    ) -> Result<Outcome, SolveError> {
        let outcome = solver.run(self.st.graph(), cfg)?;
        let edges: Vec<EdgeId> = outcome
            .anchors
            .iter()
            .map(|a| {
                a.edge().ok_or_else(|| {
                    SolveError::Unsupported(format!(
                        "solver {:?} returned vertex anchors; a what-if session commits edges",
                        outcome.solver
                    ))
                })
            })
            .collect::<Result<_, _>>()?;
        for e in edges {
            if !self.st.is_anchor(e) {
                self.st.anchor_full_refresh(e);
            }
        }
        Ok(outcome)
    }

    /// Total trussness gain of everything committed so far (Definition 4).
    pub fn total_gain(&self) -> u64 {
        self.st.total_gain()
    }

    /// Number of committed anchors.
    pub fn committed(&self) -> usize {
        self.st.anchors.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gas, GasConfig};
    use antruss_graph::gen::{gnm, social_network, SocialParams};

    #[test]
    fn committing_the_top_candidate_matches_gas() {
        let g = gnm(30, 110, 21);
        let gas = Gas::new(&g, GasConfig::default()).run(3);
        let mut w = WhatIf::new(&g);
        for _ in 0..3 {
            let top = w.top(1);
            let Some(&(e, _)) = top.first() else { break };
            w.commit(e);
        }
        assert_eq!(
            w.state().anchors.iter().collect::<Vec<_>>(),
            {
                let mut a = gas.anchors.clone();
                a.sort();
                a
            },
            "what-if greedy must retrace GAS"
        );
        assert_eq!(w.total_gain(), gas.total_gain);
    }

    #[test]
    fn gain_of_matches_committed_gain_in_round_one() {
        let g = gnm(25, 80, 5);
        let mut w = WhatIf::new(&g);
        let predictions: Vec<(EdgeId, u64)> =
            g.edges().map(|e| (e, w.gain_of(e).unwrap())).collect();
        for (e, predicted) in predictions.into_iter().take(10) {
            let mut session = WhatIf::new(&g);
            let realized = session.commit(e).unwrap();
            assert_eq!(predicted, realized, "edge {e:?}");
            assert_eq!(session.total_gain(), realized, "first commit is pure");
        }
    }

    #[test]
    fn top_respects_k_and_ordering() {
        let g = social_network(&SocialParams {
            n: 120,
            target_edges: 480,
            attach: 4,
            closure: 0.6,
            planted: vec![6],
            onions: vec![],
            seed: 13,
        });
        let mut w = WhatIf::new(&g);
        let top5 = w.top(5);
        assert!(top5.len() <= 5);
        for pair in top5.windows(2) {
            assert!(
                pair[0].1 > pair[1].1 || (pair[0].1 == pair[1].1 && pair[0].0 < pair[1].0),
                "descending gain, ascending id on ties"
            );
        }
        // threading must not change the ranking
        w.threads = 4;
        assert_eq!(top5, w.top(5));
    }

    #[test]
    fn anchored_edge_is_not_queryable() {
        let g = gnm(15, 40, 1);
        let mut w = WhatIf::new(&g);
        let e = EdgeId(0);
        assert!(w.gain_of(e).is_some());
        w.commit(e);
        assert_eq!(w.gain_of(e), None);
        assert_eq!(w.followers_of(e), None);
        assert_eq!(w.commit(e), None);
        assert_eq!(w.committed(), 1);
    }

    #[test]
    fn commit_solver_matches_manual_gas_retrace() {
        use crate::engine::{registry, RunConfig};

        let g = gnm(30, 110, 21);
        let mut via_solver = WhatIf::new(&g);
        let out = via_solver
            .commit_solver(registry().get("gas").unwrap(), &RunConfig::new(3))
            .unwrap();
        assert_eq!(via_solver.committed(), out.anchors.len());
        assert_eq!(via_solver.total_gain(), out.total_gain);

        // vertex-anchoring solvers are rejected, session untouched
        let mut vertex = WhatIf::new(&g);
        let err = vertex.commit_solver(registry().get("akt").unwrap(), &RunConfig::new(2));
        if let Err(e) = err {
            assert!(e.to_string().contains("unsupported"), "{e}");
            assert_eq!(vertex.committed(), 0);
        } else {
            panic!("akt must be rejected by commit_solver");
        }
    }

    #[test]
    fn followers_of_matches_gain() {
        let g = gnm(20, 70, 9);
        let mut w = WhatIf::new(&g);
        for e in g.edges().take(15) {
            let f = w.followers_of(e).unwrap();
            assert_eq!(f.len() as u64, w.gain_of(e).unwrap());
        }
    }
}
