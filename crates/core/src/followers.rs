//! `GetFollowers` — Algorithm 3 of the paper.
//!
//! Computing the trussness gain of anchoring one edge `x` reduces to
//! counting its *followers* `F(x, G) = {e : t_{A∪{x}}(e) > t_A(e)}`
//! (Lemma 1: each gain is exactly +1). Instead of re-decomposing the graph,
//! the search:
//!
//! 1. seeds with the neighbour-edges of `x` satisfying Lemma 2(i)
//!    (`t(e) > t(x)`, or `t(e) = t(x) ∧ l(e) > l(x)`),
//! 2. explores **upward routes** (Definition 7) level by level with a
//!    min-heap keyed by peel layer — the heap is *monotone* because a
//!    pushed edge never precedes its pusher,
//! 3. checks each candidate against the **effective triangle** bound
//!    `s⁺(e)` (Definition 8) — an optimistic count whose later corrections
//!    are propagated by the **retract** cascade (Lemma 3),
//! 4. collects survivors per level.
//!
//! At termination every survivor's `s⁺` only counts triangles whose
//! partners are higher-trussness edges, anchors or fellow survivors, so the
//! survivor set is self-consistent and — by maximality of the k-truss —
//! exactly the follower set. This is differential-tested against the naive
//! anchored re-decomposition in this module and in `tests/`.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use antruss_graph::triangles::for_each_triangle;
use antruss_graph::{EdgeId, FxHashMap};

use crate::problem::AtrState;

/// Result of a follower search for one candidate anchor.
#[derive(Debug, Clone, Default)]
pub struct FollowerOutcome {
    /// The followers of the anchor, ascending by edge id within each level.
    pub followers: Vec<EdgeId>,
    /// Number of candidate edges examined (popped and support-checked) —
    /// the paper's *upward-route size* (Table IV).
    pub route_size: usize,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Status {
    Unchecked,
    Survived,
    Eliminated,
}

/// Reusable scratch state for follower searches over one graph.
///
/// All arrays are sized once (`O(m)`) and reset lazily via epoch stamps, so
/// a search costs `O(|route| · d_max)` regardless of graph size — the bound
/// the paper proves for Algorithm 3.
pub struct FollowerSearch {
    status: Vec<Status>,
    status_epoch: Vec<u32>,
    s_plus: Vec<u32>,
    in_heap_epoch: Vec<u32>,
    /// Mark order of eliminations: when both partners of a counted triangle
    /// end up eliminated, the first-marked one owns the single decrement.
    elim_seq: Vec<u64>,
    seq_counter: u64,
    epoch: u32,
    heap: BinaryHeap<Reverse<(u32, u32)>>,
    retract_stack: Vec<(EdgeId, Status)>,
}

impl FollowerSearch {
    /// Scratch for a graph with `m` edges.
    pub fn new(m: usize) -> Self {
        FollowerSearch {
            status: vec![Status::Unchecked; m],
            status_epoch: vec![0; m],
            s_plus: vec![0; m],
            in_heap_epoch: vec![0; m],
            elim_seq: vec![0; m],
            seq_counter: 0,
            epoch: 0,
            heap: BinaryHeap::new(),
            retract_stack: Vec::new(),
        }
    }

    #[inline]
    fn status(&self, e: EdgeId) -> Status {
        if self.status_epoch[e.idx()] == self.epoch {
            self.status[e.idx()]
        } else {
            Status::Unchecked
        }
    }

    #[inline]
    fn set_status(&mut self, e: EdgeId, s: Status) {
        self.status[e.idx()] = s;
        self.status_epoch[e.idx()] = self.epoch;
    }

    /// Marks `e` eliminated, stamping the mark order for the retract
    /// cascade's triangle-ownership rule.
    #[inline]
    fn eliminate(&mut self, e: EdgeId) {
        self.seq_counter += 1;
        self.elim_seq[e.idx()] = self.seq_counter;
        self.set_status(e, Status::Eliminated);
    }

    /// Followers of candidate anchor `x` under the current state
    /// (Algorithm 3). `seed_filter`, when given, keeps only seeds for which
    /// it returns `true` — the hook the GAS tree-reuse uses to restrict the
    /// search to invalidated tree nodes (Algorithm 6, line 8).
    pub fn followers(&mut self, st: &AtrState<'_>, x: EdgeId) -> FollowerOutcome {
        self.followers_filtered(st, x, |_| true)
    }

    /// See [`FollowerSearch::followers`].
    pub fn followers_filtered<F: Fn(EdgeId) -> bool>(
        &mut self,
        st: &AtrState<'_>,
        x: EdgeId,
        seed_filter: F,
    ) -> FollowerOutcome {
        debug_assert!(!st.is_anchor(x), "candidate {x:?} is already anchored");
        let g = st.graph();
        let (tx, lx) = (st.t(x), st.l(x));

        // --- Lemma 2(i): collect seeds among the neighbour-edges of x ----
        // seeds_by_level: level -> Vec<(layer, edge)>; duplicates are fine,
        // the per-level heap dedups on push.
        let mut seeds: FxHashMap<u32, Vec<(u32, u32)>> = FxHashMap::default();
        for_each_triangle(g, x, |w| {
            for p in [w.e_uw, w.e_vw] {
                if st.is_anchor(p) {
                    continue;
                }
                let (tp, lp) = (st.t(p), st.l(p));
                let qualifies = tp > tx || (tp == tx && lp > lx);
                if qualifies && seed_filter(p) {
                    seeds.entry(tp).or_default().push((lp, p.0));
                }
            }
        });

        let mut levels: Vec<u32> = seeds.keys().copied().collect();
        levels.sort_unstable();

        let mut out = FollowerOutcome::default();
        for i in levels {
            let seed_list = seeds.remove(&i).expect("level present");
            self.run_level(st, x, i, seed_list, &mut out);
        }
        out
    }

    /// Processes one trussness level `i`: lines 5–17 of Algorithm 3.
    fn run_level(
        &mut self,
        st: &AtrState<'_>,
        x: EdgeId,
        i: u32,
        seeds: Vec<(u32, u32)>,
        out: &mut FollowerOutcome,
    ) {
        // Fresh survived/eliminated bookkeeping for this level (line 6: all
        // lower-trussness edges are statically eliminated via `t < i`).
        self.epoch += 1;
        self.heap.clear();
        for (lay, e) in seeds {
            if self.in_heap_epoch[e as usize] != self.epoch {
                self.in_heap_epoch[e as usize] = self.epoch;
                self.heap.push(Reverse((lay, e)));
            }
        }
        let first_survivor = out.followers.len();

        while let Some(Reverse((_, eidx))) = self.heap.pop() {
            let e = EdgeId(eidx);
            if self.status(e) != Status::Unchecked {
                continue;
            }
            out.route_size += 1;
            // ---- support check: s+(e) over effective triangles ----------
            let s_plus = self.count_effective(st, x, e, i);
            if s_plus + 1 >= i {
                // s+(e) ≥ t(e) − 1 = i − 1: survived (lines 10–14)
                self.set_status(e, Status::Survived);
                self.s_plus[e.idx()] = s_plus;
                out.followers.push(e);
                // push same-level neighbour-edges e ≺ e′ onto the route
                let g = st.graph();
                let le = st.l(e);
                let epoch = self.epoch;
                let heap = &mut self.heap;
                let in_heap = &mut self.in_heap_epoch;
                for_each_triangle(g, e, |w| {
                    for p in [w.e_uw, w.e_vw] {
                        if st.is_anchor(p) || p == x {
                            continue;
                        }
                        // `in_heap` stays stamped after a pop, so checked
                        // edges are never re-pushed.
                        if st.t(p) == i && le <= st.l(p) && in_heap[p.idx()] != epoch {
                            in_heap[p.idx()] = epoch;
                            heap.push(Reverse((st.l(p), p.0)));
                        }
                    }
                });
            } else {
                // eliminated (lines 15–17)
                self.eliminate(e);
                self.retract(st, x, e, Status::Unchecked, i);
            }
        }

        // Drop survivors that were retracted: `retract` rewrites their
        // status, so filter the tail of the follower list by status.
        let epoch = self.epoch;
        let status = &self.status;
        let status_epoch = &self.status_epoch;
        out.followers.retain_from(first_survivor, |e: &EdgeId| {
            status_epoch[e.idx()] == epoch && status[e.idx()] == Status::Survived
        });
    }

    /// Number of effective triangles of `e` at level `i` (Definition 8).
    fn count_effective(&self, st: &AtrState<'_>, x: EdgeId, e: EdgeId, i: u32) -> u32 {
        let g = st.graph();
        let le = st.l(e);
        let mut cnt = 0u32;
        for_each_triangle(g, e, |w| {
            if self.partner_ok(st, x, le, w.e_uw, i) && self.partner_ok(st, x, le, w.e_vw, i) {
                cnt += 1;
            }
        });
        cnt
    }

    /// Definition 8 conditions for one triangle partner `p` of `e`:
    /// `p` not eliminated, and (`e ≺ p` or `p` survived).
    #[inline]
    fn partner_ok(&self, st: &AtrState<'_>, x: EdgeId, le: u32, p: EdgeId, i: u32) -> bool {
        if st.is_anchor(p) || p == x {
            // anchors (and the candidate itself) are permanently survived
            return true;
        }
        let tp = st.t(p);
        if tp < i {
            return false; // statically eliminated at this level
        }
        match self.status(p) {
            Status::Eliminated => false,
            Status::Survived => true,
            Status::Unchecked => tp > i || le <= st.l(p), // e ≺ p
        }
    }

    /// Retract cascade (Algorithm 3, lines 20–26): `e` just flipped to
    /// `Eliminated` from `prior`; decrement `s⁺` of survived neighbours for
    /// every triangle that was effective for them, cascading eliminations.
    ///
    /// Exactness argument: a counted triangle `(p, f, third)` must be
    /// subtracted from `s⁺(p)` exactly once over the whole level run.
    /// - `f`'s side is checked against its **pre-flip** status: the heap
    ///   pops in non-decreasing layer order, so "`p ≺ f` statically or `f`
    ///   was survived" is equivalent to "`p` counted `f` at its own pop".
    /// - `third`'s side decides *which* partner's flip owns the decrement.
    ///   If `third` is alive (survived / statically-preceding unchecked /
    ///   anchor / the candidate itself), `f`'s flip is the first break.
    ///   If both partners end up eliminated, the **first-marked** one owns
    ///   it — comparing mark stamps avoids the symmetric double-skip where
    ///   each retraction assumes the other already subtracted the triangle.
    fn retract(&mut self, st: &AtrState<'_>, x: EdgeId, e: EdgeId, prior: Status, i: u32) {
        self.retract_stack.clear();
        self.retract_stack.push((e, prior));
        while let Some((f, f_prior)) = self.retract_stack.pop() {
            let g = st.graph();
            debug_assert_eq!(st.t(f), i, "only level-i edges are ever flipped");
            let f_seq = self.elim_seq[f.idx()];
            // Collect decrements first to keep the borrow checker happy.
            let mut hits: Vec<EdgeId> = Vec::new();
            for_each_triangle(g, f, |w| {
                for (p, third) in [(w.e_uw, w.e_vw), (w.e_vw, w.e_uw)] {
                    if st.is_anchor(p) || p == x || st.t(p) != i {
                        continue;
                    }
                    if self.status(p) != Status::Survived {
                        continue;
                    }
                    // Was this triangle counted in s+(p)? Evaluate with f's
                    // *pre-flip* status (Definition 8, partner f):
                    let lp = st.l(p);
                    let f_counted = f_prior == Status::Survived || lp <= st.l(f);
                    if !f_counted {
                        continue;
                    }
                    // Decide whether f's flip owns the single decrement of
                    // this triangle (see the doc comment above).
                    let owns = if st.is_anchor(third) || third == x {
                        true
                    } else if st.t(third) < i {
                        false // statically dead partner: never counted
                    } else {
                        match self.status(third) {
                            Status::Survived => true,
                            Status::Unchecked => st.t(third) > i || lp <= st.l(third),
                            Status::Eliminated => f_seq < self.elim_seq[third.idx()],
                        }
                    };
                    if owns {
                        hits.push(p);
                    }
                }
            });
            for p in hits {
                // p may have been eliminated by an earlier hit this round
                if self.status(p) != Status::Survived {
                    continue;
                }
                let s = &mut self.s_plus[p.idx()];
                *s = s.saturating_sub(1);
                if *s + 1 < i {
                    self.eliminate(p);
                    self.retract_stack.push((p, Status::Survived));
                }
            }
        }
    }
}

/// Extension trait: retain on a suffix of a `Vec`.
trait RetainFrom<T> {
    fn retain_from<F: FnMut(&T) -> bool>(&mut self, start: usize, keep: F);
}

impl<T: Copy> RetainFrom<T> for Vec<T> {
    fn retain_from<F: FnMut(&T) -> bool>(&mut self, start: usize, mut keep: F) {
        let mut write = start;
        for read in start..self.len() {
            if keep(&self[read]) {
                self[write] = self[read];
                write += 1;
            }
        }
        self.truncate(write);
    }
}

/// Reference follower computation: full anchored re-decomposition
/// (`F(x) = {e ≠ x, e ∉ A : t_{A∪{x}}(e) > t_A(e)}`). The oracle for
/// differential tests.
pub fn naive_followers(st: &AtrState<'_>, x: EdgeId) -> Vec<EdgeId> {
    use antruss_truss::{decompose_with, DecomposeOptions};
    let mut anchors = st.anchors.clone();
    anchors.insert(x);
    let info = decompose_with(
        st.graph(),
        DecomposeOptions {
            subset: None,
            anchors: Some(&anchors),
        },
    );
    let mut out = Vec::new();
    for e in st.graph().edges() {
        if e == x || st.is_anchor(e) {
            continue;
        }
        if info.t(e) > st.t(e) {
            out.push(e);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use antruss_graph::gen::{gnm, social_network, SocialParams};
    use antruss_graph::{CsrGraph, GraphBuilder, VertexId};

    fn eid(g: &CsrGraph, u: u32, v: u32) -> EdgeId {
        g.edge_between(VertexId(u), VertexId(v)).unwrap()
    }

    /// The paper's Fig. 3 running example (same construction as the truss
    /// crate's tests).
    fn fig3() -> CsrGraph {
        let mut b = GraphBuilder::dense();
        for &(u, v) in &[
            (1, 2),
            (1, 5),
            (1, 7),
            (1, 9),
            (2, 5),
            (2, 7),
            (2, 9),
            (5, 7),
            (7, 9),
            (6, 8),
            (6, 11),
            (6, 12),
            (8, 10),
            (8, 11),
            (8, 12),
            (10, 11),
            (10, 12),
            (11, 12),
            (3, 4),
            (3, 5),
            (3, 6),
            (3, 13),
            (4, 5),
            (4, 6),
            (4, 13),
            (5, 6),
            (5, 13),
            (6, 13),
            (9, 10),
            (8, 9),
            (7, 8),
            (5, 8),
        ] {
            b.add_edge(u, v);
        }
        b.build()
    }

    #[test]
    fn fig3_example4_followers_of_v9v10() {
        // Example 4: anchoring (v9, v10) makes (8,9), (7,8), (5,8)
        // followers; the level-4 route through (8,10) yields nothing.
        let g = fig3();
        let st = AtrState::new(&g);
        let mut fs = FollowerSearch::new(g.num_edges());
        let out = fs.followers(&st, eid(&g, 9, 10));
        let mut got = out.followers.clone();
        got.sort();
        let mut want = vec![eid(&g, 8, 9), eid(&g, 7, 8), eid(&g, 5, 8)];
        want.sort();
        assert_eq!(got, want);
        // route examined the three 3-hull edges plus (8,10)
        assert_eq!(out.route_size, 4);
    }

    #[test]
    fn fig3_matches_oracle_for_every_candidate() {
        let g = fig3();
        let st = AtrState::new(&g);
        let mut fs = FollowerSearch::new(g.num_edges());
        for x in g.edges() {
            let mut got = fs.followers(&st, x).followers;
            got.sort();
            let want = naive_followers(&st, x);
            assert_eq!(got, want, "candidate {:?}", g.endpoints(x));
        }
    }

    #[test]
    fn random_graphs_match_oracle() {
        for seed in 0..6 {
            let g = gnm(24, 70, seed);
            let st = AtrState::new(&g);
            let mut fs = FollowerSearch::new(g.num_edges());
            for x in g.edges() {
                let mut got = fs.followers(&st, x).followers;
                got.sort();
                let want = naive_followers(&st, x);
                assert_eq!(got, want, "seed {seed}, candidate {:?}", g.endpoints(x));
            }
        }
    }

    #[test]
    fn social_graph_matches_oracle_sampled() {
        let g = social_network(&SocialParams {
            n: 120,
            target_edges: 500,
            attach: 4,
            closure: 0.6,
            planted: vec![6],
            onions: vec![],
            seed: 11,
        });
        let st = AtrState::new(&g);
        let mut fs = FollowerSearch::new(g.num_edges());
        for x in g.edges().step_by(7) {
            let mut got = fs.followers(&st, x).followers;
            got.sort();
            let want = naive_followers(&st, x);
            assert_eq!(got, want, "candidate {:?}", g.endpoints(x));
        }
    }

    #[test]
    fn followers_with_existing_anchor_match_oracle() {
        // Greedy rounds > 1: state already contains an anchor.
        let g = gnm(22, 60, 42);
        let mut st = AtrState::new(&g);
        st.anchor_full_refresh(EdgeId(3));
        let mut fs = FollowerSearch::new(g.num_edges());
        for x in g.edges() {
            if st.is_anchor(x) {
                continue;
            }
            let mut got = fs.followers(&st, x).followers;
            got.sort();
            let want = naive_followers(&st, x);
            assert_eq!(got, want, "candidate {:?}", g.endpoints(x));
        }
    }

    #[test]
    fn isolated_edge_has_no_followers() {
        let mut b = GraphBuilder::dense();
        b.add_edge(0, 1); // isolated edge
        b.add_edge(2, 3);
        b.add_edge(3, 4);
        b.add_edge(2, 4);
        let g = b.build();
        let st = AtrState::new(&g);
        let mut fs = FollowerSearch::new(g.num_edges());
        let out = fs.followers(&st, eid(&g, 0, 1));
        assert!(out.followers.is_empty());
        assert_eq!(out.route_size, 0);
    }

    #[test]
    fn seed_filter_restricts_seeds() {
        let g = fig3();
        let st = AtrState::new(&g);
        let mut fs = FollowerSearch::new(g.num_edges());
        // Forbid every seed: nothing can be found.
        let out = fs.followers_filtered(&st, eid(&g, 9, 10), |_| false);
        assert!(out.followers.is_empty());
        // Allow only the level-3 seed (8,9): level-4 route suppressed but
        // level-3 followers intact.
        let seed = eid(&g, 8, 9);
        let out = fs.followers_filtered(&st, eid(&g, 9, 10), |e| e == seed);
        let mut got = out.followers;
        got.sort();
        let mut want = vec![eid(&g, 8, 9), eid(&g, 7, 8), eid(&g, 5, 8)];
        want.sort();
        assert_eq!(got, want);
    }

    #[test]
    fn retain_from_keeps_prefix() {
        let mut v = vec![1, 2, 3, 4, 5];
        v.retain_from(2, |&x| x % 2 == 0);
        assert_eq!(v, vec![1, 2, 4]);
    }
}
