//! Network-stability analytics — the paper's motivating story, as an API.
//!
//! Section I motivates ATR with engagement decay: when weak relationships
//! lapse, cohesive structure unravels. This module formalizes the
//! simulation used informally in the paper's introduction (and in our
//! `social_network` example):
//!
//! * [`cohesion_profile`] — how much of the graph sits at each truss level
//!   (the "cohesive mass" curve);
//! * [`decay_simulation`] — iteratively drop edges below a cohesion
//!   threshold and report the surviving mass, with and without anchors;
//! * [`resilience_gain`] — a single scalar: how many additional
//!   edge-survival units a given anchor set buys across all thresholds.

use antruss_graph::{CsrGraph, EdgeSet, VertexId};
use antruss_truss::{decompose, decompose_with, DecomposeOptions, ANCHOR_TRUSSNESS};

use crate::baselines::akt::anchored_k_truss;

/// Edges with (anchored) trussness ≥ k, for each k up to `k_max` — the
/// cumulative cohesive-mass curve. Index 0 holds the total edge count
/// (`k = 0` and `k = 1` are trivially everything).
pub fn cohesion_profile(g: &CsrGraph, anchors: Option<&EdgeSet>) -> Vec<usize> {
    let info = decompose_with(
        g,
        DecomposeOptions {
            subset: None,
            anchors,
        },
    );
    let mut profile = vec![0usize; info.k_max as usize + 2];
    for e in g.edges() {
        let t = info.t(e);
        let top = if t == ANCHOR_TRUSSNESS {
            info.k_max as usize + 1
        } else {
            t as usize
        };
        // edge counts for every k ≤ its trussness
        for entry in profile.iter_mut().take(top + 1) {
            *entry += 1;
        }
    }
    profile
}

/// One step of engagement decay at threshold `k`: all edges of trussness
/// `< k` lapse (users with weak ties disengage); anchored edges always
/// survive. Returns the surviving edge count.
pub fn decay_survivors(g: &CsrGraph, anchors: Option<&EdgeSet>, k: u32) -> usize {
    let info = decompose_with(
        g,
        DecomposeOptions {
            subset: None,
            anchors,
        },
    );
    g.edges().filter(|&e| info.t(e) >= k).count()
}

/// Runs the decay simulation at every threshold `3..=k_max`, returning
/// `(k, survivors_unanchored, survivors_anchored)` triples.
pub fn decay_simulation(g: &CsrGraph, anchors: &EdgeSet) -> Vec<(u32, usize, usize)> {
    let base = cohesion_profile(g, None);
    let with = cohesion_profile(g, Some(anchors));
    let k_max = base.len().max(with.len()) - 1;
    (3..=k_max as u32)
        .map(|k| {
            let b = base.get(k as usize).copied().unwrap_or(0);
            let w = with.get(k as usize).copied().unwrap_or(0);
            (k, b, w)
        })
        .collect()
}

/// Total extra edge-survival units across all decay thresholds bought by
/// `anchors`. Equals `Σ_k (survivors_anchored(k) − survivors_unanchored(k))`
/// and, by double counting, equals the trussness gain plus the anchors'
/// own survival bonus — a direct bridge between Definition 4 and the
/// stability narrative.
pub fn resilience_gain(g: &CsrGraph, anchors: &EdgeSet) -> u64 {
    decay_simulation(g, anchors)
        .iter()
        .map(|&(_, b, w)| (w.saturating_sub(b)) as u64)
        .sum()
}

/// [`resilience_gain`] without the anchors' own survival subsidy: only
/// edges *outside* `A` count, so the number equals the trussness gain
/// summed over thresholds — the structural improvement the anchoring
/// *induces* rather than the material it directly pins in place. This is
/// the fair currency for comparing edge anchoring against vertex
/// anchoring (a vertex anchor pins its entire incident star; see
/// [`vertex_induced_resilience_gain`]).
pub fn induced_resilience_gain(g: &CsrGraph, anchors: &EdgeSet) -> u64 {
    let info = decompose_with(
        g,
        DecomposeOptions {
            subset: None,
            anchors: Some(anchors),
        },
    );
    let base = decompose(g);
    let mut gain = 0u64;
    for e in g.edges() {
        if anchors.contains(e) {
            continue;
        }
        // survival units at thresholds ≥ 3: levels below 3 survive anyway
        let after = info.t(e).max(2);
        let before = base.t(e).max(2);
        gain += (after - before) as u64;
    }
    gain
}

/// Cohesive-mass curve under **vertex** anchors (AKT semantics): for each
/// threshold `k`, the number of edges in the vertex-anchored `k`-truss —
/// an anchor-incident edge survives with a single triangle, every other
/// edge needs the usual `k − 2`. This is the vertex-method counterpart of
/// [`cohesion_profile`], giving the cross-model experiments one decay
/// currency for edge-anchoring (GAS) and vertex-anchoring (AKT, OLAK,
/// anchored coreness) alike.
pub fn vertex_cohesion_profile(g: &CsrGraph, anchored: &[VertexId]) -> Vec<usize> {
    let info = decompose(g);
    let mut flags = vec![false; g.num_vertices()];
    for &v in anchored {
        flags[v.idx()] = true;
    }
    // anchored k-trusses can reach one level above the plain k_max
    let top = info.k_max + 1;
    let mut profile = vec![g.num_edges(); 3.min(top as usize + 1)];
    for k in profile.len() as u32..=top {
        profile.push(anchored_k_truss(g, &info.trussness, k, &flags).len());
    }
    profile
}

/// Total extra edge-survival units across all decay thresholds bought by
/// anchoring the given **vertices** — the vertex-method counterpart of
/// [`resilience_gain`]. `Σ_{k≥3} (|anchored k-truss| − |T_k(G)|)`.
pub fn vertex_resilience_gain(g: &CsrGraph, anchored: &[VertexId]) -> u64 {
    let base = cohesion_profile(g, None);
    let with = vertex_cohesion_profile(g, anchored);
    let top = base.len().max(with.len());
    (3..top)
        .map(|k| {
            let b = base.get(k).copied().unwrap_or(0);
            let w = with.get(k).copied().unwrap_or(0);
            w.saturating_sub(b) as u64
        })
        .sum()
}

/// [`vertex_resilience_gain`] without the direct subsidy of
/// anchor-incident edges: only edges whose endpoints are both unanchored
/// count. A vertex anchor pins every incident edge that still closes one
/// triangle — `deg(v)` edges of free survival at every threshold — so raw
/// resilience numbers overstate vertex methods by roughly the anchors'
/// degree mass. The induced variant counts the *cascade*: edges the
/// anchoring saved without touching them.
pub fn vertex_induced_resilience_gain(g: &CsrGraph, anchored: &[VertexId]) -> u64 {
    let info = decompose(g);
    let mut flags = vec![false; g.num_vertices()];
    for &v in anchored {
        flags[v.idx()] = true;
    }
    let incident = |e: antruss_graph::EdgeId| {
        let (u, v) = g.endpoints(e);
        flags[u.idx()] || flags[v.idx()]
    };
    let mut gain = 0u64;
    let top = info.k_max + 1;
    for k in 3..=top {
        let truss = anchored_k_truss(g, &info.trussness, k, &flags);
        for e in g.edges() {
            if !incident(e) && truss.contains(e) && info.t(e) < k {
                gain += 1;
            }
        }
    }
    gain
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Gas, GasConfig};
    use antruss_graph::gen::{gnm, planted_cliques};
    use antruss_graph::EdgeId;

    #[test]
    fn profile_is_monotone_decreasing() {
        let g = planted_cliques(&[6, 4]);
        let p = cohesion_profile(&g, None);
        for w in p.windows(2) {
            assert!(w[0] >= w[1], "cohesive mass must shrink with k: {p:?}");
        }
        assert_eq!(p[0], g.num_edges());
        assert_eq!(p[6], 15, "the 6-clique survives threshold 6");
    }

    #[test]
    fn anchors_survive_any_decay() {
        let g = planted_cliques(&[4, 3]);
        let mut anchors = EdgeSet::new(g.num_edges());
        anchors.insert(EdgeId(0));
        // at an impossible threshold only the anchor survives
        assert_eq!(decay_survivors(&g, Some(&anchors), 100), 1);
        assert_eq!(decay_survivors(&g, None, 100), 0);
    }

    #[test]
    fn anchoring_weakly_improves_every_threshold() {
        let g = gnm(40, 160, 5);
        let out = Gas::new(&g, GasConfig::default()).run(4);
        let anchors = EdgeSet::from_iter(g.num_edges(), out.anchors.iter().copied());
        for (k, before, after) in decay_simulation(&g, &anchors) {
            assert!(
                after >= before,
                "k={k}: anchoring must not reduce survivors"
            );
        }
    }

    #[test]
    fn resilience_gain_positive_when_gas_gains() {
        let g = planted_cliques(&[5]); // weak graph: anchor one edge of K5
        let mut anchors = EdgeSet::new(g.num_edges());
        anchors.insert(EdgeId(0));
        // the anchor itself survives all thresholds -> positive resilience
        assert!(resilience_gain(&g, &anchors) > 0);
    }

    #[test]
    fn vertex_profile_dominates_base() {
        // anchored k-trusses are supersets of the plain k-trusses
        let g = gnm(35, 130, 12);
        let base = cohesion_profile(&g, None);
        let with = vertex_cohesion_profile(&g, &[antruss_graph::VertexId(0)]);
        for k in 3..base.len().min(with.len()) {
            assert!(
                with[k] >= base[k],
                "k={k}: vertex anchoring must not lose edges"
            );
        }
    }

    #[test]
    fn vertex_resilience_zero_without_anchors() {
        let g = gnm(20, 60, 4);
        assert_eq!(vertex_resilience_gain(&g, &[]), 0);
    }

    #[test]
    fn vertex_resilience_positive_for_fringe_anchor() {
        // K4 core with a fringe triangle: anchoring the fringe vertex keeps
        // its two incident edges in the 4-truss (Example 1 semantics).
        let mut b = antruss_graph::GraphBuilder::dense();
        for &(u, v) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v);
        }
        b.add_edge(2, 4);
        b.add_edge(3, 4);
        let g = b.build();
        assert!(vertex_resilience_gain(&g, &[antruss_graph::VertexId(4)]) >= 2);
    }

    #[test]
    fn empty_graph_profiles() {
        let g = antruss_graph::GraphBuilder::new().build();
        let p = cohesion_profile(&g, None);
        assert_eq!(p.iter().sum::<usize>(), 0);
        let anchors = EdgeSet::new(0);
        // decay on an empty graph must not panic
        let _ = decay_simulation(&g, &anchors);
    }
}
