//! ATR problem state and gain computation.

use antruss_graph::{CsrGraph, EdgeId, EdgeSet};
use antruss_truss::{decompose, decompose_with, DecomposeOptions, TrussInfo, ANCHOR_TRUSSNESS};

/// Mutable analysis state of one graph under a growing anchor set.
///
/// Holds the current trussness `t(e)`, peel layer `l(e)` and anchor set of
/// the graph `G_A`. Both the exact baselines and the accelerated GAS
/// pipeline mutate an `AtrState`; they differ only in *how* they refresh
/// `t`/`l` after an anchoring (full re-decomposition vs. component-local
/// rebuild).
pub struct AtrState<'g> {
    graph: &'g CsrGraph,
    /// Current trussness per edge ([`ANCHOR_TRUSSNESS`] for anchors).
    pub t: Vec<u32>,
    /// Current peel layer per edge.
    pub l: Vec<u32>,
    /// Current anchor set `A`.
    pub anchors: EdgeSet,
    /// Largest finite trussness.
    pub k_max: u32,
    /// Trussness of every edge in the *original* graph (gain reference).
    pub original_t: Vec<u32>,
}

impl<'g> AtrState<'g> {
    /// Decomposes `g` and starts with an empty anchor set.
    pub fn new(g: &'g CsrGraph) -> Self {
        let TrussInfo {
            trussness,
            layer,
            k_max,
        } = decompose(g);
        AtrState {
            graph: g,
            original_t: trussness.clone(),
            t: trussness,
            l: layer,
            anchors: EdgeSet::new(g.num_edges()),
            k_max,
        }
    }

    /// The underlying graph.
    #[inline]
    pub fn graph(&self) -> &'g CsrGraph {
        self.graph
    }

    /// Trussness of `e` in `G_A`.
    #[inline]
    pub fn t(&self, e: EdgeId) -> u32 {
        self.t[e.idx()]
    }

    /// Peel layer of `e` in `G_A`.
    #[inline]
    pub fn l(&self, e: EdgeId) -> u32 {
        self.l[e.idx()]
    }

    /// Whether `e` is anchored (or carries the anchor sentinel).
    #[inline]
    pub fn is_anchor(&self, e: EdgeId) -> bool {
        self.anchors.contains(e)
    }

    /// Adds `x` to the anchor set and refreshes `t`/`l` by a **full**
    /// re-decomposition (the simple, always-correct path used by the
    /// baselines; GAS uses the component-local path in [`crate::reuse`]).
    pub fn anchor_full_refresh(&mut self, x: EdgeId) {
        assert!(!self.anchors.contains(x), "{x:?} is already anchored");
        self.anchors.insert(x);
        self.refresh_full();
    }

    /// Re-decomposes the whole graph under the current anchor set.
    pub fn refresh_full(&mut self) {
        let info = decompose_with(
            self.graph,
            DecomposeOptions {
                subset: None,
                anchors: Some(&self.anchors),
            },
        );
        self.t = info.trussness;
        self.l = info.layer;
        self.k_max = info.k_max;
    }

    /// Trussness gain accumulated so far:
    /// `Σ_{e ∈ E\A} (t_A(e) − t(e))` against the original graph.
    pub fn total_gain(&self) -> u64 {
        let mut gain = 0u64;
        for (i, (&now, &orig)) in self.t.iter().zip(&self.original_t).enumerate() {
            if now == ANCHOR_TRUSSNESS || self.anchors.contains(EdgeId(i as u32)) {
                continue;
            }
            debug_assert!(now >= orig, "trussness can never drop under anchoring");
            gain += (now - orig) as u64;
        }
        gain
    }
}

/// Trussness gain of anchoring the whole set `A` at once on the original
/// graph: `TG(A, G) = Σ_{e ∈ E\A} (t_A(e) − t(e))` (Definition 4).
///
/// `base` must be the trussness of `g` *without* anchors (pass
/// `&AtrState::new(g).original_t` or a fresh decomposition).
pub fn gain_of_anchor_set(g: &CsrGraph, base: &[u32], anchors: &EdgeSet) -> u64 {
    let info = decompose_with(
        g,
        DecomposeOptions {
            subset: None,
            anchors: Some(anchors),
        },
    );
    let mut gain = 0u64;
    for e in g.edges() {
        if anchors.contains(e) {
            continue;
        }
        let (after, before) = (info.t(e), base[e.idx()]);
        debug_assert!(after >= before);
        gain += (after - before) as u64;
    }
    gain
}

#[cfg(test)]
mod tests {
    use super::*;
    use antruss_graph::gen::gnm;
    use antruss_graph::{GraphBuilder, VertexId};

    /// Fig. 1(a)-style: two 4-truss blocks glued by 3-truss edges.
    fn small_graph() -> CsrGraph {
        let mut b = GraphBuilder::dense();
        // K4 block
        for &(u, v) in &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)] {
            b.add_edge(u, v);
        }
        // tail triangle chain
        b.add_edge(3, 4);
        b.add_edge(2, 4);
        b.add_edge(4, 5);
        b.add_edge(3, 5);
        b.build()
    }

    #[test]
    fn new_state_has_no_gain() {
        let g = small_graph();
        let st = AtrState::new(&g);
        assert_eq!(st.total_gain(), 0);
        assert!(st.k_max >= 3);
    }

    #[test]
    fn anchoring_never_decreases_gain() {
        let g = gnm(30, 100, 3);
        let mut st = AtrState::new(&g);
        let mut last = 0;
        for x in [EdgeId(0), EdgeId(5), EdgeId(17)] {
            st.anchor_full_refresh(x);
            let gain = st.total_gain();
            assert!(gain >= last);
            last = gain;
        }
    }

    #[test]
    #[should_panic(expected = "already anchored")]
    fn double_anchor_panics() {
        let g = small_graph();
        let mut st = AtrState::new(&g);
        st.anchor_full_refresh(EdgeId(0));
        st.anchor_full_refresh(EdgeId(0));
    }

    #[test]
    fn set_gain_matches_incremental_gain() {
        let g = gnm(25, 80, 9);
        let base = AtrState::new(&g);
        let mut st = AtrState::new(&g);
        let picks = [EdgeId(1), EdgeId(8), EdgeId(30)];
        for &x in &picks {
            st.anchor_full_refresh(x);
        }
        let set = EdgeSet::from_iter(g.num_edges(), picks);
        assert_eq!(
            st.total_gain(),
            gain_of_anchor_set(&g, &base.original_t, &set)
        );
    }

    #[test]
    fn anchored_edge_excluded_from_gain() {
        // Anchoring an edge whose own trussness would rise must not count
        // the anchor itself.
        let g = small_graph();
        let e = g.edge_between(VertexId(3), VertexId(4)).unwrap();
        let mut st = AtrState::new(&g);
        st.anchor_full_refresh(e);
        let anchors = EdgeSet::from_iter(g.num_edges(), [e]);
        assert_eq!(
            st.total_gain(),
            gain_of_anchor_set(&g, &st.original_t, &anchors)
        );
    }
}
