//! Minimal JSON support shared by [`Outcome::to_json`](crate::engine::Outcome::to_json)
//! and the `antruss-service` request/response path.
//!
//! The build environment vendors no `serde`, so this module hand-rolls
//! exactly what the workspace needs:
//!
//! * **writing** — [`escape_into`]/[`quoted`] (string escaping shared with
//!   every serializer in the workspace) and [`write_f64`] (finite floats
//!   only; JSON has no NaN/Inf);
//! * **parsing** — [`parse`] into a dynamically-typed [`Value`] tree, used
//!   by the service to decode `/solve` and `/graphs` request bodies and by
//!   tests to compare outcomes structurally.
//!
//! The parser is strict where it matters for a network input path:
//! depth-limited (no stack overflow from `[[[[…`), rejects trailing
//! garbage, and surfaces the byte offset of every error.

use std::collections::BTreeMap;

/// Escapes `v` into `s` as the *contents* of a JSON string (no
/// surrounding quotes): `"` and `\` are backslash-escaped, control
/// characters below `0x20` become `\n`/`\r`/`\t` or `\u00XX`.
pub fn escape_into(s: &mut String, v: &str) {
    for c in v.chars() {
        match c {
            '"' => s.push_str("\\\""),
            '\\' => s.push_str("\\\\"),
            '\n' => s.push_str("\\n"),
            '\r' => s.push_str("\\r"),
            '\t' => s.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                s.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => s.push(c),
        }
    }
}

/// `v` as a complete JSON string literal, quotes included.
pub fn quoted(v: &str) -> String {
    let mut s = String::with_capacity(v.len() + 2);
    s.push('"');
    escape_into(&mut s, v);
    s.push('"');
    s
}

/// Writes `v` as a JSON number; non-finite values (which JSON cannot
/// represent) become `null`.
pub fn write_f64(s: &mut String, v: f64) {
    if v.is_finite() {
        s.push_str(&format!("{v:.9}"));
    } else {
        s.push_str("null");
    }
}

/// A parsed JSON value.
///
/// Objects keep their members in a `BTreeMap`, so two values that differ
/// only in member order compare equal — exactly the comparison the
/// service parity tests need.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (stored as `f64`; integers up to 2^53 are exact).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object.
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// Member lookup on objects (`None` elsewhere or when absent).
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Mutable member lookup on objects.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut Value> {
        match self {
            Value::Obj(m) => m.get_mut(key),
            _ => None,
        }
    }

    /// Removes a member from an object, returning it.
    pub fn remove(&mut self, key: &str) -> Option<Value> {
        match self {
            Value::Obj(m) => m.remove(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric payload as an exact non-negative integer (rejects
    /// fractions, negatives and values above 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9_007_199_254_740_992.0 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Serializes the value back to compact JSON (object members in key
    /// order; numbers via [`write_f64`] when fractional, losslessly when
    /// integral).
    pub fn to_json(&self) -> String {
        let mut s = String::new();
        self.write(&mut s);
        s
    }

    fn write(&self, s: &mut String) {
        match self {
            Value::Null => s.push_str("null"),
            Value::Bool(b) => s.push_str(if *b { "true" } else { "false" }),
            Value::Num(n) => {
                if n.fract() == 0.0 && n.abs() <= 9_007_199_254_740_992.0 {
                    s.push_str(&format!("{}", *n as i64));
                } else {
                    write_f64(s, *n);
                }
            }
            Value::Str(v) => {
                s.push('"');
                escape_into(s, v);
                s.push('"');
            }
            Value::Arr(items) => {
                s.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    item.write(s);
                }
                s.push(']');
            }
            Value::Obj(members) => {
                s.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        s.push(',');
                    }
                    s.push('"');
                    escape_into(s, k);
                    s.push_str("\":");
                    v.write(s);
                }
                s.push('}');
            }
        }
    }
}

/// Why an input failed to parse, with the byte offset it failed at.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid JSON at byte {}: {}", self.offset, self.message)
    }
}

impl std::error::Error for JsonError {}

/// Nesting deeper than this is rejected — a network-facing parser must
/// not let `[[[[…` recurse the stack away.
pub const MAX_DEPTH: usize = 128;

/// Parses one complete JSON value; trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Value, JsonError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters after the JSON value"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> JsonError {
        JsonError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, lit: &str) -> bool {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, JsonError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            None => Err(self.err("unexpected end of input")),
            Some(b'n') => {
                if self.eat("null") {
                    Ok(Value::Null)
                } else {
                    Err(self.err("expected `null`"))
                }
            }
            Some(b't') => {
                if self.eat("true") {
                    Ok(Value::Bool(true))
                } else {
                    Err(self.err("expected `true`"))
                }
            }
            Some(b'f') => {
                if self.eat("false") {
                    Ok(Value::Bool(false))
                } else {
                    Err(self.err("expected `false`"))
                }
            }
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(depth),
            Some(b'{') => self.object(depth),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(_) => Err(self.err("unexpected character")),
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(self.err("expected `,` or `]` in array")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, JsonError> {
        self.pos += 1; // '{'
        let mut members = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            if self.peek() != Some(b'"') {
                return Err(self.err("expected a string key in object"));
            }
            let key = self.string()?;
            self.skip_ws();
            if self.peek() != Some(b':') {
                return Err(self.err("expected `:` after object key"));
            }
            self.pos += 1;
            self.skip_ws();
            let value = self.value(depth + 1)?;
            members.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(self.err("expected `,` or `}` in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, JsonError> {
        self.pos += 1; // '"'
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'u') => {
                            self.pos += 1;
                            let first = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&first) {
                                // high surrogate: require the paired low
                                // surrogate escape
                                if !self.eat("\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                let second = self.hex4()?;
                                if !(0xDC00..0xE000).contains(&second) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let cp = 0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                                char::from_u32(cp)
                            } else if (0xDC00..0xE000).contains(&first) {
                                None
                            } else {
                                char::from_u32(first)
                            };
                            match c {
                                Some(c) => out.push(c),
                                None => return Err(self.err("invalid unicode escape")),
                            }
                            // hex4 leaves pos one past the last hex digit;
                            // compensate for the += 1 below
                            self.pos -= 1;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.pos += 1;
                }
                Some(c) if c < 0x20 => {
                    return Err(self.err("unescaped control character in string"))
                }
                Some(_) => {
                    // consume one UTF-8 scalar (input is &str, so slicing
                    // at char boundaries is safe)
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid UTF-8"))?;
                    let c = s.chars().next().unwrap();
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, JsonError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.err("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.err("invalid unicode escape"))?;
        let v = u32::from_str_radix(hex, 16).map_err(|_| self.err("invalid unicode escape"))?;
        self.pos = end;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, JsonError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>().map(Value::Num).map_err(|_| JsonError {
            offset: start,
            message: format!("invalid number {text:?}"),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escaping_covers_the_specials() {
        assert_eq!(quoted("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(quoted("\u{1}"), "\"\\u0001\"");
        assert_eq!(quoted("plain"), "\"plain\"");
    }

    #[test]
    fn parse_scalars() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse(" true ").unwrap(), Value::Bool(true));
        assert_eq!(parse("false").unwrap(), Value::Bool(false));
        assert_eq!(parse("42").unwrap(), Value::Num(42.0));
        assert_eq!(parse("-1.5e2").unwrap(), Value::Num(-150.0));
        assert_eq!(parse("\"hi\"").unwrap(), Value::Str("hi".into()));
    }

    #[test]
    fn parse_nested_structures() {
        let v = parse(r#"{"a":[1,2,{"b":null}],"c":"x"}"#).unwrap();
        assert_eq!(v.get("c").and_then(Value::as_str), Some("x"));
        let arr = v.get("a").and_then(Value::as_array).unwrap();
        assert_eq!(arr.len(), 3);
        assert!(arr[2].get("b").unwrap().is_null());
    }

    #[test]
    fn escape_parse_round_trip() {
        for s in [
            "",
            "hello",
            "a\"b",
            "back\\slash",
            "tab\there",
            "nl\nend",
            "\u{0}\u{1}\u{1f}",
            "unicode: ünïcødé 🦀",
        ] {
            let parsed = parse(&quoted(s)).unwrap();
            assert_eq!(parsed, Value::Str(s.to_string()), "{s:?}");
        }
    }

    #[test]
    fn unicode_escapes_and_surrogates() {
        assert_eq!(parse(r#""\u0041""#).unwrap(), Value::Str("A".into()));
        assert_eq!(parse(r#""\ud83e\udd80""#).unwrap(), Value::Str("🦀".into()));
        assert!(parse(r#""\ud83e""#).is_err()); // unpaired high surrogate
        assert!(parse(r#""\udd80""#).is_err()); // lone low surrogate
    }

    #[test]
    fn malformed_inputs_error_with_offsets() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "{\"a\":}",
            "tru",
            "\"unterminated",
            "01x",
            "{}x",
            "\"bad \u{1} ctl\"",
        ] {
            let err = parse(bad).unwrap_err();
            assert!(!err.message.is_empty(), "{bad:?}");
            assert!(err.to_string().contains("byte"), "{bad:?}");
        }
    }

    #[test]
    fn depth_limit_rejects_deep_nesting() {
        let deep = "[".repeat(MAX_DEPTH + 2) + &"]".repeat(MAX_DEPTH + 2);
        assert!(parse(&deep).is_err());
        let ok = "[".repeat(8) + &"]".repeat(8);
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn object_member_order_is_canonicalized() {
        assert_eq!(
            parse(r#"{"b":1,"a":2}"#).unwrap(),
            parse(r#"{"a":2,"b":1}"#).unwrap()
        );
    }

    #[test]
    fn value_serializes_back() {
        let v = parse(r#"{"b":[1,2.5,null,true],"a":"x\ny"}"#).unwrap();
        let j = v.to_json();
        assert_eq!(parse(&j).unwrap(), v);
        assert!(j.starts_with("{\"a\":"), "{j}"); // canonical key order
        assert_eq!(Value::Num(3.0).to_json(), "3");
        assert_eq!(Value::Num(f64::NAN).to_json(), "null");
    }

    #[test]
    fn u64_extraction_is_exact() {
        assert_eq!(parse("7").unwrap().as_u64(), Some(7));
        assert_eq!(parse("0").unwrap().as_u64(), Some(0));
        assert_eq!(parse("-1").unwrap().as_u64(), None);
        assert_eq!(parse("1.5").unwrap().as_u64(), None);
        assert_eq!(parse("\"7\"").unwrap().as_u64(), None);
    }

    #[test]
    fn write_f64_handles_non_finite() {
        let mut s = String::new();
        write_f64(&mut s, f64::INFINITY);
        assert_eq!(s, "null");
        let mut s = String::new();
        write_f64(&mut s, 0.25);
        assert_eq!(s, "0.250000000");
    }
}
