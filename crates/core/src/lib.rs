//! # antruss-core
//!
//! The paper's contribution: the **Anchor Trussness Reinforcement (ATR)**
//! problem and the **GAS** algorithm, plus every baseline evaluated in the
//! paper.
//!
//! Given a graph `G` and budget `b`, ATR selects `b` edges to *anchor*
//! (infinite support — never peeled by truss decomposition) so that the
//! total trussness gain `Σ_{e ∈ E\A} (t_A(e) − t(e))` is maximized. The
//! problem is NP-hard and non-submodular; the practical solver is a greedy
//! that needs three accelerations to scale:
//!
//! * [`followers`] — `GetFollowers` (Algorithm 3): upward-route search with
//!   effective-triangle support checks and retract cascades; computes the
//!   exact follower set of one anchor without re-decomposing the graph;
//! * [`tree`] — the truss-component tree (Algorithm 4) classifying edges by
//!   trussness and triangle connectivity, with `sla(e)` subtree-adjacency;
//! * [`reuse`] — `FollowerReuse` (Algorithm 5): after each anchoring, only
//!   the anchored component is re-decomposed and only invalidated tree
//!   nodes are recomputed in later rounds;
//! * [`gas`] — `GAS` (Algorithm 6) assembling all of the above;
//! * [`baselines`] — `Exact`, `Rand`, `Sup`, `Tur`, `BASE`, `BASE+`, the
//!   vertex-anchoring `AKT` comparator and the edge-deletion comparator;
//! * [`engine`] — the unified [`Solver`](engine::Solver) API: one
//!   [`RunConfig`](engine::RunConfig), one
//!   [`Outcome`](engine::Outcome), and a string-keyed
//!   [`registry()`](engine::registry) dispatching every algorithm above
//!   by name (`"gas"`, `"base+"`, `"rand:sup"`, …).
//!
//! New callers should start from [`engine`]; the per-algorithm modules
//! remain the implementation layer it adapts.

#![warn(missing_docs)]

pub mod baselines;
pub mod engine;
pub mod followers;
pub mod gas;
pub mod json;
pub mod metrics;
pub mod parallel;
mod problem;
pub mod reuse;
pub mod route;
pub mod stability;
pub mod tree;
pub mod whatif;

pub use engine::{registry, Outcome, RunConfig, SolveError, Solver};
pub use followers::{FollowerOutcome, FollowerSearch};
pub use gas::{Gas, GasConfig, GasOutcome, ReusePolicy, RoundReport};
pub use problem::{gain_of_anchor_set, AtrState};
pub use tree::{TreeNode, TrussTree};
pub use whatif::WhatIf;
