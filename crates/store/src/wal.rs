//! The write-ahead log: catalog operations as checksummed,
//! length-prefixed binary records.
//!
//! File layout:
//!
//! ```text
//! offset  size  field
//! 0       8     magic "ANTWAL01"
//! 8       …     records, back to back
//! ```
//!
//! Record layout (all little-endian):
//!
//! ```text
//! offset  size  field
//! 0       4     payload length L (u32)
//! 4       8     FNV-1a 64 checksum of the payload (u64)
//! 12      L     payload: one encoded CatalogOp
//! ```
//!
//! A crash can tear the final record (partial length prefix, partial
//! payload) or a disk fault can flip payload bits; both are detected by
//! the length/checksum pair and replay stops *cleanly* at the last good
//! record — everything before it is intact by construction, everything
//! after it was never acknowledged under the `always` fsync policy.

use bytes::{Buf, BufMut, Bytes, BytesMut};

/// First 8 bytes of every WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"ANTWAL01";

/// Sanity cap on one record's payload: a length prefix beyond this is
/// corruption, not a real record (the largest legitimate payload is a
/// registered graph's binary snapshot, well under this).
pub const MAX_RECORD_BYTES: u32 = 1 << 28;

const TAG_REGISTER: u8 = 1;
const TAG_MUTATE: u8 = 2;
const TAG_DELETE: u8 = 3;
const TAG_PURGE: u8 = 4;

/// One durable catalog operation — the WAL's unit of persistence.
///
/// Operations are *last-writer-wins* per edge and per name: replaying a
/// WAL suffix over any state that already includes a prefix of it
/// converges to the same catalog (inserts/deletes set absolute edge
/// presence, register overwrites, delete removes), which is what makes
/// recovery after a crash mid-compaction safe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CatalogOp {
    /// A graph was registered under `name`; `graph` is the built graph
    /// in the `.antg` binary layout (not the uploaded text, so replay
    /// skips re-parsing and stores the exact canonical edge set).
    Register {
        /// The catalog name.
        name: String,
        /// The graph in [`antruss_graph::io_binary`] layout.
        graph: Bytes,
    },
    /// An edge insert/delete batch was applied to `name`. The raw
    /// request pairs are logged (pre-deduplication): replaying them
    /// through the same maintenance code is deterministic.
    Mutate {
        /// The catalog name.
        name: String,
        /// Vertex pairs to insert.
        inserts: Vec<(u64, u64)>,
        /// Vertex pairs to delete.
        deletes: Vec<(u64, u64)>,
    },
    /// The graph under `name` was deleted.
    Delete {
        /// The catalog name.
        name: String,
    },
    /// Cached outcomes for `name` (or everything, when `name` is empty)
    /// were purged. The catalog itself is untouched — this exists so
    /// *every* event kind the `/events` stream can emit consumes one
    /// durable WAL sequence number: a purge that only bumped an
    /// in-memory counter would make the recovered head lag the live
    /// head after a crash, and a reconnecting subscriber's cursor would
    /// alias different operations across the restart.
    Purge {
        /// The catalog name, or `""` for a purge of every graph.
        name: String,
    },
}

impl CatalogOp {
    /// The catalog name this operation targets.
    pub fn name(&self) -> &str {
        match self {
            CatalogOp::Register { name, .. }
            | CatalogOp::Mutate { name, .. }
            | CatalogOp::Delete { name }
            | CatalogOp::Purge { name } => name,
        }
    }

    /// Serializes the operation into its WAL payload.
    pub fn encode(&self) -> Bytes {
        let mut buf = BytesMut::with_capacity(64);
        let put_name = |buf: &mut BytesMut, name: &str| {
            buf.put_u16_le(name.len() as u16);
            buf.put_slice(name.as_bytes());
        };
        match self {
            CatalogOp::Register { name, graph } => {
                buf.put_u8(TAG_REGISTER);
                put_name(&mut buf, name);
                buf.put_u32_le(graph.len() as u32);
                buf.put_slice(graph);
            }
            CatalogOp::Mutate {
                name,
                inserts,
                deletes,
            } => {
                buf.put_u8(TAG_MUTATE);
                put_name(&mut buf, name);
                buf.put_u32_le(inserts.len() as u32);
                buf.put_u32_le(deletes.len() as u32);
                for &(u, v) in inserts.iter().chain(deletes) {
                    buf.put_u64_le(u);
                    buf.put_u64_le(v);
                }
            }
            CatalogOp::Delete { name } => {
                buf.put_u8(TAG_DELETE);
                put_name(&mut buf, name);
            }
            CatalogOp::Purge { name } => {
                buf.put_u8(TAG_PURGE);
                put_name(&mut buf, name);
            }
        }
        buf.freeze()
    }

    /// Deserializes one WAL payload. `None` means the payload is not a
    /// well-formed operation (replay treats it like a checksum failure).
    pub fn decode(mut data: Bytes) -> Option<CatalogOp> {
        let take_name = |data: &mut Bytes| -> Option<String> {
            if data.remaining() < 2 {
                return None;
            }
            let len = data.get_u16_le() as usize;
            if data.remaining() < len {
                return None;
            }
            let mut raw = vec![0u8; len];
            data.copy_to_slice(&mut raw);
            String::from_utf8(raw).ok()
        };
        if data.remaining() < 1 {
            return None;
        }
        let tag = data.get_u8();
        let name = take_name(&mut data)?;
        let op = match tag {
            TAG_REGISTER => {
                if data.remaining() < 4 {
                    return None;
                }
                let len = data.get_u32_le() as usize;
                if data.remaining() != len {
                    return None;
                }
                CatalogOp::Register {
                    name,
                    graph: data.copy_to_bytes(len),
                }
            }
            TAG_MUTATE => {
                if data.remaining() < 8 {
                    return None;
                }
                let ni = data.get_u32_le() as usize;
                let nd = data.get_u32_le() as usize;
                if data.remaining() != (ni + nd) * 16 {
                    return None;
                }
                let mut take = |n: usize| -> Vec<(u64, u64)> {
                    (0..n)
                        .map(|_| (data.get_u64_le(), data.get_u64_le()))
                        .collect()
                };
                let inserts = take(ni);
                let deletes = take(nd);
                CatalogOp::Mutate {
                    name,
                    inserts,
                    deletes,
                }
            }
            TAG_DELETE => {
                if data.has_remaining() {
                    return None;
                }
                CatalogOp::Delete { name }
            }
            TAG_PURGE => {
                if data.has_remaining() {
                    return None;
                }
                CatalogOp::Purge { name }
            }
            _ => return None,
        };
        Some(op)
    }
}

/// Frames an arbitrary payload as a WAL record (length + checksum +
/// payload) — the same wire layout [`encode_record`] gives a
/// [`CatalogOp`], for logs whose payload type lives in another crate
/// (the router's member table logs `MemberOp`s through this).
pub fn encode_raw_record(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// What replaying a raw (payload-agnostic) log image produced.
#[derive(Debug)]
pub struct RawReplay {
    /// The good payloads, in append order.
    pub payloads: Vec<Bytes>,
    /// Byte offset just past the last good record.
    pub good_len: u64,
    /// Bytes past `good_len` that were dropped.
    pub dropped_bytes: u64,
}

/// Replays a framed log image under `magic`, stopping cleanly at the
/// first torn or corrupt record — the payload-agnostic core of
/// [`replay`]. Callers decode the payloads themselves.
pub fn replay_raw(data: &[u8], magic: &[u8; 8]) -> RawReplay {
    if data.len() < magic.len() || &data[..magic.len()] != magic {
        return RawReplay {
            payloads: Vec::new(),
            good_len: 0,
            dropped_bytes: data.len() as u64,
        };
    }
    let mut payloads = Vec::new();
    let mut at = magic.len();
    loop {
        let rest = &data[at..];
        if rest.len() < 12 {
            break; // clean end or torn length/checksum prefix
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap());
        if len > MAX_RECORD_BYTES {
            break; // corrupt length prefix
        }
        let len = len as usize;
        let want = u64::from_le_bytes(rest[4..12].try_into().unwrap());
        if rest.len() < 12 + len {
            break; // torn payload
        }
        let payload = &rest[12..12 + len];
        if checksum64(payload) != want {
            break; // flipped bits
        }
        payloads.push(Bytes::from(payload.to_vec()));
        at += 12 + len;
    }
    RawReplay {
        payloads,
        good_len: at as u64,
        dropped_bytes: (data.len() - at) as u64,
    }
}

/// FNV-1a 64 over `data` — the WAL record checksum. Stable across
/// processes and platforms (no per-process seed), cheap, and plenty to
/// catch torn writes and bit flips (this is corruption *detection*, not
/// an adversarial MAC).
pub fn checksum64(data: &[u8]) -> u64 {
    const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01b3;
    let mut h = OFFSET;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// Frames one operation as a WAL record (length + checksum + payload).
pub fn encode_record(op: &CatalogOp) -> Vec<u8> {
    let payload = op.encode();
    let mut out = Vec::with_capacity(12 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&checksum64(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
    out
}

/// What replaying a WAL byte image produced.
#[derive(Debug)]
pub struct Replay {
    /// The good records, in append order.
    pub ops: Vec<CatalogOp>,
    /// Byte offset just past the last good record — the length the file
    /// should be truncated to before appending again.
    pub good_len: u64,
    /// Bytes past `good_len` that were dropped (torn tail, corrupt
    /// record, or anything after one — order past a bad record is
    /// unknowable, so replay never resynchronizes).
    pub dropped_bytes: u64,
}

/// Replays a WAL byte image, stopping cleanly at the first torn or
/// corrupt record. A missing/garbled magic drops the whole image (the
/// file is not a WAL; `good_len` is 0 so the caller starts fresh).
pub fn replay(data: &[u8]) -> Replay {
    if data.len() < WAL_MAGIC.len() || &data[..WAL_MAGIC.len()] != WAL_MAGIC {
        return Replay {
            ops: Vec::new(),
            good_len: 0,
            dropped_bytes: data.len() as u64,
        };
    }
    let mut ops = Vec::new();
    let mut at = WAL_MAGIC.len();
    loop {
        let rest = &data[at..];
        if rest.is_empty() {
            break; // clean end
        }
        if rest.len() < 12 {
            break; // torn length/checksum prefix
        }
        let len = u32::from_le_bytes(rest[..4].try_into().unwrap());
        if len > MAX_RECORD_BYTES {
            break; // corrupt length prefix
        }
        let len = len as usize;
        let want = u64::from_le_bytes(rest[4..12].try_into().unwrap());
        if rest.len() < 12 + len {
            break; // torn payload
        }
        let payload = &rest[12..12 + len];
        if checksum64(payload) != want {
            break; // flipped bits
        }
        let Some(op) = CatalogOp::decode(Bytes::from(payload.to_vec())) else {
            break; // checksum ok but not a well-formed op
        };
        ops.push(op);
        at += 12 + len;
    }
    Replay {
        ops,
        good_len: at as u64,
        dropped_bytes: (data.len() - at) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops() -> Vec<CatalogOp> {
        vec![
            CatalogOp::Register {
                name: "tri".to_string(),
                graph: Bytes::from_static(b"fake-graph-bytes"),
            },
            CatalogOp::Mutate {
                name: "tri".to_string(),
                inserts: vec![(0, 3), (1, 3)],
                deletes: vec![(2, 0)],
            },
            CatalogOp::Delete {
                name: "tri".to_string(),
            },
        ]
    }

    fn image(ops: &[CatalogOp]) -> Vec<u8> {
        let mut out = WAL_MAGIC.to_vec();
        for op in ops {
            out.extend_from_slice(&encode_record(op));
        }
        out
    }

    #[test]
    fn ops_round_trip() {
        for op in ops() {
            assert_eq!(CatalogOp::decode(op.encode()), Some(op));
        }
    }

    #[test]
    fn purge_ops_round_trip_including_purge_all() {
        for name in ["tri", ""] {
            let op = CatalogOp::Purge {
                name: name.to_string(),
            };
            assert_eq!(CatalogOp::decode(op.encode()), Some(op));
        }
        // trailing bytes after the name are corruption, like Delete
        let mut raw = CatalogOp::Purge {
            name: "tri".to_string(),
        }
        .encode()
        .to_vec();
        raw.push(0);
        assert_eq!(CatalogOp::decode(Bytes::from(raw)), None);
    }

    #[test]
    fn replay_reads_everything_back_in_order() {
        let ops = ops();
        let img = image(&ops);
        let r = replay(&img);
        assert_eq!(r.ops, ops);
        assert_eq!(r.good_len, img.len() as u64);
        assert_eq!(r.dropped_bytes, 0);
    }

    #[test]
    fn torn_tail_drops_only_the_last_record() {
        let ops = ops();
        let img = image(&ops);
        let whole = image(&ops[..2]);
        for cut in whole.len() + 1..img.len() {
            let r = replay(&img[..cut]);
            assert_eq!(r.ops, ops[..2], "cut at {cut}");
            assert_eq!(r.good_len, whole.len() as u64);
            assert_eq!(r.dropped_bytes, (cut - whole.len()) as u64);
        }
    }

    #[test]
    fn bit_flip_stops_replay_at_the_flip() {
        let ops = ops();
        let img = image(&ops);
        let first = image(&ops[..1]).len();
        // flip one payload byte of the second record
        let mut bad = img.clone();
        bad[first + 13] ^= 0x40;
        let r = replay(&bad);
        assert_eq!(r.ops, ops[..1]);
        assert_eq!(r.good_len, first as u64);
    }

    #[test]
    fn bad_magic_drops_the_whole_image() {
        let mut img = image(&ops());
        img[0] = b'X';
        let r = replay(&img);
        assert!(r.ops.is_empty());
        assert_eq!(r.good_len, 0);
        assert_eq!(r.dropped_bytes, img.len() as u64);
    }

    #[test]
    fn absurd_length_prefix_is_corruption_not_allocation() {
        let mut img = WAL_MAGIC.to_vec();
        img.extend_from_slice(&u32::MAX.to_le_bytes());
        img.extend_from_slice(&0u64.to_le_bytes());
        let r = replay(&img);
        assert!(r.ops.is_empty());
        assert_eq!(r.good_len, WAL_MAGIC.len() as u64);
    }
}
