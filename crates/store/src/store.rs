//! The durable store: a data directory holding the WAL, per-graph
//! binary snapshots, and the optional outcome-cache dump.
//!
//! ```text
//! <data-dir>/
//!   wal.log          append-only CatalogOp records (see wal.rs)
//!   snap/<name>.antg one binary snapshot per persisted graph
//!   cache.json       outcome-cache dump from the last graceful shutdown
//!   events.meta      event-stream identity: epoch + base sequence
//!   cluster.seq      last cluster event applied (best-effort cursor)
//! ```
//!
//! Write path: every acknowledged register/mutate/delete is appended to
//! the WAL first (fsynced per [`FsyncPolicy`]); when the WAL grows past
//! the compaction thresholds the current graphs are snapshotted
//! (write-temp + rename, so a crash mid-compaction leaves either the
//! old or the new snapshot, never a torn one) and the WAL is reset.
//!
//! Recovery: load every snapshot, then replay the WAL tail over it.
//! Operations are last-writer-wins (see [`CatalogOp`]), so replaying a
//! WAL whose prefix is already reflected in a snapshot — the state a
//! crash mid-compaction leaves — converges to the same catalog.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use antruss_graph::{io_binary, CsrGraph};

use crate::wal::{self, CatalogOp, WAL_MAGIC};

/// WAL record count past which [`Store::should_compact`] fires.
pub const DEFAULT_COMPACT_RECORDS: u64 = 1024;

/// WAL byte size past which [`Store::should_compact`] fires.
pub const DEFAULT_COMPACT_BYTES: u64 = 8 * 1024 * 1024;

/// When appended records are flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// `fsync` after every record: an acknowledged operation survives
    /// power loss, at the cost of one sync per write.
    Always,
    /// `fsync` at most once per this many milliseconds: a machine crash
    /// can lose up to ~one interval of *acknowledged* operations, but a
    /// process crash (SIGKILL) loses nothing — the OS already has every
    /// completed `write`. A background flusher syncs the tail, so the
    /// bound holds even when an append is the last write for a while.
    Interval(u64),
    /// Never `fsync` explicitly; durability is whatever the OS flushes
    /// on its own. Still crash-safe against process death.
    Never,
}

impl FsyncPolicy {
    /// Parses the CLI spelling: `always` | `interval:<ms>` | `never`.
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => match other.strip_prefix("interval:") {
                Some(ms) => match ms.parse::<u64>() {
                    Ok(ms) if ms > 0 => Ok(FsyncPolicy::Interval(ms)),
                    _ => Err(format!(
                        "bad fsync interval {ms:?} (want a positive ms count)"
                    )),
                },
                None => Err(format!(
                    "unknown fsync policy {other:?} (expected always|interval:<ms>|never)"
                )),
            },
        }
    }
}

impl std::fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FsyncPolicy::Always => write!(f, "always"),
            FsyncPolicy::Interval(ms) => write!(f, "interval:{ms}"),
            FsyncPolicy::Never => write!(f, "never"),
        }
    }
}

impl Default for FsyncPolicy {
    /// `interval:100` — crash-safe against process death, bounded loss
    /// window against power loss, and no per-request sync stall.
    fn default() -> FsyncPolicy {
        FsyncPolicy::Interval(100)
    }
}

/// A point-in-time snapshot of the store counters (the `/metrics`
/// `store` section).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Current WAL size in bytes (header included).
    pub wal_bytes: u64,
    /// Records in the current WAL (since the last compaction).
    pub wal_records: u64,
    /// Graph snapshots currently on disk.
    pub snapshots: u64,
    /// Compactions performed over the store's lifetime.
    pub compactions: u64,
    /// Wall-clock milliseconds the last compaction took.
    pub last_compaction_ms: u64,
    /// Wall-clock milliseconds startup recovery took (disk load + replay).
    pub recovery_ms: u64,
    /// Graphs restored from snapshots at startup.
    pub recovered_graphs: u64,
    /// WAL operations replayed at startup.
    pub recovered_ops: u64,
    /// Torn/corrupt WAL tail bytes dropped at startup.
    pub dropped_bytes: u64,
}

/// What [`Store::open`] found on disk: snapshots first, then the WAL
/// tail to replay over them, in append order.
pub struct Recovered {
    /// Snapshotted graphs, sorted by name.
    pub graphs: Vec<(String, CsrGraph)>,
    /// WAL operations appended since the last compaction.
    pub ops: Vec<CatalogOp>,
}

struct WalWriter {
    file: File,
    last_sync: Instant,
    /// Set by appends that did not sync; the interval flusher clears it.
    dirty: bool,
}

/// Takes an exclusive advisory lock on `DIR/.lock`. Two processes
/// appending to one WAL would interleave records and tear each other's
/// writes, so a second `Store::open` on a live directory must fail
/// loudly instead. The lock is tied to the returned handle: the kernel
/// releases it when the file closes — including on SIGKILL — so a
/// crashed process never leaves a stale lock behind.
#[cfg(unix)]
pub(crate) fn lock_dir(dir: &Path) -> io::Result<File> {
    use std::os::unix::io::AsRawFd as _;
    extern "C" {
        // libc is already linked by std; LOCK_EX|LOCK_NB = 2|4 on every
        // unix we run (the same linking trick as the service's SIGINT
        // handler)
        fn flock(fd: i32, operation: i32) -> i32;
    }
    let f = OpenOptions::new()
        .create(true)
        .truncate(false)
        .write(true)
        .open(dir.join(".lock"))?;
    if unsafe { flock(f.as_raw_fd(), 2 | 4) } != 0 {
        return Err(io::Error::new(
            io::ErrorKind::WouldBlock,
            format!(
                "data dir {} is already locked by another antruss process",
                dir.display()
            ),
        ));
    }
    Ok(f)
}

/// Non-unix fallback: no advisory locking, the handle is just held.
#[cfg(not(unix))]
pub(crate) fn lock_dir(dir: &Path) -> io::Result<File> {
    OpenOptions::new()
        .create(true)
        .truncate(false)
        .write(true)
        .open(dir.join(".lock"))
}

/// One durable data directory. Share via `Arc`; appends are serialized
/// internally (callers additionally serialize catalog writes, which
/// fixes the log order to the apply order).
pub struct Store {
    dir: PathBuf,
    policy: FsyncPolicy,
    wal: Arc<Mutex<WalWriter>>,
    /// Held for the store's lifetime; closing it (drop, or process
    /// death) releases the directory to the next opener.
    _dir_lock: File,
    /// Stops the interval flusher thread.
    flusher_stop: Arc<std::sync::atomic::AtomicBool>,
    flusher: Option<std::thread::JoinHandle<()>>,
    wal_bytes: AtomicU64,
    wal_records: AtomicU64,
    snapshots: AtomicU64,
    compactions: AtomicU64,
    last_compaction_ms: AtomicU64,
    recovery_ms: AtomicU64,
    recovered_graphs: AtomicU64,
    recovered_ops: AtomicU64,
    dropped_bytes: AtomicU64,
    compact_records: AtomicU64,
    compact_bytes: AtomicU64,
    /// Event-stream identity: a random id minted when the data dir is
    /// created and kept for its lifetime, so a subscriber can tell "the
    /// same log, resumed" from "a different store wearing the same
    /// address".
    event_epoch: u64,
    /// WAL sequence numbers already folded into snapshots: the seq of
    /// the first record of the *current* WAL is `event_base_seq + 1`.
    event_base_seq: AtomicU64,
}

fn bad_data(e: impl std::fmt::Display) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, e.to_string())
}

/// A process-unique 64-bit id with no global state: wall-clock nanos
/// mixed with the pid through the WAL's FNV permutation. Not
/// cryptographic — it only has to distinguish store generations.
fn random_epoch() -> u64 {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0);
    let pid = std::process::id() as u64;
    let h = wal::checksum64(&nanos.to_le_bytes()) ^ wal::checksum64(&pid.to_le_bytes());
    h.max(1) // 0 is reserved for "no epoch"
}

/// Reads `events.meta` (`epoch base_seq`), minting and persisting a
/// fresh identity when the file is absent (new data dir, or one created
/// before event streaming existed — either way the stream starts here).
fn load_or_create_events_meta(dir: &Path, wal_records: u64) -> io::Result<(u64, u64)> {
    let path = dir.join("events.meta");
    match fs::read_to_string(&path) {
        Ok(text) => {
            let mut it = text.split_whitespace();
            let epoch = it.next().and_then(|s| s.parse::<u64>().ok());
            let base = it.next().and_then(|s| s.parse::<u64>().ok());
            if let (Some(epoch), Some(base)) = (epoch, base) {
                if epoch != 0 {
                    return Ok((epoch, base));
                }
            }
            // unreadable meta: the cursor space is unknowable, so mint a
            // new epoch — subscribers resync rather than alias sequences
            let epoch = random_epoch();
            write_events_meta(dir, epoch, 0)?;
            Ok((epoch, 0))
        }
        Err(e) if e.kind() == io::ErrorKind::NotFound => {
            // pre-existing WALs (written before events.meta) keep their
            // records addressable: base stays 0 and the current records
            // take seqs 1..=wal_records under the fresh epoch
            let _ = wal_records;
            let epoch = random_epoch();
            write_events_meta(dir, epoch, 0)?;
            Ok((epoch, 0))
        }
        Err(e) => Err(e),
    }
}

/// Persists an event-stream identity (`epoch base_seq`) into `dir` with
/// write-temp + rename. Public because the cluster router reuses the
/// same file format for *its* event cursor inside its own data dir.
pub fn write_events_meta(dir: &Path, epoch: u64, base: u64) -> io::Result<()> {
    let tmp = dir.join("events.meta.new");
    let mut f = File::create(&tmp)?;
    f.write_all(format!("{epoch} {base}\n").as_bytes())?;
    f.sync_data()?;
    fs::rename(&tmp, dir.join("events.meta"))
}

/// Reads a previously written `events.meta` from `dir`, if present and
/// well-formed (epoch 0 — "no epoch" — counts as absent).
pub fn read_events_meta(dir: &Path) -> Option<(u64, u64)> {
    let text = fs::read_to_string(dir.join("events.meta")).ok()?;
    let mut it = text.split_whitespace();
    let epoch = it.next()?.parse::<u64>().ok()?;
    let base = it.next()?.parse::<u64>().ok()?;
    (epoch != 0).then_some((epoch, base))
}

impl Store {
    /// Opens (creating if absent) the data directory at `dir` and reads
    /// everything back: snapshots, then the WAL tail. A torn or corrupt
    /// WAL tail is dropped and the file truncated to its last good
    /// record, so subsequent appends extend a clean log.
    pub fn open<P: AsRef<Path>>(dir: P, policy: FsyncPolicy) -> io::Result<(Store, Recovered)> {
        let started = Instant::now();
        let dir = dir.as_ref().to_path_buf();
        let snap_dir = dir.join("snap");
        fs::create_dir_all(&snap_dir)?;
        let dir_lock = lock_dir(&dir)?;

        // leftovers of a compaction that crashed mid-write
        for entry in fs::read_dir(&snap_dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name.starts_with(".tmp-") {
                let _ = fs::remove_file(&path);
            }
        }

        let mut graphs: Vec<(String, CsrGraph)> = Vec::new();
        for entry in fs::read_dir(&snap_dir)? {
            let path = entry?.path();
            let Some(stem) = path
                .file_name()
                .and_then(|n| n.to_str())
                .and_then(|n| n.strip_suffix(".antg"))
            else {
                continue;
            };
            let graph = io_binary::read_binary_path(&path).map_err(bad_data)?;
            graphs.push((stem.to_string(), graph));
        }
        graphs.sort_by(|(a, _), (b, _)| a.cmp(b));

        let wal_path = dir.join("wal.log");
        let image = match fs::read(&wal_path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let replayed = if image.is_empty() {
            wal::Replay {
                ops: Vec::new(),
                good_len: 0,
                dropped_bytes: 0,
            }
        } else {
            wal::replay(&image)
        };

        let file = if replayed.good_len == 0 {
            // fresh (or unusable) log: start over with a clean header
            let mut f = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&wal_path)?;
            f.write_all(WAL_MAGIC)?;
            f.sync_data()?;
            f
        } else {
            let f = OpenOptions::new().write(true).open(&wal_path)?;
            if replayed.good_len < image.len() as u64 {
                f.set_len(replayed.good_len)?;
                f.sync_data()?;
            }
            f
        };
        let mut writer = WalWriter {
            file,
            last_sync: Instant::now(),
            dirty: false,
        };
        use std::io::Seek as _;
        writer.file.seek(io::SeekFrom::End(0))?;
        let wal = Arc::new(Mutex::new(writer));

        // the interval policy's durability bound ("at most one interval
        // behind") must hold even when writes stop: a background
        // flusher syncs any append the piggyback path left dirty
        let flusher_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let flusher = if let FsyncPolicy::Interval(ms) = policy {
            let wal = Arc::clone(&wal);
            let stop = Arc::clone(&flusher_stop);
            Some(
                antruss_obs::prof::spawn("antruss-store-flusher", "flusher", move || {
                    let tick = Duration::from_millis(ms.clamp(1, 100));
                    let interval = Duration::from_millis(ms);
                    while !stop.load(Ordering::Relaxed) {
                        std::thread::sleep(tick);
                        let mut wal = wal.lock().unwrap();
                        if wal.dirty
                            && wal.last_sync.elapsed() >= interval
                            && wal.file.sync_data().is_ok()
                        {
                            wal.dirty = false;
                            wal.last_sync = Instant::now();
                        }
                    }
                })
                .expect("spawn store flusher"),
            )
        } else {
            None
        };

        let (event_epoch, event_base_seq) =
            load_or_create_events_meta(&dir, replayed.ops.len() as u64)?;

        let wal_bytes = replayed.good_len.max(WAL_MAGIC.len() as u64);
        let store = Store {
            policy,
            wal,
            _dir_lock: dir_lock,
            flusher_stop,
            flusher,
            wal_bytes: AtomicU64::new(wal_bytes),
            wal_records: AtomicU64::new(replayed.ops.len() as u64),
            snapshots: AtomicU64::new(graphs.len() as u64),
            compactions: AtomicU64::new(0),
            last_compaction_ms: AtomicU64::new(0),
            recovery_ms: AtomicU64::new(started.elapsed().as_millis() as u64),
            recovered_graphs: AtomicU64::new(graphs.len() as u64),
            recovered_ops: AtomicU64::new(replayed.ops.len() as u64),
            dropped_bytes: AtomicU64::new(replayed.dropped_bytes),
            compact_records: AtomicU64::new(DEFAULT_COMPACT_RECORDS),
            compact_bytes: AtomicU64::new(DEFAULT_COMPACT_BYTES),
            event_epoch,
            event_base_seq: AtomicU64::new(event_base_seq),
            dir,
        };
        Ok((
            store,
            Recovered {
                graphs,
                ops: replayed.ops,
            },
        ))
    }

    /// The data directory this store lives in.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configured fsync policy.
    pub fn policy(&self) -> FsyncPolicy {
        self.policy
    }

    /// The event-stream epoch: minted once when the data dir is
    /// created, stable across restarts and compactions. Cursors are
    /// only meaningful within one epoch.
    pub fn event_epoch(&self) -> u64 {
        self.event_epoch
    }

    /// Sequence numbers already folded into snapshots: the op recovered
    /// at `Recovered::ops[i]` carries event seq `event_base_seq + i + 1`,
    /// and the recovered head is `event_base_seq + ops.len()`.
    pub fn event_base_seq(&self) -> u64 {
        self.event_base_seq.load(Ordering::Relaxed)
    }

    /// Persists the last cluster event this backend applied
    /// (`router epoch`, `seq`) — the cursor it advertises when
    /// re-joining so the router can catch it up from the event tail
    /// instead of a full dump/load re-warm. Best-effort: losing it just
    /// costs a cold-start warm.
    pub fn save_cluster_cursor(&self, epoch: u64, seq: u64) -> io::Result<()> {
        let tmp = self.dir.join("cluster.seq.new");
        let mut f = File::create(&tmp)?;
        f.write_all(format!("{epoch} {seq}\n").as_bytes())?;
        f.sync_data()?;
        fs::rename(&tmp, self.dir.join("cluster.seq"))
    }

    /// Reads the persisted cluster cursor, if any.
    pub fn load_cluster_cursor(&self) -> Option<(u64, u64)> {
        let text = fs::read_to_string(self.dir.join("cluster.seq")).ok()?;
        let mut it = text.split_whitespace();
        let epoch = it.next()?.parse::<u64>().ok()?;
        let seq = it.next()?.parse::<u64>().ok()?;
        Some((epoch, seq))
    }

    /// Appends one operation to the WAL and flushes per the fsync
    /// policy. On `Ok`, the operation is in the log (and, under
    /// [`FsyncPolicy::Always`], on stable storage) — only then may the
    /// caller acknowledge it.
    pub fn append(&self, op: &CatalogOp) -> io::Result<()> {
        let record = wal::encode_record(op);
        // replay treats any length prefix past MAX_RECORD_BYTES as
        // corruption, so an oversized record must be refused *here* —
        // writing it would acknowledge an operation that recovery then
        // silently drops along with the whole WAL suffix
        if record.len().saturating_sub(12) > wal::MAX_RECORD_BYTES as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "operation too large for the WAL ({} payload bytes; max {})",
                    record.len() - 12,
                    wal::MAX_RECORD_BYTES
                ),
            ));
        }
        let mut wal = self.wal.lock().unwrap();
        wal.file.write_all(&record)?;
        match self.policy {
            FsyncPolicy::Always => {
                wal.file.sync_data()?;
                wal.last_sync = Instant::now();
            }
            FsyncPolicy::Interval(ms) => {
                if wal.last_sync.elapsed().as_millis() as u64 >= ms {
                    wal.file.sync_data()?;
                    wal.last_sync = Instant::now();
                    wal.dirty = false;
                } else {
                    // the background flusher picks this up within the
                    // interval even if no further append arrives
                    wal.dirty = true;
                }
            }
            FsyncPolicy::Never => {}
        }
        self.wal_bytes
            .fetch_add(record.len() as u64, Ordering::Relaxed);
        self.wal_records.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Whether the WAL has outgrown its thresholds and the caller
    /// should snapshot + reset via [`Store::compact`].
    pub fn should_compact(&self) -> bool {
        self.wal_records.load(Ordering::Relaxed) >= self.compact_records.load(Ordering::Relaxed)
            || self.wal_bytes.load(Ordering::Relaxed) >= self.compact_bytes.load(Ordering::Relaxed)
    }

    /// Overrides the compaction thresholds (tests and benchmarks force
    /// early compactions with this).
    pub fn set_compaction_thresholds(&self, records: u64, bytes: u64) {
        self.compact_records
            .store(records.max(1), Ordering::Relaxed);
        self.compact_bytes.store(bytes.max(1), Ordering::Relaxed);
    }

    /// Records the full recovery wall-clock (disk load + catalog
    /// replay); [`Store::open`] pre-fills the disk-load share, the
    /// service overwrites it once replay finishes.
    pub fn note_recovery_ms(&self, ms: u64) {
        self.recovery_ms.store(ms, Ordering::Relaxed);
    }

    /// Snapshots `graphs` (the catalog's current persisted set) and
    /// resets the WAL. Each snapshot is written to a temp file and
    /// renamed into place; snapshots of graphs no longer in the set are
    /// removed. Caller must serialize this with catalog writes so the
    /// set is consistent with the log position.
    pub fn compact(&self, graphs: &[(String, Arc<CsrGraph>)]) -> io::Result<()> {
        let started = Instant::now();
        let folded = self.wal_records.load(Ordering::Relaxed);
        let snap_dir = self.dir.join("snap");
        let mut keep: Vec<String> = Vec::with_capacity(graphs.len());
        for (name, graph) in graphs {
            if !snapshot_safe(name) {
                continue; // defensive: catalog names are pre-validated
            }
            let tmp = snap_dir.join(format!(".tmp-{name}.antg"));
            let finally = snap_dir.join(format!("{name}.antg"));
            let mut f = File::create(&tmp)?;
            io_binary::write_binary(graph, &mut f).map_err(bad_data)?;
            f.sync_data()?;
            fs::rename(&tmp, &finally)?;
            keep.push(format!("{name}.antg"));
        }
        for entry in fs::read_dir(&snap_dir)? {
            let path = entry?.path();
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if !keep.iter().any(|k| k == name) {
                let _ = fs::remove_file(&path);
            }
        }
        // reset the WAL last: write-temp + rename, then swap the handle
        let tmp = self.dir.join("wal.log.new");
        let mut fresh = File::create(&tmp)?;
        fresh.write_all(WAL_MAGIC)?;
        fresh.sync_data()?;
        {
            let mut wal = self.wal.lock().unwrap();
            fs::rename(&tmp, self.dir.join("wal.log"))?;
            wal.file = OpenOptions::new()
                .append(true)
                .open(self.dir.join("wal.log"))?;
            wal.last_sync = Instant::now();
            wal.dirty = false;
        }
        self.wal_bytes
            .store(WAL_MAGIC.len() as u64, Ordering::Relaxed);
        self.wal_records.store(0, Ordering::Relaxed);
        // the folded records' sequence numbers are spoken for: advance
        // the base so the fresh WAL's first record continues the event
        // sequence instead of reusing it
        let base = self.event_base_seq.fetch_add(folded, Ordering::Relaxed) + folded;
        write_events_meta(&self.dir, self.event_epoch, base)?;
        self.snapshots.store(keep.len() as u64, Ordering::Relaxed);
        self.compactions.fetch_add(1, Ordering::Relaxed);
        self.last_compaction_ms
            .store(started.elapsed().as_millis() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Persists an outcome-cache dump (the `/cache/dump` JSON) for a
    /// warm restart. Written on graceful shutdown only; a crash simply
    /// leaves no dump and the cache re-warms from peers or recomputes.
    pub fn persist_cache(&self, dump_json: &str) -> io::Result<()> {
        let tmp = self.dir.join("cache.json.new");
        let mut f = File::create(&tmp)?;
        f.write_all(dump_json.as_bytes())?;
        f.sync_data()?;
        fs::rename(&tmp, self.dir.join("cache.json"))
    }

    /// Takes (reads **and removes**) the persisted cache dump, if one
    /// exists. Consumed on startup: the dump is only valid for the
    /// exact catalog state it was written against, so it must never
    /// survive into a later, possibly-diverged run.
    pub fn take_cache(&self) -> io::Result<Option<String>> {
        let path = self.dir.join("cache.json");
        match fs::read_to_string(&path) {
            Ok(text) => {
                fs::remove_file(&path)?;
                Ok(Some(text))
            }
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    /// Current counters.
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            wal_bytes: self.wal_bytes.load(Ordering::Relaxed),
            wal_records: self.wal_records.load(Ordering::Relaxed),
            snapshots: self.snapshots.load(Ordering::Relaxed),
            compactions: self.compactions.load(Ordering::Relaxed),
            last_compaction_ms: self.last_compaction_ms.load(Ordering::Relaxed),
            recovery_ms: self.recovery_ms.load(Ordering::Relaxed),
            recovered_graphs: self.recovered_graphs.load(Ordering::Relaxed),
            recovered_ops: self.recovered_ops.load(Ordering::Relaxed),
            dropped_bytes: self.dropped_bytes.load(Ordering::Relaxed),
        }
    }
}

impl Drop for Store {
    /// Stops the interval flusher and syncs any dirty WAL tail, so a
    /// graceful shutdown never leaves acknowledged records unsynced.
    fn drop(&mut self) {
        self.flusher_stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.flusher.take() {
            let _ = h.join();
        }
        if let Ok(mut wal) = self.wal.lock() {
            if wal.dirty {
                let _ = wal.file.sync_data();
                wal.dirty = false;
            }
        }
    }
}

/// Whether `name` may become a snapshot file name. Catalog names are
/// validated to `[a-z0-9_.-]` (no leading dot) before they reach the
/// store, so this only guards against a future caller skipping that
/// validation.
fn snapshot_safe(name: &str) -> bool {
    !name.is_empty()
        && !name.starts_with('.')
        && name
            .bytes()
            .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b"_.-".contains(&b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use antruss_graph::gen::gnm;
    use bytes::Bytes;

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("antruss-store-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_and_recover_round_trip() {
        let dir = tmp("roundtrip");
        let g = gnm(20, 50, 3);
        let ops = vec![
            CatalogOp::Register {
                name: "g".to_string(),
                graph: io_binary::to_bytes(&g),
            },
            CatalogOp::Mutate {
                name: "g".to_string(),
                inserts: vec![(0, 19)],
                deletes: vec![],
            },
        ];
        {
            let (store, recovered) = Store::open(&dir, FsyncPolicy::Always).unwrap();
            assert!(recovered.graphs.is_empty() && recovered.ops.is_empty());
            for op in &ops {
                store.append(op).unwrap();
            }
            assert_eq!(store.stats().wal_records, 2);
        }
        let (store, recovered) = Store::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(recovered.ops, ops);
        assert_eq!(store.stats().recovered_ops, 2);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_snapshots_and_resets_the_wal() {
        let dir = tmp("compact");
        let g = Arc::new(gnm(20, 50, 3));
        let (store, _) = Store::open(&dir, FsyncPolicy::Never).unwrap();
        store
            .append(&CatalogOp::Register {
                name: "g".to_string(),
                graph: io_binary::to_bytes(&g),
            })
            .unwrap();
        store.compact(&[("g".to_string(), Arc::clone(&g))]).unwrap();
        let s = store.stats();
        assert_eq!((s.wal_records, s.snapshots, s.compactions), (0, 1, 1));
        // post-compaction appends land in the fresh log
        store
            .append(&CatalogOp::Delete {
                name: "g".to_string(),
            })
            .unwrap();
        drop(store);
        let (_, recovered) = Store::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(recovered.graphs.len(), 1);
        assert_eq!(recovered.graphs[0].0, "g");
        assert_eq!(recovered.graphs[0].1.num_edges(), g.num_edges());
        assert_eq!(
            recovered.ops,
            vec![CatalogOp::Delete {
                name: "g".to_string()
            }]
        );
        // a second compaction with an empty set removes the snapshot
        let (store, _) = Store::open(&dir, FsyncPolicy::Never).unwrap();
        store.compact(&[]).unwrap();
        assert_eq!(store.stats().snapshots, 0);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmp("torn");
        {
            let (store, _) = Store::open(&dir, FsyncPolicy::Always).unwrap();
            for i in 0..3 {
                store
                    .append(&CatalogOp::Delete {
                        name: format!("g{i}"),
                    })
                    .unwrap();
            }
        }
        let path = dir.join("wal.log");
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let (store, recovered) = Store::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(recovered.ops.len(), 2, "torn third record dropped");
        assert!(store.stats().dropped_bytes > 0);
        // the file was truncated to the good prefix: appending again
        // yields a clean log of 3 records
        store
            .append(&CatalogOp::Delete {
                name: "g9".to_string(),
            })
            .unwrap();
        drop(store);
        let (_, recovered) = Store::open(&dir, FsyncPolicy::Always).unwrap();
        assert_eq!(recovered.ops.len(), 3);
        assert_eq!(recovered.ops[2].name(), "g9");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn second_open_of_a_live_data_dir_is_refused() {
        let dir = tmp("lock");
        let (store, _) = Store::open(&dir, FsyncPolicy::Never).unwrap();
        let err = match Store::open(&dir, FsyncPolicy::Never) {
            Err(e) => e,
            Ok(_) => panic!("second open of a live data dir must be refused"),
        };
        assert!(err.to_string().contains("locked"), "{err}");
        // dropping the store releases the directory to the next opener
        drop(store);
        assert!(Store::open(&dir, FsyncPolicy::Never).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn interval_policy_flushes_the_tail_without_further_appends() {
        let dir = tmp("flusher");
        let (store, _) = Store::open(&dir, FsyncPolicy::Interval(10)).unwrap();
        store
            .append(&CatalogOp::Delete {
                name: "g".to_string(),
            })
            .unwrap();
        // the piggyback path left this append dirty (last sync was at
        // open); the background flusher must clear it within ~interval
        let deadline = Instant::now() + Duration::from_secs(5);
        let cleared = loop {
            if !store.wal.lock().unwrap().dirty {
                break true;
            }
            if Instant::now() > deadline {
                break false;
            }
            std::thread::sleep(Duration::from_millis(5));
        };
        assert!(cleared, "flusher never synced the dirty tail");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn fsync_policy_parses_and_displays() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Ok(FsyncPolicy::Never));
        assert_eq!(
            FsyncPolicy::parse("interval:250"),
            Ok(FsyncPolicy::Interval(250))
        );
        assert!(FsyncPolicy::parse("interval:0").is_err());
        assert!(FsyncPolicy::parse("interval:x").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(FsyncPolicy::Interval(250).to_string(), "interval:250");
        assert_eq!(FsyncPolicy::default(), FsyncPolicy::Interval(100));
    }

    #[test]
    fn event_identity_survives_restart_and_compaction() {
        let dir = tmp("events-meta");
        let (epoch, head) = {
            let (store, _) = Store::open(&dir, FsyncPolicy::Never).unwrap();
            assert_ne!(store.event_epoch(), 0);
            assert_eq!(store.event_base_seq(), 0);
            for i in 0..3 {
                store
                    .append(&CatalogOp::Purge {
                        name: format!("g{i}"),
                    })
                    .unwrap();
            }
            (store.event_epoch(), store.stats().wal_records)
        };
        // restart: same epoch, and base + replayed ops reproduces the head
        let (store, recovered) = Store::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(store.event_epoch(), epoch);
        assert_eq!(
            store.event_base_seq() + recovered.ops.len() as u64,
            head,
            "recovered head diverged"
        );
        // compaction folds the WAL but the sequence space keeps advancing
        store.compact(&[]).unwrap();
        assert_eq!(store.event_base_seq(), 3);
        store
            .append(&CatalogOp::Purge {
                name: "g9".to_string(),
            })
            .unwrap();
        drop(store);
        let (store, recovered) = Store::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(store.event_epoch(), epoch);
        assert_eq!(store.event_base_seq() + recovered.ops.len() as u64, 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cluster_cursor_round_trips() {
        let dir = tmp("cluster-cursor");
        let (store, _) = Store::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(store.load_cluster_cursor(), None);
        store.save_cluster_cursor(7, 42).unwrap();
        assert_eq!(store.load_cluster_cursor(), Some((7, 42)));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn cache_dump_is_consumed_once() {
        let dir = tmp("cache");
        let (store, _) = Store::open(&dir, FsyncPolicy::Never).unwrap();
        assert_eq!(store.take_cache().unwrap(), None);
        store.persist_cache("[1,2,3]").unwrap();
        assert_eq!(store.take_cache().unwrap().as_deref(), Some("[1,2,3]"));
        assert_eq!(store.take_cache().unwrap(), None, "consumed");
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn register_payloads_round_trip_through_real_graphs() {
        let g = gnm(30, 80, 7);
        let op = CatalogOp::Register {
            name: "real".to_string(),
            graph: io_binary::to_bytes(&g),
        };
        let CatalogOp::Register { graph, .. } = CatalogOp::decode(op.encode()).unwrap() else {
            panic!("wrong op");
        };
        let h = io_binary::from_bytes(Bytes::from(graph.to_vec())).unwrap();
        assert_eq!(h.num_edges(), g.num_edges());
    }
}
