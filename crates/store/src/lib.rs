//! # antruss-store
//!
//! Durability for the serving tier's graph catalog. The paper's
//! anchoring outcomes are deterministic functions of the graph, so the
//! expensive state worth protecting is the catalog of registered graphs
//! plus their mutation history — everything else (truss decompositions,
//! solve outcomes) is recomputable or re-warmable from peers.
//!
//! Three pieces:
//!
//! * [`wal`] — [`CatalogOp`] (register / mutate edge-batch / delete) as
//!   checksummed, length-prefixed, append-only records; torn-tail and
//!   bit-flip tolerant replay;
//! * [`store::Store`] — a data directory holding the WAL, per-graph
//!   binary snapshots (the [`antruss_graph::io_binary`] `.antg` layout),
//!   and the graceful-shutdown outcome-cache dump; compaction folds the
//!   WAL into snapshots with write-temp + rename;
//! * [`FsyncPolicy`] — `always` | `interval:<ms>` | `never`, the
//!   durability/latency dial surfaced as `antruss serve --fsync`;
//! * [`oplog::OpLog`] — the same record discipline over opaque
//!   payloads, for durable state defined in other crates (the cluster
//!   router's `MemberOp` stream logs through this).
//!
//! The service (`antruss serve --data-dir`) appends every successful
//! catalog write *before acknowledging it*, and replays snapshot + WAL
//! tail at startup; the cluster tier then prefers this local recovery
//! over peer transfer when re-admitting a restarted member.

#![warn(missing_docs)]

pub mod oplog;
pub mod store;
pub mod wal;

pub use oplog::OpLog;
pub use store::{FsyncPolicy, Recovered, Store, StoreStats};
pub use wal::CatalogOp;
