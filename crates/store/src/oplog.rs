//! A payload-agnostic append-only operation log with the WAL's record
//! discipline (length + FNV-1a checksum framing, torn-tail-tolerant
//! replay, exclusive dir lock), for durable state whose operation type
//! lives in another crate.
//!
//! The first consumer is the cluster router's member table: `MemberOp`
//! is defined in `antruss-cluster` (which depends on this crate, not
//! the other way around), so the router logs encoded ops through
//! [`OpLog`] and decodes the replayed payloads itself. Appends are
//! `fsync`ed unconditionally — membership transitions are rare and
//! each one re-places a slice of the keyspace, so the control plane
//! always takes the `FsyncPolicy::Always` trade.

use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek as _, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use bytes::Bytes;

use crate::store::lock_dir;
use crate::wal::{self, MAX_RECORD_BYTES};

/// First 8 bytes of every [`OpLog`] file — distinct from the catalog
/// WAL's magic so neither replayer ever misreads the other's records.
pub const OPLOG_MAGIC: &[u8; 8] = b"ANTOPL01";

/// One durable operation log inside a data directory. Share via `Arc`;
/// appends are serialized internally.
pub struct OpLog {
    file: Mutex<File>,
    path: PathBuf,
    /// Held for the log's lifetime; closing it (drop, or process death)
    /// releases the directory to the next opener.
    _dir_lock: File,
    records: AtomicU64,
    bytes: AtomicU64,
    recovered: u64,
    dropped_bytes: u64,
}

impl OpLog {
    /// Opens (creating if absent) `dir/<name>` and replays every intact
    /// record, truncating a torn or corrupt tail so subsequent appends
    /// extend a clean log. Takes the directory's exclusive lock — two
    /// processes appending to one log would tear each other's records.
    pub fn open<P: AsRef<Path>>(dir: P, name: &str) -> io::Result<(OpLog, Vec<Bytes>)> {
        let dir = dir.as_ref();
        fs::create_dir_all(dir)?;
        let dir_lock = lock_dir(dir)?;
        let path = dir.join(name);
        let image = match fs::read(&path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let replayed = wal::replay_raw(&image, OPLOG_MAGIC);
        let file = if image.is_empty() || replayed.good_len == 0 {
            let mut f = OpenOptions::new()
                .create(true)
                .write(true)
                .truncate(true)
                .open(&path)?;
            f.write_all(OPLOG_MAGIC)?;
            f.sync_data()?;
            f
        } else {
            let f = OpenOptions::new().write(true).open(&path)?;
            if replayed.good_len < image.len() as u64 {
                f.set_len(replayed.good_len)?;
                f.sync_data()?;
            }
            f
        };
        let mut file = file;
        file.seek(io::SeekFrom::End(0))?;
        let bytes = replayed.good_len.max(OPLOG_MAGIC.len() as u64);
        let log = OpLog {
            file: Mutex::new(file),
            path,
            _dir_lock: dir_lock,
            records: AtomicU64::new(replayed.payloads.len() as u64),
            bytes: AtomicU64::new(bytes),
            recovered: replayed.payloads.len() as u64,
            dropped_bytes: replayed.dropped_bytes,
        };
        Ok((log, replayed.payloads))
    }

    /// Appends one payload and syncs it to stable storage. On `Ok` the
    /// record survives SIGKILL and power loss.
    pub fn append(&self, payload: &[u8]) -> io::Result<()> {
        if payload.len() > MAX_RECORD_BYTES as usize {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                format!(
                    "payload too large for the op log ({} bytes; max {MAX_RECORD_BYTES})",
                    payload.len()
                ),
            ));
        }
        let record = wal::encode_raw_record(payload);
        let mut file = self.file.lock().unwrap();
        file.write_all(&record)?;
        file.sync_data()?;
        self.bytes.fetch_add(record.len() as u64, Ordering::Relaxed);
        self.records.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Rewrites the whole log as `payloads` (write-temp + rename, so a
    /// crash mid-compaction leaves either the old or the new log).
    /// Callers compact when superseded records dominate — the member
    /// table only needs each address's *latest* op.
    pub fn compact(&self, payloads: &[Bytes]) -> io::Result<()> {
        let tmp = self.path.with_extension("new");
        let mut fresh = File::create(&tmp)?;
        fresh.write_all(OPLOG_MAGIC)?;
        let mut total = OPLOG_MAGIC.len() as u64;
        for p in payloads {
            let record = wal::encode_raw_record(p);
            fresh.write_all(&record)?;
            total += record.len() as u64;
        }
        fresh.sync_data()?;
        let mut file = self.file.lock().unwrap();
        fs::rename(&tmp, &self.path)?;
        let mut swapped = OpenOptions::new().append(true).open(&self.path)?;
        swapped.seek(io::SeekFrom::End(0))?;
        *file = swapped;
        self.bytes.store(total, Ordering::Relaxed);
        self.records.store(payloads.len() as u64, Ordering::Relaxed);
        Ok(())
    }

    /// Records in the log right now (recovered + appended since open).
    pub fn records(&self) -> u64 {
        self.records.load(Ordering::Relaxed)
    }

    /// Current log size in bytes (header included).
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Records recovered at open.
    pub fn recovered(&self) -> u64 {
        self.recovered
    }

    /// Torn/corrupt tail bytes dropped at open.
    pub fn dropped_bytes(&self) -> u64 {
        self.dropped_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("antruss-oplog-unit-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn append_and_recover_round_trip() {
        let dir = tmp("roundtrip");
        {
            let (log, recovered) = OpLog::open(&dir, "ops.log").unwrap();
            assert!(recovered.is_empty());
            log.append(b"alpha").unwrap();
            log.append(b"").unwrap();
            log.append(b"gamma").unwrap();
            assert_eq!(log.records(), 3);
        }
        let (log, recovered) = OpLog::open(&dir, "ops.log").unwrap();
        assert_eq!(
            recovered,
            vec![
                Bytes::from_static(b"alpha"),
                Bytes::from_static(b""),
                Bytes::from_static(b"gamma"),
            ]
        );
        assert_eq!(log.recovered(), 3);
        // appends extend the recovered log
        log.append(b"delta").unwrap();
        drop(log);
        let (_, recovered) = OpLog::open(&dir, "ops.log").unwrap();
        assert_eq!(recovered.len(), 4);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let dir = tmp("torn");
        {
            let (log, _) = OpLog::open(&dir, "ops.log").unwrap();
            log.append(b"one").unwrap();
            log.append(b"two").unwrap();
        }
        let path = dir.join("ops.log");
        let len = fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 2)
            .unwrap();
        let (log, recovered) = OpLog::open(&dir, "ops.log").unwrap();
        assert_eq!(recovered, vec![Bytes::from_static(b"one")]);
        assert!(log.dropped_bytes() > 0);
        log.append(b"three").unwrap();
        drop(log);
        let (_, recovered) = OpLog::open(&dir, "ops.log").unwrap();
        assert_eq!(
            recovered,
            vec![Bytes::from_static(b"one"), Bytes::from_static(b"three")]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compact_keeps_only_the_given_payloads() {
        let dir = tmp("compact");
        let (log, _) = OpLog::open(&dir, "ops.log").unwrap();
        for i in 0..5 {
            log.append(format!("op{i}").as_bytes()).unwrap();
        }
        log.compact(&[Bytes::from_static(b"latest")]).unwrap();
        assert_eq!(log.records(), 1);
        // post-compaction appends land after the surviving records
        log.append(b"after").unwrap();
        drop(log);
        let (_, recovered) = OpLog::open(&dir, "ops.log").unwrap();
        assert_eq!(
            recovered,
            vec![Bytes::from_static(b"latest"), Bytes::from_static(b"after")]
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[cfg(unix)]
    #[test]
    fn second_open_of_a_live_log_dir_is_refused() {
        let dir = tmp("lock");
        let (log, _) = OpLog::open(&dir, "ops.log").unwrap();
        assert!(OpLog::open(&dir, "ops.log").is_err());
        drop(log);
        assert!(OpLog::open(&dir, "ops.log").is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }
}
