//! Error type for graph construction and I/O.

use std::fmt;

/// Errors produced while building or loading graphs.
#[derive(Debug)]
pub enum GraphError {
    /// Underlying I/O failure while reading or writing an edge list.
    Io(std::io::Error),
    /// A line of an edge-list file could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// The offending text.
        text: String,
    },
    /// The graph would exceed `u32` vertex or edge capacity.
    TooLarge(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::Io(e) => write!(f, "i/o error: {e}"),
            GraphError::Parse { line, text } => {
                write!(f, "parse error on line {line}: {text:?}")
            }
            GraphError::TooLarge(what) => write!(f, "graph too large: {what}"),
        }
    }
}

impl std::error::Error for GraphError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            GraphError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for GraphError {
    fn from(e: std::io::Error) -> Self {
        GraphError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = GraphError::Parse {
            line: 3,
            text: "x y z".into(),
        };
        assert!(e.to_string().contains("line 3"));
        let e = GraphError::TooLarge("5e9 edges".into());
        assert!(e.to_string().contains("too large"));
        let e = GraphError::from(std::io::Error::new(std::io::ErrorKind::NotFound, "nope"));
        assert!(e.to_string().contains("nope"));
    }
}
