//! Deterministic synthetic graph generators.
//!
//! The paper evaluates on eight SNAP social/web/road-style networks that are
//! not redistributable inside this repository. These generators produce
//! laptop-scale *analogues* with the structural features that drive the ATR
//! problem: heavy-tailed degrees, strong triadic closure (deep, uneven truss
//! hierarchies) and planted dense cores (to pin `k_max`). Every generator is
//! seeded and fully deterministic.

mod cliques;
mod er;
mod geometric;
mod smallworld;
mod social;

pub use cliques::{clique, clique_chain, planted_cliques};
pub use er::{gnm, gnp};
pub use geometric::random_geometric;
pub use smallworld::watts_strogatz;
pub use social::{social_network, OnionSpec, SocialParams};

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Constructs the workspace-standard deterministic RNG from a seed.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn rng_is_deterministic() {
        let mut a = rng(7);
        let mut b = rng(7);
        for _ in 0..16 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }
}
