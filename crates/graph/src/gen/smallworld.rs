//! Watts–Strogatz small-world graphs.

use crate::{CsrGraph, GraphBuilder};
use rand::Rng;

/// Watts–Strogatz ring lattice on `n` vertices, each joined to its `k`
/// nearest neighbours (`k` rounded down to even), with each edge rewired to
/// a uniform random endpoint with probability `beta`.
///
/// Small-world graphs have many short-range triangles, which makes them a
/// useful stress input for truss code that is distinct from the power-law
/// generator.
pub fn watts_strogatz(n: u32, k: u32, beta: f64, seed: u64) -> CsrGraph {
    let mut rng = super::rng(seed);
    let mut b = GraphBuilder::dense();
    if n > 0 {
        b.ensure_vertex(n as u64 - 1);
    }
    if n < 2 {
        return b.build();
    }
    let half = (k / 2).max(1).min(n.saturating_sub(1) / 2).max(1);
    for u in 0..n {
        for d in 1..=half {
            let v = (u + d) % n;
            if u == v {
                continue;
            }
            let (mut a, mut c) = (u, v);
            if beta > 0.0 && rng.gen_bool(beta.min(1.0)) {
                // rewire the far endpoint
                let mut w = rng.gen_range(0..n);
                let mut tries = 0;
                while (w == a || w == c) && tries < 16 {
                    w = rng.gen_range(0..n);
                    tries += 1;
                }
                if w != a && w != c {
                    c = w;
                }
            }
            if a > c {
                std::mem::swap(&mut a, &mut c);
            }
            b.add_edge(a as u64, c as u64);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::global_clustering;

    #[test]
    fn lattice_unwired() {
        let g = watts_strogatz(20, 4, 0.0, 1);
        assert_eq!(g.num_vertices(), 20);
        assert_eq!(g.num_edges(), 40); // n * k/2
        assert!(global_clustering(&g) > 0.3);
    }

    #[test]
    fn rewiring_reduces_clustering() {
        let a = global_clustering(&watts_strogatz(500, 8, 0.0, 2));
        let b = global_clustering(&watts_strogatz(500, 8, 0.9, 2));
        assert!(b < a, "rewired clustering {b} not below lattice {a}");
    }

    #[test]
    fn tiny_inputs() {
        assert_eq!(watts_strogatz(0, 4, 0.1, 3).num_vertices(), 0);
        assert_eq!(watts_strogatz(1, 4, 0.1, 3).num_edges(), 0);
        let g = watts_strogatz(3, 2, 0.0, 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn deterministic() {
        let a = watts_strogatz(100, 6, 0.3, 11);
        let b = watts_strogatz(100, 6, 0.3, 11);
        assert_eq!(a.num_edges(), b.num_edges());
    }
}
