//! Power-law + triadic-closure social network generator.
//!
//! The generator grows a graph by preferential attachment (heavy-tailed
//! degrees, like the SNAP social networks) where a tunable fraction of each
//! new vertex's edges close a wedge into a triangle (high clustering — the
//! property that gives social networks deep truss hierarchies). Dense cores
//! are planted as cliques up front so the analogue matches a target
//! `k_max`, mirroring the dense cores of the real datasets.

use crate::{CsrGraph, GraphBuilder};
use rand::Rng;

use super::cliques::add_clique;

/// An onion-layered community: a dense core clique wrapped in shells of
/// decaying connectivity.
///
/// Real social communities are not flat — they have dense cores and
/// progressively looser peripheries, which is what gives their truss
/// hierarchies mass at *middle* `k` values and long peel cascades (the
/// structures the ATR problem exploits). Each shell vertex attaches to a
/// member and a clique-like group of that member's neighbours, so its
/// edges land at a trussness that decays with the shell index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OnionSpec {
    /// Core clique size (the community's maximum trussness).
    pub core: u32,
    /// Number of shells around the core.
    pub shells: u32,
    /// Vertices per shell.
    pub shell_size: u32,
}

impl OnionSpec {
    /// Total vertices the onion occupies.
    pub fn vertices(&self) -> u64 {
        self.core as u64 + self.shells as u64 * self.shell_size as u64
    }
}

/// Parameters for [`social_network`].
#[derive(Debug, Clone)]
pub struct SocialParams {
    /// Total number of vertices (including planted-clique vertices).
    pub n: u32,
    /// Approximate number of edges to end with (filled up by extra
    /// wedge-closing edges after growth; never trimmed below the grown size).
    pub target_edges: usize,
    /// Edges contributed by each newly arriving vertex.
    pub attach: u32,
    /// Probability that an attachment closes a triangle instead of
    /// following pure preferential attachment. `0.0..=1.0`.
    pub closure: f64,
    /// Sizes of cliques planted on the first vertices (sets `k_max`).
    pub planted: Vec<u32>,
    /// Onion-layered communities planted after the cliques.
    pub onions: Vec<OnionSpec>,
    /// RNG seed.
    pub seed: u64,
}

impl Default for SocialParams {
    fn default() -> Self {
        SocialParams {
            n: 1_000,
            target_edges: 5_000,
            attach: 4,
            closure: 0.5,
            planted: vec![],
            onions: vec![],
            seed: 0,
        }
    }
}

/// Generates a deterministic social-network analogue. See module docs.
pub fn social_network(p: &SocialParams) -> CsrGraph {
    let mut rng = super::rng(p.seed);
    let planted_vertices: u64 = p.planted.iter().map(|&c| c as u64).sum::<u64>()
        + p.onions.iter().map(OnionSpec::vertices).sum::<u64>();
    assert!(
        planted_vertices <= p.n as u64,
        "planted structure ({planted_vertices} vertices) exceeds n = {}",
        p.n
    );
    let mut b = GraphBuilder::dense();
    if p.n > 0 {
        b.ensure_vertex(p.n as u64 - 1);
    }

    // adjacency for duplicate avoidance and wedge sampling
    let mut adj: Vec<Vec<u32>> = vec![Vec::new(); p.n as usize];
    // endpoint multiset driving preferential attachment
    let mut targets: Vec<u32> = Vec::new();
    let mut edge_count = 0usize;

    let push_edge = |b: &mut GraphBuilder,
                     adj: &mut Vec<Vec<u32>>,
                     targets: &mut Vec<u32>,
                     edge_count: &mut usize,
                     u: u32,
                     v: u32|
     -> bool {
        if u == v || adj[u as usize].contains(&v) {
            return false;
        }
        b.add_edge(u as u64, v as u64);
        adj[u as usize].push(v);
        adj[v as usize].push(u);
        targets.push(u);
        targets.push(v);
        *edge_count += 1;
        true
    };

    // 1. planted cliques
    let mut base = 0u64;
    for &c in &p.planted {
        add_clique(&mut b, base, c);
        for i in 0..c as u64 {
            for j in (i + 1)..c as u64 {
                let (u, v) = ((base + i) as u32, (base + j) as u32);
                adj[u as usize].push(v);
                adj[v as usize].push(u);
                targets.push(u);
                targets.push(v);
                edge_count += 1;
            }
        }
        base += c as u64;
    }

    // 1b. onion communities: core clique + shells of decaying attachment
    for onion in &p.onions {
        // core
        add_clique(&mut b, base, onion.core);
        let core_first = base as u32;
        for i in 0..onion.core as u64 {
            for j in (i + 1)..onion.core as u64 {
                let (u, v) = ((base + i) as u32, (base + j) as u32);
                adj[u as usize].push(v);
                adj[v as usize].push(u);
                targets.push(u);
                targets.push(v);
                edge_count += 1;
            }
        }
        base += onion.core as u64;
        let mut members: Vec<u32> = (core_first..base as u32).collect();
        // shells
        for shell in 1..=onion.shells {
            // attachment degree decays with shell depth but keeps enough
            // wedges to land mid-k trussness
            let attach = ((onion.core as i64 - 1) - 2 * shell as i64).max(3) as usize;
            let mut new_members = Vec::with_capacity(onion.shell_size as usize);
            for _ in 0..onion.shell_size {
                let v = base as u32;
                base += 1;
                // anchor member + a clique-ish group of its neighbours
                let u = members[rng.gen_range(0..members.len())];
                push_edge(&mut b, &mut adj, &mut targets, &mut edge_count, u, v);
                let mut linked = 1usize;
                let nbrs = adj[u as usize].clone();
                let start = rng.gen_range(0..nbrs.len().max(1));
                for step in 0..nbrs.len() {
                    if linked >= attach {
                        break;
                    }
                    let w = nbrs[(start + step) % nbrs.len()];
                    // stay inside the onion so the shell wraps the core
                    if w >= core_first
                        && w < v
                        && push_edge(&mut b, &mut adj, &mut targets, &mut edge_count, w, v)
                    {
                        linked += 1;
                    }
                }
                new_members.push(v);
            }
            members.extend(new_members);
        }
    }

    // 2. growth: remaining vertices arrive one by one
    let first_new = base as u32;
    for v in first_new..p.n {
        if targets.is_empty() {
            // no seed structure: bootstrap with a previous vertex if any
            if v > 0 {
                let u = rng.gen_range(0..v);
                push_edge(&mut b, &mut adj, &mut targets, &mut edge_count, u, v);
            }
            continue;
        }
        let mut first_anchor: Option<u32> = None;
        for _ in 0..p.attach {
            let closing = first_anchor.filter(|_| rng.gen_bool(p.closure));
            let candidate = match closing {
                // triadic closure: neighbour of a vertex we already linked to
                Some(a) if !adj[a as usize].is_empty() => {
                    adj[a as usize][rng.gen_range(0..adj[a as usize].len())]
                }
                _ => targets[rng.gen_range(0..targets.len())],
            };
            if push_edge(
                &mut b,
                &mut adj,
                &mut targets,
                &mut edge_count,
                candidate,
                v,
            ) && first_anchor.is_none()
            {
                first_anchor = Some(candidate);
            }
        }
    }

    // 3. fill to target with wedge closures (keeps clustering high); fall
    //    back to random pairs when a wedge pick fails repeatedly.
    let mut misses = 0usize;
    while edge_count < p.target_edges && misses < 50 * (p.target_edges + 1) && p.n >= 2 {
        let w = rng.gen_range(0..p.n);
        let d = adj[w as usize].len();
        let added = if d >= 2 && rng.gen_bool(0.8) {
            let i = rng.gen_range(0..d);
            let j = rng.gen_range(0..d);
            let (u, v) = (adj[w as usize][i], adj[w as usize][j]);
            push_edge(&mut b, &mut adj, &mut targets, &mut edge_count, u, v)
        } else {
            let u = rng.gen_range(0..p.n);
            let v = rng.gen_range(0..p.n);
            push_edge(&mut b, &mut adj, &mut targets, &mut edge_count, u, v)
        };
        if added {
            misses = 0;
        } else {
            misses += 1;
        }
    }

    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::global_clustering;

    #[test]
    fn hits_target_edge_count_approximately() {
        let g = social_network(&SocialParams {
            n: 2_000,
            target_edges: 10_000,
            attach: 4,
            closure: 0.6,
            planted: vec![10],
            onions: vec![],
            seed: 1,
        });
        assert_eq!(g.num_vertices(), 2_000);
        let m = g.num_edges();
        assert!(
            (9_000..=10_200).contains(&m),
            "edge count {m} far from target"
        );
    }

    #[test]
    fn deterministic() {
        let p = SocialParams {
            n: 500,
            target_edges: 2_000,
            attach: 3,
            closure: 0.5,
            planted: vec![8],
            onions: vec![],
            seed: 99,
        };
        let a = social_network(&p);
        let b = social_network(&p);
        assert_eq!(a.num_edges(), b.num_edges());
        for e in a.edges() {
            assert_eq!(a.endpoints(e), b.endpoints(e));
        }
    }

    #[test]
    fn closure_raises_clustering() {
        let low = social_network(&SocialParams {
            n: 1_500,
            target_edges: 6_000,
            attach: 4,
            closure: 0.0,
            planted: vec![],
            onions: vec![],
            seed: 5,
        });
        let high = social_network(&SocialParams {
            n: 1_500,
            target_edges: 6_000,
            attach: 4,
            closure: 0.9,
            planted: vec![],
            onions: vec![],
            seed: 5,
        });
        let (cl, ch) = (global_clustering(&low), global_clustering(&high));
        assert!(
            ch > cl,
            "closure should raise clustering: low={cl:.4} high={ch:.4}"
        );
    }

    #[test]
    fn planted_clique_present() {
        let g = social_network(&SocialParams {
            n: 300,
            target_edges: 1_500,
            attach: 3,
            closure: 0.4,
            planted: vec![12],
            onions: vec![],
            seed: 3,
        });
        // all C(12,2) clique edges exist
        for i in 0..12u32 {
            for j in (i + 1)..12 {
                assert!(
                    g.edge_between(crate::VertexId(i), crate::VertexId(j))
                        .is_some(),
                    "missing planted edge {i}-{j}"
                );
            }
        }
    }

    #[test]
    fn onions_create_mid_k_dense_structure() {
        let with_onion = social_network(&SocialParams {
            n: 800,
            target_edges: 3_500,
            attach: 3,
            closure: 0.4,
            planted: vec![],
            onions: vec![OnionSpec {
                core: 12,
                shells: 3,
                shell_size: 30,
            }],
            seed: 13,
        });
        let without = social_network(&SocialParams {
            n: 800,
            target_edges: 3_500,
            attach: 3,
            closure: 0.4,
            planted: vec![],
            onions: vec![],
            seed: 13,
        });
        // edges with support >= 5 proxy for mid-k truss mass
        let mass = |g: &crate::CsrGraph| {
            crate::triangles::support(g, None)
                .iter()
                .filter(|&&s| s >= 5)
                .count()
        };
        assert!(
            mass(&with_onion) > mass(&without) + 100,
            "onion should add dense mid-k structure: {} vs {}",
            mass(&with_onion),
            mass(&without)
        );
    }

    #[test]
    fn onion_vertices_accounting() {
        let o = OnionSpec {
            core: 10,
            shells: 3,
            shell_size: 25,
        };
        assert_eq!(o.vertices(), 10 + 75);
    }

    #[test]
    fn degenerate_sizes() {
        let g = social_network(&SocialParams {
            n: 1,
            target_edges: 10,
            attach: 2,
            closure: 0.5,
            planted: vec![],
            onions: vec![],
            seed: 0,
        });
        assert_eq!(g.num_vertices(), 1);
        assert_eq!(g.num_edges(), 0);
    }
}
