//! Clique-based constructions.
//!
//! Planted cliques pin the maximum trussness of a synthetic dataset: every
//! edge of a `c`-clique has trussness exactly `c` when the clique is edge-
//! disjoint from denser structure, which is how the dataset analogues match
//! the paper's reported `k_max` values. `clique_chain` reproduces the
//! pattern of Fig. 1(b) in the paper (bold edges belonging to separate
//! 5-cliques).

use crate::{CsrGraph, GraphBuilder};

/// The complete graph on `c` vertices.
pub fn clique(c: u32) -> CsrGraph {
    let mut b = GraphBuilder::dense();
    add_clique(&mut b, 0, c);
    b.build()
}

/// Adds a clique over vertices `base..base + c` to a builder.
pub fn add_clique(b: &mut GraphBuilder, base: u64, c: u32) {
    if c == 1 {
        b.ensure_vertex(base);
        return;
    }
    for i in 0..c as u64 {
        for j in (i + 1)..c as u64 {
            b.add_edge(base + i, base + j);
        }
    }
}

/// Disjoint cliques of the given sizes, packed onto consecutive vertex ids.
pub fn planted_cliques(sizes: &[u32]) -> CsrGraph {
    let mut b = GraphBuilder::dense();
    let mut base = 0u64;
    for &c in sizes {
        add_clique(&mut b, base, c);
        base += c as u64;
    }
    b.build()
}

/// A chain of `len` cliques of size `c`, consecutive cliques sharing one
/// edge — a long, thin structure with uniform trussness `c` whose hulls
/// have many peel layers. Useful for stress-testing layer bookkeeping and
/// upward routes.
pub fn clique_chain(c: u32, len: u32) -> CsrGraph {
    assert!(c >= 2, "clique size must be at least 2");
    let mut b = GraphBuilder::dense();
    let mut base = 0u64;
    for link in 0..len {
        if link == 0 {
            add_clique(&mut b, base, c);
            base += c as u64;
        } else {
            // Reuse the last two vertices of the previous clique as the
            // first two of this one.
            let shared = [base - 2, base - 1];
            let fresh = c as u64 - 2;
            // edges among fresh vertices
            for i in 0..fresh {
                for j in (i + 1)..fresh {
                    b.add_edge(base + i, base + j);
                }
            }
            // edges from fresh vertices to the shared pair
            for i in 0..fresh {
                b.add_edge(base + i, shared[0]);
                b.add_edge(base + i, shared[1]);
            }
            base += fresh;
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::triangles::triangle_count;

    #[test]
    fn clique_sizes() {
        let g = clique(5);
        assert_eq!(g.num_vertices(), 5);
        assert_eq!(g.num_edges(), 10);
        assert_eq!(triangle_count(&g), 10);
    }

    #[test]
    fn planted_disjoint() {
        let g = planted_cliques(&[4, 3]);
        assert_eq!(g.num_vertices(), 7);
        assert_eq!(g.num_edges(), 6 + 3);
        assert_eq!(triangle_count(&g), 4 + 1);
    }

    #[test]
    fn chain_shares_edges() {
        let g = clique_chain(4, 3);
        // each link after the first adds c-2 vertices
        assert_eq!(g.num_vertices(), 4 + 2 + 2);
        // each link after the first adds C(c,2) - 1 edges (shared edge reused)
        assert_eq!(g.num_edges(), 6 + 5 + 5);
    }

    #[test]
    fn chain_of_one_is_clique() {
        let g = clique_chain(5, 1);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn trivial_cliques() {
        assert_eq!(clique(1).num_vertices(), 1);
        assert_eq!(clique(1).num_edges(), 0);
        assert_eq!(clique(2).num_edges(), 1);
    }
}
