//! Erdős–Rényi random graphs.

use crate::hash::FxHashSet;
use crate::{CsrGraph, GraphBuilder};
use rand::Rng;

/// `G(n, m)`: exactly `m` distinct edges sampled uniformly (no loops).
///
/// `m` is clamped to `n * (n - 1) / 2`.
pub fn gnm(n: u32, m: usize, seed: u64) -> CsrGraph {
    let mut rng = super::rng(seed);
    let max_m = (n as u64) * (n as u64).saturating_sub(1) / 2;
    let m = (m as u64).min(max_m) as usize;
    let mut b = GraphBuilder::dense();
    if n > 0 {
        b.ensure_vertex(n as u64 - 1);
    }
    if n < 2 {
        return b.build();
    }
    let mut seen: FxHashSet<(u32, u32)> = FxHashSet::default();
    seen.reserve(m);
    while seen.len() < m {
        let u = rng.gen_range(0..n);
        let v = rng.gen_range(0..n);
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            b.add_edge(key.0 as u64, key.1 as u64);
        }
    }
    b.build()
}

/// `G(n, p)`: each pair independently with probability `p`.
///
/// Uses geometric skipping, so sparse graphs cost `O(n + m)`.
pub fn gnp(n: u32, p: f64, seed: u64) -> CsrGraph {
    let mut rng = super::rng(seed);
    let mut b = GraphBuilder::dense();
    if n > 0 {
        b.ensure_vertex(n as u64 - 1);
    }
    if n < 2 || p <= 0.0 {
        return b.build();
    }
    let p = p.min(1.0);
    if (p - 1.0).abs() < f64::EPSILON {
        for u in 0..n as u64 {
            for v in (u + 1)..n as u64 {
                b.add_edge(u, v);
            }
        }
        return b.build();
    }
    // Iterate pair index space with geometric jumps.
    let total = (n as u64) * (n as u64 - 1) / 2;
    let log1p = (1.0 - p).ln();
    let mut idx: u64 = 0;
    loop {
        let r: f64 = rng.gen_range(f64::EPSILON..1.0);
        let skip = (r.ln() / log1p).floor() as u64 + 1;
        idx = match idx.checked_add(skip) {
            Some(i) => i,
            None => break,
        };
        if idx > total {
            break;
        }
        // Map linear index (1-based) to pair (u, v).
        let k = idx - 1;
        let (u, v) = pair_from_index(n as u64, k);
        b.add_edge(u, v);
    }
    b.build()
}

/// Maps a linear index `k ∈ 0..n(n-1)/2` to the `k`-th pair `(u, v)`,
/// ordered by `u` then `v`.
fn pair_from_index(n: u64, k: u64) -> (u64, u64) {
    // Row u starts at offset u*n - u*(u+1)/2 - u ... solve incrementally is
    // O(n) worst case; use the closed-form via floating sqrt then fix up.
    let mut u = {
        let nf = n as f64;
        let kf = k as f64;
        let disc = (2.0 * nf - 1.0) * (2.0 * nf - 1.0) - 8.0 * kf;
        (((2.0 * nf - 1.0) - disc.max(0.0).sqrt()) / 2.0).floor() as u64
    };
    let row_start = |u: u64| u * (n - 1) - u * (u.saturating_sub(1)) / 2;
    while u + 1 < n && row_start(u + 1) <= k {
        u += 1;
    }
    while u > 0 && row_start(u) > k {
        u -= 1;
    }
    let v = u + 1 + (k - row_start(u));
    (u, v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gnm_exact_edge_count() {
        let g = gnm(100, 500, 1);
        assert_eq!(g.num_vertices(), 100);
        assert_eq!(g.num_edges(), 500);
    }

    #[test]
    fn gnm_clamps_to_complete() {
        let g = gnm(5, 1000, 2);
        assert_eq!(g.num_edges(), 10);
    }

    #[test]
    fn gnm_deterministic() {
        let a = gnm(50, 200, 42);
        let b = gnm(50, 200, 42);
        for e in a.edges() {
            assert_eq!(a.endpoints(e), b.endpoints(e));
        }
    }

    #[test]
    fn gnp_density_sane() {
        let g = gnp(200, 0.05, 3);
        let expected = 0.05 * (200.0 * 199.0 / 2.0);
        let m = g.num_edges() as f64;
        assert!(
            (m - expected).abs() < expected * 0.5 + 20.0,
            "m={m} expected≈{expected}"
        );
    }

    #[test]
    fn gnp_extremes() {
        assert_eq!(gnp(50, 0.0, 4).num_edges(), 0);
        assert_eq!(gnp(10, 1.0, 4).num_edges(), 45);
        assert_eq!(gnp(0, 0.5, 4).num_vertices(), 0);
        assert_eq!(gnm(1, 5, 4).num_edges(), 0);
    }

    #[test]
    fn pair_from_index_covers_all_pairs() {
        let n = 7u64;
        let total = n * (n - 1) / 2;
        let mut seen = std::collections::HashSet::new();
        for k in 0..total {
            let (u, v) = pair_from_index(n, k);
            assert!(u < v && v < n, "bad pair ({u},{v}) at k={k}");
            assert!(seen.insert((u, v)));
        }
        assert_eq!(seen.len(), total as usize);
    }
}
