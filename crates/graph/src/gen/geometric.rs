//! Random geometric graphs (planar-ish, transportation-style).

use crate::{CsrGraph, GraphBuilder};
use rand::Rng;

/// Random geometric graph: `n` points uniform in the unit square, edges
/// between pairs at Euclidean distance ≤ `radius`.
///
/// Geometric graphs approximate road/transportation networks (the paper's
/// second motivating application): low degree variance, triangles produced
/// by spatial locality rather than hubs.
pub fn random_geometric(n: u32, radius: f64, seed: u64) -> CsrGraph {
    let mut rng = super::rng(seed);
    let pts: Vec<(f64, f64)> = (0..n)
        .map(|_| (rng.gen::<f64>(), rng.gen::<f64>()))
        .collect();
    let mut b = GraphBuilder::dense();
    if n > 0 {
        b.ensure_vertex(n as u64 - 1);
    }
    if n < 2 || radius <= 0.0 {
        return b.build();
    }
    // Bucket points into a grid of cell size `radius` so neighbour search
    // only inspects adjacent cells: O(n + m) in expectation.
    let cells = ((1.0 / radius).floor() as usize).max(1);
    let cell_of = |x: f64| ((x * cells as f64) as usize).min(cells - 1);
    let mut grid: Vec<Vec<u32>> = vec![Vec::new(); cells * cells];
    for (i, &(x, y)) in pts.iter().enumerate() {
        grid[cell_of(y) * cells + cell_of(x)].push(i as u32);
    }
    let r2 = radius * radius;
    for (i, &(x, y)) in pts.iter().enumerate() {
        let (cx, cy) = (cell_of(x) as isize, cell_of(y) as isize);
        for dy in -1..=1isize {
            for dx in -1..=1isize {
                let (nx, ny) = (cx + dx, cy + dy);
                if nx < 0 || ny < 0 || nx >= cells as isize || ny >= cells as isize {
                    continue;
                }
                for &j in &grid[ny as usize * cells + nx as usize] {
                    if (j as usize) <= i {
                        continue;
                    }
                    let (px, py) = pts[j as usize];
                    let (ddx, ddy) = (px - x, py - y);
                    if ddx * ddx + ddy * ddy <= r2 {
                        b.add_edge(i as u64, j as u64);
                    }
                }
            }
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn density_scales_with_radius() {
        let small = random_geometric(400, 0.03, 7).num_edges();
        let large = random_geometric(400, 0.10, 7).num_edges();
        assert!(large > small * 2, "large={large} small={small}");
    }

    #[test]
    fn deterministic() {
        let a = random_geometric(300, 0.08, 5);
        let b = random_geometric(300, 0.08, 5);
        assert_eq!(a.num_edges(), b.num_edges());
    }

    #[test]
    fn no_edges_beyond_radius() {
        // radius large enough to connect everything: complete graph
        let g = random_geometric(30, 2.0, 9);
        assert_eq!(g.num_edges(), 30 * 29 / 2);
    }

    #[test]
    fn degenerate() {
        assert_eq!(random_geometric(0, 0.1, 1).num_vertices(), 0);
        assert_eq!(random_geometric(5, 0.0, 1).num_edges(), 0);
    }
}
