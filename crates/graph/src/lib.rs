//! # antruss-graph
//!
//! Graph substrate for the `antruss` workspace — a from-scratch, compact
//! undirected-graph engine tailored to truss analytics:
//!
//! * [`CsrGraph`]: compressed sparse row storage with stable, dense
//!   **edge identifiers** (every undirected edge `{u, v}` has exactly one
//!   [`EdgeId`]), sorted adjacency for merge-based triangle enumeration, and
//!   `O(log d)` edge lookup.
//! * [`GraphBuilder`]: tolerant ingestion (duplicate edges, self loops,
//!   arbitrary `u64` vertex labels) producing a canonical graph.
//! * [`triangles`]: support computation and triangle iteration, optionally
//!   restricted to an edge subset ([`EdgeSet`]) — the workhorse of truss
//!   decomposition and of the upward-route search.
//! * [`gen`]: deterministic synthetic generators (Erdős–Rényi, preferential
//!   attachment with triadic closure, planted cliques, …) used to build
//!   laptop-scale analogues of the paper's SNAP datasets.
//! * [`io`]: SNAP-style edge-list text I/O.
//! * [`sample`]: vertex/edge sampling and ego-net extraction used by the
//!   scalability and exact-comparison experiments.
//!
//! The crate has no graph-library dependencies; everything is implemented
//! here so that the workspace reproduces the paper's entire stack from
//! scratch.

#![warn(missing_docs)]

mod bitset;
mod builder;
pub mod connectivity;
mod csr;
mod error;
pub mod gen;
mod hash;
mod ids;
pub mod io;
pub mod io_binary;
pub mod sample;
pub mod stats;
pub mod triangles;

pub use bitset::{DenseId, EdgeSet, IdSet, VertexSet};
pub use builder::GraphBuilder;
pub use csr::CsrGraph;
pub use error::GraphError;
pub use hash::{FxBuildHasher, FxHashMap, FxHashSet};
pub use ids::{EdgeId, VertexId};
