//! Compact binary graph format.
//!
//! Text edge lists parse at tens of MB/s; the paper-scale graphs (tens of
//! millions of edges) deserve better. The `.antg` format stores the
//! canonical edge array as little-endian `u32` pairs behind a small
//! header, loading with a single pass and no per-line parsing.
//!
//! Layout (all little-endian):
//!
//! ```text
//! offset  size  field
//! 0       8     magic "ANTGRAF1"
//! 8       4     n  (vertex count, u32)
//! 12      4     m  (edge count, u32)
//! 16      8m    edges: m pairs of u32 (u, v), canonical u < v, sorted
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};
use std::path::Path;

use crate::{CsrGraph, GraphBuilder, GraphError};

const MAGIC: &[u8; 8] = b"ANTGRAF1";

/// Serializes the graph into the `.antg` binary layout.
pub fn to_bytes(g: &CsrGraph) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + 8 * g.num_edges());
    buf.put_slice(MAGIC);
    buf.put_u32_le(g.num_vertices() as u32);
    buf.put_u32_le(g.num_edges() as u32);
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        buf.put_u32_le(u.0);
        buf.put_u32_le(v.0);
    }
    buf.freeze()
}

/// Deserializes a graph from the `.antg` binary layout.
pub fn from_bytes(mut data: Bytes) -> Result<CsrGraph, GraphError> {
    let fail = |what: &str| GraphError::Parse {
        line: 0,
        text: format!("binary graph: {what}"),
    };
    if data.remaining() < 16 {
        return Err(fail("truncated header"));
    }
    let mut magic = [0u8; 8];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(fail("bad magic"));
    }
    let n = data.get_u32_le();
    let m = data.get_u32_le() as usize;
    if data.remaining() < 8 * m {
        return Err(fail("truncated edge array"));
    }
    let mut b = GraphBuilder::dense();
    if n > 0 {
        b.ensure_vertex(n as u64 - 1);
    }
    for _ in 0..m {
        let u = data.get_u32_le();
        let v = data.get_u32_le();
        if u >= n || v >= n {
            return Err(fail("endpoint out of range"));
        }
        b.add_edge(u as u64, v as u64);
    }
    let g = b.try_build()?;
    if g.num_edges() != m {
        return Err(fail("duplicate or degenerate edges in payload"));
    }
    Ok(g)
}

/// A stable content fingerprint of the graph: [`crate::hash::FxHasher`]
/// over the vertex count and the canonical sorted edge array. Two graphs
/// fingerprint equal iff they have the same dense-id edge set, across
/// processes and machines (the hasher is unseeded) — the cluster tier
/// compares these to decide whether a disk-recovered replica's copy is
/// current or must be re-transferred from a peer.
pub fn fingerprint(g: &CsrGraph) -> u64 {
    use std::hash::Hasher as _;
    let mut h = crate::hash::FxHasher::default();
    h.write_u32(g.num_vertices() as u32);
    h.write_u32(g.num_edges() as u32);
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        h.write_u32(u.0);
        h.write_u32(v.0);
    }
    h.finish()
}

/// Writes the binary format to a writer.
pub fn write_binary<W: Write>(g: &CsrGraph, mut w: W) -> Result<(), GraphError> {
    w.write_all(&to_bytes(g))?;
    Ok(())
}

/// Reads the binary format from a reader.
pub fn read_binary<R: Read>(mut r: R) -> Result<CsrGraph, GraphError> {
    let mut data = Vec::new();
    r.read_to_end(&mut data)?;
    from_bytes(Bytes::from(data))
}

/// Writes the binary format to a file path.
pub fn write_binary_path<P: AsRef<Path>>(g: &CsrGraph, path: P) -> Result<(), GraphError> {
    write_binary(g, std::fs::File::create(path)?)
}

/// Reads the binary format from a file path.
pub fn read_binary_path<P: AsRef<Path>>(path: P) -> Result<CsrGraph, GraphError> {
    read_binary(std::fs::File::open(path)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gnm, planted_cliques};

    #[test]
    fn roundtrip_preserves_structure() {
        let g = gnm(200, 900, 5);
        let bytes = to_bytes(&g);
        assert_eq!(bytes.len(), 16 + 8 * g.num_edges());
        let h = from_bytes(bytes).unwrap();
        assert_eq!(h.num_vertices(), g.num_vertices());
        assert_eq!(h.num_edges(), g.num_edges());
        for e in g.edges() {
            assert_eq!(g.endpoints(e), h.endpoints(e));
        }
    }

    #[test]
    fn empty_graph_roundtrip() {
        let g = GraphBuilder::new().build();
        let h = from_bytes(to_bytes(&g)).unwrap();
        assert_eq!(h.num_vertices(), 0);
        assert_eq!(h.num_edges(), 0);
    }

    #[test]
    fn bad_magic_rejected() {
        let mut raw = to_bytes(&planted_cliques(&[3])).to_vec();
        raw[0] = b'X';
        assert!(from_bytes(Bytes::from(raw)).is_err());
    }

    #[test]
    fn truncation_rejected() {
        let raw = to_bytes(&planted_cliques(&[4]));
        for cut in [0usize, 8, 15, raw.len() - 1] {
            let sliced = raw.slice(0..cut);
            assert!(from_bytes(sliced).is_err(), "cut at {cut} accepted");
        }
    }

    #[test]
    fn out_of_range_endpoint_rejected() {
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(2); // n = 2
        buf.put_u32_le(1); // m = 1
        buf.put_u32_le(0);
        buf.put_u32_le(7); // v = 7 >= n
        assert!(from_bytes(buf.freeze()).is_err());
    }

    #[test]
    fn fingerprint_tracks_content_not_identity() {
        let g = gnm(60, 200, 4);
        let h = from_bytes(to_bytes(&g)).unwrap();
        assert_eq!(fingerprint(&g), fingerprint(&h), "round-trip preserves it");
        let other = gnm(60, 200, 5);
        assert_ne!(fingerprint(&g), fingerprint(&other), "differing edge sets");
        let fewer = gnm(60, 199, 4);
        assert_ne!(fingerprint(&g), fingerprint(&fewer));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("antruss-binio-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.antg");
        let g = gnm(50, 180, 9);
        write_binary_path(&g, &path).unwrap();
        let h = read_binary_path(&path).unwrap();
        assert_eq!(h.num_edges(), g.num_edges());
        std::fs::remove_dir_all(&dir).ok();
    }
}
