//! Fixed-capacity bitsets over dense identifiers.
//!
//! Truss decomposition, upward-route search and component-tree rebuilds all
//! operate on *subsets of edges of one fixed graph*; core decomposition and
//! the vertex-anchoring comparators do the same over vertices. Representing
//! those subsets as bitsets keeps ids stable (no subgraph re-labelling) and
//! makes membership tests branch-free single loads.

use crate::{EdgeId, VertexId};

/// A dense `u32`-backed identifier that can index a bitset.
///
/// Sealed to the workspace's id newtypes; the blanket bitset implementation
/// below is shared by [`EdgeSet`] and [`VertexSet`].
pub trait DenseId: Copy {
    /// The identifier as a `usize` index.
    fn index(self) -> usize;
    /// Builds the identifier back from an index.
    fn from_index(i: usize) -> Self;
}

impl DenseId for EdgeId {
    #[inline(always)]
    fn index(self) -> usize {
        self.idx()
    }
    #[inline(always)]
    fn from_index(i: usize) -> Self {
        EdgeId(i as u32)
    }
}

impl DenseId for VertexId {
    #[inline(always)]
    fn index(self) -> usize {
        self.idx()
    }
    #[inline(always)]
    fn from_index(i: usize) -> Self {
        VertexId(i as u32)
    }
}

/// A fixed-capacity set of [`EdgeId`]s backed by `u64` words.
pub type EdgeSet = IdSet<EdgeId>;

/// A fixed-capacity set of [`VertexId`]s backed by `u64` words.
pub type VertexSet = IdSet<VertexId>;

/// A fixed-capacity set of dense ids backed by `u64` words.
#[derive(Clone, PartialEq, Eq)]
pub struct IdSet<T> {
    words: Vec<u64>,
    capacity: usize,
    _marker: std::marker::PhantomData<T>,
}

impl<T: DenseId> IdSet<T> {
    /// An empty set able to hold ids `0..capacity`.
    pub fn new(capacity: usize) -> Self {
        IdSet {
            words: vec![0; capacity.div_ceil(64)],
            capacity,
            _marker: std::marker::PhantomData,
        }
    }

    /// A set containing every id in `0..capacity`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        if !capacity.is_multiple_of(64) {
            if let Some(last) = s.words.last_mut() {
                *last = (1u64 << (capacity % 64)) - 1;
            }
        }
        s
    }

    /// Builds a set from an iterator of ids.
    pub fn from_iter<I: IntoIterator<Item = T>>(capacity: usize, iter: I) -> Self {
        let mut s = Self::new(capacity);
        for e in iter {
            s.insert(e);
        }
        s
    }

    /// Number of ids this set can hold.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Inserts `e`; returns `true` if it was not already present.
    #[inline]
    pub fn insert(&mut self, e: T) -> bool {
        let (w, b) = (e.index() / 64, e.index() % 64);
        let had = (self.words[w] >> b) & 1;
        self.words[w] |= 1 << b;
        had == 0
    }

    /// Removes `e`; returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, e: T) -> bool {
        let (w, b) = (e.index() / 64, e.index() % 64);
        let had = (self.words[w] >> b) & 1;
        self.words[w] &= !(1 << b);
        had == 1
    }

    /// Membership test.
    #[inline(always)]
    pub fn contains(&self, e: T) -> bool {
        let (w, b) = (e.index() / 64, e.index() % 64);
        (self.words[w] >> b) & 1 == 1
    }

    /// Number of ids currently in the set.
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Removes every id.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    /// Iterates over the ids in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = T> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let b = w.trailing_zeros();
                    w &= w - 1;
                    Some(T::from_index(wi * 64 + b as usize))
                }
            })
        })
    }

    /// In-place union with `other` (capacities must match).
    pub fn union_with(&mut self, other: &Self) {
        assert_eq!(self.capacity, other.capacity, "IdSet capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= *b;
        }
    }

    /// In-place intersection with `other` (capacities must match).
    pub fn intersect_with(&mut self, other: &Self) {
        assert_eq!(self.capacity, other.capacity, "IdSet capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= *b;
        }
    }

    /// In-place difference `self \ other` (capacities must match).
    pub fn difference_with(&mut self, other: &Self) {
        assert_eq!(self.capacity, other.capacity, "IdSet capacity mismatch");
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !*b;
        }
    }
}

impl<T: DenseId + std::fmt::Debug> std::fmt::Debug for IdSet<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut s = EdgeSet::new(130);
        assert!(s.insert(EdgeId(0)));
        assert!(s.insert(EdgeId(64)));
        assert!(s.insert(EdgeId(129)));
        assert!(!s.insert(EdgeId(64)));
        assert!(s.contains(EdgeId(129)));
        assert!(!s.contains(EdgeId(1)));
        assert_eq!(s.len(), 3);
        assert!(s.remove(EdgeId(64)));
        assert!(!s.remove(EdgeId(64)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn full_respects_capacity() {
        let s = EdgeSet::full(70);
        assert_eq!(s.len(), 70);
        assert!(s.contains(EdgeId(69)));
        let ids: Vec<_> = s.iter().collect();
        assert_eq!(ids.len(), 70);
        assert_eq!(ids[0], EdgeId(0));
        assert_eq!(ids[69], EdgeId(69));
    }

    #[test]
    fn full_at_word_boundary() {
        let s = EdgeSet::full(128);
        assert_eq!(s.len(), 128);
        assert!(s.contains(EdgeId(127)));
    }

    #[test]
    fn iter_ascending() {
        let s = EdgeSet::from_iter(200, [EdgeId(5), EdgeId(199), EdgeId(0), EdgeId(64)]);
        let ids: Vec<_> = s.iter().map(|e| e.0).collect();
        assert_eq!(ids, vec![0, 5, 64, 199]);
    }

    #[test]
    fn set_algebra() {
        let mut a = EdgeSet::from_iter(10, [EdgeId(1), EdgeId(2), EdgeId(3)]);
        let b = EdgeSet::from_iter(10, [EdgeId(3), EdgeId(4)]);
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.len(), 4);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![EdgeId(3)]);
        a.difference_with(&b);
        assert_eq!(a.iter().map(|e| e.0).collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn clear_and_empty() {
        let mut s = EdgeSet::from_iter(10, [EdgeId(7)]);
        assert!(!s.is_empty());
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn vertex_set_roundtrip() {
        let mut s = VertexSet::new(100);
        assert!(s.insert(VertexId(3)));
        assert!(s.insert(VertexId(99)));
        assert!(s.contains(VertexId(3)));
        assert!(!s.contains(VertexId(4)));
        let ids: Vec<_> = s.iter().map(|v| v.0).collect();
        assert_eq!(ids, vec![3, 99]);
        assert_eq!(format!("{s:?}"), "{v3, v99}");
    }

    #[test]
    fn zero_capacity_sets() {
        let s = EdgeSet::new(0);
        assert!(s.is_empty());
        let f = VertexSet::full(0);
        assert!(f.is_empty());
        assert_eq!(f.capacity(), 0);
    }
}
