//! Dense identifier newtypes for vertices and edges.
//!
//! Both identifiers are `u32`-backed: the paper's largest dataset (Pokec,
//! 22.3M edges) fits comfortably, and halving the index width keeps the
//! per-edge working set of truss decomposition cache-friendly.

use std::fmt;

/// Identifier of a vertex, dense in `0..n`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct VertexId(pub u32);

/// Identifier of an undirected edge, dense in `0..m`.
///
/// Edge ids are assigned once at graph construction and never change; all
/// higher layers (trussness arrays, the truss-component tree, follower
/// caches) index by `EdgeId`, which is what makes subset-restricted
/// re-decomposition cheap — no re-labelling ever happens.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(transparent)]
pub struct EdgeId(pub u32);

impl VertexId {
    /// The identifier as a `usize` index.
    #[inline(always)]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl EdgeId {
    /// The identifier as a `usize` index.
    #[inline(always)]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl From<u32> for VertexId {
    #[inline]
    fn from(v: u32) -> Self {
        VertexId(v)
    }
}

impl From<u32> for EdgeId {
    #[inline]
    fn from(e: u32) -> Self {
        EdgeId(e)
    }
}

impl fmt::Debug for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

impl fmt::Display for VertexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Debug for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

impl fmt::Display for EdgeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vertex_id_roundtrip() {
        let v = VertexId::from(7u32);
        assert_eq!(v.idx(), 7);
        assert_eq!(format!("{v:?}"), "v7");
        assert_eq!(format!("{v}"), "7");
    }

    #[test]
    fn edge_id_roundtrip() {
        let e = EdgeId::from(11u32);
        assert_eq!(e.idx(), 11);
        assert_eq!(format!("{e:?}"), "e11");
        assert_eq!(format!("{e}"), "11");
    }

    #[test]
    fn ids_order_by_value() {
        assert!(VertexId(1) < VertexId(2));
        assert!(EdgeId(3) < EdgeId(30));
    }

    #[test]
    fn ids_are_word_sized() {
        assert_eq!(std::mem::size_of::<VertexId>(), 4);
        assert_eq!(std::mem::size_of::<EdgeId>(), 4);
        assert_eq!(std::mem::size_of::<Option<VertexId>>(), 8);
    }
}
