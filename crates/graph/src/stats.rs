//! Structural statistics used for dataset reporting and generator tuning.

use crate::triangles;
use crate::{CsrGraph, VertexId};

/// Summary statistics reported in the paper's Table III style.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of edges.
    pub edges: usize,
    /// Maximum degree.
    pub max_degree: usize,
    /// Mean degree (`2m / n`).
    pub avg_degree: f64,
    /// Maximum edge support (`sup_max` in Table III).
    pub max_support: u32,
    /// Total triangle count.
    pub triangles: u64,
    /// Global clustering coefficient (3·triangles / wedges).
    pub clustering: f64,
}

/// Computes [`GraphStats`] in one support pass.
pub fn graph_stats(g: &CsrGraph) -> GraphStats {
    let sup = triangles::support(g, None);
    let max_support = sup.iter().copied().max().unwrap_or(0);
    let tri: u64 = sup.iter().map(|&s| s as u64).sum::<u64>() / 3;
    let n = g.num_vertices();
    let m = g.num_edges();
    GraphStats {
        vertices: n,
        edges: m,
        max_degree: g.max_degree(),
        avg_degree: if n == 0 {
            0.0
        } else {
            2.0 * m as f64 / n as f64
        },
        max_support,
        triangles: tri,
        clustering: global_clustering_from(g, tri),
    }
}

/// Global clustering coefficient: `3 * triangles / wedges`.
pub fn global_clustering(g: &CsrGraph) -> f64 {
    global_clustering_from(g, triangles::triangle_count(g))
}

fn global_clustering_from(g: &CsrGraph, tri: u64) -> f64 {
    let wedges: u64 = (0..g.num_vertices())
        .map(|v| {
            let d = g.degree(VertexId(v as u32)) as u64;
            d * d.saturating_sub(1) / 2
        })
        .sum();
    if wedges == 0 {
        0.0
    } else {
        3.0 * tri as f64 / wedges as f64
    }
}

/// Degree histogram: `hist[d]` = number of vertices with degree `d`.
pub fn degree_histogram(g: &CsrGraph) -> Vec<usize> {
    let mut hist = vec![0usize; g.max_degree() + 1];
    for v in g.vertices() {
        hist[g.degree(v)] += 1;
    }
    hist
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::clique;
    use crate::GraphBuilder;

    #[test]
    fn clique_stats() {
        let g = clique(5);
        let s = graph_stats(&g);
        assert_eq!(s.vertices, 5);
        assert_eq!(s.edges, 10);
        assert_eq!(s.max_degree, 4);
        assert_eq!(s.max_support, 3);
        assert_eq!(s.triangles, 10);
        assert!((s.clustering - 1.0).abs() < 1e-12);
        assert!((s.avg_degree - 4.0).abs() < 1e-12);
    }

    #[test]
    fn path_has_zero_clustering() {
        let mut b = GraphBuilder::dense();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        let s = graph_stats(&g);
        assert_eq!(s.triangles, 0);
        assert_eq!(s.clustering, 0.0);
        assert_eq!(s.max_support, 0);
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = clique(6);
        let h = degree_histogram(&g);
        assert_eq!(h.iter().sum::<usize>(), 6);
        assert_eq!(h[5], 6);
    }

    #[test]
    fn empty_graph_stats() {
        let g = GraphBuilder::new().build();
        let s = graph_stats(&g);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.avg_degree, 0.0);
        assert_eq!(s.clustering, 0.0);
    }
}
