//! Graph sampling and extraction.
//!
//! * [`sample_edges`] / [`induced_by_vertex_sample`] implement the paper's
//!   scalability protocol (Exp-6: random 50–100 % edge and vertex samples of
//!   the two largest datasets).
//! * [`ego_subgraph_with_edges`] implements the protocol of Exp-2 (borrowed
//!   from Linghu et al. [3]): repeatedly absorb a vertex and its neighbours
//!   until the induced subgraph has 150–250 edges, producing small instances
//!   on which the `Exact` algorithm is feasible.

use crate::hash::FxHashSet;
use crate::{CsrGraph, GraphBuilder, VertexId};
use rand::seq::SliceRandom;
use rand::Rng;

/// Keeps each edge independently-shuffled first `ratio·m` edges; vertices
/// keep their identities (isolated vertices retained so `n` is unchanged).
pub fn sample_edges(g: &CsrGraph, ratio: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&ratio), "ratio must be in [0, 1]");
    let mut rng = crate::gen::rng(seed);
    let mut ids: Vec<u32> = (0..g.num_edges() as u32).collect();
    ids.shuffle(&mut rng);
    let keep = ((g.num_edges() as f64) * ratio).round() as usize;
    let mut b = GraphBuilder::dense();
    if g.num_vertices() > 0 {
        b.ensure_vertex(g.num_vertices() as u64 - 1);
    }
    for &i in ids.iter().take(keep) {
        let (u, v) = g.endpoints(crate::EdgeId(i));
        b.add_edge(u.0 as u64, v.0 as u64);
    }
    b.build()
}

/// Induced subgraph on a uniform vertex sample of size `ratio·n`.
/// Sampled vertices are re-labelled densely.
pub fn induced_by_vertex_sample(g: &CsrGraph, ratio: f64, seed: u64) -> CsrGraph {
    assert!((0.0..=1.0).contains(&ratio), "ratio must be in [0, 1]");
    let mut rng = crate::gen::rng(seed);
    let mut ids: Vec<u32> = (0..g.num_vertices() as u32).collect();
    ids.shuffle(&mut rng);
    let keep = ((g.num_vertices() as f64) * ratio).round() as usize;
    let chosen: FxHashSet<u32> = ids.iter().take(keep).copied().collect();
    let mut b = GraphBuilder::new();
    for &v in &chosen {
        b.ensure_vertex(v as u64);
    }
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        if chosen.contains(&u.0) && chosen.contains(&v.0) {
            b.add_edge(u.0 as u64, v.0 as u64);
        }
    }
    b.build()
}

/// Grows an ego subgraph: starting from a random vertex, repeatedly absorbs
/// a frontier vertex together with its neighbourhood, stopping as soon as
/// the induced edge count lands in `[min_edges, max_edges]` (or the
/// component is exhausted). Returns `None` if no extraction lands in range
/// after `attempts` random restarts.
pub fn ego_subgraph_with_edges(
    g: &CsrGraph,
    min_edges: usize,
    max_edges: usize,
    attempts: usize,
    seed: u64,
) -> Option<CsrGraph> {
    assert!(min_edges <= max_edges);
    let mut rng = crate::gen::rng(seed);
    if g.num_vertices() == 0 {
        return None;
    }
    'attempt: for _ in 0..attempts {
        let start = VertexId(rng.gen_range(0..g.num_vertices() as u32));
        let mut in_set: FxHashSet<u32> = FxHashSet::default();
        let mut frontier: Vec<VertexId> = vec![start];
        let mut edge_count = 0usize;
        in_set.insert(start.0);
        while let Some(v) = pick_random(&mut frontier, &mut rng) {
            // absorb the whole neighbourhood of v
            let mut added = Vec::new();
            for &w in g.neighbors(v) {
                if in_set.insert(w.0) {
                    added.push(w);
                }
            }
            // update induced edge count: edges from newly added vertices to
            // vertices already in the set (counting each once).
            for &w in &added {
                for &x in g.neighbors(w) {
                    if in_set.contains(&x.0) && (!added.contains(&x) || x < w) {
                        edge_count += 1;
                    }
                }
            }
            frontier.extend(added);
            if edge_count > max_edges {
                continue 'attempt;
            }
            if edge_count >= min_edges {
                // materialise the induced subgraph
                let mut b = GraphBuilder::new();
                for &u in &in_set {
                    b.ensure_vertex(u as u64);
                }
                for e in g.edges() {
                    let (a, c) = g.endpoints(e);
                    if in_set.contains(&a.0) && in_set.contains(&c.0) {
                        b.add_edge(a.0 as u64, c.0 as u64);
                    }
                }
                return Some(b.build());
            }
        }
    }
    None
}

fn pick_random<R: Rng>(frontier: &mut Vec<VertexId>, rng: &mut R) -> Option<VertexId> {
    if frontier.is_empty() {
        return None;
    }
    let i = rng.gen_range(0..frontier.len());
    Some(frontier.swap_remove(i))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{gnm, social_network, SocialParams};

    #[test]
    fn edge_sample_ratio() {
        let g = gnm(200, 1000, 1);
        let h = sample_edges(&g, 0.5, 2);
        assert_eq!(h.num_vertices(), 200);
        assert_eq!(h.num_edges(), 500);
        let full = sample_edges(&g, 1.0, 2);
        assert_eq!(full.num_edges(), 1000);
        let none = sample_edges(&g, 0.0, 2);
        assert_eq!(none.num_edges(), 0);
    }

    #[test]
    fn vertex_sample_ratio() {
        let g = gnm(300, 2000, 3);
        let h = induced_by_vertex_sample(&g, 0.5, 4);
        assert_eq!(h.num_vertices(), 150);
        assert!(h.num_edges() < g.num_edges());
    }

    #[test]
    fn vertex_sample_edges_are_induced() {
        let g = gnm(50, 200, 5);
        let h = induced_by_vertex_sample(&g, 0.6, 6);
        // every sampled edge count must be at most the original count and
        // the density can't exceed complete graph on kept vertices
        let nk = h.num_vertices();
        assert!(h.num_edges() <= nk * (nk - 1) / 2);
    }

    #[test]
    fn ego_lands_in_range() {
        let g = social_network(&SocialParams {
            n: 3_000,
            target_edges: 15_000,
            attach: 4,
            closure: 0.5,
            planted: vec![],
            onions: vec![],
            seed: 9,
        });
        let sub = ego_subgraph_with_edges(&g, 150, 250, 50, 10).expect("extraction possible");
        let m = sub.num_edges();
        assert!((150..=250).contains(&m), "got {m} edges");
    }

    #[test]
    fn ego_impossible_on_tiny_graph() {
        let g = gnm(5, 4, 1);
        assert!(ego_subgraph_with_edges(&g, 150, 250, 5, 1).is_none());
    }

    #[test]
    fn samples_deterministic() {
        let g = gnm(100, 400, 7);
        let a = sample_edges(&g, 0.7, 42);
        let b = sample_edges(&g, 0.7, 42);
        assert_eq!(a.num_edges(), b.num_edges());
        for e in a.edges() {
            assert_eq!(a.endpoints(e), b.endpoints(e));
        }
    }
}
