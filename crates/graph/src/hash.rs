//! A fast, non-cryptographic hasher for integer-keyed maps.
//!
//! The hot maps in this workspace are keyed by `u32`/`u64` ids; SipHash (the
//! std default) is needlessly slow for them. This is the well-known
//! FxHash/firefox multiply-rotate mix, re-implemented here (~20 lines) so the
//! workspace stays within its approved dependency set.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;
/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<K> = HashSet<K, FxBuildHasher>;
/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The FxHash mixing hasher (multiply + rotate per word).
#[derive(Default, Clone)]
pub struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline(always)]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut word = [0u8; 8];
            word[..rem.len()].copy_from_slice(rem);
            self.add_to_hash(u64::from_le_bytes(word));
        }
    }

    #[inline]
    fn write_u32(&mut self, i: u32) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn write_u64(&mut self, i: u64) {
        self.add_to_hash(i);
    }

    #[inline]
    fn write_usize(&mut self, i: usize) {
        self.add_to_hash(i as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basics() {
        let mut m: FxHashMap<u32, &str> = FxHashMap::default();
        m.insert(1, "a");
        m.insert(2, "b");
        assert_eq!(m.get(&1), Some(&"a"));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn deterministic_within_process() {
        let h = |x: u64| {
            let mut h = FxHasher::default();
            h.write_u64(x);
            h.finish()
        };
        assert_eq!(h(42), h(42));
        assert_ne!(h(42), h(43));
    }

    #[test]
    fn byte_stream_tail_handling() {
        let mut a = FxHasher::default();
        a.write(b"hello world!!"); // 13 bytes: one chunk + 5-byte tail
        let mut b = FxHasher::default();
        b.write(b"hello world!?");
        assert_ne!(a.finish(), b.finish());
    }

    #[test]
    fn set_dedup() {
        let mut s: FxHashSet<u64> = FxHashSet::default();
        for i in 0..100 {
            s.insert(i % 10);
        }
        assert_eq!(s.len(), 10);
    }
}
