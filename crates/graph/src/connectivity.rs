//! Vertex connectivity utilities: BFS, connected components, largest
//! component extraction.

use crate::{CsrGraph, VertexId};
use std::collections::VecDeque;

/// Connected-component labels: `labels[v]` ∈ `0..count`, assigned in order
/// of the smallest vertex id in each component.
#[derive(Debug, Clone)]
pub struct Components {
    /// Per-vertex component label.
    pub labels: Vec<u32>,
    /// Number of components (isolated vertices count).
    pub count: usize,
}

impl Components {
    /// Size of each component.
    pub fn sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.count];
        for &l in &self.labels {
            sizes[l as usize] += 1;
        }
        sizes
    }

    /// Label of the largest component (ties: smaller label).
    pub fn largest(&self) -> Option<u32> {
        let sizes = self.sizes();
        (0..self.count)
            .max_by_key(|&i| (sizes[i], usize::MAX - i))
            .map(|i| i as u32)
    }
}

/// Labels connected components by BFS.
pub fn connected_components(g: &CsrGraph) -> Components {
    let n = g.num_vertices();
    let mut labels = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n as u32 {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        labels[start as usize] = count;
        queue.push_back(VertexId(start));
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if labels[w.idx()] == u32::MAX {
                    labels[w.idx()] = count;
                    queue.push_back(w);
                }
            }
        }
        count += 1;
    }
    Components {
        labels,
        count: count as usize,
    }
}

/// BFS distances from `source` (`u32::MAX` = unreachable).
pub fn bfs_distances(g: &CsrGraph, source: VertexId) -> Vec<u32> {
    let mut dist = vec![u32::MAX; g.num_vertices()];
    dist[source.idx()] = 0;
    let mut queue = VecDeque::from([source]);
    while let Some(v) = queue.pop_front() {
        let d = dist[v.idx()];
        for &w in g.neighbors(v) {
            if dist[w.idx()] == u32::MAX {
                dist[w.idx()] = d + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// The subgraph induced by the largest connected component, re-labelled
/// densely (empty graph stays empty).
pub fn largest_component(g: &CsrGraph) -> CsrGraph {
    let comps = connected_components(g);
    let Some(target) = comps.largest() else {
        return crate::GraphBuilder::new().build();
    };
    let mut b = crate::GraphBuilder::new();
    for v in g.vertices() {
        if comps.labels[v.idx()] == target {
            b.ensure_vertex(v.0 as u64);
        }
    }
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        if comps.labels[u.idx()] == target {
            b.add_edge(u.0 as u64, v.0 as u64);
        }
    }
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::planted_cliques;
    use crate::GraphBuilder;

    #[test]
    fn components_of_disjoint_cliques() {
        let g = planted_cliques(&[4, 3, 2]);
        let c = connected_components(&g);
        assert_eq!(c.count, 3);
        assert_eq!(c.sizes(), vec![4, 3, 2]);
        assert_eq!(c.largest(), Some(0));
    }

    #[test]
    fn isolated_vertices_are_components() {
        let mut b = GraphBuilder::dense();
        b.add_edge(0, 1);
        b.ensure_vertex(4);
        let g = b.build();
        let c = connected_components(&g);
        assert_eq!(c.count, 4); // {0,1}, {2}, {3}, {4}
    }

    #[test]
    fn bfs_distances_on_path() {
        let mut b = GraphBuilder::dense();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.ensure_vertex(4);
        let g = b.build();
        let d = bfs_distances(&g, VertexId(0));
        assert_eq!(&d[..4], &[0, 1, 2, 3]);
        assert_eq!(d[4], u32::MAX);
    }

    #[test]
    fn largest_component_extraction() {
        let g = planted_cliques(&[5, 3]);
        let lc = largest_component(&g);
        assert_eq!(lc.num_vertices(), 5);
        assert_eq!(lc.num_edges(), 10);
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(connected_components(&g).count, 0);
        assert_eq!(largest_component(&g).num_vertices(), 0);
    }
}
