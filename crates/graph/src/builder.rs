//! Tolerant graph construction.

use crate::hash::FxHashMap;
use crate::{CsrGraph, GraphError, VertexId};

/// Accumulates raw edges (arbitrary `u64` labels, duplicates, self loops)
/// and produces a canonical [`CsrGraph`].
///
/// Vertex labels are mapped to dense ids in **first-seen order** unless
/// [`GraphBuilder::dense`] is used, in which case labels are taken as ids
/// directly (useful for generators that already emit `0..n`).
pub struct GraphBuilder {
    /// raw (label, label) pairs
    raw: Vec<(u64, u64)>,
    /// label → dense id (only in relabeling mode)
    relabel: Option<FxHashMap<u64, u32>>,
    next_id: u32,
    /// highest label seen in dense mode
    max_dense: Option<u64>,
}

impl Default for GraphBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl GraphBuilder {
    /// A builder that relabels arbitrary `u64` vertex labels to dense ids in
    /// first-seen order (the right mode for loading raw SNAP files).
    pub fn new() -> Self {
        GraphBuilder {
            raw: Vec::new(),
            relabel: Some(FxHashMap::default()),
            next_id: 0,
            max_dense: None,
        }
    }

    /// A builder that treats labels as dense vertex ids directly
    /// (`0..n`). Labels must fit in `u32`.
    pub fn dense() -> Self {
        GraphBuilder {
            raw: Vec::new(),
            relabel: None,
            next_id: 0,
            max_dense: None,
        }
    }

    /// Queues an undirected edge between two vertex labels. Self loops and
    /// duplicates are tolerated and dropped at [`GraphBuilder::build`] time.
    pub fn add_edge(&mut self, a: u64, b: u64) {
        self.touch(a);
        self.touch(b);
        self.raw.push((a, b));
    }

    /// Ensures a vertex exists even if it ends up isolated.
    pub fn ensure_vertex(&mut self, a: u64) {
        self.touch(a);
    }

    fn touch(&mut self, label: u64) {
        match &mut self.relabel {
            Some(map) => {
                let next = &mut self.next_id;
                map.entry(label).or_insert_with(|| {
                    let id = *next;
                    *next += 1;
                    id
                });
            }
            None => {
                self.max_dense = Some(self.max_dense.map_or(label, |m| m.max(label)));
            }
        }
    }

    /// Number of edges queued so far (before dedup).
    pub fn raw_edge_count(&self) -> usize {
        self.raw.len()
    }

    /// Builds the canonical graph, panicking on overflow (use
    /// [`GraphBuilder::try_build`] for fallible construction).
    pub fn build(self) -> CsrGraph {
        self.try_build().expect("graph construction failed")
    }

    /// Builds the canonical graph: relabels, canonicalises endpoint order,
    /// removes self loops, deduplicates, assigns dense edge ids.
    pub fn try_build(self) -> Result<CsrGraph, GraphError> {
        let GraphBuilder {
            raw,
            relabel,
            next_id,
            max_dense,
        } = self;
        let n: u64 = match &relabel {
            Some(_) => next_id as u64,
            None => max_dense.map_or(0, |m| m + 1),
        };
        if n > u32::MAX as u64 {
            return Err(GraphError::TooLarge(format!("{n} vertices")));
        }
        let map = |label: u64| -> u32 {
            match &relabel {
                Some(m) => m[&label],
                None => label as u32,
            }
        };
        let mut edges: Vec<(VertexId, VertexId)> = Vec::with_capacity(raw.len());
        for (a, b) in raw {
            let (x, y) = (map(a), map(b));
            if x == y {
                continue; // self loop
            }
            let (lo, hi) = if x < y { (x, y) } else { (y, x) };
            edges.push((VertexId(lo), VertexId(hi)));
        }
        edges.sort_unstable();
        edges.dedup();
        if edges.len() > u32::MAX as usize {
            return Err(GraphError::TooLarge(format!("{} edges", edges.len())));
        }
        Ok(CsrGraph::from_canonical_edges(n as u32, edges))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loops() {
        let mut b = GraphBuilder::new();
        b.add_edge(10, 20);
        b.add_edge(20, 10); // duplicate, reversed
        b.add_edge(10, 10); // self loop
        b.add_edge(20, 30);
        let g = b.build();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 2);
    }

    #[test]
    fn first_seen_relabeling() {
        let mut b = GraphBuilder::new();
        b.add_edge(1000, 5);
        b.add_edge(5, 77);
        let g = b.build();
        // 1000 -> 0, 5 -> 1, 77 -> 2
        assert_eq!(g.num_vertices(), 3);
        assert!(g.edge_between(VertexId(0), VertexId(1)).is_some());
        assert!(g.edge_between(VertexId(1), VertexId(2)).is_some());
        assert!(g.edge_between(VertexId(0), VertexId(2)).is_none());
    }

    #[test]
    fn dense_mode_keeps_ids() {
        let mut b = GraphBuilder::dense();
        b.add_edge(0, 3);
        let g = b.build();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.degree(VertexId(1)), 0);
    }

    #[test]
    fn empty_builder() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn raw_edge_count_counts_before_dedup() {
        let mut b = GraphBuilder::new();
        b.add_edge(1, 2);
        b.add_edge(2, 1);
        assert_eq!(b.raw_edge_count(), 2);
        assert_eq!(b.build().num_edges(), 1);
    }

    #[test]
    fn edge_ids_sorted_by_canonical_pair() {
        let mut b = GraphBuilder::dense();
        b.add_edge(2, 3);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        let g = b.build();
        // canonical sort: (0,1) < (1,2) < (2,3)
        assert_eq!(g.endpoints(crate::EdgeId(0)), (VertexId(0), VertexId(1)));
        assert_eq!(g.endpoints(crate::EdgeId(2)), (VertexId(2), VertexId(3)));
    }
}
