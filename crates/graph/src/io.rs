//! Edge-list I/O in the SNAP text format.
//!
//! The SNAP datasets the paper evaluates on (<http://snap.stanford.edu>) ship
//! as whitespace-separated `u v` pairs with `#`-prefixed comment lines. This
//! module reads and writes that format so real datasets can be dropped in as
//! a replacement for the synthetic analogues.

use std::io::{BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

use crate::{CsrGraph, GraphBuilder, GraphError};

/// Reads a SNAP-style edge list from any reader.
///
/// * lines starting with `#` or `%` are comments;
/// * blank lines are skipped;
/// * each data line must contain at least two integer fields (extra fields,
///   e.g. timestamps, are ignored);
/// * vertex labels are relabelled to dense ids in first-seen order.
pub fn read_edge_list<R: Read>(reader: R) -> Result<CsrGraph, GraphError> {
    let mut builder = GraphBuilder::new();
    let buf = BufReader::new(reader);
    for (lineno, line) in buf.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') || t.starts_with('%') {
            continue;
        }
        let mut fields = t.split_whitespace();
        let a = fields.next();
        let b = fields.next();
        match (a, b) {
            (Some(a), Some(b)) => {
                let (a, b) = (
                    a.parse::<u64>().map_err(|_| GraphError::Parse {
                        line: lineno + 1,
                        text: t.to_string(),
                    })?,
                    b.parse::<u64>().map_err(|_| GraphError::Parse {
                        line: lineno + 1,
                        text: t.to_string(),
                    })?,
                );
                builder.add_edge(a, b);
            }
            _ => {
                return Err(GraphError::Parse {
                    line: lineno + 1,
                    text: t.to_string(),
                })
            }
        }
    }
    builder.try_build()
}

/// Reads a SNAP-style edge list from a file path.
pub fn read_edge_list_path<P: AsRef<Path>>(path: P) -> Result<CsrGraph, GraphError> {
    let f = std::fs::File::open(path)?;
    read_edge_list(f)
}

/// Writes the graph as a SNAP-style edge list (one `u v` pair per line).
pub fn write_edge_list<W: Write>(g: &CsrGraph, writer: W) -> Result<(), GraphError> {
    let mut w = BufWriter::new(writer);
    writeln!(
        w,
        "# antruss edge list: n={} m={}",
        g.num_vertices(),
        g.num_edges()
    )?;
    for e in g.edges() {
        let (u, v) = g.endpoints(e);
        writeln!(w, "{u}\t{v}")?;
    }
    w.flush()?;
    Ok(())
}

/// Writes the graph to a file path.
pub fn write_edge_list_path<P: AsRef<Path>>(g: &CsrGraph, path: P) -> Result<(), GraphError> {
    let f = std::fs::File::create(path)?;
    write_edge_list(g, f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_comments_blank_and_extra_fields() {
        let text = "# comment\n\n% other comment\n0 1\n1 2 999\n2\t0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_vertices(), 3);
        assert_eq!(g.num_edges(), 3);
    }

    #[test]
    fn parse_error_reports_line() {
        let text = "0 1\nnot numbers here\n";
        match read_edge_list(text.as_bytes()) {
            Err(GraphError::Parse { line, .. }) => assert_eq!(line, 2),
            other => panic!("expected parse error, got {other:?}"),
        }
    }

    #[test]
    fn single_field_line_is_error() {
        let text = "0 1\n42\n";
        assert!(matches!(
            read_edge_list(text.as_bytes()),
            Err(GraphError::Parse { line: 2, .. })
        ));
    }

    #[test]
    fn roundtrip() {
        let text = "0 1\n1 2\n2 0\n2 3\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        let mut out = Vec::new();
        write_edge_list(&g, &mut out).unwrap();
        let g2 = read_edge_list(&out[..]).unwrap();
        assert_eq!(g2.num_vertices(), g.num_vertices());
        assert_eq!(g2.num_edges(), g.num_edges());
    }

    #[test]
    fn duplicate_and_loop_lines_collapse() {
        let text = "5 5\n1 2\n2 1\n1 2\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.num_vertices(), 3); // 5, 1, 2
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("antruss-io-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("g.txt");
        let text = "0 1\n1 2\n2 0\n";
        let g = read_edge_list(text.as_bytes()).unwrap();
        write_edge_list_path(&g, &path).unwrap();
        let g2 = read_edge_list_path(&path).unwrap();
        assert_eq!(g2.num_edges(), 3);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        assert!(matches!(
            read_edge_list_path("/definitely/not/a/file.txt"),
            Err(GraphError::Io(_))
        ));
    }
}
