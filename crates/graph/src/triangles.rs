//! Triangle enumeration and edge-support computation.
//!
//! Everything in the truss stack reduces to iterating the triangles of one
//! edge, possibly restricted to a *live* subset of edges. The iteration is a
//! linear merge over the two (sorted) endpoint adjacency lists, which gives
//! the `O(d_u + d_v)` per-edge bound the paper's complexity analysis uses.

use crate::{CsrGraph, EdgeId, EdgeSet, VertexId};

/// One triangle incident to a query edge `e = (u, v)`: the apex vertex `w`
/// and the two side edges `(u, w)` and `(v, w)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Wedge {
    /// The apex vertex completing the triangle.
    pub apex: VertexId,
    /// Edge `(u, w)`.
    pub e_uw: EdgeId,
    /// Edge `(v, w)`.
    pub e_vw: EdgeId,
}

/// Calls `f` for every triangle containing `e`, with no subset restriction.
#[inline]
pub fn for_each_triangle<F: FnMut(Wedge)>(g: &CsrGraph, e: EdgeId, mut f: F) {
    let (u, v) = g.endpoints(e);
    merge_common(g, u, v, |w, e_uw, e_vw| {
        f(Wedge {
            apex: w,
            e_uw,
            e_vw,
        })
    });
}

/// Calls `f` for every triangle containing `e` whose two side edges are both
/// in `live`. The query edge itself is *not* checked against `live`.
#[inline]
pub fn for_each_triangle_in<F: FnMut(Wedge)>(g: &CsrGraph, live: &EdgeSet, e: EdgeId, mut f: F) {
    let (u, v) = g.endpoints(e);
    merge_common(g, u, v, |w, e_uw, e_vw| {
        if live.contains(e_uw) && live.contains(e_vw) {
            f(Wedge {
                apex: w,
                e_uw,
                e_vw,
            })
        }
    });
}

/// Linear merge over the sorted adjacencies of `u` and `v`, invoking `f`
/// with every common neighbour and the two side-edge ids.
#[inline]
fn merge_common<F: FnMut(VertexId, EdgeId, EdgeId)>(
    g: &CsrGraph,
    u: VertexId,
    v: VertexId,
    mut f: F,
) {
    let nu = g.neighbors(u);
    let eu = g.neighbor_edges(u);
    let nv = g.neighbors(v);
    let ev = g.neighbor_edges(v);
    let (mut i, mut j) = (0usize, 0usize);
    while i < nu.len() && j < nv.len() {
        let (a, b) = (nu[i], nv[j]);
        match a.cmp(&b) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                f(a, eu[i], ev[j]);
                i += 1;
                j += 1;
            }
        }
    }
}

/// Support (= triangle count) of every edge, restricted to `live` if given.
///
/// An edge outside `live` gets support 0.
pub fn support(g: &CsrGraph, live: Option<&EdgeSet>) -> Vec<u32> {
    let mut sup = vec![0u32; g.num_edges()];
    match live {
        None => {
            for e in g.edges() {
                let mut c = 0u32;
                for_each_triangle(g, e, |_| c += 1);
                sup[e.idx()] = c;
            }
        }
        Some(live) => {
            for e in live.iter() {
                let mut c = 0u32;
                for_each_triangle_in(g, live, e, |_| c += 1);
                sup[e.idx()] = c;
            }
        }
    }
    sup
}

/// [`support`] fanned over `threads` workers (serial when `threads <= 1`
/// or the graph is small). Per-edge support is independent, so the edge
/// range is split into many contiguous chunks distributed round-robin —
/// enough slack to absorb the degree skew of social graphs without a
/// work-stealing queue. Results are identical to the serial version.
pub fn support_parallel(g: &CsrGraph, live: Option<&EdgeSet>, threads: usize) -> Vec<u32> {
    let m = g.num_edges();
    if threads <= 1 || m < 1 << 12 {
        return support(g, live);
    }
    let mut sup = vec![0u32; m];
    let chunk = m.div_ceil(threads * 8).max(1);
    let mut buckets: Vec<Vec<(usize, &mut [u32])>> = (0..threads).map(|_| Vec::new()).collect();
    for (i, slice) in sup.chunks_mut(chunk).enumerate() {
        buckets[i % threads].push((i * chunk, slice));
    }
    std::thread::scope(|scope| {
        for bucket in buckets {
            scope.spawn(move || {
                for (start, slice) in bucket {
                    for (off, out) in slice.iter_mut().enumerate() {
                        let e = EdgeId((start + off) as u32);
                        let mut c = 0u32;
                        match live {
                            None => for_each_triangle(g, e, |_| c += 1),
                            Some(l) => {
                                if !l.contains(e) {
                                    continue;
                                }
                                for_each_triangle_in(g, l, e, |_| c += 1)
                            }
                        }
                        *out = c;
                    }
                }
            });
        }
    });
    sup
}

/// Total number of triangles in the graph (each counted once).
pub fn triangle_count(g: &CsrGraph) -> u64 {
    // sum of per-edge supports counts each triangle three times.
    let s: u64 = support(g, None).iter().map(|&x| x as u64).sum();
    s / 3
}

/// Returns the apexes of triangles through `e` (convenience for tests).
pub fn triangle_apexes(g: &CsrGraph, e: EdgeId) -> Vec<VertexId> {
    let mut out = Vec::new();
    for_each_triangle(g, e, |w| out.push(w.apex));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    /// K4 on vertices 0..4 plus a pendant 4.
    fn k4_plus_pendant() -> CsrGraph {
        let mut b = GraphBuilder::dense();
        for u in 0..4u64 {
            for v in (u + 1)..4 {
                b.add_edge(u, v);
            }
        }
        b.add_edge(3, 4);
        b.build()
    }

    #[test]
    fn k4_supports() {
        let g = k4_plus_pendant();
        let sup = support(&g, None);
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            if v.0 == 4 {
                assert_eq!(sup[e.idx()], 0, "pendant edge has no triangles");
            } else {
                assert_eq!(sup[e.idx()], 2, "K4 edge {u}-{v} lies in 2 triangles");
            }
        }
    }

    #[test]
    fn k4_triangle_count() {
        let g = k4_plus_pendant();
        assert_eq!(triangle_count(&g), 4);
    }

    #[test]
    fn wedge_edges_are_consistent() {
        let g = k4_plus_pendant();
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            for_each_triangle(&g, e, |w| {
                assert_eq!(g.edge_between(u, w.apex), Some(w.e_uw));
                assert_eq!(g.edge_between(v, w.apex), Some(w.e_vw));
            });
        }
    }

    #[test]
    fn subset_restriction_drops_triangles() {
        let g = k4_plus_pendant();
        // remove one K4 edge from the live set; each remaining K4 edge loses
        // exactly one triangle.
        let dead = g
            .edge_between(VertexId(0), VertexId(1))
            .expect("edge 0-1 exists");
        let mut live = EdgeSet::full(g.num_edges());
        live.remove(dead);
        let sup = support(&g, Some(&live));
        assert_eq!(sup[dead.idx()], 0, "dead edge reports support 0");
        let e23 = g.edge_between(VertexId(2), VertexId(3)).unwrap();
        assert_eq!(sup[e23.idx()], 2, "edge 2-3 keeps both triangles");
        let e02 = g.edge_between(VertexId(0), VertexId(2)).unwrap();
        assert_eq!(sup[e02.idx()], 1, "edge 0-2 loses the 0-1-2 triangle");
    }

    #[test]
    fn apexes_sorted_by_merge() {
        let g = k4_plus_pendant();
        let e = g.edge_between(VertexId(0), VertexId(1)).unwrap();
        let apexes: Vec<u32> = triangle_apexes(&g, e).iter().map(|v| v.0).collect();
        assert_eq!(apexes, vec![2, 3]);
    }

    #[test]
    fn parallel_support_matches_serial() {
        // above the size cutoff so the threaded path actually runs
        let g = crate::gen::gnm(120, 5000, 3);
        let serial = support(&g, None);
        for threads in [2, 4] {
            assert_eq!(serial, support_parallel(&g, None, threads));
        }
        // subset-restricted variant
        let mut live = EdgeSet::full(g.num_edges());
        for e in (0..g.num_edges() as u32).step_by(3) {
            live.remove(EdgeId(e));
        }
        let serial = support(&g, Some(&live));
        assert_eq!(serial, support_parallel(&g, Some(&live), 4));
    }

    #[test]
    fn parallel_support_small_graph_falls_back() {
        let g = k4_plus_pendant();
        assert_eq!(support(&g, None), support_parallel(&g, None, 8));
    }

    #[test]
    fn empty_and_triangle_free() {
        let g = GraphBuilder::new().build();
        assert_eq!(triangle_count(&g), 0);
        let mut b = GraphBuilder::dense();
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        let path = b.build();
        assert_eq!(triangle_count(&path), 0);
        assert!(support(&path, None).iter().all(|&s| s == 0));
    }
}
