//! Compressed-sparse-row undirected graph with dense edge identifiers.

use crate::{EdgeId, VertexId};

/// An immutable, undirected simple graph in CSR form.
///
/// Invariants (established by [`crate::GraphBuilder`]):
///
/// * no self loops, no duplicate edges;
/// * every undirected edge `{u, v}` is stored **twice** in the adjacency
///   (once per endpoint) but owns exactly **one** [`EdgeId`];
/// * each vertex's neighbour list is sorted ascending, so common-neighbour
///   queries are linear merges and edge lookup is a binary search;
/// * `endpoints(e) = (u, v)` always satisfies `u < v`.
#[derive(Clone)]
pub struct CsrGraph {
    /// `offsets[v]..offsets[v + 1]` indexes `neighbors`/`adj_edge` for `v`.
    offsets: Vec<usize>,
    /// Concatenated sorted neighbour lists.
    neighbors: Vec<VertexId>,
    /// `adj_edge[i]` is the edge id of `(v, neighbors[i])`.
    adj_edge: Vec<EdgeId>,
    /// Canonical endpoint pairs per edge id, `u < v`.
    endpoints: Vec<(VertexId, VertexId)>,
}

impl CsrGraph {
    /// Builds a graph from canonical (deduplicated, loop-free, `u < v`)
    /// edges. Callers normally go through [`crate::GraphBuilder`].
    ///
    /// `n` is the number of vertices; every endpoint must be `< n`.
    pub(crate) fn from_canonical_edges(n: u32, edges: Vec<(VertexId, VertexId)>) -> Self {
        let n = n as usize;
        let mut degree = vec![0usize; n];
        for &(u, v) in &edges {
            debug_assert!(u < v, "edges must be canonical (u < v)");
            degree[u.idx()] += 1;
            degree[v.idx()] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut acc = 0usize;
        offsets.push(0);
        for d in &degree {
            acc += d;
            offsets.push(acc);
        }
        let mut cursor = offsets.clone();
        let mut neighbors = vec![VertexId(0); acc];
        let mut adj_edge = vec![EdgeId(0); acc];
        for (i, &(u, v)) in edges.iter().enumerate() {
            let e = EdgeId(i as u32);
            let cu = cursor[u.idx()];
            neighbors[cu] = v;
            adj_edge[cu] = e;
            cursor[u.idx()] += 1;
            let cv = cursor[v.idx()];
            neighbors[cv] = u;
            adj_edge[cv] = e;
            cursor[v.idx()] += 1;
        }
        // Sort each adjacency run by neighbour id (edge ids travel along).
        for v in 0..n {
            let range = offsets[v]..offsets[v + 1];
            let mut pairs: Vec<(VertexId, EdgeId)> =
                range.clone().map(|i| (neighbors[i], adj_edge[i])).collect();
            pairs.sort_unstable_by_key(|&(w, _)| w);
            for (k, (w, e)) in pairs.into_iter().enumerate() {
                neighbors[range.start + k] = w;
                adj_edge[range.start + k] = e;
            }
        }
        CsrGraph {
            offsets,
            neighbors,
            adj_edge,
            endpoints: edges,
        }
    }

    /// Number of vertices.
    #[inline]
    pub fn num_vertices(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of undirected edges.
    #[inline]
    pub fn num_edges(&self) -> usize {
        self.endpoints.len()
    }

    /// Degree of `v`.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.offsets[v.idx() + 1] - self.offsets[v.idx()]
    }

    /// Sorted neighbour list of `v`.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        &self.neighbors[self.offsets[v.idx()]..self.offsets[v.idx() + 1]]
    }

    /// Edge ids parallel to [`Self::neighbors`].
    #[inline]
    pub fn neighbor_edges(&self, v: VertexId) -> &[EdgeId] {
        &self.adj_edge[self.offsets[v.idx()]..self.offsets[v.idx() + 1]]
    }

    /// Iterates `(neighbor, edge id)` pairs of `v` in ascending neighbour
    /// order.
    #[inline]
    pub fn incident(&self, v: VertexId) -> impl Iterator<Item = (VertexId, EdgeId)> + '_ {
        self.neighbors(v)
            .iter()
            .copied()
            .zip(self.neighbor_edges(v).iter().copied())
    }

    /// Canonical endpoints `(u, v)` with `u < v` of edge `e`.
    #[inline]
    pub fn endpoints(&self, e: EdgeId) -> (VertexId, VertexId) {
        self.endpoints[e.idx()]
    }

    /// Looks up the edge between `u` and `v`, if any (binary search on the
    /// smaller adjacency list).
    pub fn edge_between(&self, u: VertexId, v: VertexId) -> Option<EdgeId> {
        if u == v {
            return None;
        }
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        let nbrs = self.neighbors(a);
        nbrs.binary_search(&b)
            .ok()
            .map(|i| self.adj_edge[self.offsets[a.idx()] + i])
    }

    /// Iterates all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        (0..self.num_vertices() as u32).map(VertexId)
    }

    /// Iterates all edge ids.
    pub fn edges(&self) -> impl Iterator<Item = EdgeId> {
        (0..self.num_edges() as u32).map(EdgeId)
    }

    /// Sum of endpoint degrees of `e` — the paper's `d_u + d_v` bound used in
    /// complexity statements.
    pub fn edge_degree(&self, e: EdgeId) -> usize {
        let (u, v) = self.endpoints(e);
        self.degree(u) + self.degree(v)
    }

    /// Maximum degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> usize {
        (0..self.num_vertices())
            .map(|v| self.degree(VertexId(v as u32)))
            .max()
            .unwrap_or(0)
    }
}

impl std::fmt::Debug for CsrGraph {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "CsrGraph(n={}, m={})",
            self.num_vertices(),
            self.num_edges()
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::GraphBuilder;
    use crate::{EdgeId, VertexId};

    fn triangle_plus_tail() -> crate::CsrGraph {
        // 0-1, 0-2, 1-2 (triangle), 2-3 (tail)
        let mut b = GraphBuilder::new();
        b.add_edge(0, 1);
        b.add_edge(0, 2);
        b.add_edge(1, 2);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn sizes_and_degrees() {
        let g = triangle_plus_tail();
        assert_eq!(g.num_vertices(), 4);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(VertexId(2)), 3);
        assert_eq!(g.degree(VertexId(3)), 1);
    }

    #[test]
    fn adjacency_sorted_with_edge_ids() {
        let g = triangle_plus_tail();
        let nbrs: Vec<u32> = g.neighbors(VertexId(2)).iter().map(|v| v.0).collect();
        assert_eq!(nbrs, vec![0, 1, 3]);
        for (w, e) in g.incident(VertexId(2)) {
            let (a, b) = g.endpoints(e);
            assert!(a == VertexId(2) || b == VertexId(2));
            assert!(a == w || b == w);
        }
    }

    #[test]
    fn endpoints_canonical() {
        let g = triangle_plus_tail();
        for e in g.edges() {
            let (u, v) = g.endpoints(e);
            assert!(u < v);
        }
    }

    #[test]
    fn edge_between_works_both_ways() {
        let g = triangle_plus_tail();
        let e = g.edge_between(VertexId(2), VertexId(0)).unwrap();
        assert_eq!(g.endpoints(e), (VertexId(0), VertexId(2)));
        assert_eq!(
            g.edge_between(VertexId(0), VertexId(2)),
            g.edge_between(VertexId(2), VertexId(0))
        );
        assert_eq!(g.edge_between(VertexId(0), VertexId(3)), None);
        assert_eq!(g.edge_between(VertexId(1), VertexId(1)), None);
    }

    #[test]
    fn each_edge_appears_twice_in_adjacency() {
        let g = triangle_plus_tail();
        let mut counts = vec![0usize; g.num_edges()];
        for v in g.vertices() {
            for &e in g.neighbor_edges(v) {
                counts[e.idx()] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 2));
    }

    #[test]
    fn empty_graph() {
        let g = GraphBuilder::new().build();
        assert_eq!(g.num_vertices(), 0);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn edge_degree_sums_endpoints() {
        let g = triangle_plus_tail();
        let e = g.edge_between(VertexId(2), VertexId(3)).unwrap();
        assert_eq!(g.edge_degree(e), 3 + 1);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn isolated_trailing_vertex_via_builder() {
        let mut b = GraphBuilder::dense();
        b.add_edge(0, 1);
        b.ensure_vertex(5);
        let g = b.build();
        assert_eq!(g.num_vertices(), 6);
        assert_eq!(g.degree(VertexId(5)), 0);
        assert_eq!(g.neighbors(VertexId(5)), &[] as &[VertexId]);
    }

    #[test]
    fn edge_ids_dense() {
        let g = triangle_plus_tail();
        let ids: Vec<u32> = g.edges().map(|e| e.0).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
        assert_eq!(g.endpoints(EdgeId(3)).1, VertexId(3));
    }
}
