//! `antruss` binary: thin dispatcher over [`antruss_cli::run`].

use antruss_bench::args::Args;

fn main() {
    let args = Args::from_env();
    match antruss_cli::run(&args) {
        Ok(report) => println!("{report}"),
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    }
}
