//! `antruss` binary: thin dispatcher over [`antruss_cli::run`].

use std::io::Write as _;

use antruss_bench::args::Args;

fn main() {
    let args = Args::from_env();
    match antruss_cli::run(&args) {
        // ignore broken pipes so `antruss ... --json | head` exits
        // cleanly instead of panicking mid-print
        Ok(report) => {
            let _ = writeln!(std::io::stdout(), "{report}");
        }
        Err(msg) => {
            let _ = writeln!(std::io::stderr(), "{msg}");
            std::process::exit(2);
        }
    }
}
