//! Command implementations for the `antruss` CLI.
//!
//! Each command is a function from parsed arguments to a report string, so
//! they are unit-testable without spawning processes. The thin `main`
//! dispatches and prints.

#![warn(missing_docs)]

use antruss_bench::args::Args;
use antruss_bench::table::Table;
use antruss_core::baselines::random::{random_baseline, Pool};
use antruss_core::route::{route_sizes, route_stats};
use antruss_core::stability::{decay_simulation, resilience_gain};
use antruss_core::{AtrState, Gas, GasConfig, ReusePolicy};
use antruss_datasets::DatasetId;
use antruss_graph::stats::graph_stats;
use antruss_graph::{io, CsrGraph, EdgeSet};
use antruss_kcore::{core_decompose, AnchoredCoreness};
use antruss_truss::{decompose, hull_sizes};
use std::fmt::Write as _;

/// CLI usage text.
pub const USAGE: &str = "antruss — Anchor Trussness Reinforcement toolkit

USAGE:
  antruss stats      <edges.txt | dataset-slug> [--scale F]
  antruss anchor     <edges.txt | dataset-slug> [--b N] [--policy paper|conservative|off] [--threads N] [--scale F]
  antruss routes     <edges.txt | dataset-slug> [--scale F]
  antruss compare    <edges.txt | dataset-slug> [--b N] [--trials N] [--scale F]
  antruss kcore      <edges.txt | dataset-slug> [--b N] [--scale F]
  antruss resilience <edges.txt | dataset-slug> [--b N] [--scale F]
  antruss community  <edges.txt | dataset-slug> --q VERTEX [--k K] [--scale F]
  antruss gen        <dataset-slug> --out FILE [--scale F]

Inputs are SNAP-style edge lists; dataset slugs (college, facebook, …,
pokec) generate the built-in synthetic analogues.";

/// Loads a graph from a file path or dataset slug.
pub fn load_input(spec: &str, scale: f64) -> Result<CsrGraph, String> {
    if let Some(id) = DatasetId::from_slug(spec) {
        return Ok(antruss_datasets::generate(id, scale.clamp(0.001, 1.0)));
    }
    io::read_edge_list_path(spec).map_err(|e| format!("cannot load {spec:?}: {e}"))
}

/// `antruss stats` — structural + truss statistics.
pub fn cmd_stats(g: &CsrGraph) -> String {
    let s = graph_stats(g);
    let info = decompose(g);
    let mut out = String::new();
    let _ = writeln!(out, "vertices        {}", s.vertices);
    let _ = writeln!(out, "edges           {}", s.edges);
    let _ = writeln!(out, "max degree      {}", s.max_degree);
    let _ = writeln!(out, "avg degree      {:.2}", s.avg_degree);
    let _ = writeln!(out, "triangles       {}", s.triangles);
    let _ = writeln!(out, "max support     {}", s.max_support);
    let _ = writeln!(out, "clustering      {:.4}", s.clustering);
    let _ = writeln!(out, "k_max           {}", info.k_max);
    let _ = writeln!(out, "\ntruss profile (non-empty hulls):");
    let mut t = Table::new(["k", "|H_k|"]);
    for (k, c) in hull_sizes(&info).iter().enumerate() {
        if *c > 0 {
            t.row([k.to_string(), c.to_string()]);
        }
    }
    out.push_str(&t.render());
    out
}

/// `antruss kcore` — core decomposition summary and the anchored-coreness
/// comparator (the vertex/core counterpart of `anchor`).
pub fn cmd_kcore(g: &CsrGraph, b: usize) -> String {
    let info = core_decompose(g);
    let mut out = String::new();
    let _ = writeln!(out, "core k_max      {}", info.k_max);
    let _ = writeln!(out, "total coreness  {}", info.total_coreness());
    let mut shell = vec![0usize; info.k_max as usize + 1];
    for v in g.vertices() {
        let c = info.c(v);
        if c != antruss_kcore::ANCHOR_CORENESS {
            shell[c as usize] += 1;
        }
    }
    let _ = writeln!(out, "\ncore shells (non-empty):");
    let mut t = Table::new(["k", "|shell_k|"]);
    for (k, c) in shell.iter().enumerate() {
        if *c > 0 {
            t.row([k.to_string(), c.to_string()]);
        }
    }
    out.push_str(&t.render());
    let cor = AnchoredCoreness::new(g).run(b);
    let _ = writeln!(
        out,
        "\nanchored coreness (b = {b}): {} vertices anchored, coreness gain {}",
        cor.anchors.len(),
        cor.total_gain
    );
    out
}

/// `antruss resilience` — decay simulation before/after GAS anchoring.
pub fn cmd_resilience(g: &CsrGraph, b: usize) -> String {
    let outcome = Gas::new(g, GasConfig::default()).run(b);
    let anchors = EdgeSet::from_iter(g.num_edges(), outcome.anchors.iter().copied());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "anchored {} edge(s); trussness gain {}; resilience gain {}",
        outcome.anchors.len(),
        outcome.total_gain,
        resilience_gain(g, &anchors)
    );
    let _ = writeln!(out, "\ndecay thresholds (k, survivors before, after):");
    let mut t = Table::new(["k", "before", "after", "delta"]);
    for (k, before, after) in decay_simulation(g, &anchors) {
        if before > 0 || after > 0 {
            t.row([
                k.to_string(),
                before.to_string(),
                after.to_string(),
                format!("+{}", after.saturating_sub(before)),
            ]);
        }
    }
    out.push_str(&t.render());
    out
}

/// `antruss community` — TCP-index k-truss community search around a
/// query vertex (defaults to the vertex's maximum cohesion level).
pub fn cmd_community(g: &CsrGraph, q: u32, k: Option<u32>) -> Result<String, String> {
    use antruss_graph::VertexId;
    if q as usize >= g.num_vertices() {
        return Err(format!(
            "vertex {q} out of range (graph has {} vertices)",
            g.num_vertices()
        ));
    }
    let qv = VertexId(q);
    let info = decompose(g);
    let k = match k {
        Some(k) => k,
        None => g
            .neighbor_edges(qv)
            .iter()
            .map(|&e| info.t(e))
            .max()
            .unwrap_or(0),
    };
    if k < 3 {
        return Ok(format!("vertex {q} touches no triangle (k = {k})"));
    }
    let index = antruss_truss::TcpIndex::build(g, &info);
    let communities = index.communities_of(g, &info, qv, k);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} {k}-truss communit{} containing vertex {q}:",
        communities.len(),
        if communities.len() == 1 { "y" } else { "ies" }
    );
    let mut t = Table::new(["#", "edges", "vertices", "sample members"]);
    for (i, c) in communities.iter().enumerate() {
        let sample: Vec<String> = c.vertices.iter().take(8).map(|v| v.to_string()).collect();
        t.row([
            (i + 1).to_string(),
            c.size().to_string(),
            c.vertices.len().to_string(),
            sample.join(" "),
        ]);
    }
    out.push_str(&t.render());
    Ok(out)
}

/// `antruss anchor` — run GAS and report the anchor set.
pub fn cmd_anchor(g: &CsrGraph, b: usize, policy: ReusePolicy, threads: usize) -> String {
    let outcome = Gas::new(g, GasConfig { reuse: policy, threads }).run(b);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "selected {} anchor(s); total trussness gain {}",
        outcome.anchors.len(),
        outcome.total_gain
    );
    let mut t = Table::new(["round", "edge", "endpoints", "followers", "recomputed"]);
    for r in &outcome.rounds {
        let (u, v) = g.endpoints(r.chosen);
        t.row([
            r.round.to_string(),
            format!("{}", r.chosen),
            format!("({u}, {v})"),
            r.followers.len().to_string(),
            r.recomputed.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out
}

/// `antruss routes` — Table-IV style upward-route statistics.
pub fn cmd_routes(g: &CsrGraph) -> String {
    let st = AtrState::new(g);
    let sizes = route_sizes(&st);
    let stats = route_stats(&sizes);
    format!(
        "edges      {}\nmin size   {}\nmax size   {}\nsum size   {}\navg size   {:.2}\n",
        g.num_edges(),
        stats.min,
        stats.max,
        stats.sum,
        stats.avg
    )
}

/// `antruss compare` — GAS vs the randomized baselines.
pub fn cmd_compare(g: &CsrGraph, b: usize, trials: usize) -> String {
    let gas = Gas::new(g, GasConfig::default()).run(b);
    let rand = random_baseline(g, Pool::All, b, trials, 1);
    let sup = random_baseline(g, Pool::TopSupport(0.2), b, trials, 2);
    let tur = random_baseline(g, Pool::TopRouteSize(0.2), b, trials, 3);
    let mut t = Table::new(["method", "gain"]);
    t.row(["GAS".to_string(), gas.total_gain.to_string()]);
    t.row(["Tur".to_string(), tur.gain.to_string()]);
    t.row(["Rand".to_string(), rand.gain.to_string()]);
    t.row(["Sup".to_string(), sup.gain.to_string()]);
    t.render()
}

/// Parses a reuse policy flag.
pub fn parse_policy(s: &str) -> Result<ReusePolicy, String> {
    match s {
        "paper" => Ok(ReusePolicy::PaperExact),
        "conservative" => Ok(ReusePolicy::Conservative),
        "off" => Ok(ReusePolicy::Off),
        other => Err(format!(
            "unknown policy {other:?} (expected paper|conservative|off)"
        )),
    }
}

/// Top-level dispatch; returns the report or an error message.
pub fn run(args: &Args) -> Result<String, String> {
    let pos = args.positional();
    let cmd = pos.first().map(String::as_str).unwrap_or("help");
    let scale = args.get("scale", 1.0f64);
    match cmd {
        "help" | "--help" => Ok(USAGE.to_string()),
        "stats" => {
            let spec = pos.get(1).ok_or("stats: missing input")?;
            Ok(cmd_stats(&load_input(spec, scale)?))
        }
        "anchor" => {
            let spec = pos.get(1).ok_or("anchor: missing input")?;
            let policy = parse_policy(args.get_str("policy").unwrap_or("paper"))?;
            Ok(cmd_anchor(
                &load_input(spec, scale)?,
                args.get("b", 10),
                policy,
                args.get("threads", 1),
            ))
        }
        "kcore" => {
            let spec = pos.get(1).ok_or("kcore: missing input")?;
            Ok(cmd_kcore(&load_input(spec, scale)?, args.get("b", 10)))
        }
        "resilience" => {
            let spec = pos.get(1).ok_or("resilience: missing input")?;
            Ok(cmd_resilience(&load_input(spec, scale)?, args.get("b", 10)))
        }
        "community" => {
            let spec = pos.get(1).ok_or("community: missing input")?;
            let q = args
                .get_str("q")
                .ok_or("community: missing --q VERTEX")?
                .parse::<u32>()
                .map_err(|e| format!("community: bad --q: {e}"))?;
            let k = args.get_str("k").map(|s| {
                s.parse::<u32>()
                    .map_err(|e| format!("community: bad --k: {e}"))
            });
            let k = match k {
                Some(Ok(k)) => Some(k),
                Some(Err(e)) => return Err(e),
                None => None,
            };
            cmd_community(&load_input(spec, scale)?, q, k)
        }
        "routes" => {
            let spec = pos.get(1).ok_or("routes: missing input")?;
            Ok(cmd_routes(&load_input(spec, scale)?))
        }
        "compare" => {
            let spec = pos.get(1).ok_or("compare: missing input")?;
            Ok(cmd_compare(
                &load_input(spec, scale)?,
                args.get("b", 10),
                args.get("trials", 20),
            ))
        }
        "gen" => {
            let spec = pos.get(1).ok_or("gen: missing dataset slug")?;
            let id = DatasetId::from_slug(spec).ok_or_else(|| format!("unknown dataset {spec:?}"))?;
            let out_path = args.get_str("out").ok_or("gen: missing --out FILE")?;
            let g = antruss_datasets::generate(id, scale.clamp(0.001, 1.0));
            io::write_edge_list_path(&g, out_path).map_err(|e| e.to_string())?;
            Ok(format!(
                "wrote {} ({} vertices, {} edges)",
                out_path,
                g.num_vertices(),
                g.num_edges()
            ))
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&args("help")).unwrap().contains("USAGE"));
        assert!(run(&args("frobnicate")).is_err());
    }

    #[test]
    fn stats_on_slug() {
        let report = run(&args("stats college --scale 0.05")).unwrap();
        assert!(report.contains("k_max"));
        assert!(report.contains("truss profile"));
    }

    #[test]
    fn anchor_on_slug() {
        let report = run(&args("anchor college --scale 0.05 --b 3")).unwrap();
        assert!(report.contains("anchor"));
        assert!(report.contains("followers"));
    }

    #[test]
    fn routes_and_compare() {
        let r = run(&args("routes college --scale 0.05")).unwrap();
        assert!(r.contains("avg size"));
        let c = run(&args("compare college --scale 0.05 --b 2 --trials 3")).unwrap();
        assert!(c.contains("GAS"));
    }

    #[test]
    fn community_search() {
        let r = run(&args("community college --scale 0.1 --q 0")).unwrap();
        assert!(r.contains("communit"), "got: {r}");
        let explicit = run(&args("community college --scale 0.1 --q 0 --k 3")).unwrap();
        assert!(explicit.contains("3-truss") || explicit.contains("no triangle"));
        assert!(run(&args("community college --scale 0.1 --q 99999999")).is_err());
        assert!(run(&args("community college --scale 0.1")).is_err());
    }

    #[test]
    fn kcore_and_resilience() {
        let k = run(&args("kcore college --scale 0.05 --b 2")).unwrap();
        assert!(k.contains("core k_max"));
        assert!(k.contains("anchored coreness"));
        let r = run(&args("resilience college --scale 0.05 --b 2")).unwrap();
        assert!(r.contains("resilience gain"));
        assert!(r.contains("decay thresholds"));
    }

    #[test]
    fn anchor_threaded_matches_serial() {
        let a1 = run(&args("anchor college --scale 0.05 --b 2")).unwrap();
        let a2 = run(&args("anchor college --scale 0.05 --b 2 --threads 4")).unwrap();
        assert_eq!(a1, a2, "thread count must not change the report");
    }

    #[test]
    fn policy_parse() {
        assert!(parse_policy("paper").is_ok());
        assert!(parse_policy("conservative").is_ok());
        assert!(parse_policy("off").is_ok());
        assert!(parse_policy("x").is_err());
    }

    #[test]
    fn gen_roundtrip() {
        let dir = std::env::temp_dir().join("antruss-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("college.txt");
        let msg = run(&args(&format!(
            "gen college --scale 0.05 --out {}",
            path.display()
        )))
        .unwrap();
        assert!(msg.contains("wrote"));
        let report = run(&Args::parse(vec![
            "stats".to_string(),
            path.display().to_string(),
        ]))
        .unwrap();
        assert!(report.contains("vertices"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_input_errors() {
        assert!(run(&args("stats")).is_err());
        assert!(run(&args("stats /no/such/file.txt")).is_err());
        assert!(run(&args("gen college")).is_err());
    }
}
