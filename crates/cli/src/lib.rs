//! Command implementations for the `antruss` CLI.
//!
//! Each command is a function from parsed arguments to a report string, so
//! they are unit-testable without spawning processes. The thin `main`
//! dispatches and prints.
//!
//! Anchoring commands dispatch through
//! [`antruss_core::engine::registry`], so every algorithm the paper
//! evaluates is reachable by name (`--solver gas|base|base+|exact|rand|`
//! `rand:sup|rand:tur|akt|edge-del|lazy`), and `--json` serializes the
//! unified [`Outcome`](antruss_core::engine::Outcome) for
//! machine-readable pipelines.

#![warn(missing_docs)]

use antruss_bench::args::Args;
use antruss_bench::table::Table;
use antruss_core::engine::{registry, Outcome, RunConfig};
use antruss_core::route::{route_sizes, route_stats};
use antruss_core::stability::{decay_simulation, resilience_gain};
use antruss_core::{AtrState, ReusePolicy};
use antruss_datasets::DatasetId;
use antruss_graph::stats::graph_stats;
use antruss_graph::{io, CsrGraph, EdgeSet};
use antruss_kcore::{core_decompose, AnchoredCoreness};
use antruss_obs as obs;
use antruss_truss::{decompose, hull_sizes};
use std::fmt::Write as _;

/// CLI usage text.
pub const USAGE: &str = "antruss — Anchor Trussness Reinforcement toolkit

USAGE:
  antruss stats      <edges.txt | dataset-slug> [--scale F]
  antruss anchor     <edges.txt | dataset-slug> [--b N] [--solver NAME] [--policy paper|conservative|off]
                     [--threads N] [--trials N] [--k K] [--exact-cap N] [--base-timeout S]
                     [--scale F] [--json]
  antruss compare    <edges.txt | dataset-slug> [--b N] [--solvers a,b,c] [--trials N] [--threads N]
                     [--scale F] [--json]
  antruss solvers
  antruss serve      [--addr HOST:PORT] [--threads N] [--cache N] [--max-body-mb N]
                     [--exact-cap N] [--base-timeout S] [--max-b N]
                     [--data-dir DIR] [--fsync always|interval:MS|never]
                     [--join ROUTER:PORT[,ROUTER:PORT...]] [--advertise HOST:PORT] [--heartbeat-ms MS]
                     [--metrics-interval SECS] [--slo availability=99.9,p99_ms=5]
                     [--log-level error|warn|info|debug] [--log-json]
  antruss cluster    [--backends N | --backend-addrs A:P,B:P,...] [--replicas R]
                     [--addr HOST:PORT] [--vnodes V] [--health-ms MS]
                     [--heartbeat-ms MS] [--miss-threshold N] [--threads N]
                     [--cache N] [--max-body-mb N] [--exact-cap N]
                     [--base-timeout S] [--max-b N] [--data-dir DIR]
                     [--fsync always|interval:MS|never]
                     [--peers ROUTER:PORT,...] [--router-data-dir DIR]
                     [--metrics-interval SECS] [--slo availability=99.9,p99_ms=5]
                     [--log-level error|warn|info|debug] [--log-json]
  antruss edge       --upstream HOST:PORT [--addr HOST:PORT] [--threads N] [--cache N]
                     [--max-body-mb N] [--poll-wait-ms MS] [--retry-ms MS]
                     [--metrics-interval SECS] [--slo availability=99.9,p99_ms=5]
                     [--log-level error|warn|info|debug] [--log-json]
  antruss top        <HOST:PORT> [--interval SECS] [--once]
  antruss routes     <edges.txt | dataset-slug> [--scale F]
  antruss kcore      <edges.txt | dataset-slug> [--b N] [--scale F]
  antruss resilience <edges.txt | dataset-slug> [--b N] [--scale F]
  antruss community  <edges.txt | dataset-slug> --q VERTEX [--k K] [--scale F]
  antruss gen        <dataset-slug> --out FILE [--scale F]

Solvers are dispatched by registry name (see `antruss solvers`). Inputs
are SNAP-style edge lists; dataset slugs (college, facebook, …, pokec)
generate the built-in synthetic analogues.

`antruss serve` starts the resident anchoring service: graphs stay
loaded in a shared catalog, repeated /solve requests are answered from
an LRU outcome cache, and ctrl-c drains in-flight work before exiting
(see the README's Serving section for the endpoints and curl examples).
With --data-dir DIR the catalog is durable: every register/mutate/
delete is appended to a checksummed write-ahead log before it is
acknowledged, the WAL compacts into per-graph binary snapshots, and a
restart (even after kill -9) replays snapshot + WAL tail; --fsync
picks the durability/latency trade-off (default interval:100).
With --join ROUTER:PORT the backend registers with a running `antruss
cluster` router, heartbeats, and deregisters on ctrl-c; --advertise
overrides the address the router dials back (required when the bind
address is not routable from the router's host). Against a replicated
control plane, --join takes the whole router list (comma-separated):
the backend heartbeats one router and fails over to the next when it
becomes unreachable.

`antruss cluster` starts the sharded serving tier: N backend serve
processes (or, with --backend-addrs, external backends it does not
spawn) behind a consistent-hash router that places each graph on R
replicas, fails over when a backend dies, warms joining/re-joining
replicas from surviving peers, evicts backends that miss
--miss-threshold heartbeats in a row, and fans graph mutations out to
every replica concurrently (see the README's Cluster section). With
--peers the router replicates the control plane: it gossips the
dynamic member table with the listed peer routers on every health
tick, so any router can take joins, heartbeats, and evictions for all
of them; --router-data-dir makes the member table durable, so a
restarted router recovers its dynamic members and event cursor from
disk instead of waiting out re-joins (see the README's Replicated
routers section).

`antruss edge` starts a read-only edge replica in front of --upstream
(a serve node, a cluster router, or another edge — edges daisy-chain):
/solve is answered from a warm local outcome cache, misses are
forwarded, and a background subscription to the upstream's /events
feed invalidates exactly the graphs that changed. When the upstream is
unreachable the edge keeps serving every cached read (responses gain
x-antruss-stale); writes are always refused with 421 naming the
upstream (see the README's Edge tier section).

All serving commands log to stderr; --log-level gates verbosity
(default info) and --log-json switches to one JSON object per line for
log shippers. Each tier also serves GET /metrics (Prometheus text,
including per-phase latency histograms), GET /metrics/history (a
bounded ring of recent samples, taken every --metrics-interval),
GET /readyz (503 while draining, for load balancers), GET
/debug/traces (the slowest recent request traces) and GET /debug/prof
(the always-on profile: allocator totals, per-role thread CPU,
lock-wait histograms, per-request cost quantiles; every /solve reply
also carries its own cost in the x-antruss-cost header). With --slo the tier
evaluates its objectives as multi-window burn rates over that history
and /healthz reports ok|degraded|critical naming the burning
objective; the router additionally federates every member's summary at
GET /cluster/overview (see the README's Observability section).

`antruss top HOST:PORT` renders a live dashboard over any tier's
telemetry: pointed at a router it polls /cluster/overview (per-member
health, throughput, p99, cache hit ratio, staleness); pointed at a
serve node or edge it falls back to /healthz + /metrics/history. When
the tier serves /debug/prof the frame gains a profiling panel (CPU by
thread role, live allocator bytes, worst lock waits); older tiers
without the endpoint just render without it.
--once prints a single frame for scripts.";

/// Loads a graph from a file path or dataset slug.
pub fn load_input(spec: &str, scale: f64) -> Result<CsrGraph, String> {
    if let Some(id) = DatasetId::from_slug(spec) {
        return Ok(antruss_datasets::generate(id, scale.clamp(0.001, 1.0)));
    }
    io::read_edge_list_path(spec).map_err(|e| format!("cannot load {spec:?}: {e}"))
}

/// Builds a [`RunConfig`] from the shared CLI flags.
///
/// Interactive defaults differ from the library's in two safety valves:
/// `exact` is capped at 100 000 enumerated sets (`--exact-cap N`,
/// `0` = exhaustive) and `base` at 60 s wall-clock (`--base-timeout S`,
/// `0` = unbounded), so a mistyped solver name cannot wedge a terminal
/// for hours.
pub fn run_config(args: &Args) -> Result<RunConfig, String> {
    let mut cfg = RunConfig::new(args.get("b", 10))
        .threads(args.get("threads", 1))
        .trials(args.get("trials", 20))
        .seed(args.get("seed", 1));
    let base_timeout = args.get("base-timeout", 60u64);
    if base_timeout > 0 {
        cfg = cfg.time_budget(std::time::Duration::from_secs(base_timeout));
    }
    let exact_cap = args.get("exact-cap", 100_000u64);
    if exact_cap > 0 {
        cfg = cfg.exact_cap(exact_cap);
    }
    if let Some(p) = args.get_str("policy") {
        cfg = cfg.reuse(parse_policy(p)?);
    }
    if let Some(k) = args.get_str("k") {
        cfg = cfg.k(k.parse::<u32>().map_err(|e| format!("bad --k: {e}"))?);
    }
    Ok(cfg)
}

/// Resolves a solver name against the registry with a helpful error.
fn solver_by_name(name: &str) -> Result<&'static dyn antruss_core::Solver, String> {
    registry().get(name).ok_or_else(|| {
        format!(
            "unknown solver {name:?} (available: {})",
            registry().names().join(", ")
        )
    })
}

/// `antruss stats` — structural + truss statistics.
pub fn cmd_stats(g: &CsrGraph) -> String {
    let s = graph_stats(g);
    let info = decompose(g);
    let mut out = String::new();
    let _ = writeln!(out, "vertices        {}", s.vertices);
    let _ = writeln!(out, "edges           {}", s.edges);
    let _ = writeln!(out, "max degree      {}", s.max_degree);
    let _ = writeln!(out, "avg degree      {:.2}", s.avg_degree);
    let _ = writeln!(out, "triangles       {}", s.triangles);
    let _ = writeln!(out, "max support     {}", s.max_support);
    let _ = writeln!(out, "clustering      {:.4}", s.clustering);
    let _ = writeln!(out, "k_max           {}", info.k_max);
    let _ = writeln!(out, "\ntruss profile (non-empty hulls):");
    let mut t = Table::new(["k", "|H_k|"]);
    for (k, c) in hull_sizes(&info).iter().enumerate() {
        if *c > 0 {
            t.row([k.to_string(), c.to_string()]);
        }
    }
    out.push_str(&t.render());
    out
}

/// `antruss kcore` — core decomposition summary and the anchored-coreness
/// comparator (the vertex/core counterpart of `anchor`).
pub fn cmd_kcore(g: &CsrGraph, b: usize) -> String {
    let info = core_decompose(g);
    let mut out = String::new();
    let _ = writeln!(out, "core k_max      {}", info.k_max);
    let _ = writeln!(out, "total coreness  {}", info.total_coreness());
    let mut shell = vec![0usize; info.k_max as usize + 1];
    for v in g.vertices() {
        let c = info.c(v);
        if c != antruss_kcore::ANCHOR_CORENESS {
            shell[c as usize] += 1;
        }
    }
    let _ = writeln!(out, "\ncore shells (non-empty):");
    let mut t = Table::new(["k", "|shell_k|"]);
    for (k, c) in shell.iter().enumerate() {
        if *c > 0 {
            t.row([k.to_string(), c.to_string()]);
        }
    }
    out.push_str(&t.render());
    let cor = AnchoredCoreness::new(g).run(b);
    let _ = writeln!(
        out,
        "\nanchored coreness (b = {b}): {} vertices anchored, coreness gain {}",
        cor.anchors.len(),
        cor.total_gain
    );
    out
}

/// `antruss resilience` — decay simulation before/after GAS anchoring.
pub fn cmd_resilience(g: &CsrGraph, b: usize) -> Result<String, String> {
    let outcome = solver_by_name("gas")?
        .run(g, &RunConfig::new(b))
        .map_err(|e| e.to_string())?;
    let anchors = EdgeSet::from_iter(g.num_edges(), outcome.edge_anchors());
    let mut out = String::new();
    let _ = writeln!(
        out,
        "anchored {} edge(s); trussness gain {}; resilience gain {}",
        outcome.anchors.len(),
        outcome.total_gain,
        resilience_gain(g, &anchors)
    );
    let _ = writeln!(out, "\ndecay thresholds (k, survivors before, after):");
    let mut t = Table::new(["k", "before", "after", "delta"]);
    for (k, before, after) in decay_simulation(g, &anchors) {
        if before > 0 || after > 0 {
            t.row([
                k.to_string(),
                before.to_string(),
                after.to_string(),
                format!("+{}", after.saturating_sub(before)),
            ]);
        }
    }
    out.push_str(&t.render());
    Ok(out)
}

/// `antruss community` — TCP-index k-truss community search around a
/// query vertex (defaults to the vertex's maximum cohesion level).
pub fn cmd_community(g: &CsrGraph, q: u32, k: Option<u32>) -> Result<String, String> {
    use antruss_graph::VertexId;
    if q as usize >= g.num_vertices() {
        return Err(format!(
            "vertex {q} out of range (graph has {} vertices)",
            g.num_vertices()
        ));
    }
    let qv = VertexId(q);
    let info = decompose(g);
    let k = match k {
        Some(k) => k,
        None => g
            .neighbor_edges(qv)
            .iter()
            .map(|&e| info.t(e))
            .max()
            .unwrap_or(0),
    };
    if k < 3 {
        return Ok(format!("vertex {q} touches no triangle (k = {k})"));
    }
    let index = antruss_truss::TcpIndex::build(g, &info);
    let communities = index.communities_of(g, &info, qv, k);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{} {k}-truss communit{} containing vertex {q}:",
        communities.len(),
        if communities.len() == 1 { "y" } else { "ies" }
    );
    let mut t = Table::new(["#", "edges", "vertices", "sample members"]);
    for (i, c) in communities.iter().enumerate() {
        let sample: Vec<String> = c.vertices.iter().take(8).map(|v| v.to_string()).collect();
        t.row([
            (i + 1).to_string(),
            c.size().to_string(),
            c.vertices.len().to_string(),
            sample.join(" "),
        ]);
    }
    out.push_str(&t.render());
    Ok(out)
}

/// Renders one unified [`Outcome`] as the human-readable anchor report.
fn render_outcome(g: &CsrGraph, outcome: &Outcome) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "[{}] selected {} anchor(s); total trussness gain {}; claimed {}; {:.3}s",
        outcome.solver,
        outcome.anchors.len(),
        outcome.total_gain,
        outcome.claimed_gain,
        outcome.elapsed.as_secs_f64()
    );
    if outcome.rounds.is_empty() {
        let anchors: Vec<String> = outcome
            .anchors
            .iter()
            .map(|a| match a {
                antruss_core::engine::Anchor::Edge(e) => {
                    let (u, v) = g.endpoints(*e);
                    format!("{e}=({u},{v})")
                }
                antruss_core::engine::Anchor::Vertex(v) => format!("v{v}"),
            })
            .collect();
        let _ = writeln!(out, "anchors: {}", anchors.join(" "));
    } else {
        let mut t = Table::new(["round", "anchor", "endpoints", "gain", "recomputed"]);
        for r in &outcome.rounds {
            let (anchor_cell, endpoints_cell) = match r.chosen {
                antruss_core::engine::Anchor::Edge(e) => {
                    let (u, v) = g.endpoints(e);
                    (format!("{e}"), format!("({u}, {v})"))
                }
                antruss_core::engine::Anchor::Vertex(v) => (format!("v{v}"), "-".to_string()),
            };
            t.row([
                r.round.to_string(),
                anchor_cell,
                endpoints_cell,
                r.gain.to_string(),
                r.recomputed.to_string(),
            ]);
        }
        out.push_str(&t.render());
    }
    out
}

/// `antruss anchor` — run any registry solver and report its anchor set.
pub fn cmd_anchor(
    g: &CsrGraph,
    solver: &str,
    cfg: &RunConfig,
    json: bool,
) -> Result<String, String> {
    let outcome = solver_by_name(solver)?
        .run(g, cfg)
        .map_err(|e| e.to_string())?;
    if json {
        return Ok(outcome.to_json());
    }
    Ok(render_outcome(g, &outcome))
}

/// `antruss routes` — Table-IV style upward-route statistics.
pub fn cmd_routes(g: &CsrGraph) -> String {
    let st = AtrState::new(g);
    let sizes = route_sizes(&st);
    let stats = route_stats(&sizes);
    format!(
        "edges      {}\nmin size   {}\nmax size   {}\nsum size   {}\navg size   {:.2}\n",
        g.num_edges(),
        stats.min,
        stats.max,
        stats.sum,
        stats.avg
    )
}

/// Default solver line-up of `antruss compare`.
pub const DEFAULT_COMPARE: &[&str] = &["gas", "rand:tur", "rand", "rand:sup"];

/// `antruss compare` — any set of registry solvers side by side on one
/// graph, consuming only the unified [`Outcome`] type.
pub fn cmd_compare(
    g: &CsrGraph,
    solvers: &[&str],
    cfg: &RunConfig,
    json: bool,
) -> Result<String, String> {
    let mut outcomes: Vec<Outcome> = Vec::with_capacity(solvers.len());
    for (i, name) in solvers.iter().enumerate() {
        // each solver draws from its own stream (base seed + position),
        // so identically-pooled randomized solvers don't collapse into
        // the same draws
        let cfg = cfg.clone().seed(cfg.seed + i as u64);
        outcomes.push(
            solver_by_name(name)?
                .run(g, &cfg)
                .map_err(|e| format!("{name}: {e}"))?,
        );
    }
    if json {
        let body: Vec<String> = outcomes.iter().map(|o| o.to_json()).collect();
        return Ok(format!("[{}]", body.join(",")));
    }
    let mut t = Table::new(["solver", "gain", "anchors", "time"]);
    for o in &outcomes {
        t.row([
            o.solver.clone(),
            o.total_gain.to_string(),
            o.anchors.len().to_string(),
            format!("{:.3}s", o.elapsed.as_secs_f64()),
        ]);
    }
    Ok(t.render())
}

/// Parses the shared telemetry flags: `--metrics-interval SECS`
/// (history sampler cadence, fractional seconds accepted, 0 disables)
/// and `--slo KEY=VALUE[,KEY=VALUE...]` (service-level objectives).
pub fn telemetry_flags(
    args: &Args,
    default_interval_ms: u64,
) -> Result<(u64, Vec<obs::slo::Objective>), String> {
    let secs = args.get("metrics-interval", default_interval_ms as f64 / 1000.0);
    if !secs.is_finite() || secs < 0.0 {
        return Err(format!("--metrics-interval: bad value {secs}"));
    }
    let slos = match args.get_str("slo") {
        None => Vec::new(),
        Some(raw) => obs::slo::parse_slos(raw).map_err(|e| format!("--slo: {e}"))?,
    };
    Ok(((secs * 1000.0).round() as u64, slos))
}

/// Builds the service configuration from the `serve` flags
/// (`--data-dir DIR` makes the catalog durable; `--fsync` picks the
/// WAL flush policy and rejects unknown spellings loudly).
pub fn serve_config(args: &Args) -> Result<antruss_service::ServerConfig, String> {
    let defaults = antruss_service::ServerConfig::default();
    let fsync = match args.get_str("fsync") {
        None => defaults.fsync,
        Some(raw) => antruss_store::FsyncPolicy::parse(raw).map_err(|e| format!("--fsync: {e}"))?,
    };
    let (metrics_interval_ms, slos) = telemetry_flags(args, defaults.metrics_interval_ms)?;
    Ok(antruss_service::ServerConfig {
        addr: args.get_str("addr").unwrap_or("127.0.0.1:7171").to_string(),
        threads: args.get("threads", defaults.threads),
        cache_capacity: args.get("cache", defaults.cache_capacity),
        max_body_bytes: args
            .get("max-body-mb", defaults.max_body_bytes / (1024 * 1024))
            .saturating_mul(1024 * 1024),
        max_budget: args.get("max-b", defaults.max_budget),
        exact_cap: args.get("exact-cap", defaults.exact_cap),
        base_timeout_secs: args.get("base-timeout", defaults.base_timeout_secs),
        max_solve_threads: defaults.max_solve_threads,
        shard: None,
        data_dir: args.get_str("data-dir").map(String::from),
        fsync,
        metrics_interval_ms,
        slos,
    })
}

/// Resolves one `HOST:PORT` (hostname or IP literal) to a socket
/// address — cross-host deployments name backends by hostname, so a
/// bare `SocketAddr` parse would reject every documented example.
pub fn resolve_addr(raw: &str) -> Result<std::net::SocketAddr, String> {
    use std::net::ToSocketAddrs as _;
    raw.to_socket_addrs()
        .map_err(|e| format!("bad address {raw:?}: {e}"))?
        .next()
        .ok_or_else(|| format!("bad address {raw:?}: resolved to nothing"))
}

/// Parses a comma-separated `HOST:PORT[,HOST:PORT...]` list.
pub fn parse_addr_list(raw: &str) -> Result<Vec<std::net::SocketAddr>, String> {
    raw.split(',')
        .map(str::trim)
        .filter(|a| !a.is_empty())
        .map(resolve_addr)
        .collect()
}

/// Builds the cluster topology from the `cluster` flags. Backend safety
/// valves reuse the `serve` flags (`--cache`, `--max-b`, `--exact-cap`,
/// `--base-timeout`, `--max-body-mb`). Without `--backend-addrs` the
/// supervisor spawns `--backends` in-process servers on ephemeral
/// loopback ports; with it, the router fronts those external processes
/// instead (and more can join at runtime via `antruss serve --join`).
pub fn cluster_config(args: &Args) -> Result<antruss_cluster::ClusterConfig, String> {
    let defaults = antruss_cluster::ClusterConfig::default();
    let backend_addrs = match args.get_str("backend-addrs") {
        Some(raw) => {
            let addrs = parse_addr_list(raw)?;
            if addrs.is_empty() {
                return Err("cluster: --backend-addrs lists no addresses".to_string());
            }
            addrs
        }
        None => Vec::new(),
    };
    Ok(antruss_cluster::ClusterConfig {
        backends: args.get("backends", defaults.backends).max(1),
        backend_addrs,
        replication: args.get("replicas", defaults.replication).max(1),
        vnodes: args.get("vnodes", defaults.vnodes).max(1),
        router_addr: args.get_str("addr").unwrap_or("127.0.0.1:7171").to_string(),
        router_threads: args.get("threads", defaults.router_threads),
        health_interval_ms: args.get("health-ms", defaults.health_interval_ms),
        heartbeat_ms: args.get("heartbeat-ms", defaults.heartbeat_ms).max(1),
        miss_threshold: args.get("miss-threshold", defaults.miss_threshold).max(1),
        backend: serve_config(args)?,
        peers: match args.get_str("peers") {
            Some(raw) => {
                let peers =
                    parse_addr_list(raw).map_err(|e| format!("cluster: bad --peers: {e}"))?;
                if peers.is_empty() {
                    return Err("cluster: --peers lists no addresses".to_string());
                }
                peers
            }
            None => Vec::new(),
        },
        router_data_dir: args.get_str("router-data-dir").map(String::from),
    })
}

/// `antruss cluster` — run the sharded serving tier until ctrl-c: N
/// backend serve processes (or external `--backend-addrs`) behind a
/// consistent-hash router.
pub fn cmd_cluster(args: &Args) -> Result<String, String> {
    let cfg = cluster_config(args)?;
    let cluster = antruss_cluster::Cluster::start(cfg.clone())
        .map_err(|e| format!("cluster: cannot start on {}: {e}", cfg.router_addr))?;
    let external = !cfg.backend_addrs.is_empty();
    let fronted = if external {
        cfg.backend_addrs.len()
    } else {
        cfg.backends
    };
    obs::info!(
        "cluster",
        "router on http://{} fronting {} {} backend(s) (R={}, {} vnodes, \
         heartbeat {} ms x{}) — ctrl-c to stop",
        cluster.router_addr(),
        fronted,
        if external { "external" } else { "spawned" },
        cfg.replication.min(fronted),
        cfg.vnodes,
        cfg.heartbeat_ms,
        cfg.miss_threshold,
    );
    if external {
        for (i, addr) in cfg.backend_addrs.iter().enumerate() {
            obs::info!("cluster", "shard {i}: http://{addr} (external)");
        }
    } else {
        for (i, addr) in cluster.backend_addrs().iter().enumerate() {
            obs::info!("cluster", "shard {i}: http://{addr}");
        }
    }
    Ok(cluster.run_until_sigint())
}

/// `antruss serve` — run the resident anchoring service until ctrl-c.
/// With `--join ROUTER:PORT` the backend also registers with a cluster
/// router, heartbeats while it runs, and deregisters on shutdown.
pub fn cmd_serve(args: &Args) -> Result<String, String> {
    let cfg = serve_config(args)?;
    let server = antruss_service::Server::start(cfg.clone())
        .map_err(|e| format!("serve: cannot bind {}: {e}", cfg.addr))?;
    obs::info!(
        "serve",
        "listening on http://{} ({} worker thread(s), cache {} entries) — ctrl-c to stop",
        server.addr(),
        if cfg.threads == 0 {
            "auto".to_string()
        } else {
            cfg.threads.to_string()
        },
        cfg.cache_capacity
    );
    if let Some(store) = server.state().store.as_deref() {
        let s = store.stats();
        obs::info!(
            "serve",
            "durable catalog in {} (fsync {}; recovered {} graph(s) + {} op(s) in {} ms)",
            store.dir().display(),
            store.policy(),
            s.recovered_graphs,
            s.recovered_ops,
            s.recovery_ms
        );
    }
    let heartbeat = match args.get_str("join") {
        None => None,
        Some(raw) => {
            let routers = parse_addr_list(raw).map_err(|e| format!("serve: bad --join: {e}"))?;
            if routers.is_empty() {
                return Err("serve: --join lists no addresses".to_string());
            }
            let advertise = match args.get_str("advertise") {
                Some(a) => resolve_addr(a).map_err(|e| format!("serve: bad --advertise: {e}"))?,
                None => server.addr(),
            };
            let interval = args
                .get_str("heartbeat-ms")
                .map(|_| args.get("heartbeat-ms", 1000u64));
            // a durable backend advertises its persisted cluster cursor
            // on every (re-)join, so the router can catch it up from the
            // event tail instead of a full dump/load re-warm
            let cursor_store = server.state().store.clone();
            let cursor: antruss_service::CursorSource =
                std::sync::Arc::new(move || cursor_store.as_ref()?.load_cluster_cursor());
            let hb = antruss_service::HeartbeatClient::start_multi(
                routers.clone(),
                advertise,
                interval,
                cursor,
            )
            .map_err(|e| format!("serve: cannot join {raw}: {e}"))?;
            obs::info!(
                "serve",
                "joined cluster router(s) {raw} as {advertise} ({} failover spare(s))",
                routers.len() - 1
            );
            Some(hb)
        }
    };
    let report = server.run_until_sigint();
    if let Some(hb) = heartbeat {
        let left = hb.leave();
        obs::info!(
            "serve",
            "{} the cluster router",
            if left {
                "deregistered from"
            } else {
                "could not deregister from"
            }
        );
    }
    Ok(report)
}

/// Builds the edge configuration from the `edge` flags. `--upstream`
/// is required — an edge with nothing behind it can serve nothing.
pub fn edge_config(args: &Args) -> Result<antruss_edge::EdgeConfig, String> {
    let defaults = antruss_edge::EdgeConfig::default();
    let upstream = args
        .get_str("upstream")
        .ok_or("edge: missing --upstream HOST:PORT")?;
    // resolve eagerly so a typo fails before the edge binds
    antruss_edge::parse_upstream(upstream).map_err(|e| format!("edge: bad --upstream: {e}"))?;
    let (metrics_interval_ms, slos) = telemetry_flags(args, defaults.metrics_interval_ms)?;
    Ok(antruss_edge::EdgeConfig {
        addr: args.get_str("addr").unwrap_or("127.0.0.1:7272").to_string(),
        upstream: upstream.to_string(),
        threads: args.get("threads", defaults.threads),
        cache_capacity: args.get("cache", defaults.cache_capacity),
        max_body_bytes: args
            .get("max-body-mb", defaults.max_body_bytes / (1024 * 1024))
            .saturating_mul(1024 * 1024),
        poll_wait_ms: args.get("poll-wait-ms", defaults.poll_wait_ms),
        retry_ms: args.get("retry-ms", defaults.retry_ms).max(1),
        metrics_interval_ms,
        slos,
    })
}

/// `antruss edge` — run the read-replica edge tier until ctrl-c.
pub fn cmd_edge(args: &Args) -> Result<String, String> {
    let cfg = edge_config(args)?;
    let mut edge = antruss_edge::Edge::start(cfg.clone())
        .map_err(|e| format!("edge: cannot bind {}: {e}", cfg.addr))?;
    obs::info!(
        "edge",
        "listening on http://{} (upstream http://{}, cache {} entries) — ctrl-c to stop",
        edge.addr(),
        cfg.upstream,
        cfg.cache_capacity
    );
    antruss_service::server::install_sigint_handler();
    while !antruss_service::server::sigint_received() && !edge.state().is_shutdown() {
        std::thread::sleep(std::time::Duration::from_millis(100));
    }
    let state = std::sync::Arc::clone(edge.state());
    edge.shutdown();
    let cache = state.cache.stats();
    Ok(format!(
        "served {} request(s) ({} cache hit(s), {} forwarded, {} stale serve(s), {} write(s) refused)",
        state.metrics.requests.load(std::sync::atomic::Ordering::Relaxed),
        cache.hits,
        state.metrics.forwarded.load(std::sync::atomic::Ordering::Relaxed),
        state.metrics.stale_serves.load(std::sync::atomic::Ordering::Relaxed),
        state.metrics.writes_rejected.load(std::sync::atomic::Ordering::Relaxed),
    ))
}

/// ANSI color for a health level (`ok` green, `degraded` yellow,
/// everything else — `critical`, `down`, `unknown` — red).
fn level_color(level: &str) -> &'static str {
    match level {
        "ok" | "ready" => "\x1b[32m",
        "degraded" | "unknown" | "draining" => "\x1b[33m",
        _ => "\x1b[31m",
    }
}

fn colored(level: &str) -> String {
    format!("{}{level}\x1b[0m", level_color(level))
}

fn num(v: Option<&antruss_core::json::Value>) -> f64 {
    v.and_then(antruss_core::json::Value::as_f64).unwrap_or(0.0)
}

fn text<'v>(v: Option<&'v antruss_core::json::Value>, default: &'v str) -> &'v str {
    v.and_then(antruss_core::json::Value::as_str)
        .unwrap_or(default)
}

/// Renders one dashboard frame from a router's `/cluster/overview`
/// body: the router's own summary line plus one table row per member.
pub fn render_overview_frame(addr: &str, body: &str) -> Result<String, String> {
    let v = antruss_core::json::parse(body).map_err(|e| format!("top: bad overview JSON: {e}"))?;
    let mut out = String::new();
    let router = v.get("router");
    let status = text(router.and_then(|r| r.get("status")), "unknown");
    let _ = writeln!(out, "antruss top — {addr} (cluster overview)");
    let _ = writeln!(
        out,
        "router  status {}  requests {}  throughput {:.1}/s  p99 {:.1} ms  events {}",
        colored(status),
        num(router.and_then(|r| r.get("requests"))) as u64,
        num(router.and_then(|r| r.get("throughput"))),
        num(router.and_then(|r| r.get("p99_seconds"))) * 1000.0,
        num(router.and_then(|r| r.get("events_head"))) as u64,
    );
    let mut t = Table::new([
        "shard", "addr", "health", "ready", "req/s", "p99 ms", "hit %", "events", "stale s",
    ]);
    for m in v
        .get("members")
        .and_then(antruss_core::json::Value::as_array)
        .unwrap_or(&[])
    {
        let status = text(m.get("status"), "unknown");
        let ready = text(m.get("ready"), "unknown");
        t.row([
            format!("{}", num(m.get("shard")) as u64),
            text(m.get("addr"), "?").to_string(),
            colored(status),
            colored(ready),
            format!("{:.1}", num(m.get("throughput"))),
            format!("{:.1}", num(m.get("p99_seconds")) * 1000.0),
            format!("{:.1}", num(m.get("hit_ratio")) * 100.0),
            format!("{}", num(m.get("events_head")) as u64),
            format!("{:.1}", num(m.get("staleness_seconds"))),
        ]);
    }
    out.push_str(&t.render());
    Ok(out)
}

/// Renders one dashboard frame for a single tier (serve or edge) from
/// its `/healthz` and `/metrics/history` bodies: the health verdict
/// plus the latest point of each key counter/latency series.
pub fn render_tier_frame(addr: &str, healthz: &str, history: &str) -> Result<String, String> {
    let h = antruss_core::json::parse(healthz).map_err(|e| format!("top: bad healthz: {e}"))?;
    let status = text(h.get("status"), "unknown");
    let mut out = String::new();
    let _ = writeln!(out, "antruss top — {addr} (single tier)");
    let mut line = format!("status {}", colored(status));
    if let Some(burning) = h.get("burning").and_then(antruss_core::json::Value::as_str) {
        let _ = write!(line, "  burning {}", colored(burning));
    }
    let _ = writeln!(out, "{line}");
    let v = antruss_core::json::parse(history).map_err(|e| format!("top: bad history: {e}"))?;
    let mut t = Table::new(["series", "latest", "rate/s"]);
    for s in v
        .get("series")
        .and_then(antruss_core::json::Value::as_array)
        .unwrap_or(&[])
    {
        let name = text(s.get("name"), "?");
        let labels = text(s.get("labels"), "");
        let counter = [
            "requests_total",
            "errors_total",
            "cache_hits_total",
            "cache_misses_total",
        ]
        .iter()
        .any(|suffix| name.ends_with(suffix));
        let p99 = labels.contains("q=\"0.99\"")
            && (labels == "{q=\"0.99\"}" || labels.contains("endpoint=\"solve\""));
        if !counter && !p99 {
            continue;
        }
        let Some(last) = s
            .get("points")
            .and_then(antruss_core::json::Value::as_array)
            .and_then(<[_]>::last)
        else {
            continue;
        };
        let rate = last
            .get("rate")
            .and_then(antruss_core::json::Value::as_f64)
            .map(|r| format!("{r:.2}"))
            .unwrap_or_else(|| "-".to_string());
        let value = num(last.get("value"));
        t.row([
            format!("{name}{labels}"),
            if p99 {
                format!("{:.1} ms", value * 1000.0)
            } else {
                format!("{value:.0}")
            },
            rate,
        ]);
    }
    out.push_str(&t.render());
    Ok(out)
}

/// Renders the profiling panel of an `antruss top` frame from a tier's
/// `GET /debug/prof` body: CPU seconds by thread role, allocator
/// totals, and the locks with the most accumulated wait. Returns
/// `None` when the body is not the expected shape, so the caller can
/// hide the panel instead of failing the whole frame.
pub fn render_prof_panel(body: &str) -> Option<String> {
    let v = antruss_core::json::parse(body).ok()?;
    let alloc = v.get("alloc")?;
    let mut out = String::new();
    let mut cpu = String::from("prof    cpu");
    let mut roles: Vec<(String, f64)> = v
        .get("cpu")
        .and_then(|c| c.get("by_role"))
        .and_then(antruss_core::json::Value::as_array)
        .unwrap_or(&[])
        .iter()
        .map(|r| {
            (
                text(r.get("role"), "?").to_string(),
                num(r.get("cpu_seconds")),
            )
        })
        .collect();
    roles.sort_by(|a, b| b.1.total_cmp(&a.1));
    for (role, seconds) in &roles {
        let _ = write!(cpu, "  {role} {seconds:.1}s");
    }
    let _ = writeln!(out, "{cpu}");
    let _ = writeln!(
        out,
        "        alloc live {:.1} MiB ({} alloc(s), {} free(s), {:.1} MiB total)",
        num(alloc.get("live_bytes")) / (1024.0 * 1024.0),
        num(alloc.get("allocs")) as u64,
        num(alloc.get("deallocs")) as u64,
        num(alloc.get("alloc_bytes")) / (1024.0 * 1024.0),
    );
    let mut locks: Vec<&antruss_core::json::Value> = v
        .get("locks")
        .and_then(antruss_core::json::Value::as_array)
        .unwrap_or(&[])
        .iter()
        .collect();
    locks.sort_by(|a, b| {
        num(b.get("wait_seconds_total")).total_cmp(&num(a.get("wait_seconds_total")))
    });
    for l in locks.iter().take(3) {
        let _ = writeln!(
            out,
            "        lock {}  wait {:.3}s total  p99 {:.0} us  max {:.0} us  ({} acq)",
            text(l.get("lock"), "?"),
            num(l.get("wait_seconds_total")),
            num(l.get("wait_p99_us")),
            num(l.get("wait_max_us")),
            num(l.get("acquisitions")) as u64,
        );
    }
    Some(out)
}

/// Fetches and renders one `antruss top` frame: `/cluster/overview`
/// when the address is a router, falling back to `/healthz` +
/// `/metrics/history` for a serve node or an edge. Either way the
/// frame gains a profiling panel when the tier answers `/debug/prof`
/// (tiers that predate the endpoint 404 and the panel is just hidden).
pub fn top_frame(addr: std::net::SocketAddr) -> Result<String, String> {
    let mut client = antruss_service::Client::new(addr);
    let overview = client
        .get("/cluster/overview")
        .map_err(|e| format!("top: cannot reach {addr}: {e}"))?;
    let mut frame = if overview.status == 200 {
        render_overview_frame(&addr.to_string(), &overview.body_string())?
    } else {
        let healthz = client
            .get("/healthz")
            .map_err(|e| format!("top: cannot reach {addr}: {e}"))?;
        let history = client
            .get("/metrics/history")
            .map_err(|e| format!("top: cannot reach {addr}: {e}"))?;
        if history.status != 200 {
            return Err(format!(
                "top: {addr} serves neither /cluster/overview nor /metrics/history \
                 (is it an antruss tier with history enabled?)"
            ));
        }
        render_tier_frame(
            &addr.to_string(),
            &healthz.body_string(),
            &history.body_string(),
        )?
    };
    if let Ok(prof) = client.get("/debug/prof") {
        if prof.status == 200 {
            if let Some(panel) = render_prof_panel(&prof.body_string()) {
                frame.push_str(&panel);
            }
        }
    }
    Ok(frame)
}

/// `antruss top <addr>` — a live ANSI dashboard over a tier's
/// telemetry, polling every `--interval` seconds until ctrl-c
/// (`--once` prints a single frame and exits, for scripts and tests).
pub fn cmd_top(args: &Args) -> Result<String, String> {
    let pos = args.positional();
    let raw = pos.get(1).ok_or("top: missing address (HOST:PORT)")?;
    let addr = resolve_addr(raw).map_err(|e| format!("top: {e}"))?;
    if args.flag("once") {
        return top_frame(addr);
    }
    let interval = args.get("interval", 2.0f64).max(0.1);
    antruss_service::server::install_sigint_handler();
    let mut frames = 0u64;
    while !antruss_service::server::sigint_received() {
        match top_frame(addr) {
            // \x1b[2J\x1b[H = clear screen + home, the classic top(1) dance
            Ok(frame) => print!("\x1b[2J\x1b[H{frame}"),
            Err(e) => print!("\x1b[2J\x1b[H{e}\n(retrying)"),
        }
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        frames += 1;
        let mut slept = 0.0;
        while slept < interval && !antruss_service::server::sigint_received() {
            std::thread::sleep(std::time::Duration::from_millis(100));
            slept += 0.1;
        }
    }
    Ok(format!("rendered {frames} frame(s)"))
}

/// `antruss solvers` — the registry line-up.
pub fn cmd_solvers() -> String {
    let mut t = Table::new(["name", "algorithm"]);
    for s in registry().iter() {
        t.row([s.name().to_string(), s.description().to_string()]);
    }
    t.render()
}

/// Parses a reuse policy flag.
pub fn parse_policy(s: &str) -> Result<ReusePolicy, String> {
    match s {
        "paper" => Ok(ReusePolicy::PaperExact),
        "conservative" => Ok(ReusePolicy::Conservative),
        "off" => Ok(ReusePolicy::Off),
        other => Err(format!(
            "unknown policy {other:?} (expected paper|conservative|off)"
        )),
    }
}

/// Applies the shared `--log-level` / `--log-json` flags to the
/// process-wide logger. A typo'd level is a loud error, not a silent
/// fallback to the default.
pub fn init_logging(args: &Args) -> Result<(), String> {
    let level = match args.get_str("log-level") {
        Some(raw) => obs::log::parse_level(raw)?,
        None => obs::log::Level::Info,
    };
    obs::log::init(level, args.flag("log-json"));
    Ok(())
}

/// Top-level dispatch; returns the report or an error message.
pub fn run(args: &Args) -> Result<String, String> {
    let pos = args.positional();
    let cmd = pos.first().map(String::as_str).unwrap_or("help");
    let scale = args.get("scale", 1.0f64);
    init_logging(args)?;
    match cmd {
        "help" | "--help" => Ok(USAGE.to_string()),
        "stats" => {
            let spec = pos.get(1).ok_or("stats: missing input")?;
            Ok(cmd_stats(&load_input(spec, scale)?))
        }
        "anchor" => {
            let spec = pos.get(1).ok_or("anchor: missing input")?;
            let cfg = run_config(args)?;
            cmd_anchor(
                &load_input(spec, scale)?,
                args.get_str("solver").unwrap_or("gas"),
                &cfg,
                args.flag("json"),
            )
        }
        "solvers" => Ok(cmd_solvers()),
        "serve" => cmd_serve(args),
        "cluster" => cmd_cluster(args),
        "edge" => cmd_edge(args),
        "top" => cmd_top(args),
        "kcore" => {
            let spec = pos.get(1).ok_or("kcore: missing input")?;
            Ok(cmd_kcore(&load_input(spec, scale)?, args.get("b", 10)))
        }
        "resilience" => {
            let spec = pos.get(1).ok_or("resilience: missing input")?;
            cmd_resilience(&load_input(spec, scale)?, args.get("b", 10))
        }
        "community" => {
            let spec = pos.get(1).ok_or("community: missing input")?;
            let q = args
                .get_str("q")
                .ok_or("community: missing --q VERTEX")?
                .parse::<u32>()
                .map_err(|e| format!("community: bad --q: {e}"))?;
            let k = args.get_str("k").map(|s| {
                s.parse::<u32>()
                    .map_err(|e| format!("community: bad --k: {e}"))
            });
            let k = match k {
                Some(Ok(k)) => Some(k),
                Some(Err(e)) => return Err(e),
                None => None,
            };
            cmd_community(&load_input(spec, scale)?, q, k)
        }
        "routes" => {
            let spec = pos.get(1).ok_or("routes: missing input")?;
            Ok(cmd_routes(&load_input(spec, scale)?))
        }
        "compare" => {
            let spec = pos.get(1).ok_or("compare: missing input")?;
            let cfg = run_config(args)?;
            let listed = args.get_str("solvers").map(|s| {
                s.split(',')
                    .map(|p| p.trim())
                    .filter(|p| !p.is_empty())
                    .collect::<Vec<&str>>()
            });
            if listed.as_ref().is_some_and(|l| l.is_empty()) {
                return Err("compare: --solvers lists no solver names".to_string());
            }
            let solvers = listed.unwrap_or_else(|| DEFAULT_COMPARE.to_vec());
            cmd_compare(&load_input(spec, scale)?, &solvers, &cfg, args.flag("json"))
        }
        "gen" => {
            let spec = pos.get(1).ok_or("gen: missing dataset slug")?;
            let id =
                DatasetId::from_slug(spec).ok_or_else(|| format!("unknown dataset {spec:?}"))?;
            let out_path = args.get_str("out").ok_or("gen: missing --out FILE")?;
            let g = antruss_datasets::generate(id, scale.clamp(0.001, 1.0));
            io::write_edge_list_path(&g, out_path).map_err(|e| e.to_string())?;
            Ok(format!(
                "wrote {} ({} vertices, {} edges)",
                out_path,
                g.num_vertices(),
                g.num_edges()
            ))
        }
        other => Err(format!("unknown command {other:?}\n\n{USAGE}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn help_and_unknown() {
        assert!(run(&args("help")).unwrap().contains("USAGE"));
        assert!(run(&args("frobnicate")).is_err());
    }

    #[test]
    fn bad_log_level_is_a_loud_error() {
        let err = run(&args("help --log-level loud")).unwrap_err();
        assert!(err.contains("unknown log level"), "got: {err}");
        // a valid spelling still dispatches the command
        assert!(run(&args("help --log-level info")).is_ok());
    }

    #[test]
    fn stats_on_slug() {
        let report = run(&args("stats college --scale 0.05")).unwrap();
        assert!(report.contains("k_max"));
        assert!(report.contains("truss profile"));
    }

    #[test]
    fn anchor_on_slug() {
        let report = run(&args("anchor college --scale 0.05 --b 3")).unwrap();
        assert!(report.contains("[gas]"));
        assert!(report.contains("gain"));
    }

    #[test]
    fn anchor_dispatches_every_registry_solver() {
        for name in registry().names() {
            let report = run(&args(&format!(
                "anchor college --scale 0.05 --b 2 --trials 3 --exact-cap 500 --solver {name}"
            )))
            .unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(report.contains(&format!("[{name}]")), "{name}: {report}");
        }
        assert!(run(&args("anchor college --scale 0.05 --solver nope")).is_err());
    }

    #[test]
    fn anchor_json_is_machine_readable() {
        let j = run(&args("anchor college --scale 0.05 --b 2 --json")).unwrap();
        assert!(j.starts_with("{\"solver\":\"gas\""), "{j}");
        assert!(j.contains("\"total_gain\":"), "{j}");
        assert!(j.contains("\"rounds\":["), "{j}");
    }

    #[test]
    fn routes_and_compare() {
        let r = run(&args("routes college --scale 0.05")).unwrap();
        assert!(r.contains("avg size"));
        let c = run(&args("compare college --scale 0.05 --b 2 --trials 3")).unwrap();
        assert!(c.contains("gas"), "{c}");
        assert!(c.contains("rand:sup"), "{c}");
    }

    #[test]
    fn compare_accepts_custom_solver_list_and_json() {
        let c = run(&args(
            "compare college --scale 0.05 --b 2 --trials 3 --solvers gas,lazy,edge-del",
        ))
        .unwrap();
        assert!(c.contains("lazy"), "{c}");
        assert!(c.contains("edge-del"), "{c}");
        let j = run(&args(
            "compare college --scale 0.05 --b 2 --trials 3 --solvers gas,lazy --json",
        ))
        .unwrap();
        assert!(j.starts_with("[{\"solver\":\"gas\""), "{j}");
        assert!(j.contains("{\"solver\":\"lazy\""), "{j}");
        assert!(j.ends_with(']'), "{j}");
        assert!(run(&args("compare college --scale 0.05 --solvers gas,nope")).is_err());
        assert!(run(&args("compare college --scale 0.05 --solvers ,,")).is_err());
    }

    #[test]
    fn solvers_lists_the_registry() {
        let s = run(&args("solvers")).unwrap();
        for name in registry().names() {
            assert!(s.contains(name), "{s}");
        }
    }

    #[test]
    fn community_search() {
        let r = run(&args("community college --scale 0.1 --q 0")).unwrap();
        assert!(r.contains("communit"), "got: {r}");
        let explicit = run(&args("community college --scale 0.1 --q 0 --k 3")).unwrap();
        assert!(explicit.contains("3-truss") || explicit.contains("no triangle"));
        assert!(run(&args("community college --scale 0.1 --q 99999999")).is_err());
        assert!(run(&args("community college --scale 0.1")).is_err());
    }

    #[test]
    fn kcore_and_resilience() {
        let k = run(&args("kcore college --scale 0.05 --b 2")).unwrap();
        assert!(k.contains("core k_max"));
        assert!(k.contains("anchored coreness"));
        let r = run(&args("resilience college --scale 0.05 --b 2")).unwrap();
        assert!(r.contains("resilience gain"));
        assert!(r.contains("decay thresholds"));
    }

    #[test]
    fn anchor_threaded_matches_serial() {
        let a1 = run(&args("anchor college --scale 0.05 --b 2")).unwrap();
        let a2 = run(&args("anchor college --scale 0.05 --b 2 --threads 4")).unwrap();
        // timing differs; compare everything except the elapsed suffix
        let strip = |s: &str| {
            s.lines()
                .map(|l| l.split("; ").take(3).collect::<Vec<_>>().join("; "))
                .collect::<Vec<_>>()
                .join("\n")
        };
        assert_eq!(
            strip(&a1),
            strip(&a2),
            "thread count must not change results"
        );
    }

    #[test]
    fn serve_config_reads_flags() {
        let cfg = serve_config(&args(
            "serve --addr 0.0.0.0:9000 --threads 2 --cache 16 --max-body-mb 1 --max-b 8 \
             --data-dir /tmp/antruss-data --fsync always",
        ))
        .unwrap();
        assert_eq!(cfg.addr, "0.0.0.0:9000");
        assert_eq!(cfg.threads, 2);
        assert_eq!(cfg.cache_capacity, 16);
        assert_eq!(cfg.max_body_bytes, 1024 * 1024);
        assert_eq!(cfg.max_budget, 8);
        assert_eq!(cfg.data_dir.as_deref(), Some("/tmp/antruss-data"));
        assert_eq!(cfg.fsync, antruss_store::FsyncPolicy::Always);
        let defaults = serve_config(&args("serve")).unwrap();
        assert_eq!(defaults.addr, "127.0.0.1:7171");
        assert_eq!(defaults.cache_capacity, 256);
        assert_eq!(defaults.data_dir, None);
        assert_eq!(defaults.fsync, antruss_store::FsyncPolicy::Interval(100));
        let interval = serve_config(&args("serve --fsync interval:250")).unwrap();
        assert_eq!(interval.fsync, antruss_store::FsyncPolicy::Interval(250));
        // bad policies are loud errors, on serve and cluster alike
        assert!(serve_config(&args("serve --fsync sometimes"))
            .unwrap_err()
            .contains("--fsync"));
        assert!(cluster_config(&args("cluster --fsync nope")).is_err());
    }

    #[test]
    fn serve_with_data_dir_recovers_across_runs() {
        let dir = std::env::temp_dir().join(format!("antruss-cli-durable-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = serve_config(&Args::parse(vec![
            "serve".to_string(),
            "--addr".to_string(),
            "127.0.0.1:0".to_string(),
            "--data-dir".to_string(),
            dir.display().to_string(),
        ]))
        .unwrap();
        let server = antruss_service::Server::start(cfg.clone()).unwrap();
        let addr = server.addr();
        let mut client = antruss_service::Client::new(addr);
        assert_eq!(
            client
                .post("/graphs?name=tri", "text/plain", b"0 1\n1 2\n2 0\n")
                .unwrap()
                .status,
            201
        );
        server.shutdown();
        // same data dir, fresh process state: the graph is back
        let server = antruss_service::Server::start(cfg).unwrap();
        let listing = antruss_service::Client::new(server.addr())
            .get("/graphs")
            .unwrap()
            .body_string();
        assert!(listing.contains("\"tri\""), "not recovered: {listing}");
        server.shutdown();
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn serve_reports_bind_failures() {
        // an unresolvable bind address must fail fast with a clean error
        // (never start the accept loop)
        let err = run(&args("serve --addr 999.999.999.999:1")).unwrap_err();
        assert!(err.contains("cannot bind"), "{err}");
    }

    #[test]
    fn usage_mentions_serve() {
        assert!(USAGE.contains("antruss serve"), "{USAGE}");
        assert!(USAGE.contains("antruss cluster"), "{USAGE}");
        assert!(USAGE.contains("antruss edge"), "{USAGE}");
        assert!(USAGE.contains("antruss top"), "{USAGE}");
        assert!(USAGE.contains("--slo"), "{USAGE}");
    }

    #[test]
    fn telemetry_flags_parse_and_reject() {
        let cfg = serve_config(&args(
            "serve --metrics-interval 1.5 --slo availability=99.9",
        ))
        .unwrap();
        assert_eq!(cfg.metrics_interval_ms, 1500);
        assert_eq!(cfg.slos.len(), 1);
        let defaults = serve_config(&args("serve")).unwrap();
        assert_eq!(defaults.metrics_interval_ms, 5000);
        assert!(defaults.slos.is_empty());
        // 0 disables the sampler; bad objectives are loud errors
        assert_eq!(
            serve_config(&args("serve --metrics-interval 0"))
                .unwrap()
                .metrics_interval_ms,
            0
        );
        assert!(serve_config(&args("serve --slo latency=fast"))
            .unwrap_err()
            .contains("--slo"));
        // the same flags flow into the edge and cluster configs
        let edge = edge_config(&args(
            "edge --upstream 127.0.0.1:7171 --metrics-interval 2 --slo p99_ms=5",
        ))
        .unwrap();
        assert_eq!(edge.metrics_interval_ms, 2000);
        assert_eq!(edge.slos.len(), 1);
        let cluster = cluster_config(&args("cluster --slo availability=99.9")).unwrap();
        assert_eq!(cluster.backend.slos.len(), 1);
    }

    #[test]
    fn top_renders_overview_and_tier_frames() {
        let overview = r#"{"router":{"status":"ok","requests":120,"throughput":4.5,
            "p99_seconds":0.0021,"events_head":7,"replication":2},
            "members":[{"shard":0,"addr":"127.0.0.1:9001","static":true,"healthy":true,
            "ready":"ready","status":"ok","requests":60,"throughput":2.2,"errors":1,
            "p99_seconds":0.0018,"hit_ratio":0.93,"events_head":5,"staleness_seconds":0.4},
            {"shard":1,"addr":"127.0.0.1:9002","static":false,"healthy":false,
            "ready":"draining","status":"down"}],"ts":100.0}"#;
        let frame = render_overview_frame("127.0.0.1:7171", overview).unwrap();
        assert!(frame.contains("cluster overview"), "{frame}");
        assert!(frame.contains("127.0.0.1:9001"), "{frame}");
        assert!(frame.contains("draining"), "{frame}");
        assert!(frame.contains("93.0"), "hit ratio as percent: {frame}");

        let healthz = r#"{"status":"degraded","burning":"availability"}"#;
        let history = r#"{"interval_seconds":5,"series":[
            {"name":"antruss_requests_total","labels":"","kind":"counter",
             "points":[{"ts":0,"value":10},{"ts":5,"value":20,"rate":2.0}]},
            {"name":"antruss_endpoint_latency_seconds","labels":"{endpoint=\"solve\",q=\"0.99\"}",
             "kind":"window_quantile","points":[{"ts":5,"value":0.004}]},
            {"name":"antruss_uptime_seconds","labels":"","kind":"gauge",
             "points":[{"ts":5,"value":5}]}]}"#;
        let frame = render_tier_frame("127.0.0.1:7171", healthz, history).unwrap();
        assert!(frame.contains("degraded"), "{frame}");
        assert!(frame.contains("availability"), "{frame}");
        assert!(frame.contains("antruss_requests_total"), "{frame}");
        assert!(frame.contains("4.0 ms"), "{frame}");
        assert!(!frame.contains("antruss_uptime_seconds"), "{frame}");

        // bad bodies are errors, not panics
        assert!(render_overview_frame("x", "nope").is_err());
        assert!(render_tier_frame("x", "nope", "{}").is_err());
    }

    #[test]
    fn top_prof_panel_renders_or_hides() {
        let prof = r#"{"tier":"server",
            "alloc":{"allocs":1000,"alloc_bytes":4194304,"deallocs":900,
                     "dealloc_bytes":3145728,"live_bytes":1048576},
            "cpu":{"by_role":[{"role":"worker","cpu_seconds":2.5},
                              {"role":"accept","cpu_seconds":0.1}],"threads":[]},
            "locks":[{"lock":"catalog_write","acquisitions":12,
                      "wait_seconds_total":0.004,"wait_p99_us":310.0,"wait_max_us":500.0}],
            "costs":[]}"#;
        let panel = render_prof_panel(prof).unwrap();
        assert!(panel.contains("worker 2.5s"), "{panel}");
        assert!(panel.contains("catalog_write"), "{panel}");
        assert!(panel.contains("1.0 MiB"), "live bytes in MiB: {panel}");
        // a body without the prof shape hides the panel instead of erroring
        assert!(render_prof_panel("nope").is_none());
        assert!(render_prof_panel("{\"status\":\"ok\"}").is_none());
    }

    #[test]
    fn top_command_validates_its_address() {
        assert!(run(&args("top")).unwrap_err().contains("missing address"));
        assert!(run(&args("top not-an-addr --once")).is_err());
    }

    #[test]
    fn top_once_renders_a_live_server_frame() {
        let server = antruss_service::Server::start(antruss_service::ServerConfig {
            addr: "127.0.0.1:0".to_string(),
            metrics_interval_ms: 0, // sample by hand below
            ..antruss_service::ServerConfig::default()
        })
        .unwrap();
        let state = server.state();
        state.record_history(100.0);
        state.record_history(105.0);
        let frame = run(&args(&format!("top {} --once", server.addr()))).unwrap();
        assert!(frame.contains("single tier"), "{frame}");
        assert!(frame.contains("antruss_requests_total"), "{frame}");
        server.shutdown();
    }

    #[test]
    fn edge_config_reads_flags() {
        let cfg = edge_config(&args(
            "edge --upstream 127.0.0.1:7171 --addr 0.0.0.0:9300 --threads 3 --cache 64 \
             --max-body-mb 2 --poll-wait-ms 500 --retry-ms 50",
        ))
        .unwrap();
        assert_eq!(cfg.upstream, "127.0.0.1:7171");
        assert_eq!(cfg.addr, "0.0.0.0:9300");
        assert_eq!(cfg.threads, 3);
        assert_eq!(cfg.cache_capacity, 64);
        assert_eq!(cfg.max_body_bytes, 2 * 1024 * 1024);
        assert_eq!(cfg.poll_wait_ms, 500);
        assert_eq!(cfg.retry_ms, 50);
        // http:// spellings are accepted, like every documented example
        let cfg = edge_config(&args("edge --upstream http://127.0.0.1:7171/")).unwrap();
        assert_eq!(cfg.addr, "127.0.0.1:7272");
        // a missing or unresolvable upstream fails before binding
        assert!(edge_config(&args("edge"))
            .unwrap_err()
            .contains("--upstream"));
        assert!(edge_config(&args("edge --upstream nonsense")).is_err());
    }

    #[test]
    fn edge_reports_bind_failures() {
        let err = run(&args(
            "edge --upstream 127.0.0.1:7171 --addr 999.999.999.999:1",
        ))
        .unwrap_err();
        assert!(err.contains("cannot bind"), "{err}");
    }

    #[test]
    fn cluster_config_reads_flags() {
        let cfg = cluster_config(&args(
            "cluster --backends 5 --replicas 3 --vnodes 64 --addr 0.0.0.0:9100 \
             --health-ms 250 --cache 32 --heartbeat-ms 400 --miss-threshold 5",
        ))
        .unwrap();
        assert_eq!(cfg.backends, 5);
        assert_eq!(cfg.replication, 3);
        assert_eq!(cfg.vnodes, 64);
        assert_eq!(cfg.router_addr, "0.0.0.0:9100");
        assert_eq!(cfg.health_interval_ms, 250);
        assert_eq!(cfg.backend.cache_capacity, 32);
        assert_eq!(cfg.heartbeat_ms, 400);
        assert_eq!(cfg.miss_threshold, 5);
        assert!(cfg.backend_addrs.is_empty());
        let defaults = cluster_config(&args("cluster")).unwrap();
        assert_eq!(defaults.backends, 3);
        assert_eq!(defaults.replication, 2);
        assert_eq!(defaults.router_addr, "127.0.0.1:7171");
        assert_eq!(defaults.heartbeat_ms, 1000);
        assert_eq!(defaults.miss_threshold, 3);
        // degenerate values are clamped, not crashes
        assert_eq!(
            cluster_config(&args("cluster --backends 0"))
                .unwrap()
                .backends,
            1
        );
        assert_eq!(
            cluster_config(&args("cluster --replicas 0"))
                .unwrap()
                .replication,
            1
        );
    }

    #[test]
    fn cluster_config_parses_external_backend_addrs() {
        let cfg = cluster_config(&args(
            "cluster --backend-addrs 127.0.0.1:9001,127.0.0.1:9002",
        ))
        .unwrap();
        assert_eq!(cfg.backend_addrs.len(), 2);
        assert_eq!(cfg.backend_addrs[0], "127.0.0.1:9001".parse().unwrap());
        // malformed and empty lists are loud errors
        assert!(cluster_config(&args("cluster --backend-addrs nope")).is_err());
        assert!(cluster_config(&args("cluster --backend-addrs ,,")).is_err());
    }

    #[test]
    fn serve_join_rejects_bad_addresses() {
        let err = run(&args("serve --addr 127.0.0.1:0 --join not-an-addr")).unwrap_err();
        assert!(err.contains("--join"), "{err}");
        // an unreachable router is reported as a join failure, not a hang
        let err = run(&args("serve --addr 127.0.0.1:0 --join 127.0.0.1:1")).unwrap_err();
        assert!(err.contains("cannot join"), "{err}");
        // with a router list, *every* router must refuse before the join
        // fails — and the error names the whole list
        let err = run(&args(
            "serve --addr 127.0.0.1:0 --join 127.0.0.1:1,127.0.0.1:2",
        ))
        .unwrap_err();
        assert!(err.contains("cannot join 127.0.0.1:1,127.0.0.1:2"), "{err}");
        assert!(run(&args("serve --addr 127.0.0.1:0 --join ,,")).is_err());
    }

    #[test]
    fn cluster_config_parses_peers_and_router_data_dir() {
        let cfg = cluster_config(&args(
            "cluster --peers 127.0.0.1:9101,127.0.0.1:9102 --router-data-dir /tmp/antruss-router",
        ))
        .unwrap();
        assert_eq!(cfg.peers.len(), 2);
        assert_eq!(cfg.peers[0], "127.0.0.1:9101".parse().unwrap());
        assert_eq!(cfg.router_data_dir.as_deref(), Some("/tmp/antruss-router"));
        let defaults = cluster_config(&args("cluster")).unwrap();
        assert!(defaults.peers.is_empty());
        assert_eq!(defaults.router_data_dir, None);
        // malformed and empty peer lists are loud errors
        assert!(cluster_config(&args("cluster --peers nope")).is_err());
        assert!(cluster_config(&args("cluster --peers ,,")).is_err());
    }

    #[test]
    fn cluster_reports_bind_failures() {
        let err = run(&args("cluster --backends 1 --addr 999.999.999.999:1")).unwrap_err();
        assert!(err.contains("cannot start"), "{err}");
    }

    #[test]
    fn policy_parse() {
        assert!(parse_policy("paper").is_ok());
        assert!(parse_policy("conservative").is_ok());
        assert!(parse_policy("off").is_ok());
        assert!(parse_policy("x").is_err());
    }

    #[test]
    fn gen_roundtrip() {
        let dir = std::env::temp_dir().join("antruss-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("college.txt");
        let msg = run(&args(&format!(
            "gen college --scale 0.05 --out {}",
            path.display()
        )))
        .unwrap();
        assert!(msg.contains("wrote"));
        let report = run(&Args::parse(vec![
            "stats".to_string(),
            path.display().to_string(),
        ]))
        .unwrap();
        assert!(report.contains("vertices"));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_input_errors() {
        assert!(run(&args("stats")).is_err());
        assert!(run(&args("stats /no/such/file.txt")).is_err());
        assert!(run(&args("gen college")).is_err());
    }
}
