//! `loadgen` — drive a running `antruss serve` (or an `antruss cluster`
//! router, or a whole cluster address set) with N concurrent clients
//! and report throughput, latency percentiles, cache behaviour and
//! per-shard distribution.
//!
//! ```sh
//! antruss serve --addr 127.0.0.1:7171 &
//! loadgen --addr 127.0.0.1:7171 --clients 8 --requests 100 \
//!         --graph college:0.05 --solver gas --b 2 --seeds 4
//!
//! antruss cluster --addr 127.0.0.1:7171 --backends 3 &
//! loadgen --addr 127.0.0.1:7171 --json        # writes BENCH_serve.json
//! loadgen --addrs host1:7171,host2:7171       # clients spread round-robin
//! loadgen --addrs r1:7171,r2:7172 --kill-router "$ROUTER_PID"  # chaos drill
//! ```
//!
//! Each client keeps one connection alive and posts `/solve` repeatedly,
//! cycling the seed through `--seeds` distinct values so the run mixes
//! cache misses (first occurrence of each seed) with hits (every
//! repeat). When the target is a cluster router, the `x-antruss-shard`
//! response header attributes every request to the backend that answered
//! it, and the report shows the per-shard distribution. `--json` writes
//! the whole report to `BENCH_serve.json` (override with `--out FILE`)
//! so the repo's perf trajectory is recorded run over run; the report
//! carries the probed topology (`mode`: single / cluster-static /
//! cluster-dynamic, and the live `backends` count) so entries from
//! different runs are comparable. `--fanout` additionally measures
//! graph-lifecycle fan-out latency (register/mutate/purge on a scratch
//! graph, `--fanout-rounds` times): with the router's concurrent
//! scatter-gather these sit at ~max of the single-replica latencies,
//! not their sum. `--recovery` benchmarks the two restart paths side
//! by side on throwaway in-process servers (`--recovery-graphs`
//! controls the catalog size): **cold replay** — restart a
//! `--data-dir` backend and recover snapshots + WAL + cache dump from
//! local disk — against **peer re-warm** — rebuild the same state
//! over HTTP from a live peer (edge dumps, re-registration, cache
//! replay), which is what a diskless backend pays on every restart.
//! `--edge` benchmarks the read-replica edge tier on a throwaway
//! in-process server + edge pair (which is why this bin lives in
//! `antruss-cli`, the one crate that links both tiers): a cached
//! workload driven directly at the origin vs the same workload off the
//! edge's own cache, then the origin is shut down and the run repeats
//! offline — the `edge` JSON section records all three throughputs,
//! the edge hit ratio and the offline failure count (which must be 0).
//! `--trace` samples per-phase latency breakdowns (`--trace-samples`
//! requests): loadgen originates a trace id per request via the
//! `x-antruss-trace`/`x-antruss-span` headers and parses the
//! `x-antruss-hops` response header that every tier on the path appends
//! to, reporting p50/p99 per tier phase (parse, cache, solve,
//! serialize, forward, …) and the worst sampled request's full hop
//! timeline — the `observability` JSON section. `--slo SPEC` (same
//! syntax as the server flag, e.g. `availability=99.9,p99_ms=5`)
//! grades the main run against the objectives: observed availability
//! (ok / attempted) and observed p99 vs their targets, plus the worst
//! `antruss_slo_burn_rate` the target itself currently reports (so a
//! bench entry records both what the client saw and what the server's
//! own burn-rate evaluation concluded) — the `slo` JSON section.
//!
//! With multiple `--addrs` a client does not just round-robin at
//! startup: when its current target stops answering (a transport
//! error), it **retargets** — re-dials the next address in the list and
//! retries the same request there — so losing one router of a
//! replicated control plane costs a failover gap, not failed requests.
//! `--kill-router PID` turns the main run into a chaos drill: halfway
//! through the request budget loadgen SIGKILLs that pid (a router you
//! spawned) and records the failover gap (ms from the kill to the first
//! request a retargeted client got answered) alongside the failed count
//! and retarget count — the `control_plane` JSON section. `--profile`
//! samples the `x-antruss-cost` response header every tier stamps on
//! its replies (cumulative CPU-us and allocated bytes per request) and
//! scrapes the target's `GET /debug/prof` before and after the main
//! run, reporting per-request cost p50/p99, the run's CPU seconds by
//! thread role, and the lock that accumulated the most wait — the
//! `profile` JSON section (skipped with a note when the target
//! predates /debug/prof).

use std::collections::BTreeMap;
use std::net::SocketAddr;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Instant;

use antruss_bench::args::Args;
use antruss_service::{Client, Server, ServerConfig};

/// One client thread's tally.
#[derive(Default)]
struct Tally {
    latencies_ms: Vec<f64>,
    /// requests answered per shard id (`-1` = no shard header: a
    /// standalone serve)
    by_shard: BTreeMap<i64, u64>,
    /// per-request CPU-us sampled from `x-antruss-cost` (`--profile`)
    cost_cpu_us: Vec<f64>,
    /// per-request allocated bytes sampled from `x-antruss-cost`
    cost_alloc_bytes: Vec<f64>,
}

/// SIGKILL a router process mid-run — the chaos half of the
/// `--kill-router` drill. Raw syscall because the workspace links no
/// libc crate.
#[cfg(unix)]
fn sigkill(pid: i32) {
    extern "C" {
        fn kill(pid: i32, sig: i32) -> i32;
    }
    if unsafe { kill(pid, 9) } != 0 {
        eprintln!("kill-router: kill({pid}, SIGKILL) failed — wrong pid?");
    }
}

#[cfg(not(unix))]
fn sigkill(pid: i32) {
    eprintln!("kill-router: not supported on this platform (pid {pid} untouched)");
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// What the target looks like from its `/metrics`: a cluster router
/// with dynamic members, a static-membership router, or a standalone
/// serve. Recorded in the JSON report so bench trajectory entries from
/// different topologies are comparable.
fn probe_topology(addr: SocketAddr) -> (String, u64) {
    let Ok(m) = Client::new(addr).get("/metrics") else {
        return ("unknown".to_string(), 0);
    };
    let text = m.body_string();
    let read = |name: &str| -> Option<u64> {
        text.lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .and_then(|v| v.parse().ok())
    };
    match read("antruss_router_backends") {
        Some(backends) => {
            let mode = if read("antruss_router_dynamic_members").unwrap_or(0) > 0 {
                "cluster-dynamic"
            } else {
                "cluster-static"
            };
            (mode.to_string(), backends)
        }
        None => ("single".to_string(), 1),
    }
}

/// Measures graph-lifecycle fan-out latency through a router: register
/// → mutate → purge → delete on a scratch graph, reporting per-op
/// milliseconds and the replica count that was hit (from
/// `x-antruss-replicas`). With the concurrent scatter-gather fan-out
/// these land at ~max of the single-replica latencies rather than their
/// sum.
fn fanout_bench(addr: SocketAddr, rounds: usize) -> Option<String> {
    let mut client = Client::new(addr);
    let name = "loadgen-fanout-bench";
    // k5 edge list: small enough to be latency- not bandwidth-bound
    let mut edges = String::new();
    for u in 0..5u32 {
        for v in (u + 1)..5 {
            edges.push_str(&format!("{u} {v}\n"));
        }
    }
    let _ = client.delete(&format!("/graphs/{name}")); // leftovers
    let mut register_ms = Vec::new();
    let mut mutate_ms = Vec::new();
    let mut purge_ms = Vec::new();
    let mut replicas = 0usize;
    for _ in 0..rounds.max(1) {
        let sent = Instant::now();
        let resp = client
            .post(
                &format!("/graphs?name={name}"),
                "text/plain",
                edges.as_bytes(),
            )
            .ok()?;
        if resp.status != 201 {
            eprintln!("fanout bench: register failed: {}", resp.body_string());
            return None;
        }
        register_ms.push(sent.elapsed().as_secs_f64() * 1e3);
        replicas = resp
            .header("x-antruss-replicas")
            .map(|v| v.split(',').count())
            .unwrap_or(1);
        let sent = Instant::now();
        let resp = client
            .post(
                &format!("/graphs/{name}/mutate"),
                "application/json",
                br#"{"insert":[[0,5],[1,5]]}"#,
            )
            .ok()?;
        if resp.status != 200 {
            eprintln!("fanout bench: mutate failed: {}", resp.body_string());
            return None;
        }
        mutate_ms.push(sent.elapsed().as_secs_f64() * 1e3);
        let sent = Instant::now();
        let resp = client
            .post(
                &format!("/cache/purge?graph={name}"),
                "application/json",
                b"",
            )
            .ok()?;
        if resp.status != 200 {
            return None;
        }
        purge_ms.push(sent.elapsed().as_secs_f64() * 1e3);
        let _ = client.delete(&format!("/graphs/{name}"));
    }
    let med = |v: &mut Vec<f64>| {
        v.sort_by(|a, b| a.partial_cmp(b).unwrap());
        percentile(v, 50.0)
    };
    let (r, m, p) = (
        med(&mut register_ms),
        med(&mut mutate_ms),
        med(&mut purge_ms),
    );
    println!(
        "fanout (R={replicas}): register p50 {r:.2}ms, mutate p50 {m:.2}ms, purge p50 {p:.2}ms"
    );
    Some(format!(
        "{{\"replicas\":{replicas},\"rounds\":{rounds},\"register_p50_ms\":{r:.3},\
         \"mutate_p50_ms\":{m:.3},\"purge_p50_ms\":{p:.3}}}"
    ))
}

/// Benchmarks the two restart paths on throwaway in-process servers:
/// a durable backend's **cold replay** (snapshots + WAL + persisted
/// cache dump, all local disk) vs the cluster's **peer re-warm** (the
/// same state pulled over HTTP from a live peer — edge dump,
/// re-registration, cache dump/load — exactly the operations the
/// router's warm path issues). Returns the JSON `recovery` section.
fn recovery_bench(graphs: usize) -> Option<String> {
    use antruss_graph::{gen::gnm, io};

    let dir = std::env::temp_dir().join(format!("antruss-loadgen-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let durable = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_capacity: 4 * graphs.max(1),
        data_dir: Some(dir.display().to_string()),
        ..ServerConfig::default()
    };
    let diskless = ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        cache_capacity: 4 * graphs.max(1),
        ..ServerConfig::default()
    };

    // identical synthetic registered graphs for both paths
    let lists: Vec<Vec<u8>> = (0..graphs)
        .map(|i| {
            let g = gnm(400, 1600, i as u64 + 1);
            let mut out = Vec::new();
            io::write_edge_list(&g, &mut out).expect("serialize bench graph");
            out
        })
        .collect();
    let mut edges_total = 0usize;
    let populate = |addr, solve: bool| -> Option<()> {
        let mut c = Client::new(addr);
        for (i, list) in lists.iter().enumerate() {
            let resp = c
                .post(&format!("/graphs?name=bench-g{i}"), "text/plain", list)
                .ok()?;
            if resp.status != 201 {
                eprintln!("recovery bench: register failed: {}", resp.body_string());
                return None;
            }
            if solve {
                let body = format!("{{\"graph\":\"bench-g{i}\",\"b\":1}}");
                c.post("/solve", "application/json", body.as_bytes()).ok()?;
            }
        }
        Some(())
    };

    // 1) populate the durable backend, mutate a little (a WAL tail to
    // replay), shut down gracefully (persists the cache dump)
    {
        let server = Server::start(durable.clone()).ok()?;
        populate(server.addr(), true)?;
        let mut c = Client::new(server.addr());
        c.post(
            "/graphs/bench-g0/mutate",
            "application/json",
            br#"{"insert":[[0,400],[1,400],[2,400]]}"#,
        )
        .ok()?;
        server.shutdown();
    }

    // 2) cold replay: restart over the same data dir (recovery runs
    // inside Server::start, before the listener answers)
    let started = Instant::now();
    let server = Server::start(durable).ok()?;
    let cold_ms = started.elapsed().as_secs_f64() * 1e3;
    let metrics = Client::new(server.addr())
        .get("/metrics")
        .ok()?
        .body_string();
    let read = |name: &str| -> u64 {
        metrics
            .lines()
            .find_map(|l| l.strip_prefix(&format!("{name} ")))
            .and_then(|v| v.parse().ok())
            .unwrap_or(0)
    };
    let (recovered_graphs, recovered_ops, warmed) = (
        read("antruss_store_recovered_graphs"),
        read("antruss_store_recovered_ops"),
        read("antruss_cache_warmed_entries_total"),
    );
    server.shutdown();
    std::fs::remove_dir_all(&dir).ok();

    // 3) peer re-warm: the same catalog + cache rebuilt over HTTP from
    // a live peer into an empty backend — the diskless restart path
    let peer = Server::start(diskless.clone()).ok()?;
    populate(peer.addr(), true)?;
    let target = Server::start(diskless).ok()?;
    let mut from = Client::new(peer.addr());
    let mut to = Client::new(target.addr());
    let started = Instant::now();
    for i in 0..graphs {
        let edges = from.get(&format!("/graphs/bench-g{i}/edges")).ok()?;
        edges_total += edges.body.len();
        let resp = to
            .post(
                &format!("/graphs?name=bench-g{i}"),
                "text/plain",
                &edges.body,
            )
            .ok()?;
        if resp.status != 201 {
            return None;
        }
    }
    let dump = from.get("/cache/dump").ok()?;
    let loaded = to
        .post("/cache/load", "application/json", &dump.body)
        .ok()?;
    if loaded.status != 200 {
        return None;
    }
    let warm_ms = started.elapsed().as_secs_f64() * 1e3;
    peer.shutdown();
    target.shutdown();

    println!(
        "recovery ({graphs} graph(s), {edges_total} edge-list byte(s)): \
         cold disk replay {cold_ms:.1}ms ({recovered_graphs} graph(s), {recovered_ops} op(s), \
         {warmed} cache entr(ies)) vs peer re-warm over HTTP {warm_ms:.1}ms"
    );
    Some(format!(
        "{{\"graphs\":{graphs},\"edge_list_bytes\":{edges_total},\
         \"cold_replay_ms\":{cold_ms:.3},\"peer_rewarm_ms\":{warm_ms:.3},\
         \"recovered_graphs\":{recovered_graphs},\"recovered_ops\":{recovered_ops},\
         \"warm_cache_entries\":{warmed}}}"
    ))
}

/// Samples per-phase latency breakdowns by originating one trace per
/// request (`x-antruss-trace`/`x-antruss-span` request headers) and
/// parsing the `x-antruss-hops` response header every tier on the path
/// appends to. Reports p50/p99 per `tier/phase` plus the worst sampled
/// request's full hop timeline. Returns the JSON `observability`
/// section.
fn trace_bench(
    addr: SocketAddr,
    samples: usize,
    graph: &str,
    solver: &str,
    b: usize,
    seeds: u64,
) -> Option<String> {
    use antruss_obs::trace::{parse_hops, TraceContext, HOPS_HEADER, TRACE_HEADER};

    let mut client = Client::new(addr);
    let mut by_phase: BTreeMap<String, Vec<f64>> = BTreeMap::new();
    let mut worst: Option<(f64, String, Vec<antruss_obs::Hop>)> = None;
    let mut traced = 0usize;
    for i in 0..samples.max(1) {
        let ctx = TraceContext::originate();
        let seed = i as u64 % seeds.max(1);
        let body =
            format!("{{\"graph\":\"{graph}\",\"solver\":\"{solver}\",\"b\":{b},\"seed\":{seed}}}");
        let sent = Instant::now();
        let resp = client
            .post_with_headers(
                "/solve",
                "application/json",
                body.as_bytes(),
                &ctx.headers(),
            )
            .ok()?;
        let total_ms = sent.elapsed().as_secs_f64() * 1e3;
        if resp.status != 200 {
            eprintln!("trace bench: solve failed: {}", resp.body_string());
            return None;
        }
        let hops = resp.header(HOPS_HEADER).map(parse_hops).unwrap_or_default();
        if hops.is_empty() {
            continue;
        }
        traced += 1;
        for hop in &hops {
            by_phase
                .entry(format!("{}/total", hop.tier))
                .or_default()
                .push(hop.us as f64);
            for (name, us) in &hop.phases {
                by_phase
                    .entry(format!("{}/{name}", hop.tier))
                    .or_default()
                    .push(*us as f64);
            }
        }
        if worst.as_ref().is_none_or(|(w, _, _)| total_ms > *w) {
            let trace_hex = resp.header(TRACE_HEADER).unwrap_or_default().to_string();
            worst = Some((total_ms, trace_hex, hops));
        }
    }
    if traced == 0 {
        eprintln!("trace bench: the target never returned an {HOPS_HEADER} header");
        return None;
    }

    println!("trace ({traced} sampled request(s)):");
    let mut phases_json = Vec::new();
    for (phase, vals) in &mut by_phase {
        vals.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let p50 = percentile(vals, 50.0);
        let p99 = percentile(vals, 99.0);
        println!(
            "  {phase:>24}: p50 {p50:.0}us, p99 {p99:.0}us ({} obs)",
            vals.len()
        );
        phases_json.push(format!(
            "{{\"phase\":{phase:?},\"observations\":{},\"p50_us\":{p50:.1},\"p99_us\":{p99:.1}}}",
            vals.len()
        ));
    }
    let (worst_ms, worst_trace, worst_hops) = worst?;
    println!("  worst sample {worst_ms:.2}ms (trace {worst_trace}):");
    let mut timeline = Vec::new();
    // hops arrive downstream-first; print outermost (client-facing) first
    for hop in worst_hops.iter().rev() {
        let detail = hop
            .phases
            .iter()
            .map(|(n, us)| format!("{n} {us}us"))
            .collect::<Vec<_>>()
            .join(", ");
        println!("    {:>8} {} {}us ({detail})", hop.tier, hop.op, hop.us);
        let pj = hop
            .phases
            .iter()
            .map(|(n, us)| format!("{n:?}:{us}"))
            .collect::<Vec<_>>()
            .join(",");
        timeline.push(format!(
            "{{\"tier\":{:?},\"op\":{:?},\"us\":{},\"phases\":{{{pj}}}}}",
            hop.tier, hop.op, hop.us
        ));
    }
    Some(format!(
        "{{\"samples\":{traced},\"phases\":[{}],\"worst_ms\":{worst_ms:.3},\
         \"worst_trace\":{worst_trace:?},\"worst_timeline\":[{}]}}",
        phases_json.join(","),
        timeline.join(",")
    ))
}

/// Scrapes a tier's `GET /debug/prof` JSON, or `None` when the target
/// predates the endpoint (404) or is unreachable.
fn prof_snapshot(addr: SocketAddr) -> Option<antruss_core::json::Value> {
    let resp = Client::new(addr).get("/debug/prof").ok()?;
    if resp.status != 200 {
        return None;
    }
    antruss_core::json::parse(&resp.body_string()).ok()
}

fn prof_num(v: Option<&antruss_core::json::Value>) -> f64 {
    v.and_then(antruss_core::json::Value::as_f64).unwrap_or(0.0)
}

/// Builds the JSON `profile` section from the `/debug/prof` snapshots
/// taken around the main run plus the per-request `x-antruss-cost`
/// samples: CPU seconds by thread role spent during the run, CPU-us
/// and allocated bytes per request p50/p99, and the lock that
/// accumulated the most wait while the run was in flight.
fn profile_section(
    before: &antruss_core::json::Value,
    after: &antruss_core::json::Value,
    cpu_us: &mut [f64],
    alloc_bytes: &mut [f64],
) -> String {
    use antruss_core::json::Value;

    let roles_of = |v: &Value| -> BTreeMap<String, f64> {
        v.get("cpu")
            .and_then(|c| c.get("by_role"))
            .and_then(Value::as_array)
            .unwrap_or(&[])
            .iter()
            .filter_map(|r| {
                Some((
                    r.get("role")?.as_str()?.to_string(),
                    prof_num(r.get("cpu_seconds")),
                ))
            })
            .collect()
    };
    let base = roles_of(before);
    let mut role_parts = Vec::new();
    let mut printable = Vec::new();
    for (role, total) in roles_of(after) {
        let delta = (total - base.get(&role).copied().unwrap_or(0.0)).max(0.0);
        role_parts.push(format!("{{\"role\":{role:?},\"cpu_seconds\":{delta:.3}}}"));
        printable.push(format!("{role} {delta:.2}s"));
    }

    let waits_of = |v: &Value| -> BTreeMap<String, (f64, f64)> {
        v.get("locks")
            .and_then(Value::as_array)
            .unwrap_or(&[])
            .iter()
            .filter_map(|l| {
                Some((
                    l.get("lock")?.as_str()?.to_string(),
                    (
                        prof_num(l.get("wait_seconds_total")),
                        prof_num(l.get("wait_p99_us")),
                    ),
                ))
            })
            .collect()
    };
    let lock_base = waits_of(before);
    let mut worst: Option<(String, f64, f64)> = None;
    for (lock, (total, p99_us)) in waits_of(after) {
        let delta = (total - lock_base.get(&lock).map(|w| w.0).unwrap_or(0.0)).max(0.0);
        if worst.as_ref().is_none_or(|(_, w, _)| delta > *w) {
            worst = Some((lock, delta, p99_us));
        }
    }

    cpu_us.sort_by(|a, b| a.partial_cmp(b).unwrap());
    alloc_bytes.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let (cpu_p50, cpu_p99) = (percentile(cpu_us, 50.0), percentile(cpu_us, 99.0));
    let (ab_p50, ab_p99) = (percentile(alloc_bytes, 50.0), percentile(alloc_bytes, 99.0));
    println!(
        "profile ({} costed request(s)): cpu/req p50 {cpu_p50:.0}us p99 {cpu_p99:.0}us, \
         alloc/req p50 {ab_p50:.0}B p99 {ab_p99:.0}B; run cpu by role: {}",
        cpu_us.len(),
        if printable.is_empty() {
            "none".to_string()
        } else {
            printable.join(", ")
        },
    );
    let worst_field = match &worst {
        Some((lock, wait, p99_us)) => {
            println!("profile worst lock: {lock} +{wait:.4}s wait (p99 {p99_us:.0}us)");
            format!(
                ",\"worst_lock\":{{\"lock\":{lock:?},\"wait_seconds\":{wait:.6},\
                 \"wait_p99_us\":{p99_us:.1}}}"
            )
        }
        None => String::new(),
    };
    format!(
        "{{\"costed_requests\":{},\"cpu_us_per_request_p50\":{cpu_p50:.1},\
         \"cpu_us_per_request_p99\":{cpu_p99:.1},\"alloc_bytes_per_request_p50\":{ab_p50:.0},\
         \"alloc_bytes_per_request_p99\":{ab_p99:.0},\"cpu_by_role\":[{}]{worst_field}}}",
        cpu_us.len(),
        role_parts.join(",")
    )
}

/// Grades the finished main run against `--slo` objectives: observed
/// availability (ok / attempted) and observed p99 against their
/// targets, plus the worst `antruss_slo_burn_rate` gauge the target
/// itself exports (absent when the server was not started with
/// `--slo`). Returns the JSON `slo` section.
fn slo_section(
    addr: SocketAddr,
    objectives: &[antruss_obs::slo::Objective],
    ok: u64,
    failed: u64,
    p99_ms: f64,
) -> String {
    use antruss_obs::slo::SloKind;

    let attempted = ok + failed;
    let observed_availability = if attempted == 0 {
        100.0
    } else {
        100.0 * ok as f64 / attempted as f64
    };

    let mut parts = Vec::new();
    for obj in objectives {
        let (observed, target, unit) = match obj.kind {
            SloKind::Availability => (observed_availability, obj.target, "percent"),
            SloKind::LatencyP99 => (p99_ms, obj.target * 1e3, "ms"),
        };
        let met = match obj.kind {
            SloKind::Availability => observed >= target,
            SloKind::LatencyP99 => observed <= target,
        };
        println!(
            "slo {}: observed {observed:.3} vs target {target:.3} {unit} -> {}",
            obj.name,
            if met { "met" } else { "MISSED" }
        );
        parts.push(format!(
            "{{\"name\":{:?},\"target\":{target:.3},\"observed\":{observed:.3},\
             \"unit\":{unit:?},\"met\":{met}}}",
            obj.name
        ));
    }

    // the target's own verdict: the worst burn-rate gauge it exports
    let mut worst: Option<(String, String, f64)> = None;
    if let Ok(m) = Client::new(addr).get("/metrics") {
        for line in m.body_string().lines() {
            let Some(rest) = line.strip_prefix("antruss_slo_burn_rate{") else {
                continue;
            };
            let Some((labels, value)) = rest.split_once("} ") else {
                continue;
            };
            let Ok(v) = value.trim().parse::<f64>() else {
                continue;
            };
            let label = |key: &str| {
                labels
                    .split(',')
                    .find_map(|kv| kv.strip_prefix(&format!("{key}=\"")))
                    .map(|s| s.trim_end_matches('"').to_string())
                    .unwrap_or_default()
            };
            if worst.as_ref().is_none_or(|(_, _, w)| v > *w) {
                worst = Some((label("objective"), label("window"), v));
            }
        }
    }
    let worst_field = match &worst {
        Some((objective, window, rate)) => {
            println!("slo worst burn at target: {objective} over {window} = {rate:.3}");
            format!(
                ",\"worst_burn\":{{\"objective\":{objective:?},\"window\":{window:?},\
                 \"rate\":{rate:.3}}}"
            )
        }
        None => {
            println!("slo: the target exports no antruss_slo_burn_rate (started without --slo?)");
            String::new()
        }
    };

    format!(
        "{{\"attempted\":{attempted},\"observed_availability\":{observed_availability:.4},\
         \"observed_p99_ms\":{p99_ms:.3},\"objectives\":[{}]{worst_field}}}",
        parts.join(",")
    )
}

/// Drives `requests` per client at `addr`, all solving `graph` with
/// seeds cycling through `seeds` values. Returns (ok, failed,
/// edge_hits, req_per_sec).
fn drive(addr: SocketAddr, clients: usize, requests: usize, seeds: u64) -> (u64, u64, u64, f64) {
    let ok = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let edge_hits = AtomicU64::new(0);
    let started = Instant::now();
    std::thread::scope(|scope| {
        for c in 0..clients {
            let (ok, failed, edge_hits) = (&ok, &failed, &edge_hits);
            scope.spawn(move || {
                let mut client = Client::new(addr);
                for i in 0..requests {
                    let seed = ((c * requests + i) as u64) % seeds.max(1);
                    let body = format!("{{\"graph\":\"edge-bench-g0\",\"b\":1,\"seed\":{seed}}}");
                    match client.post("/solve", "application/json", body.as_bytes()) {
                        Ok(resp) if resp.status == 200 => {
                            ok.fetch_add(1, Ordering::Relaxed);
                            if resp.header("x-antruss-edge") == Some("hit") {
                                edge_hits.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                        _ => {
                            failed.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            });
        }
    });
    let elapsed = started.elapsed().as_secs_f64();
    let ok = ok.load(Ordering::Relaxed);
    (
        ok,
        failed.load(Ordering::Relaxed),
        edge_hits.load(Ordering::Relaxed),
        ok as f64 / elapsed.max(1e-9),
    )
}

/// Benchmarks the edge tier on a throwaway in-process origin + edge:
/// a fully cached workload directly at the origin, the same workload
/// off the edge's cache, and the same workload again with the origin
/// shut down (offline mode). Returns the JSON `edge` section.
fn edge_bench(clients: usize, requests: usize, seeds: u64) -> Option<String> {
    use antruss_edge::{Edge, EdgeConfig};
    use antruss_graph::{gen::gnm, io};

    let origin = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: clients + 4,
        cache_capacity: 4 * seeds.max(1) as usize,
        ..ServerConfig::default()
    })
    .ok()?;
    let edge = Edge::start(EdgeConfig {
        upstream: origin.addr().to_string(),
        threads: clients + 4,
        cache_capacity: 4 * seeds.max(1) as usize,
        poll_wait_ms: 200,
        retry_ms: 20,
        ..EdgeConfig::default()
    })
    .ok()?;

    let g = gnm(400, 1600, 1);
    let mut list = Vec::new();
    io::write_edge_list(&g, &mut list).expect("serialize bench graph");
    let mut client = Client::new(edge.addr());
    let resp = client
        .post("/graphs?name=edge-bench-g0", "text/plain", &list)
        .ok()?;
    if resp.status != 421 {
        eprintln!("edge bench: the edge accepted a write?");
        return None;
    }
    let resp = Client::new(origin.addr())
        .post("/graphs?name=edge-bench-g0", "text/plain", &list)
        .ok()?;
    if resp.status != 201 {
        eprintln!("edge bench: register failed: {}", resp.body_string());
        return None;
    }

    // warm both caches: one pass through the edge forwards each seed's
    // miss to the origin and admits the relayed outcome at the edge
    for seed in 0..seeds.max(1) {
        let body = format!("{{\"graph\":\"edge-bench-g0\",\"b\":1,\"seed\":{seed}}}");
        let resp = client
            .post("/solve", "application/json", body.as_bytes())
            .ok()?;
        if resp.status != 200 {
            eprintln!("edge bench: warm solve failed: {}", resp.body_string());
            return None;
        }
    }

    // one throwaway pass each so neither side pays first-connection
    // and scheduler warm-up costs inside its measured window
    drive(origin.addr(), clients, requests.min(50), seeds);
    drive(edge.addr(), clients, requests.min(50), seeds);

    let (direct_ok, direct_failed, _, direct_rps) = drive(origin.addr(), clients, requests, seeds);
    let (edge_ok, edge_failed, edge_hits, edge_rps) = drive(edge.addr(), clients, requests, seeds);
    let hit_ratio = edge_hits as f64 / edge_ok.max(1) as f64;
    if direct_failed + edge_failed > 0 {
        eprintln!("edge bench: {direct_failed} direct / {edge_failed} edge request(s) failed");
        return None;
    }

    // offline: the origin disappears; every cached read must keep
    // answering from the edge alone
    origin.shutdown();
    let (offline_ok, offline_failed, _, offline_rps) = drive(edge.addr(), clients, requests, seeds);

    println!(
        "edge ({clients} client(s) x {requests} request(s), {seeds} seed(s)): \
         direct {direct_rps:.1} req/s ({direct_ok} ok) vs edge cache {edge_rps:.1} req/s \
         ({edge_ok} ok, hit ratio {:.1}%) vs offline {offline_rps:.1} req/s \
         ({offline_ok} ok, {offline_failed} failed)",
        100.0 * hit_ratio
    );
    Some(format!(
        "{{\"clients\":{clients},\"requests_per_client\":{requests},\"seeds\":{seeds},\
         \"direct_req_per_sec\":{direct_rps:.1},\"edge_hit_req_per_sec\":{edge_rps:.1},\
         \"edge_hit_ratio\":{hit_ratio:.4},\"offline_req_per_sec\":{offline_rps:.1},\
         \"offline_failed\":{offline_failed}}}"
    ))
}

fn main() {
    let args = Args::from_env();
    let addr_list = args
        .get_str("addrs")
        .map(|s| s.to_string())
        .or_else(|| args.get_str("addr").map(|s| s.to_string()))
        .unwrap_or_else(|| "127.0.0.1:7171".to_string());
    let addrs: Vec<SocketAddr> = match addr_list
        .split(',')
        .map(|a| a.trim().parse::<SocketAddr>())
        .collect::<Result<Vec<_>, _>>()
    {
        Ok(a) if !a.is_empty() => a,
        _ => {
            eprintln!("bad --addr/--addrs {addr_list:?}: expected HOST:PORT[,HOST:PORT...]");
            std::process::exit(2);
        }
    };
    let clients: usize = args.get("clients", 4);
    let requests: usize = args.get("requests", 50);
    let graph = args.get_str("graph").unwrap_or("college:0.05").to_string();
    let solver = args.get_str("solver").unwrap_or("gas").to_string();
    let b: usize = args.get("b", 2);
    let seeds: u64 = args.get("seeds", 4);
    let json_out = args.flag("json");
    let out_path = args
        .get_str("out")
        .unwrap_or("BENCH_serve.json")
        .to_string();
    let kill_pid: Option<i32> = match args.get_str("kill-router") {
        Some(raw) => match raw.parse() {
            Ok(pid) => Some(pid),
            Err(_) => {
                eprintln!("bad --kill-router {raw:?}: expected a pid");
                std::process::exit(2);
            }
        },
        None => None,
    };
    // parse before the run so a bad spec fails fast, not after minutes
    // of load
    let slo_objectives = match args.get_str("slo") {
        Some(spec) => match antruss_obs::slo::parse_slos(spec) {
            Ok(objectives) => Some(objectives),
            Err(e) => {
                eprintln!("{e}");
                std::process::exit(2);
            }
        },
        None => None,
    };

    let (mode, backends) = probe_topology(addrs[0]);
    println!(
        "loadgen: {clients} client(s) x {requests} request(s) -> {} address(es) \
         (graph {graph}, solver {solver}, b {b}, {seeds} distinct seed(s); \
         target: {mode}, {backends} backend(s))",
        addrs.len()
    );
    let fanout = if args.flag("fanout") {
        fanout_bench(addrs[0], args.get("fanout-rounds", 5))
    } else {
        None
    };
    let recovery = if args.flag("recovery") {
        recovery_bench(args.get("recovery-graphs", 6))
    } else {
        None
    };
    let edge = if args.flag("edge") {
        edge_bench(clients, requests, seeds)
    } else {
        None
    };
    let trace = if args.flag("trace") {
        trace_bench(
            addrs[0],
            args.get("trace-samples", 40),
            &graph,
            &solver,
            b,
            seeds,
        )
    } else {
        None
    };

    // the before-the-run half of --profile: both snapshots must exist
    // for the deltas to mean anything
    let profile = args.flag("profile");
    let prof_before = if profile {
        let snap = prof_snapshot(addrs[0]);
        if snap.is_none() {
            eprintln!("profile: {} serves no /debug/prof (older tier?)", addrs[0]);
        }
        snap
    } else {
        None
    };

    let ok = AtomicU64::new(0);
    let failed = AtomicU64::new(0);
    let hits = AtomicU64::new(0);
    // control-plane drill bookkeeping: requests started (the kill
    // trigger), retargets taken, and the kill→recovery gap endpoints
    // (nanos since `started`; u64::MAX = "never happened")
    let attempted = AtomicU64::new(0);
    let retargets = AtomicU64::new(0);
    let kill_nanos = AtomicU64::new(u64::MAX);
    let recover_nanos = AtomicU64::new(u64::MAX);
    let kill_after = ((clients * requests) as u64 / 2).max(1);
    let tallies: Mutex<Vec<Tally>> = Mutex::new(Vec::new());
    let started = Instant::now();

    std::thread::scope(|scope| {
        for c in 0..clients {
            let (graph, solver, addrs) = (&graph, &solver, &addrs);
            let (ok, failed, hits, tallies) = (&ok, &failed, &hits, &tallies);
            let (attempted, retargets) = (&attempted, &retargets);
            let (kill_nanos, recover_nanos) = (&kill_nanos, &recover_nanos);
            scope.spawn(move || {
                let mut tally = Tally::default();
                let mut at = c % addrs.len();
                let mut client = Client::new(addrs[at]);
                // set while this client is on a failed-over connection
                // whose first success closes the failover gap
                let mut retargeted = false;
                for i in 0..requests {
                    let n = attempted.fetch_add(1, Ordering::Relaxed) + 1;
                    if n == kill_after {
                        if let Some(pid) = kill_pid {
                            kill_nanos
                                .store(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
                            sigkill(pid);
                            eprintln!("kill-router: SIGKILLed pid {pid} after {n} request(s)");
                        }
                    }
                    let seed = ((c * requests + i) as u64) % seeds.max(1);
                    let body = format!(
                        "{{\"graph\":\"{graph}\",\"solver\":\"{solver}\",\"b\":{b},\"seed\":{seed}}}"
                    );
                    let sent = Instant::now();
                    let mut tried = 0;
                    loop {
                        match client.post("/solve", "application/json", body.as_bytes()) {
                            Ok(resp) if resp.status == 200 => {
                                if retargeted {
                                    recover_nanos.fetch_min(
                                        started.elapsed().as_nanos() as u64,
                                        Ordering::Relaxed,
                                    );
                                    retargeted = false;
                                }
                                tally.latencies_ms.push(sent.elapsed().as_secs_f64() * 1e3);
                                ok.fetch_add(1, Ordering::Relaxed);
                                if resp.header("x-antruss-cache") == Some("hit") {
                                    hits.fetch_add(1, Ordering::Relaxed);
                                }
                                if profile {
                                    if let Some((cpu, bytes)) = resp
                                        .header(antruss_obs::COST_HEADER)
                                        .and_then(antruss_obs::prof::parse_cost)
                                    {
                                        tally.cost_cpu_us.push(cpu as f64);
                                        tally.cost_alloc_bytes.push(bytes as f64);
                                    }
                                }
                                let shard = resp
                                    .header("x-antruss-shard")
                                    .and_then(|s| s.parse::<i64>().ok())
                                    .unwrap_or(-1);
                                *tally.by_shard.entry(shard).or_insert(0) += 1;
                                break;
                            }
                            Ok(resp) => {
                                failed.fetch_add(1, Ordering::Relaxed);
                                eprintln!(
                                    "request failed: {} {}",
                                    resp.status,
                                    resp.body_string()
                                );
                                break;
                            }
                            // transport error: retarget — retry this
                            // same request against the next address
                            // before giving up on it (no-op with one
                            // address, where this stays a failure)
                            Err(e) => {
                                tried += 1;
                                if tried < addrs.len() {
                                    at += 1;
                                    client = Client::new(addrs[at % addrs.len()]);
                                    retargets.fetch_add(1, Ordering::Relaxed);
                                    retargeted = true;
                                    continue;
                                }
                                failed.fetch_add(1, Ordering::Relaxed);
                                eprintln!("request error: {e}");
                                break;
                            }
                        }
                    }
                }
                tallies.lock().unwrap().push(tally);
            });
        }
    });

    let elapsed = started.elapsed().as_secs_f64();
    let ok = ok.load(Ordering::Relaxed);
    let failed = failed.load(Ordering::Relaxed);
    let hits = hits.load(Ordering::Relaxed);
    let req_per_sec = ok as f64 / elapsed.max(1e-9);
    let hit_ratio = hits as f64 / (ok.max(1)) as f64;

    let (mut latencies, mut by_shard) = (Vec::new(), BTreeMap::<i64, u64>::new());
    let (mut cost_cpu_us, mut cost_alloc_bytes) = (Vec::new(), Vec::new());
    for tally in tallies.into_inner().unwrap() {
        latencies.extend(tally.latencies_ms);
        cost_cpu_us.extend(tally.cost_cpu_us);
        cost_alloc_bytes.extend(tally.cost_alloc_bytes);
        for (shard, n) in tally.by_shard {
            *by_shard.entry(shard).or_insert(0) += n;
        }
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let p50 = percentile(&latencies, 50.0);
    let p99 = percentile(&latencies, 99.0);

    println!(
        "done: {ok} ok, {failed} failed in {elapsed:.2}s -> {req_per_sec:.1} req/s, \
         p50 {p50:.2}ms, p99 {p99:.2}ms, cache-hit ratio {:.1}%",
        100.0 * hit_ratio
    );
    if by_shard.keys().any(|&s| s >= 0) {
        println!("per-shard distribution:");
        for (shard, n) in &by_shard {
            let label = if *shard < 0 {
                "unsharded".to_string()
            } else {
                format!("shard {shard}")
            };
            println!(
                "  {label:>10}: {n} request(s) ({:.1}%)",
                100.0 * *n as f64 / ok.max(1) as f64
            );
        }
    }

    // graded after the run: the section needs the run's own
    // ok/failed/p99 numbers
    let slo = slo_objectives
        .as_ref()
        .map(|objectives| slo_section(addrs[0], objectives, ok, failed, p99));

    // the after-the-run half of --profile; the drill may have killed
    // addrs[0], so fall back to the first address still answering
    let profile_json = prof_before.as_ref().and_then(|before| {
        let after = addrs.iter().find_map(|&a| prof_snapshot(a))?;
        Some(profile_section(
            before,
            &after,
            &mut cost_cpu_us,
            &mut cost_alloc_bytes,
        ))
    });

    // the chaos drill's verdict: how long the kill was visible, and
    // whether any request was actually lost despite it
    let retargets = retargets.load(Ordering::Relaxed);
    let control_plane = kill_pid.map(|pid| {
        let killed_at = kill_nanos.load(Ordering::Relaxed);
        let recovered_at = recover_nanos.load(Ordering::Relaxed);
        let gap_ms = match (killed_at, recovered_at) {
            (u64::MAX, _) | (_, u64::MAX) => 0.0,
            (k, r) => (r.saturating_sub(k)) as f64 / 1e6,
        };
        println!(
            "control plane drill: killed pid {pid} mid-run -> failover gap {gap_ms:.1}ms, \
             {retargets} retarget(s), {failed} failed request(s)"
        );
        format!(
            "{{\"routers\":{},\"killed_pid\":{pid},\"kill_after_requests\":{kill_after},\
             \"failover_gap_ms\":{gap_ms:.1},\"failed_requests\":{failed},\
             \"retargets\":{retargets}}}",
            addrs.len()
        )
    });

    if json_out {
        let shards = by_shard
            .iter()
            .map(|(shard, n)| format!("{{\"shard\":{shard},\"requests\":{n}}}"))
            .collect::<Vec<_>>()
            .join(",");
        let fanout_field = fanout
            .as_ref()
            .map(|f| format!(",\"fanout\":{f}"))
            .unwrap_or_default();
        let recovery_field = recovery
            .as_ref()
            .map(|r| format!(",\"recovery\":{r}"))
            .unwrap_or_default();
        let edge_field = edge
            .as_ref()
            .map(|e| format!(",\"edge\":{e}"))
            .unwrap_or_default();
        let trace_field = trace
            .as_ref()
            .map(|t| format!(",\"observability\":{t}"))
            .unwrap_or_default();
        let slo_field = slo
            .as_ref()
            .map(|s| format!(",\"slo\":{s}"))
            .unwrap_or_default();
        let control_plane_field = control_plane
            .as_ref()
            .map(|c| format!(",\"control_plane\":{c}"))
            .unwrap_or_default();
        let profile_field = profile_json
            .as_ref()
            .map(|p| format!(",\"profile\":{p}"))
            .unwrap_or_default();
        let report = format!(
            "{{\"addrs\":{:?},\"mode\":{mode:?},\"backends\":{backends},\
             \"clients\":{clients},\"requests_per_client\":{requests},\
             \"graph\":{graph:?},\"solver\":{solver:?},\"b\":{b},\"seeds\":{seeds},\
             \"ok\":{ok},\"failed\":{failed},\"elapsed_secs\":{elapsed:.3},\
             \"req_per_sec\":{req_per_sec:.1},\"p50_ms\":{p50:.3},\"p99_ms\":{p99:.3},\
             \"hit_ratio\":{hit_ratio:.4},\"per_shard\":[{shards}]{fanout_field}{recovery_field}{edge_field}{trace_field}{slo_field}{control_plane_field}{profile_field}}}",
            addrs.iter().map(|a| a.to_string()).collect::<Vec<_>>(),
        );
        match std::fs::write(&out_path, &report) {
            Ok(()) => println!("wrote {out_path}"),
            Err(e) => eprintln!("cannot write {out_path}: {e}"),
        }
    }

    // the drill may have killed addrs[0]: scrape the first address
    // that still answers
    match addrs
        .iter()
        .find_map(|&a| Client::new(a).get("/metrics").ok())
    {
        Some(m) => {
            println!("\nserver /metrics:");
            print!("{}", m.body_string());
        }
        None => eprintln!("could not fetch /metrics from any address"),
    }
    if failed > 0 {
        std::process::exit(1);
    }
}
