//! Router crash-recovery end to end, with a real process and a real
//! SIGKILL: an `antruss cluster --router-data-dir` router admits a
//! dynamic member, is killed -9, and is restarted on the same port over
//! the same data directory. The restarted router must recover the
//! dynamic member from its member-op log — the member's heartbeat
//! client never re-joins (its beats just start succeeding again), and
//! the router's own join counter stays at zero.

use std::io::BufRead as _;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use antruss_service::{Client, HeartbeatClient, Server, ServerConfig};

fn poll_until(deadline: Duration, mut check: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if check() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

fn metric(text: &str, name: &str) -> Option<u64> {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.parse().ok())
}

fn router_metrics(addr: SocketAddr) -> String {
    Client::new(addr)
        .get("/metrics")
        .map(|r| r.body_string())
        .unwrap_or_default()
}

fn ring_member_count(addr: SocketAddr) -> usize {
    metric(&router_metrics(addr), "antruss_router_backends").unwrap_or(u64::MAX) as usize
}

/// A spawned `antruss cluster` router process plus its bound address,
/// captured from the startup log line.
struct SpawnedRouter {
    child: Child,
    addr: SocketAddr,
}

impl SpawnedRouter {
    /// Spawns the real binary fronting `backend` with a durable member
    /// table in `data_dir`, binding `addr` (`127.0.0.1:0` first run,
    /// the captured port on restart), and waits for the router line.
    fn start(addr: &str, backend: SocketAddr, data_dir: &std::path::Path) -> SpawnedRouter {
        let mut child = Command::new(env!("CARGO_BIN_EXE_antruss"))
            .args([
                "cluster",
                "--addr",
                addr,
                "--backend-addrs",
                &backend.to_string(),
                "--router-data-dir",
                &data_dir.display().to_string(),
                "--health-ms",
                "100",
                "--heartbeat-ms",
                "300",
                "--miss-threshold",
                "10",
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn antruss cluster");
        let stderr = child.stderr.take().expect("piped stderr");
        let (tx, rx) = mpsc::channel::<SocketAddr>();
        std::thread::spawn(move || {
            for line in std::io::BufReader::new(stderr).lines() {
                let Ok(line) = line else { break };
                if let Some(rest) = line.split("router on http://").nth(1) {
                    if let Some(addr) = rest.split_whitespace().next().and_then(|a| a.parse().ok())
                    {
                        let _ = tx.send(addr);
                    }
                }
                // keep draining so the child never blocks on stderr
            }
        });
        let addr = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("router never reported its address");
        SpawnedRouter { child, addr }
    }

    /// SIGKILL — the member table in memory is gone; only the member-op
    /// log under `--router-data-dir` survives.
    fn kill_dash_nine(mut self) {
        self.child.kill().expect("kill -9");
        let _ = self.child.wait();
    }
}

#[test]
fn sigkilled_router_recovers_members_from_disk_with_zero_rejoins() {
    let base =
        std::env::temp_dir().join(format!("antruss-router-crash-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let data_dir = base.join("router");

    // one static backend the router fronts, one dynamic backend that
    // joins through the `serve --join` heartbeat client
    let static_backend = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 8,
        cache_capacity: 64,
        ..ServerConfig::default()
    })
    .expect("bind static backend");
    let router = SpawnedRouter::start("127.0.0.1:0", static_backend.addr(), &data_dir);
    let router_addr = router.addr;

    let dynamic_backend = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 8,
        cache_capacity: 64,
        ..ServerConfig::default()
    })
    .expect("bind dynamic backend");
    let hb =
        HeartbeatClient::start(router_addr, dynamic_backend.addr(), None).expect("dynamic join");
    assert!(
        poll_until(Duration::from_secs(10), || ring_member_count(router_addr)
            == 2),
        "dynamic member never appeared on the ring"
    );
    let before = router_metrics(router_addr);
    assert_eq!(
        metric(&before, "antruss_router_joins_total"),
        Some(1),
        "exactly the one dynamic join before the crash:\n{before}"
    );
    let beats_before_crash = hb.beats();

    // kill -9 the router; its in-memory member table dies with it. The
    // member's heartbeats fail silently in the meantime (transport
    // errors are just missed beats).
    router.kill_dash_nine();

    // restart on the SAME port over the SAME data dir: the member table
    // comes back from the member-op log before the socket even opens
    let router = SpawnedRouter::start(&router_addr.to_string(), static_backend.addr(), &data_dir);
    assert_eq!(router.addr, router_addr, "restart must rebind the port");
    assert!(
        poll_until(Duration::from_secs(10), || ring_member_count(router_addr)
            == 2),
        "restarted router did not recover the dynamic member"
    );

    // recovered from disk, not re-joined: the router counted a
    // recovery, its join counter is still zero, and the heartbeat
    // client never saw a 404 (zero re-join round-trips) — its beats
    // simply resumed against the recovered table
    let after = router_metrics(router_addr);
    assert!(
        metric(&after, "antruss_router_member_recover_total").unwrap_or(0) >= 1,
        "recovery was not counted:\n{after}"
    );
    assert_eq!(
        metric(&after, "antruss_router_joins_total"),
        Some(0),
        "recovery must take zero re-join round-trips:\n{after}"
    );
    assert!(
        poll_until(Duration::from_secs(10), || hb.beats() > beats_before_crash),
        "heartbeats never resumed against the recovered member table"
    );
    assert_eq!(
        hb.rejoins(),
        0,
        "the member was made to re-join instead of being recovered"
    );

    // the recovered membership is fully serveable: traffic routes
    // across both members
    let mut client = Client::new(router_addr);
    let resp = client
        .post("/graphs?name=tri", "text/plain", b"0 1\n1 2\n2 0\n")
        .unwrap();
    assert_eq!(resp.status, 201, "{}", resp.body_string());
    let solved = client
        .post(
            "/solve",
            "application/json",
            br#"{"graph":"tri","solver":"gas","b":1}"#,
        )
        .unwrap();
    assert_eq!(solved.status, 200, "{}", solved.body_string());

    drop(hb);
    router.kill_dash_nine();
    static_backend.shutdown();
    dynamic_backend.shutdown();
    std::fs::remove_dir_all(&base).unwrap();
}
