//! Crash-consistency end to end, with a real process and a real
//! SIGKILL: an `antruss serve --data-dir --join` backend is killed -9
//! mid-mutation-traffic, restarted over the same data directory, and
//! must come back byte-identical to a replica that never crashed —
//! recovering its graphs from local disk first (asserted via the
//! router's warm-skip counter and the backend's store metrics) and
//! pulling only the outcome-cache delta from its peer.

use std::io::BufRead as _;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use antruss_cluster::{Router, RouterConfig};
use antruss_service::{Client, HeartbeatClient, Server, ServerConfig};
use antruss_store::FsyncPolicy;

fn poll_until(deadline: Duration, mut check: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if check() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

fn metric(text: &str, name: &str) -> Option<u64> {
    text.lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.parse().ok())
}

fn ring_member_count(router_addr: SocketAddr) -> usize {
    let Ok(resp) = Client::new(router_addr).get("/metrics") else {
        return usize::MAX;
    };
    metric(&resp.body_string(), "antruss_router_backends").unwrap_or(u64::MAX) as usize
}

/// A spawned `antruss serve` process plus the stderr watcher that
/// captures its ephemeral bound address and join confirmation.
struct SpawnedBackend {
    child: Child,
    addr: SocketAddr,
}

impl SpawnedBackend {
    /// Spawns the real binary with `--data-dir` + `--join` and waits
    /// until it reports both its listening address and a completed
    /// (synchronously warmed) cluster join.
    fn start(data_dir: &std::path::Path, router: SocketAddr) -> SpawnedBackend {
        let mut child = Command::new(env!("CARGO_BIN_EXE_antruss"))
            .args([
                "serve",
                "--addr",
                "127.0.0.1:0",
                "--threads",
                "8",
                "--cache",
                "64",
                "--data-dir",
                &data_dir.display().to_string(),
                "--fsync",
                "always",
                "--join",
                &router.to_string(),
            ])
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn antruss serve");
        let stderr = child.stderr.take().expect("piped stderr");
        let (tx, rx) = mpsc::channel::<SocketAddr>();
        std::thread::spawn(move || {
            let mut addr = None;
            for line in std::io::BufReader::new(stderr).lines() {
                let Ok(line) = line else { break };
                if let Some(rest) = line.split("listening on http://").nth(1) {
                    addr = rest.split_whitespace().next().and_then(|a| a.parse().ok());
                }
                if line.contains("joined cluster router") {
                    if let Some(addr) = addr {
                        let _ = tx.send(addr);
                    }
                }
                // keep draining so the child never blocks on stderr
            }
        });
        let addr = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("backend never reported listening + joined");
        SpawnedBackend { child, addr }
    }

    /// SIGKILL — no drain, no WAL flush beyond completed writes, no
    /// graceful leave. `std::process::Child::kill` sends SIGKILL on
    /// unix, which is exactly the crash being modeled.
    fn kill_dash_nine(mut self) {
        self.child.kill().expect("kill -9");
        let _ = self.child.wait();
    }
}

#[test]
fn sigkill_mid_mutation_recovers_byte_identical_from_disk() {
    let base = std::env::temp_dir().join(format!("antruss-crash-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let dir_a = base.join("backend-a");
    let dir_b = base.join("backend-b");

    // the cluster: an empty router; B is the never-crashed replica
    // (in-process, also durable), A is the real process we will kill
    let router = Router::start(RouterConfig {
        replication: 2,
        health_interval_ms: 100,
        heartbeat_ms: 150,
        miss_threshold: 3,
        ..RouterConfig::default()
    })
    .expect("bind router");
    let server_b = Server::start(ServerConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 8,
        cache_capacity: 64,
        data_dir: Some(dir_b.display().to_string()),
        fsync: FsyncPolicy::Always,
        ..ServerConfig::default()
    })
    .expect("bind backend b");
    let _hb_b = HeartbeatClient::start(router.addr(), server_b.addr(), None).expect("b joins");
    let backend_a = SpawnedBackend::start(&dir_a, router.addr());
    assert!(
        poll_until(Duration::from_secs(10), || ring_member_count(router.addr())
            == 2),
        "both backends never joined"
    );

    // two graphs through the router (R=2: both replicas hold both).
    // "cold" will stay untouched after the crash — its disk copy must
    // be recognized as current; "hot" keeps mutating — its disk copy
    // must be detected as stale and re-pulled from B.
    let mut client = Client::new(router.addr());
    let mut edges = String::new();
    for u in 0..6u32 {
        for v in (u + 1)..6 {
            edges.push_str(&format!("{u} {v}\n"));
        }
    }
    for name in ["cold", "hot"] {
        let resp = client
            .post(
                &format!("/graphs?name={name}"),
                "text/plain",
                edges.as_bytes(),
            )
            .unwrap();
        assert_eq!(resp.status, 201, "{}", resp.body_string());
    }
    // cache the cold outcome on B, the replica that survives the crash
    // (outcome JSON embeds the solve's wall-clock, so only a cache
    // replay — not a recompute — can be byte-identical)
    let cold_solve = br#"{"graph":"cold","solver":"gas","b":1}"#;
    let first = Client::new(server_b.addr())
        .post("/solve", "application/json", cold_solve)
        .unwrap();
    assert_eq!(first.status, 200, "{}", first.body_string());
    let cold_reference = first.body.clone();

    // mutation traffic against "hot"; kill A with SIGKILL mid-stream.
    // every request must keep succeeding (B absorbs the fan-out).
    let mut doomed = Some(backend_a);
    for i in 0..12u32 {
        if i == 5 {
            doomed.take().unwrap().kill_dash_nine();
        }
        let batch = format!("{{\"insert\":[[0,{}],[1,{}]]}}", 6 + i, 6 + i);
        let resp = client
            .post("/graphs/hot/mutate", "application/json", batch.as_bytes())
            .unwrap();
        assert_eq!(resp.status, 200, "mutation {i}: {}", resp.body_string());
    }

    // the corpse is evicted; the ring shrinks to B alone
    assert!(
        poll_until(Duration::from_secs(15), || ring_member_count(router.addr())
            == 1),
        "killed backend was never evicted"
    );

    // restart A over the same data directory: it recovers its catalog
    // from snapshot + WAL tail locally, advertises its persisted
    // cluster cursor, and the router catches it up from the missed
    // event tail — "cold" is not in the tail, so it is never even
    // examined, let alone re-transferred; only the diverged "hot" is
    // re-synced.
    let before_metrics = Client::new(router.addr())
        .get("/metrics")
        .unwrap()
        .body_string();
    let catchup_before = metric(&before_metrics, "antruss_router_catchup_joins_total").unwrap();
    let warmed_before = metric(&before_metrics, "antruss_router_warmed_graphs_total").unwrap();
    let backend_a = SpawnedBackend::start(&dir_a, router.addr());
    assert!(
        poll_until(Duration::from_secs(10), || ring_member_count(router.addr())
            == 2),
        "restarted backend never re-joined"
    );

    // 1) disk-first: the re-join took the event-tail catch-up path (a
    // full warm would have re-streamed everything), and at most the
    // diverged "hot" was re-transferred
    let router_metrics = Client::new(router.addr())
        .get("/metrics")
        .unwrap()
        .body_string();
    let catchup_after = metric(&router_metrics, "antruss_router_catchup_joins_total").unwrap();
    assert!(
        catchup_after > catchup_before,
        "the cursor-advertising re-join did not take the catch-up path:\n{router_metrics}"
    );
    let warmed_after = metric(&router_metrics, "antruss_router_warmed_graphs_total").unwrap();
    assert!(
        warmed_after - warmed_before <= 1,
        "catch-up re-transferred more than the diverged graph:\n{router_metrics}"
    );

    // 2) the restarted process actually recovered from its store
    let a_metrics = Client::new(backend_a.addr)
        .get("/metrics")
        .unwrap()
        .body_string();
    assert!(
        metric(&a_metrics, "antruss_store_recovered_graphs").unwrap() >= 2
            || metric(&a_metrics, "antruss_store_recovered_ops").unwrap() >= 2,
        "store metrics show no recovery:\n{a_metrics}"
    );
    assert!(
        a_metrics.contains("antruss_store_recovery_ms"),
        "{a_metrics}"
    );

    // 3) byte-identical catalogs: names, shapes, content checksums and
    // raw edge dumps all match the never-crashed replica
    let mut a_client = Client::new(backend_a.addr);
    let mut b_client = Client::new(server_b.addr());
    let project = |body: &str| -> Vec<(String, u64, u64, String)> {
        let parsed = antruss_core::json::parse(body).unwrap();
        let mut rows: Vec<(String, u64, u64, String)> = parsed
            .get("loaded")
            .and_then(antruss_core::json::Value::as_array)
            .unwrap()
            .iter()
            .map(|e| {
                (
                    e.get("name").unwrap().as_str().unwrap().to_string(),
                    e.get("vertices").unwrap().as_u64().unwrap(),
                    e.get("edges").unwrap().as_u64().unwrap(),
                    e.get("checksum").unwrap().as_str().unwrap().to_string(),
                )
            })
            .collect();
        rows.sort();
        rows
    };
    let a_listing = project(&a_client.get("/graphs").unwrap().body_string());
    let b_listing = project(&b_client.get("/graphs").unwrap().body_string());
    assert_eq!(a_listing, b_listing, "recovered catalog diverged");
    assert_eq!(a_listing.len(), 2);
    for name in ["cold", "hot"] {
        let a_edges = a_client.get(&format!("/graphs/{name}/edges")).unwrap().body;
        let b_edges = b_client.get(&format!("/graphs/{name}/edges")).unwrap().body;
        assert_eq!(a_edges, b_edges, "{name}: edge dumps diverged");
    }

    // 4) byte-identical solve outcomes. "cold" was cached pre-crash on
    // B: join warm replayed the peer's exact bytes into A — the
    // O(cache delta) transfer — so A answers a *hit* with those bytes.
    let a_cold = a_client
        .post("/solve", "application/json", cold_solve)
        .unwrap();
    assert_eq!(a_cold.status, 200, "{}", a_cold.body_string());
    assert_eq!(
        a_cold.header("x-antruss-cache"),
        Some("hit"),
        "cold outcome was not warm-replayed into the recovered backend"
    );
    assert_eq!(
        a_cold.body, cold_reference,
        "pre-crash cached outcome diverged after recovery"
    );
    // "hot" mutated through the crash, so neither replica holds a
    // cached outcome: both recompute. Recomputes embed their own
    // wall-clock, so strip the timing fields and compare the rest —
    // anchors, gains, rounds, reuse telemetry — exactly.
    let hot_solve = br#"{"graph":"hot","solver":"gas","b":2}"#;
    let a_hot = a_client
        .post("/solve", "application/json", hot_solve)
        .unwrap();
    let b_hot = b_client
        .post("/solve", "application/json", hot_solve)
        .unwrap();
    assert_eq!(a_hot.status, 200, "{}", a_hot.body_string());
    assert_eq!(b_hot.status, 200, "{}", b_hot.body_string());
    fn strip_elapsed(v: &mut antruss_core::json::Value) {
        use antruss_core::json::Value;
        match v {
            Value::Obj(m) => {
                m.remove("elapsed_secs");
                for child in m.values_mut() {
                    strip_elapsed(child);
                }
            }
            Value::Arr(items) => items.iter_mut().for_each(strip_elapsed),
            _ => {}
        }
    }
    let mut a_parsed = antruss_core::json::parse(&a_hot.body_string()).unwrap();
    let mut b_parsed = antruss_core::json::parse(&b_hot.body_string()).unwrap();
    strip_elapsed(&mut a_parsed);
    strip_elapsed(&mut b_parsed);
    assert_eq!(
        a_parsed, b_parsed,
        "post-recovery solve diverged from the never-crashed replica"
    );
    // and once cached, replays are byte-identical on each replica
    let a_hot_again = a_client
        .post("/solve", "application/json", hot_solve)
        .unwrap();
    assert_eq!(a_hot_again.header("x-antruss-cache"), Some("hit"));
    assert_eq!(a_hot_again.body, a_hot.body);

    backend_a.kill_dash_nine();
    router.shutdown();
    server_b.shutdown();
    std::fs::remove_dir_all(&base).unwrap();
}
