//! Edge offline mode end to end, with real processes and a real
//! SIGKILL: an `antruss edge` in front of an `antruss serve --data-dir`
//! keeps serving every previously cached read — zero failed requests —
//! while the upstream is killed -9 mid-traffic, flags them stale, and
//! when the upstream restarts over the same data directory and address
//! it resumes the event stream from its cursor: no reset, no re-warm,
//! and selective invalidation still works over the resumed feed.

use std::io::BufRead as _;
use std::net::SocketAddr;
use std::process::{Child, Command, Stdio};
use std::sync::mpsc;
use std::time::{Duration, Instant};

use antruss_service::Client;

fn poll_until(deadline: Duration, mut check: impl FnMut() -> bool) -> bool {
    let start = Instant::now();
    while start.elapsed() < deadline {
        if check() {
            return true;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    false
}

fn metric(addr: SocketAddr, name: &str) -> Option<u64> {
    let resp = Client::new(addr).get("/metrics").ok()?;
    resp.body_string()
        .lines()
        .find_map(|l| l.strip_prefix(&format!("{name} ")))
        .and_then(|v| v.trim().parse().ok())
}

/// A spawned `antruss` subcommand plus the address it reported on
/// stderr ("listening on http://<addr> ...").
struct Spawned {
    child: Child,
    addr: SocketAddr,
}

impl Spawned {
    fn start(args: &[&str]) -> Spawned {
        let mut child = Command::new(env!("CARGO_BIN_EXE_antruss"))
            .args(args)
            .stdout(Stdio::null())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn antruss");
        let stderr = child.stderr.take().expect("piped stderr");
        let (tx, rx) = mpsc::channel::<SocketAddr>();
        std::thread::spawn(move || {
            for line in std::io::BufReader::new(stderr).lines() {
                let Ok(line) = line else { break };
                if let Some(rest) = line.split("listening on http://").nth(1) {
                    if let Some(addr) = rest.split_whitespace().next().and_then(|a| a.parse().ok())
                    {
                        let _ = tx.send(addr);
                    }
                }
                // keep draining so the child never blocks on stderr
            }
        });
        let addr = rx
            .recv_timeout(Duration::from_secs(60))
            .expect("process never reported its address");
        Spawned { child, addr }
    }

    /// SIGKILL — no drain, no graceful close.
    fn kill_dash_nine(mut self) {
        self.child.kill().expect("kill -9");
        let _ = self.child.wait();
    }
}

impl Drop for Spawned {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn edge_list() -> String {
    let mut edges = String::new();
    for u in 0..6u32 {
        for v in (u + 1)..6 {
            edges.push_str(&format!("{u} {v}\n"));
        }
    }
    edges
}

fn solve_body(graph: &str) -> Vec<u8> {
    format!("{{\"graph\":\"{graph}\",\"solver\":\"gas\",\"b\":1}}").into_bytes()
}

#[test]
fn sigkill_upstream_mid_traffic_edge_serves_cached_and_resumes() {
    let data_dir = std::env::temp_dir().join(format!("antruss-edge-crash-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&data_dir);
    let dir = data_dir.display().to_string();

    let serve_args = |addr: &str| {
        vec![
            "serve".to_string(),
            "--addr".to_string(),
            addr.to_string(),
            "--threads".to_string(),
            "8".to_string(),
            "--cache".to_string(),
            "64".to_string(),
            "--data-dir".to_string(),
            dir.clone(),
            "--fsync".to_string(),
            "always".to_string(),
        ]
    };
    let argv = serve_args("127.0.0.1:0");
    let upstream = Spawned::start(&argv.iter().map(String::as_str).collect::<Vec<_>>());
    let up_addr = upstream.addr;

    for name in ["cold", "hot"] {
        let resp = Client::new(up_addr)
            .post(
                &format!("/graphs?name={name}"),
                "text/plain",
                edge_list().as_bytes(),
            )
            .unwrap();
        assert_eq!(resp.status, 201, "{}", resp.body_string());
    }

    let edge = Spawned::start(&[
        "edge",
        "--upstream",
        &up_addr.to_string(),
        "--addr",
        "127.0.0.1:0",
        "--threads",
        "8",
        "--cache",
        "64",
        "--poll-wait-ms",
        "200",
        "--retry-ms",
        "20",
    ]);
    assert!(
        poll_until(Duration::from_secs(10), || {
            metric(edge.addr, "antruss_edge_events_head_seq") == Some(2)
        }),
        "the edge never tailed the two registers"
    );

    // warm both outcomes at the edge (miss, then a local hit)
    let mut references = Vec::new();
    for name in ["cold", "hot"] {
        let first = Client::new(edge.addr)
            .post("/solve", "application/json", &solve_body(name))
            .unwrap();
        assert_eq!(first.status, 200, "{}", first.body_string());
        let again = Client::new(edge.addr)
            .post("/solve", "application/json", &solve_body(name))
            .unwrap();
        assert_eq!(again.header("x-antruss-edge"), Some("hit"));
        assert_eq!(again.body, first.body, "a cache replay is byte-identical");
        references.push(first.body);
    }

    // cached-read traffic; SIGKILL the upstream mid-stream. Every
    // single request must keep succeeding with the cached bytes.
    let mut doomed = Some(upstream);
    let mut stale_seen = false;
    for i in 0..16u32 {
        if i == 5 {
            doomed.take().unwrap().kill_dash_nine();
        }
        for (j, name) in ["cold", "hot"].iter().enumerate() {
            let resp = Client::new(edge.addr)
                .post("/solve", "application/json", &solve_body(name))
                .unwrap();
            assert_eq!(resp.status, 200, "request {i}/{name} failed mid-crash");
            assert_eq!(resp.body, references[j], "stale or wrong bytes");
            stale_seen |= resp.header("x-antruss-stale").is_some();
        }
    }
    assert!(
        poll_until(Duration::from_secs(5), || {
            metric(edge.addr, "antruss_edge_upstream_up") == Some(0)
        }),
        "the edge never noticed the crash"
    );
    // once the edge has noticed, offline hits are flagged
    let resp = Client::new(edge.addr)
        .post("/solve", "application/json", &solve_body("cold"))
        .unwrap();
    assert_eq!(resp.status, 200);
    assert!(resp.header("x-antruss-stale").is_some() || stale_seen);
    assert!(metric(edge.addr, "antruss_edge_stale_serves_total").unwrap_or(0) >= 1);

    // an identity that was never cached has nowhere to go while the
    // upstream is down — but that is the only thing allowed to fail
    let resp = Client::new(edge.addr)
        .post(
            "/solve",
            "application/json",
            br#"{"graph":"cold","solver":"gas","b":2}"#,
        )
        .unwrap();
    assert_eq!(resp.status, 503);

    // restart over the same data dir *and* address: same event epoch,
    // head rebuilt from the WAL — the subscriber resumes mid-stream
    let argv = serve_args(&up_addr.to_string());
    let upstream = Spawned::start(&argv.iter().map(String::as_str).collect::<Vec<_>>());
    assert_eq!(upstream.addr, up_addr);
    assert!(
        poll_until(Duration::from_secs(10), || {
            metric(edge.addr, "antruss_edge_upstream_up") == Some(1)
        }),
        "the edge never reconnected"
    );
    assert_eq!(
        metric(edge.addr, "antruss_edge_event_resets_total"),
        Some(0),
        "a same-identity restart must resume from the cursor, not reset"
    );

    // the cache survived: still a hit, no longer stale
    let resp = Client::new(edge.addr)
        .post("/solve", "application/json", &solve_body("cold"))
        .unwrap();
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("x-antruss-edge"), Some("hit"));
    assert!(resp.header("x-antruss-stale").is_none());

    // and the resumed feed still invalidates selectively
    let resp = Client::new(up_addr)
        .post(
            "/graphs/hot/mutate",
            "application/json",
            b"{\"insert\":[[0,6],[1,6]]}",
        )
        .unwrap();
    assert_eq!(resp.status, 200, "mutate: {}", resp.body_string());
    assert!(
        poll_until(Duration::from_secs(10), || {
            metric(edge.addr, "antruss_edge_events_head_seq") == Some(3)
        }),
        "the mutation never arrived over the resumed stream"
    );
    let resp = Client::new(edge.addr)
        .post("/solve", "application/json", &solve_body("hot"))
        .unwrap();
    assert_eq!(resp.header("x-antruss-edge"), Some("miss"), "hot dropped");
    let resp = Client::new(edge.addr)
        .post("/solve", "application/json", &solve_body("cold"))
        .unwrap();
    assert_eq!(resp.header("x-antruss-edge"), Some("hit"), "cold kept");
    assert_eq!(resp.body, references[0]);

    let _ = std::fs::remove_dir_all(&data_dir);
}
